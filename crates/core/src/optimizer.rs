//! A small cost-based physical optimizer for two-table equi-joins.
//!
//! The paper operates downstream of an optimizer ("Our plan refinement
//! algorithm accepts a query plan tree from the optimizer as input"); this
//! module provides that upstream piece for the common case its experiments
//! force by hand: choosing among index nested-loop, hash and merge join for
//! a foreign-key equi-join, using table statistics. The cost model counts
//! the dominant per-tuple work of each method — the same quantities the
//! executor simulates — so its choices align with the simulated outcomes.

use crate::expr::Expr;
use crate::plan::estimate::{estimate_rows, predicate_selectivity};
use crate::plan::{IndexMode, PlanNode};
use bufferdb_storage::Catalog;
use bufferdb_types::{DbError, Result};

/// A two-table foreign-key equi-join to be planned: every `outer` row joins
/// at most one `inner` row via `inner`'s unique key.
#[derive(Debug, Clone)]
pub struct JoinQuery {
    /// Outer (probe / fact) table.
    pub outer_table: String,
    /// Optional filter on the outer table.
    pub outer_predicate: Option<Expr>,
    /// Join key column in the outer table.
    pub outer_key: usize,
    /// Inner (dimension) table with a unique key.
    pub inner_table: String,
    /// Join key column in the inner table (unique).
    pub inner_key: usize,
    /// Name of a B+-tree index on the inner key, if one exists.
    pub inner_index: Option<String>,
}

/// Relative per-unit costs used by [`choose_join_plan`]. Derived from the
/// operators' simulated work per call; exposed for tests and tuning.
#[derive(Debug, Clone)]
pub struct JoinCostModel {
    /// Cost of scanning one heap row.
    pub scan_row: f64,
    /// Cost of one B+-tree probe (per outer row, index nested-loop).
    pub index_probe: f64,
    /// Cost of hashing + inserting one build row.
    pub hash_build_row: f64,
    /// Cost of probing the hash table once.
    pub hash_probe_row: f64,
    /// Per-row cost of sorting (multiplied by log2 n).
    pub sort_row_log: f64,
    /// Per-row cost of the merge itself.
    pub merge_row: f64,
}

impl Default for JoinCostModel {
    fn default() -> Self {
        JoinCostModel {
            scan_row: 1.0,
            index_probe: 2.4,
            hash_build_row: 1.4,
            hash_probe_row: 0.9,
            sort_row_log: 0.25,
            merge_row: 0.6,
        }
    }
}

/// The physical choice made by the optimizer, with its estimated cost.
#[derive(Debug, Clone)]
pub struct JoinChoice {
    /// The physical plan (without buffer operators; run the refiner next).
    pub plan: PlanNode,
    /// Method name ("nestloop" | "hashjoin" | "mergejoin").
    pub method: &'static str,
    /// Estimated cost in scan-row units.
    pub cost: f64,
}

/// Estimate costs of the three join methods and return the cheapest plan.
///
/// Mirrors a System-R-style enumeration restricted to one join: index
/// nested-loop wins for selective outer filters (few probes), hash join for
/// bulk joins, merge join when its sort is amortized (rarely here, matching
/// PostgreSQL's preferences for FK joins on unsorted heaps).
pub fn choose_join_plan(
    query: &JoinQuery,
    catalog: &Catalog,
    cost: &JoinCostModel,
) -> Result<JoinChoice> {
    let outer = catalog.table(&query.outer_table)?;
    let inner = catalog.table(&query.inner_table)?;
    let outer_rows = outer.stats().row_count as f64;
    let inner_rows = inner.stats().row_count as f64;
    let sel = query
        .outer_predicate
        .as_ref()
        .map(|p| predicate_selectivity(p, &query.outer_table, catalog))
        .unwrap_or(1.0);
    let outer_out = outer_rows * sel;

    let outer_scan = PlanNode::SeqScan {
        table: query.outer_table.clone(),
        predicate: query.outer_predicate.clone(),
        projection: None,
    };

    let mut candidates: Vec<JoinChoice> = Vec::new();

    // Index nested-loop join: scan outer + one probe per surviving row.
    if let Some(index) = &query.inner_index {
        catalog.index(index)?;
        let nl_cost = outer_rows * cost.scan_row + outer_out * cost.index_probe;
        candidates.push(JoinChoice {
            plan: PlanNode::NestLoopJoin {
                outer: Box::new(outer_scan.clone()),
                inner: Box::new(PlanNode::IndexScan {
                    index: index.clone(),
                    mode: IndexMode::LookupParam,
                }),
                param_outer_col: Some(query.outer_key),
                qual: None,
                fk_inner: true,
            },
            method: "nestloop",
            cost: nl_cost,
        });
    }

    // Hash join: build the inner, probe with the outer.
    let hj_cost = inner_rows * (cost.scan_row + cost.hash_build_row)
        + outer_rows * cost.scan_row
        + outer_out * cost.hash_probe_row;
    candidates.push(JoinChoice {
        plan: PlanNode::HashJoin {
            probe: Box::new(outer_scan.clone()),
            build: Box::new(PlanNode::SeqScan {
                table: query.inner_table.clone(),
                predicate: None,
                projection: None,
            }),
            probe_key: query.outer_key,
            build_key: query.inner_key,
        },
        method: "hashjoin",
        cost: hj_cost,
    });

    // Merge join: sort the outer, read the inner in key order (index order
    // when available, else sort it too).
    let sort_outer = outer_out.max(2.0);
    let mut mj_cost = outer_rows * cost.scan_row
        + sort_outer * sort_outer.log2() * cost.sort_row_log
        + (outer_out + inner_rows) * cost.merge_row;
    let right: PlanNode = match &query.inner_index {
        Some(index) => {
            mj_cost += inner_rows * cost.scan_row;
            PlanNode::IndexScan {
                index: index.clone(),
                mode: IndexMode::Range { lo: None, hi: None },
            }
        }
        None => {
            let n = inner_rows.max(2.0);
            mj_cost += inner_rows * cost.scan_row + n * n.log2() * cost.sort_row_log;
            PlanNode::Sort {
                input: Box::new(PlanNode::SeqScan {
                    table: query.inner_table.clone(),
                    predicate: None,
                    projection: None,
                }),
                keys: vec![(query.inner_key, true)],
            }
        }
    };
    candidates.push(JoinChoice {
        plan: PlanNode::MergeJoin {
            left: Box::new(PlanNode::Sort {
                input: Box::new(outer_scan),
                keys: vec![(query.outer_key, true)],
            }),
            right: Box::new(right),
            left_key: query.outer_key,
            right_key: query.inner_key,
        },
        method: "mergejoin",
        cost: mj_cost,
    });

    candidates
        .into_iter()
        .min_by(|a, b| a.cost.total_cmp(&b.cost))
        .ok_or_else(|| DbError::InvalidPlan("no join candidates".into()))
}

/// Validate that a chosen plan produces the expected estimated cardinality
/// (diagnostic helper used by tests and EXPLAIN output).
pub fn estimated_output_rows(choice: &JoinChoice, catalog: &Catalog) -> f64 {
    estimate_rows(&choice.plan, catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bufferdb_index::BTreeIndex;
    use bufferdb_storage::{IndexDef, TableBuilder};
    use bufferdb_types::{DataType, Datum, Field, Schema, Tuple};

    fn catalog(fact_rows: i64, dim_rows: i64) -> Catalog {
        let c = Catalog::new();
        let mut fact = TableBuilder::new(
            "fact",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
            ]),
        );
        for i in 0..fact_rows {
            fact.push(Tuple::new(vec![Datum::Int(i % dim_rows), Datum::Int(i)]));
        }
        c.add_table(fact);
        let mut dim = TableBuilder::new("dim", Schema::new(vec![Field::new("d", DataType::Int)]));
        let mut btree = BTreeIndex::new();
        for i in 0..dim_rows {
            dim.push(Tuple::new(vec![Datum::Int(i)]));
            btree.insert(i, i as u32);
        }
        c.add_table(dim);
        c.add_index(IndexDef {
            name: "dim_pkey".into(),
            table: "dim".into(),
            key_column: 0,
            btree,
        });
        c
    }

    fn query(pred: Option<Expr>, index: bool) -> JoinQuery {
        JoinQuery {
            outer_table: "fact".into(),
            outer_predicate: pred,
            outer_key: 0,
            inner_table: "dim".into(),
            inner_key: 0,
            inner_index: index.then(|| "dim_pkey".to_string()),
        }
    }

    #[test]
    fn bulk_join_prefers_hash() {
        let c = catalog(100_000, 10_000);
        let choice = choose_join_plan(&query(None, true), &c, &JoinCostModel::default()).unwrap();
        assert_eq!(choice.method, "hashjoin", "cost {}", choice.cost);
    }

    #[test]
    fn selective_outer_prefers_index_nestloop() {
        let c = catalog(100_000, 10_000);
        // v < 100: ~0.1% of the outer survives; probing 100 times beats
        // building a 10k-row hash table.
        let pred = Expr::col(1).lt(Expr::lit(100));
        let choice =
            choose_join_plan(&query(Some(pred), true), &c, &JoinCostModel::default()).unwrap();
        assert_eq!(choice.method, "nestloop", "cost {}", choice.cost);
        assert!(matches!(choice.plan, PlanNode::NestLoopJoin { .. }));
    }

    #[test]
    fn no_index_excludes_nestloop() {
        let c = catalog(1000, 100);
        let pred = Expr::col(1).lt(Expr::lit(5));
        let choice =
            choose_join_plan(&query(Some(pred), false), &c, &JoinCostModel::default()).unwrap();
        assert_ne!(choice.method, "nestloop");
    }

    #[test]
    fn chosen_plans_execute_and_agree() {
        use crate::exec::{execute_query, ExecOptions};
        use bufferdb_cachesim::MachineConfig;
        let c = catalog(2000, 100);
        let machine = MachineConfig::pentium4_like();
        let mut counts = Vec::new();
        // Force each method by manipulating the candidate set indirectly:
        // run the chosen plan and the always-available hash plan.
        for pred in [None, Some(Expr::col(1).lt(Expr::lit(50)))] {
            let choice =
                choose_join_plan(&query(pred.clone(), true), &c, &JoinCostModel::default())
                    .unwrap();
            let rows = execute_query(&choice.plan, &c, &machine, &ExecOptions::default())
                .into_result()
                .map(|(rows, _, _)| rows)
                .unwrap();
            counts.push((pred.is_some(), rows.len()));
        }
        assert_eq!(
            counts[0].1, 2000,
            "unfiltered FK join returns every fact row"
        );
        assert_eq!(counts[1].1, 50);
    }

    #[test]
    fn unknown_tables_error() {
        let c = catalog(10, 10);
        let mut q = query(None, false);
        q.outer_table = "nope".into();
        assert!(choose_join_plan(&q, &c, &JoinCostModel::default()).is_err());
    }

    #[test]
    fn cost_estimates_are_positive_and_ordered() {
        let c = catalog(50_000, 5_000);
        let choice = choose_join_plan(&query(None, true), &c, &JoinCostModel::default()).unwrap();
        assert!(choice.cost > 0.0);
        assert!(estimated_output_rows(&choice, &c) > 0.0);
    }
}
