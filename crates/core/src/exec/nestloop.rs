//! Nested-loop join, optionally parameterized (index nested-loop).
//!
//! For every outer tuple the inner child is re-scanned — with the outer key
//! as parameter for index nested-loop joins (the paper's Query 3 plan, where
//! the optimizer knows at most one inner row matches each outer tuple and
//! therefore never buffers the inner side, §7.5).

use crate::arena::TupleSlot;
use crate::context::ExecContext;
use crate::exec::{schema_slot_bytes, Operator, DEFAULT_BATCH};
use crate::expr::Expr;
use crate::footprint::{FootprintModel, OpKind};
use bufferdb_cachesim::CodeRegion;
use bufferdb_types::{Result, SchemaRef};

/// Nested-loop join operator.
pub struct NestLoopOp {
    outer: Box<dyn Operator>,
    inner: Box<dyn Operator>,
    param_outer_col: Option<usize>,
    qual: Option<Expr>,
    qual_site: u64,
    schema: SchemaRef,
    code: CodeRegion,
    current_outer: Option<TupleSlot>,
    out_region: u32,
    batch_hint: usize,
}

impl NestLoopOp {
    /// Build a nested-loop join.
    pub fn new(
        fm: &mut FootprintModel,
        outer: Box<dyn Operator>,
        inner: Box<dyn Operator>,
        param_outer_col: Option<usize>,
        qual: Option<Expr>,
    ) -> Self {
        let schema = outer.schema().join(&inner.schema()).into_ref();
        let code = fm.region_for(&OpKind::NestLoop);
        let qual_site = fm.predicate_site();
        NestLoopOp {
            outer,
            inner,
            param_outer_col,
            qual,
            qual_site,
            schema,
            code,
            current_outer: None,
            out_region: u32::MAX,
            batch_hint: DEFAULT_BATCH,
        }
    }
}

impl Operator for NestLoopOp {
    fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn set_batch_hint(&mut self, n: usize) {
        self.batch_hint = self.batch_hint.max(n);
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.outer.open(ctx)?;
        self.inner.open(ctx)?;
        self.out_region = ctx
            .arena
            .alloc_region(self.batch_hint as u32 + 1, schema_slot_bytes(&self.schema));
        self.current_outer = None;
        Ok(())
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<TupleSlot>> {
        ctx.machine.exec_region(&mut self.code);
        loop {
            let outer_slot = match self.current_outer {
                Some(slot) => slot,
                None => match self.outer.next(ctx)? {
                    None => return Ok(None),
                    Some(slot) => {
                        // One cancel check per outer row: an unselective qual
                        // can spin this loop for a long time between returns.
                        ctx.check_cancel()?;
                        self.current_outer = Some(slot);
                        let param = self
                            .param_outer_col
                            .map(|c| ctx.arena.tuple(slot).get(c).clone());
                        self.inner.rescan(ctx, param.as_ref())?;
                        slot
                    }
                },
            };
            match self.inner.next(ctx)? {
                None => {
                    self.current_outer = None;
                    continue;
                }
                Some(inner_slot) => {
                    let joined = ctx
                        .arena
                        .tuple(outer_slot)
                        .join(ctx.arena.tuple(inner_slot));
                    if let Some(q) = &self.qual {
                        let keep = q.eval_predicate(&joined)?;
                        ctx.machine.add_instructions(q.instruction_cost());
                        ctx.machine.branch(self.qual_site, keep);
                        if !keep {
                            continue;
                        }
                    }
                    let slot = ctx.arena.store(self.out_region, joined, &mut ctx.machine);
                    return Ok(Some(slot));
                }
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.outer.close(ctx)?;
        self.inner.close(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::indexscan::IndexScanOp;
    use crate::exec::seqscan::SeqScanOp;
    use crate::plan::IndexMode;
    use bufferdb_cachesim::MachineConfig;
    use bufferdb_index::BTreeIndex;
    use bufferdb_storage::{Catalog, IndexDef, TableBuilder};
    use bufferdb_types::{DataType, Datum, Field, Schema, Tuple};

    fn setup() -> (Catalog, FootprintModel, ExecContext) {
        let c = Catalog::new();
        let mut li = TableBuilder::new(
            "lineitem",
            Schema::new(vec![
                Field::new("l_orderkey", DataType::Int),
                Field::new("l_qty", DataType::Int),
            ]),
        );
        // Two lineitems per order 0..10.
        for i in 0..20 {
            li.push(Tuple::new(vec![Datum::Int(i / 2), Datum::Int(i)]));
        }
        c.add_table(li);
        let mut orders = TableBuilder::new(
            "orders",
            Schema::new(vec![
                Field::new("o_orderkey", DataType::Int),
                Field::new("o_total", DataType::Int),
            ]),
        );
        for i in 0..10 {
            orders.push(Tuple::new(vec![Datum::Int(i), Datum::Int(i * 100)]));
        }
        c.add_table(orders);
        let mut btree = BTreeIndex::new();
        for i in 0..10 {
            btree.insert(i, i as u32);
        }
        c.add_index(IndexDef {
            name: "orders_pkey".into(),
            table: "orders".into(),
            key_column: 0,
            btree,
        });
        (
            c,
            FootprintModel::new(),
            ExecContext::new(MachineConfig::pentium4_like()),
        )
    }

    #[test]
    fn index_nested_loop_join_matches_all() {
        let (c, mut fm, mut ctx) = setup();
        let outer = Box::new(SeqScanOp::new(&c, &mut fm, "lineitem", None, None).unwrap());
        let inner =
            Box::new(IndexScanOp::new(&c, &mut fm, "orders_pkey", IndexMode::LookupParam).unwrap());
        let mut op = NestLoopOp::new(&mut fm, outer, inner, Some(0), None);
        assert_eq!(op.schema().len(), 4);
        op.open(&mut ctx).unwrap();
        let mut rows = Vec::new();
        while let Some(s) = op.next(&mut ctx).unwrap() {
            rows.push(ctx.arena.tuple(s).clone());
        }
        assert_eq!(rows.len(), 20, "every lineitem joins exactly one order");
        // Check one row: lineitem 7 (order 3) joins order 3 (total 300).
        let r = &rows[7];
        assert_eq!(r.get(0).as_int(), Some(3));
        assert_eq!(r.get(3).as_int(), Some(300));
        op.close(&mut ctx).unwrap();
    }

    #[test]
    fn naive_rescan_join_with_qual() {
        let (c, mut fm, mut ctx) = setup();
        let outer = Box::new(SeqScanOp::new(&c, &mut fm, "orders", None, None).unwrap());
        let inner = Box::new(SeqScanOp::new(&c, &mut fm, "orders", None, None).unwrap());
        // Cross product filtered to o1.key = o2.key.
        let qual = Expr::col(0).eq(Expr::col(2));
        let mut op = NestLoopOp::new(&mut fm, outer, inner, None, Some(qual));
        op.open(&mut ctx).unwrap();
        let mut n = 0;
        while op.next(&mut ctx).unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 10);
    }

    #[test]
    fn empty_outer_short_circuits() {
        let (c, mut fm, mut ctx) = setup();
        let pred = Expr::col(0).lt(Expr::lit(0));
        let outer = Box::new(SeqScanOp::new(&c, &mut fm, "orders", Some(pred), None).unwrap());
        let inner = Box::new(SeqScanOp::new(&c, &mut fm, "orders", None, None).unwrap());
        let mut op = NestLoopOp::new(&mut fm, outer, inner, None, None);
        op.open(&mut ctx).unwrap();
        assert!(op.next(&mut ctx).unwrap().is_none());
    }
}
