//! Simulation-level integration: determinism, headline shapes from the
//! paper (Query 1 buffered wins, Query 2 does not, misses scale ∝ 1/B),
//! and machine ablations (a big-enough L1i removes the thrashing).

use bufferdb::prelude::*;
use bufferdb::tpch::{self, queries};

fn stats_of(plan: &PlanNode, catalog: &Catalog, cfg: &MachineConfig) -> ExecStats {
    let (_, stats, _) = execute_query(plan, catalog, cfg, &QueryOpts::new())
        .into_result()
        .unwrap();
    stats
}

fn buffered_q1(catalog: &bufferdb::storage::Catalog, size: usize) -> PlanNode {
    let plan = queries::paper_query1(catalog).unwrap();
    let PlanNode::Aggregate {
        input,
        group_by,
        aggs,
    } = plan
    else {
        panic!()
    };
    PlanNode::Aggregate {
        input: Box::new(PlanNode::Buffer { input, size }),
        group_by,
        aggs,
    }
}

#[test]
fn execution_is_deterministic() {
    let catalog = tpch::generate_catalog(0.001, 21);
    let machine = MachineConfig::pentium4_like();
    let plan = queries::paper_query1(&catalog).unwrap();
    let a = stats_of(&plan, &catalog, &machine);
    let b = stats_of(&plan, &catalog, &machine);
    assert_eq!(a.counters, b.counters, "identical runs, identical counters");
}

#[test]
fn query1_buffering_wins_query2_does_not() {
    let catalog = tpch::generate_catalog(0.002, 21);
    let machine = MachineConfig::pentium4_like();
    let cfg = RefineConfig::default();

    let q1 = queries::paper_query1(&catalog).unwrap();
    let q1_ref = refine_plan(&q1, &catalog, &cfg);
    let o1 = stats_of(&q1, &catalog, &machine);
    let b1 = stats_of(&q1_ref, &catalog, &machine);
    assert!(b1.seconds() < o1.seconds(), "Q1 buffered must win");
    assert!(
        (b1.counters.l1i_misses as f64) < 0.5 * o1.counters.l1i_misses as f64,
        "Q1 L1i misses must drop by more than half: {} -> {}",
        o1.counters.l1i_misses,
        b1.counters.l1i_misses
    );

    // Q2: forcing a buffer where refinement declines must not help.
    let q2 = queries::paper_query2(&catalog).unwrap();
    let PlanNode::Aggregate {
        input,
        group_by,
        aggs,
    } = q2.clone()
    else {
        panic!()
    };
    let q2_forced = PlanNode::Aggregate {
        input: Box::new(PlanNode::Buffer { input, size: 100 }),
        group_by,
        aggs,
    };
    let o2 = stats_of(&q2, &catalog, &machine);
    let b2 = stats_of(&q2_forced, &catalog, &machine);
    assert!(
        b2.seconds() >= o2.seconds() * 0.995,
        "Q2 buffering must not meaningfully win: {} vs {}",
        b2.seconds(),
        o2.seconds()
    );
}

#[test]
fn miss_reduction_scales_inversely_with_buffer_size() {
    // §7.4: "The number of reduced trace cache misses is roughly
    // proportional to 1/buffersize", flattening past ~100.
    let catalog = tpch::generate_catalog(0.002, 21);
    let machine = MachineConfig::pentium4_like();
    let misses = |size: usize| {
        let s = stats_of(&buffered_q1(&catalog, size), &catalog, &machine);
        s.counters.l1i_misses
    };
    let m1 = misses(1);
    let m10 = misses(10);
    let m100 = misses(100);
    let m1000 = misses(1000);
    assert!(m10 < m1 / 4, "size 10 ≪ size 1: {m10} vs {m1}");
    assert!(m100 < m10, "size 100 < size 10");
    // Beyond ~100 there is "only a small incentive to make it bigger".
    let gain_10_100 = m10 as f64 / m100 as f64;
    let gain_100_1000 = m100 as f64 / m1000.max(1) as f64;
    assert!(
        gain_10_100 > gain_100_1000,
        "diminishing returns: {gain_10_100} vs {gain_100_1000}"
    );
}

#[test]
fn larger_l1i_removes_thrashing() {
    let catalog = tpch::generate_catalog(0.002, 21);
    let plan = queries::paper_query1(&catalog).unwrap();
    let small = MachineConfig::pentium4_like();
    let big = MachineConfig::large_l1i();
    let s = stats_of(&plan, &catalog, &small);
    let b = stats_of(&plan, &catalog, &big);
    assert!(
        b.counters.l1i_misses * 10 < s.counters.l1i_misses,
        "32 KB L1i must eliminate Query 1 thrashing: {} vs {}",
        b.counters.l1i_misses,
        s.counters.l1i_misses
    );
}

#[test]
fn buffering_reduces_itlb_misses() {
    let catalog = tpch::generate_catalog(0.002, 21);
    let machine = MachineConfig::pentium4_like();
    let plan = queries::paper_query1(&catalog).unwrap();
    let refined = refine_plan(&plan, &catalog, &RefineConfig::default());
    let o = stats_of(&plan, &catalog, &machine);
    let b = stats_of(&refined, &catalog, &machine);
    assert!(
        b.counters.itlb_misses < o.counters.itlb_misses,
        "{} vs {}",
        b.counters.itlb_misses,
        o.counters.itlb_misses
    );
}

#[test]
fn instruction_counts_nearly_identical() {
    // Table 4: "Both the original and buffered plans have almost the same
    // number (less than 1% difference) of instructions executed."
    let catalog = tpch::generate_catalog(0.002, 21);
    let machine = MachineConfig::pentium4_like();
    let plan = queries::paper_query1(&catalog).unwrap();
    let refined = refine_plan(&plan, &catalog, &RefineConfig::default());
    let o = stats_of(&plan, &catalog, &machine);
    let b = stats_of(&refined, &catalog, &machine);
    let ratio = b.counters.instructions as f64 / o.counters.instructions as f64;
    assert!((0.99..=1.01).contains(&ratio), "instruction ratio {ratio}");
}

#[test]
fn wall_clock_is_recorded() {
    let catalog = tpch::generate_catalog(0.001, 21);
    let machine = MachineConfig::pentium4_like();
    let plan = queries::paper_query2(&catalog).unwrap();
    let s = stats_of(&plan, &catalog, &machine);
    assert!(s.wall.as_nanos() > 0);
    assert!(s.rows == 1);
}
