//! Multi-query server correctness: concurrent queries on the shared
//! work-stealing pool must produce exactly the standalone executor's
//! results, conserve per-query counters (including the cross-query L1i
//! interference bucket), and contain faults without poisoning the pool.

use bufferdb::prelude::*;
use bufferdb::tpch::queries::JoinMethod;
use bufferdb::tpch::{self, queries};
use std::sync::Arc;
use std::time::Duration;

fn catalog() -> Catalog {
    tpch::generate_catalog(0.002, 7)
}

/// A mixed bag of plans: serial and parallelized, scans through joins.
fn suite(catalog: &Catalog, lanes: usize) -> Vec<(&'static str, PlanNode)> {
    let base = vec![
        ("paper q1", queries::paper_query1(catalog).unwrap()),
        ("paper q2", queries::paper_query2(catalog).unwrap()),
        ("tpch q1", queries::tpch_q1(catalog).unwrap()),
        ("tpch q6", queries::tpch_q6(catalog).unwrap()),
    ];
    base.into_iter()
        .map(|(name, plan)| (name, parallelize_plan(&plan, catalog, lanes).unwrap()))
        .collect()
}

/// Order-normalized row fingerprints (multiset compare, bit-exact rows).
fn normalized(rows: &[Tuple]) -> Vec<String> {
    let mut v: Vec<String> = rows.iter().map(|t| format!("{t}")).collect();
    v.sort();
    v
}

fn solo_rows(plan: &PlanNode, catalog: &Catalog, lanes: usize) -> Vec<String> {
    let opts = QueryOpts::new().threads(lanes);
    let (rows, _, _) = execute_query(plan, catalog, &MachineConfig::pentium4_like(), &opts)
        .into_result()
        .unwrap();
    normalized(&rows)
}

fn assert_conserved(name: &str, out: &QueryOutcome) {
    let c = out.stats().counters;
    assert!(
        c.l1i_cross_misses <= c.l1i_misses,
        "{name}: cross-query L1i misses must be a subset of L1i misses \
         ({} > {})",
        c.l1i_cross_misses,
        c.l1i_misses
    );
    let profile = out.profile().expect("profiling was requested");
    assert_eq!(
        profile.total, c,
        "{name}: profile total must equal the query's assembled counters"
    );
    assert_eq!(
        profile.sum_op_counters(),
        c,
        "{name}: per-operator counters must sum exactly to the query total"
    );
}

/// N concurrent queries on pools of {1, 2, 7} workers: every query's rows
/// are bit-identical to a standalone run of the same plan, and every
/// query's counters conserve exactly — including the `l1i_cross_misses`
/// interference bucket staying a subset of total L1i misses.
#[test]
fn concurrent_queries_match_solo_and_conserve_counters() {
    let catalog = catalog();
    let lanes = 2;
    let plans = suite(&catalog, lanes);
    let expected: Vec<Vec<String>> = plans
        .iter()
        .map(|(_, plan)| solo_rows(plan, &catalog, lanes))
        .collect();
    for workers in [1usize, 2, 7] {
        let server = Server::new(ServerConfig::new(
            workers,
            workers.max(2),
            MachineConfig::pentium4_like(),
        ));
        let opts = QueryOpts::new().profile(true);
        // Two waves, so every machine has another query's residue.
        for wave in 0..2 {
            let tickets: Vec<_> = plans
                .iter()
                .map(|(name, plan)| {
                    let spec = SubmitSpec::new(plan, &catalog).opts(opts.clone());
                    (*name, server.submit(spec).expect("submit"))
                })
                .collect();
            for (i, (name, ticket)) in tickets.into_iter().enumerate() {
                let out = ticket.wait();
                assert!(
                    out.error().is_none(),
                    "{name} (wave {wave}, {workers} workers): {:?}",
                    out.error()
                );
                assert_eq!(
                    normalized(out.rows()),
                    expected[i],
                    "{name} (wave {wave}, {workers} workers): rows differ from solo run"
                );
                assert_conserved(name, &out);
            }
        }
        let stats = server.stats();
        assert_eq!(stats.submitted, 2 * plans.len() as u64);
        assert_eq!(stats.completed, 2 * plans.len() as u64);
        assert_eq!(stats.failed, 0);
        assert!(stats.units > 0, "exchange phases must run through the pool");
    }
}

/// A query that faults (typed error and injected panic) or times out
/// mid-stream must fail alone: concurrent and subsequent queries on the
/// same pool still run to the correct result.
#[test]
fn faulted_query_does_not_poison_the_pool() {
    let catalog = catalog();
    let lanes = 2;
    let plans = suite(&catalog, lanes);
    let (victim_name, victim) = &plans[0];
    let server = Server::new(ServerConfig::new(2, 3, MachineConfig::pentium4_like()));
    let opts = QueryOpts::new().profile(true);
    for mode in [FaultMode::Error, FaultMode::Panic] {
        // Arm a mid-stream fault on the victim only; its registry is not
        // shared with the healthy queries.
        let faults = Arc::new(FaultRegistry::new());
        faults.arm(
            bufferdb::core::fault::EXCHANGE_MORSEL,
            Trigger::at_row(1),
            mode,
        );
        let bad = server
            .submit(SubmitSpec::new(victim, &catalog).opts(opts.clone().faults(faults)))
            .expect("submit victim");
        let healthy: Vec<_> = plans
            .iter()
            .map(|(name, plan)| {
                let spec = SubmitSpec::new(plan, &catalog).opts(opts.clone());
                (*name, server.submit(spec).unwrap())
            })
            .collect();
        let bad_out = bad.wait();
        assert!(
            bad_out.error().is_some(),
            "{victim_name}: armed {mode:?} fault must surface as an error"
        );
        for (name, ticket) in healthy {
            let out = ticket.wait();
            assert!(
                out.error().is_none(),
                "{name} alongside a {mode:?}-faulted query: {:?}",
                out.error()
            );
            assert_conserved(name, &out);
        }
    }
    // Cancellation (as an already-expired timeout, so it deterministically
    // lands mid-stream) behaves the same way.
    let cancelled = server
        .submit(SubmitSpec::new(victim, &catalog).opts(QueryOpts::new().timeout(Duration::ZERO)))
        .expect("submit cancelled");
    let out = cancelled.wait();
    assert!(
        matches!(out.error(), Some(DbError::Cancelled(_))),
        "expired timeout must cancel: {:?}",
        out.error()
    );
    let (name, plan) = &plans[1];
    let after = server
        .submit(SubmitSpec::new(plan, &catalog).opts(opts.clone()))
        .unwrap()
        .wait();
    assert!(
        after.error().is_none(),
        "{name} after cancel: {:?}",
        after.error()
    );
    assert_eq!(normalized(after.rows()), solo_rows(plan, &catalog, lanes));
    assert!(server.stats().failed >= 3);
}

/// `workers = 1` means one core of simulated compute, period. The session
/// core absorbs the exchange phases inline, so a single-worker server must
/// still complete parallel plans correctly — and must take strictly longer
/// than a two-worker server (which used to be impossible to observe: the
/// old sizing gave workers=1 a hidden pool core, making it a secret
/// workers=2).
#[test]
fn virtual_server_workers_one_runs_on_one_core() {
    let catalog = catalog();
    let lanes = 2;
    let plans = suite(&catalog, lanes);
    let makespan = |workers: usize| {
        let mut vs = VirtualServer::new(ServerConfig::new(
            workers,
            2,
            MachineConfig::pentium4_like(),
        ));
        for (_, plan) in &plans {
            vs.submit(SubmitSpec::new(plan, &catalog)).unwrap();
        }
        let done = vs.drain();
        assert_eq!(done.len(), plans.len());
        for c in &done {
            let (name, plan) = &plans[c.id as usize % plans.len()];
            assert!(
                c.outcome.error().is_none(),
                "{name}: {:?}",
                c.outcome.error()
            );
            assert_eq!(
                normalized(c.outcome.rows()),
                solo_rows(plan, &catalog, lanes),
                "{name} on a {workers}-worker virtual server: rows differ"
            );
        }
        let stats = vs.stats();
        assert!(stats.units > 0, "exchange phases must still run");
        done.iter().map(|c| c.done_ns).max().unwrap()
    };
    let one = makespan(1);
    let two = makespan(2);
    assert!(
        one > two,
        "one configured core must be strictly slower than two \
         (workers=1 makespan {one} ns vs workers=2 makespan {two} ns)"
    );
}

/// The virtual twin is bit-for-bit deterministic: identical submissions
/// yield identical per-query counters, timelines, and scheduler stats —
/// and concurrent streams show real cross-query L1i interference.
#[test]
fn virtual_server_is_deterministic_and_attributes_interference() {
    let catalog = catalog();
    let lanes = 2;
    let plans = suite(&catalog, lanes);
    let run = || {
        let mut vs = VirtualServer::new(ServerConfig::new(4, 4, MachineConfig::pentium4_like()));
        let opts = QueryOpts::new().profile(true);
        for _ in 0..2 {
            for (_, plan) in &plans {
                vs.submit(SubmitSpec::new(plan, &catalog).opts(opts.clone()))
                    .expect("submit");
            }
        }
        let done = vs.drain();
        let stats = vs.stats();
        (done, stats)
    };
    let (a, stats_a) = run();
    let (b, stats_b) = run();
    assert_eq!(a.len(), 2 * plans.len());
    assert_eq!(stats_a, stats_b, "scheduler stats must be reproducible");
    let mut cross_total = 0u64;
    for (qa, qb) in a.iter().zip(&b) {
        assert_eq!(qa.id, qb.id);
        assert_eq!(
            qa.outcome.stats().counters,
            qb.outcome.stats().counters,
            "query {}: counters must be bit-identical across runs",
            qa.id
        );
        assert_eq!((qa.start_ns, qa.done_ns), (qb.start_ns, qb.done_ns));
        assert!(qa.start_ns >= qa.arrival_ns && qa.done_ns > qa.start_ns);
        let (name, plan) = &plans[qa.id as usize % plans.len()];
        assert!(
            qa.outcome.error().is_none(),
            "{name}: {:?}",
            qa.outcome.error()
        );
        assert_eq!(
            normalized(qa.outcome.rows()),
            solo_rows(plan, &catalog, lanes),
            "{name}: virtual-server rows differ from solo run"
        );
        assert_conserved(name, &qa.outcome);
        cross_total += qa.outcome.stats().counters.l1i_cross_misses;
    }
    assert!(
        cross_total > 0,
        "concurrent streams on shared cores must show cross-query L1i misses"
    );
}

/// More concurrent query *streams* ⇒ more cross-query interference. Each
/// stream is a client repeating its own query: one stream keeps its code
/// warm in the shared text section (near-zero cross misses), while S
/// streams time-share the session core with *distinct operator families*
/// whose combined footprint overflows the L1i, so every quantum switch
/// evicts another stream's lines. The suite is chosen for that diversity —
/// streams running near-identical plans share text and interfere little,
/// which is correct and exactly why each added stream here brings a new
/// operator mix (aggregate → hash join → sort/merge → semi-join).
#[test]
fn virtual_server_interference_grows_with_streams() {
    let catalog = catalog();
    let lanes = 2;
    let plans: Vec<(&'static str, PlanNode)> = vec![
        ("paper q1", queries::paper_query1(&catalog).unwrap()),
        (
            "paper q3 hash",
            queries::paper_query3(&catalog, JoinMethod::HashJoin).unwrap(),
        ),
        (
            "paper q3 merge",
            queries::paper_query3(&catalog, JoinMethod::MergeJoin).unwrap(),
        ),
        ("tpch q12", queries::tpch_q12(&catalog).unwrap()),
    ];
    let plans: Vec<(&'static str, PlanNode)> = plans
        .into_iter()
        .map(|(name, plan)| (name, parallelize_plan(&plan, &catalog, lanes).unwrap()))
        .collect();
    // S streams × 3 rounds, round-robin submission, slots = S, on a pool
    // wider than any S so admitted queries share the free workers.
    let cross_at = |streams: usize| {
        let mut vs = VirtualServer::new(ServerConfig::new(
            6,
            streams,
            MachineConfig::pentium4_like(),
        ));
        for _ in 0..3 {
            for (_, plan) in plans.iter().take(streams) {
                vs.submit(SubmitSpec::new(plan, &catalog)).unwrap();
            }
        }
        vs.drain()
            .iter()
            .map(|c| c.outcome.stats().counters.l1i_cross_misses)
            .sum::<u64>()
    };
    let c1 = cross_at(1);
    let c2 = cross_at(2);
    let c4 = cross_at(4);
    assert!(
        c1 < c2 && c2 < c4,
        "cross-query L1i misses must grow with stream count: \
         1 stream = {c1}, 2 streams = {c2}, 4 streams = {c4}"
    );
}
