//! Executor-mode equivalence: the push backend must be a drop-in
//! replacement for the pull backends. Every query in the TPC-H mix, at
//! every worker count, must produce **bit-identical rows in identical
//! order** under pull, buffered pull, push, and auto mode selection;
//! push-mode profiles must conserve counters exactly; and faults and
//! cancellation must surface identically through the shared sites.

use bufferdb::core::fault;
use bufferdb::prelude::*;
use bufferdb::tpch::{self, queries};
use std::time::Duration;

const MODES: [ExecModePolicy; 4] = [
    ExecModePolicy::Pull,
    ExecModePolicy::BufferedPull,
    ExecModePolicy::Push,
    ExecModePolicy::Auto,
];

fn catalog() -> Catalog {
    tpch::generate_catalog(0.002, 7)
}

/// The showdown mix: scans, filtered aggregation, and a join.
fn suite(catalog: &Catalog) -> Vec<(&'static str, PlanNode)> {
    vec![
        ("paper q1", queries::paper_query1(catalog).unwrap()),
        ("paper q2", queries::paper_query2(catalog).unwrap()),
        ("tpch q1", queries::tpch_q1(catalog).unwrap()),
        ("tpch q6", queries::tpch_q6(catalog).unwrap()),
    ]
}

fn db(mode: ExecModePolicy, workers: usize) -> Database {
    // `generate_catalog` is seeded, so every database sees identical data.
    let mut db = Database::open(catalog(), MachineConfig::pentium4_like()).with_exec_mode(mode);
    db.set_threads(workers);
    db
}

/// Rows in execution order, bit-exact — deliberately *not* sorted: push
/// must reproduce the pull backend's row order, not just its multiset.
fn exact_rows(out: QueryOutcome) -> Vec<String> {
    let (rows, _, _) = out.into_result().expect("query must succeed");
    rows.iter().map(|t| format!("{t}")).collect()
}

fn push_count(p: &PlanNode) -> usize {
    let own = usize::from(matches!(p, PlanNode::PushPipeline { .. }));
    own + p.children().iter().map(|c| push_count(c)).sum::<usize>()
}

/// Every mode, every query, at 1/2/7 workers: rows are bit-identical and
/// in identical order to the pull baseline. Also guards against a vacuous
/// pass: push mode must actually have fused pipelines into the plans.
#[test]
fn all_modes_produce_bit_identical_rows_at_every_worker_count() {
    for workers in [1usize, 2, 7] {
        let reference = db(ExecModePolicy::Pull, workers);
        let expected: Vec<(&str, Vec<String>)> = suite(reference.catalog())
            .into_iter()
            .map(|(name, plan)| {
                let prepared = reference.prepare(&plan).unwrap();
                (name, exact_rows(prepared.execute()))
            })
            .collect();
        for mode in MODES {
            if mode == ExecModePolicy::Pull {
                continue;
            }
            let candidate = db(mode, workers);
            let mut fused = 0usize;
            for ((name, plan), (_, want)) in suite(candidate.catalog()).into_iter().zip(&expected) {
                let prepared = candidate.prepare(&plan).unwrap();
                fused += push_count(&prepared.plan());
                let got = exact_rows(prepared.execute());
                assert_eq!(
                    &got,
                    want,
                    "{name} x{workers} under {} diverges from pull",
                    mode.label()
                );
            }
            if mode == ExecModePolicy::Push {
                assert!(
                    fused > 0,
                    "push mode x{workers} fused nothing: equivalence is vacuous"
                );
            }
        }
    }
}

/// Push-mode profiles conserve exactly: the assembled query counters equal
/// the profile total, and per-operator counters sum to that total — the
/// fused pipelines' work is fully attributed, never dropped or doubled.
#[test]
fn push_mode_profiles_conserve_counters() {
    for workers in [1usize, 2] {
        let database = db(ExecModePolicy::Push, workers);
        for (name, plan) in suite(database.catalog()) {
            let prepared = database.prepare(&plan).unwrap();
            let out = prepared.execute_opts(&QueryOpts::new().profile(true));
            assert!(
                out.error().is_none(),
                "{name} x{workers}: {:?}",
                out.error()
            );
            let c = out.stats().counters;
            let profile = out.profile().expect("profiling was requested");
            assert_eq!(
                profile.total, c,
                "{name} x{workers}: profile total must equal query counters"
            );
            assert_eq!(
                profile.sum_op_counters(),
                c,
                "{name} x{workers}: per-operator counters must sum to the total"
            );
        }
    }
}

const CHAOS_ROWS: i64 = 2000;

fn chaos_catalog() -> Catalog {
    let c = Catalog::new();
    let mut big = TableBuilder::new(
        "big",
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Int),
        ]),
    );
    for i in 0..CHAOS_ROWS {
        big.push(Tuple::new(vec![Datum::Int(i), Datum::Int(i * 3 % 97)]));
    }
    c.add_table(big);
    c
}

fn chaos_db(mode: ExecModePolicy) -> Database {
    Database::open(chaos_catalog(), MachineConfig::pentium4_like()).with_exec_mode(mode)
}

fn scan() -> PlanNode {
    PlanNode::SeqScan {
        table: "big".into(),
        predicate: None,
        projection: None,
    }
}

/// A plan guaranteed to pass through `site` in both executor backends.
fn chaos_plan(site: &str) -> PlanNode {
    match site {
        fault::SEQSCAN_NEXT => PlanNode::Filter {
            input: Box::new(scan()),
            predicate: Expr::col(0).lt(Expr::lit(CHAOS_ROWS)),
        },
        fault::HASHJOIN_BUILD => PlanNode::HashJoin {
            probe: Box::new(scan()),
            build: Box::new(scan()),
            probe_key: 0,
            build_key: 0,
        },
        other => panic!("no chaos plan for site {other:?}"),
    }
}

/// The fault sites are *shared* between backends: arming a site fails a
/// push-mode query with the identical typed error a pull-mode query gets,
/// and both recover to the full, identical result on the next run.
#[test]
fn armed_faults_fail_identically_in_pull_and_push_mode() {
    for site in [fault::SEQSCAN_NEXT, fault::HASHJOIN_BUILD] {
        let plan = chaos_plan(site);
        let mut clean: Vec<Vec<String>> = Vec::new();
        for mode in [ExecModePolicy::Pull, ExecModePolicy::Push] {
            let database = chaos_db(mode);
            let prepared = database.prepare(&plan).unwrap();
            if mode == ExecModePolicy::Push {
                assert!(
                    push_count(&prepared.plan()) > 0,
                    "{site}: chaos plan must actually fuse under push"
                );
            }
            database
                .session()
                .faults()
                .arm(site, Trigger::at_row(2), FaultMode::Error);
            let out = prepared.execute();
            assert!(
                matches!(out.error(), Some(DbError::FaultInjected(_))),
                "{site} under {}: {:?}",
                mode.label(),
                out.error()
            );
            let recovered = prepared.execute();
            assert!(
                recovered.error().is_none(),
                "{site}: {:?}",
                recovered.error()
            );
            clean.push(exact_rows(recovered));
        }
        assert_eq!(
            clean[0], clean[1],
            "{site}: post-fault recovery rows diverge between backends"
        );
    }
}

/// Cancellation cuts both backends at a granule boundary with the same
/// typed error, and partial push-mode profiles still conserve.
#[test]
fn cancellation_behaves_identically_in_pull_and_push_mode() {
    let plan = chaos_plan(fault::HASHJOIN_BUILD);
    for mode in [ExecModePolicy::Pull, ExecModePolicy::Push] {
        let mut database = chaos_db(mode);
        database.set_timeout(Some(Duration::ZERO));
        let prepared = database.prepare(&plan).unwrap();
        let out = prepared.execute_opts(&QueryOpts::new().profile(true));
        assert!(
            matches!(out.error(), Some(DbError::Cancelled(_))),
            "{} mode: {:?}",
            mode.label(),
            out.error()
        );
        let profile = out.profile().expect("cancellation unwinds cleanly");
        assert_eq!(
            profile.sum_op_counters(),
            out.stats().counters,
            "{} mode: partial profile after cancel does not conserve",
            mode.label()
        );
        database.set_timeout(None);
        let clean = database.prepare(&plan).unwrap().execute();
        assert!(clean.error().is_none(), "{:?}", clean.error());
        assert_eq!(clean.rows().len(), CHAOS_ROWS as usize);
    }
}
