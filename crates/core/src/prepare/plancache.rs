//! The bounded, LRU plan cache behind [`crate::prepare::Database`].
//!
//! Entries are shared [`CacheEntry`] handles: a [`crate::prepare::PreparedQuery`]
//! keeps its `Arc` alive even if the cache later evicts the slot, so an
//! in-flight prepared query never dereferences a dangling plan, and an
//! adaptation installed through one handle is visible to every other holder
//! of the same entry.
//!
//! Invalidation is correct by construction — the catalog stats epoch is part
//! of the fingerprint, so a lookup after an epoch bump can only miss (see
//! [`crate::prepare::fingerprint`]). [`PlanCache::evict_stale`] additionally
//! sweeps entries prepared under older epochs, which bounds memory and makes
//! invalidations observable in [`CacheStats`].

use super::adapt::AdaptState;
use super::fingerprint::PlanFingerprint;
use crate::plan::PlanNode;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Default entry capacity of a [`PlanCache`].
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One cached prepared plan.
///
/// The *base* plan (parallelized, pre-refinement) is immutable; the
/// *physical* plan (what executions actually run) starts as the statically
/// refined base and is replaced in place by the adaptive loop, bumping
/// [`CacheEntry::generation`].
#[derive(Debug)]
pub struct CacheEntry {
    fingerprint: PlanFingerprint,
    epoch: u64,
    base: PlanNode,
    physical: Mutex<PlanNode>,
    generation: AtomicU64,
    adapt: Mutex<AdaptState>,
    last_used: AtomicU64,
    hits: AtomicU64,
}

impl CacheEntry {
    fn new(fingerprint: PlanFingerprint, epoch: u64, base: PlanNode, physical: PlanNode) -> Self {
        CacheEntry {
            fingerprint,
            epoch,
            base,
            physical: Mutex::new(physical),
            generation: AtomicU64::new(0),
            adapt: Mutex::new(AdaptState::default()),
            last_used: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// The fingerprint this entry was stored under.
    pub fn fingerprint(&self) -> PlanFingerprint {
        self.fingerprint
    }

    /// The catalog stats epoch the entry was prepared under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The parallelized, pre-refinement plan adaptation re-refines from.
    pub fn base_plan(&self) -> &PlanNode {
        &self.base
    }

    /// Snapshot of the physical plan executions currently run.
    pub fn physical_plan(&self) -> PlanNode {
        lock(&self.physical).clone()
    }

    /// How many times adaptation has replaced the physical plan.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// How many cache lookups returned this entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Snapshot of the adaptive-refinement state.
    pub fn adapt_state(&self) -> AdaptState {
        lock(&self.adapt).clone()
    }

    /// Install an adapted physical plan, bumping the generation, and persist
    /// the adaptation state that produced it.
    pub(crate) fn install(&self, plan: PlanNode, state: AdaptState) {
        *lock(&self.physical) = plan;
        *lock(&self.adapt) = state;
        self.generation.fetch_add(1, Ordering::AcqRel);
    }

    /// Persist adaptation state without changing the plan (e.g. a decayed
    /// capacity that produced no new placement).
    pub(crate) fn store_adapt_state(&self, state: AdaptState) {
        *lock(&self.adapt) = state;
    }
}

/// Monotonic adaptive-loop counters, snapshotted by
/// [`PlanCache::adapt_stats`].
///
/// The adaptive executor in [`crate::prepare::PreparedQuery`] bumps these
/// alongside the flight-recorder instants it already emits, so long-running
/// drivers (the traffic observatory) can report install/validate/rollback/
/// freeze activity as cheap counter deltas without collecting traces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptStats {
    /// Adapted plans installed (generation bumps).
    pub installs: u64,
    /// Pending installs validated by a clean follow-up run.
    pub validations: u64,
    /// Installs regressed and rolled back.
    pub rollbacks: u64,
    /// Entries frozen after repeated rollbacks.
    pub freezes: u64,
}

/// Monotonic cache counters, snapshotted by [`PlanCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a cached entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries swept because their stats epoch went stale.
    pub invalidations: u64,
    /// Entries currently resident.
    pub entries: usize,
}

struct Inner {
    map: HashMap<u64, Arc<CacheEntry>>,
    /// Monotonic logical clock for LRU ordering.
    tick: u64,
}

impl Inner {
    fn empty() -> Self {
        Inner {
            map: HashMap::new(),
            tick: 0,
        }
    }
}

/// A bounded, least-recently-used cache of prepared physical plans.
///
/// All methods take `&self`; the cache is safe to share across threads.
/// The map is split into N independently locked shards keyed by
/// fingerprint, so concurrent hit-path lookups from many sessions contend
/// only when they land on the same shard ([`PlanCache::new`] keeps a single
/// shard — exact global LRU — for callers that want strict eviction order;
/// [`PlanCache::sharded`] trades per-shard LRU for ~N× hit-path
/// throughput under load, measured by `repro plancache`'s contention
/// microbench). Eviction scans the shard for the minimum use-tick —
/// O(entries/shard), fine at plan-cache capacities.
pub struct PlanCache {
    capacity: usize,
    /// Per-shard entry budgets. Budgets sum exactly to `capacity` (each at
    /// least 1): shard `i` gets `capacity / shards`, plus one of the
    /// `capacity % shards` remainder slots for the lowest-indexed shards.
    shard_budgets: Vec<usize>,
    shards: Vec<Mutex<Inner>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    adapt_installs: AtomicU64,
    adapt_validations: AtomicU64,
    adapt_rollbacks: AtomicU64,
    adapt_freezes: AtomicU64,
}

/// Default shard count of a [`PlanCache::default`].
pub const DEFAULT_CACHE_SHARDS: usize = 8;

impl Default for PlanCache {
    fn default() -> Self {
        Self::sharded(DEFAULT_CACHE_CAPACITY, DEFAULT_CACHE_SHARDS)
    }
}

impl PlanCache {
    /// A single-shard cache holding at most `capacity` entries (minimum 1),
    /// with exact global LRU eviction order.
    pub fn new(capacity: usize) -> Self {
        Self::sharded(capacity, 1)
    }

    /// A cache of `shards` independently locked shards with `capacity`
    /// total entries. Per-shard budgets sum exactly to `capacity` (the
    /// `capacity % shards` remainder goes to the lowest-indexed shards, one
    /// slot each, and every shard gets at least one slot — so `shards` is
    /// clamped to `capacity`). LRU order is per-shard; a pathological
    /// fingerprint distribution can evict from a hot shard while a cold one
    /// has room, which is the usual sharding trade for lock-contention
    /// relief on the hit path.
    pub fn sharded(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity);
        let base = capacity / shards;
        let extra = capacity % shards;
        PlanCache {
            capacity,
            shard_budgets: (0..shards).map(|i| base + usize::from(i < extra)).collect(),
            shards: (0..shards).map(|_| Mutex::new(Inner::empty())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            adapt_installs: AtomicU64::new(0),
            adapt_validations: AtomicU64::new(0),
            adapt_rollbacks: AtomicU64::new(0),
            adapt_freezes: AtomicU64::new(0),
        }
    }

    /// Maximum resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of independently locked shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a fingerprint lives in. The fingerprint is already a
    /// mixed 64-bit hash; fold the high bits in so shard selection is not
    /// just the low bits the map bucketing also uses.
    fn shard_for(&self, fp: PlanFingerprint) -> usize {
        let raw = fp.raw();
        ((raw ^ (raw >> 32)) % self.shards.len() as u64) as usize
    }

    /// Look up a fingerprint, counting a hit or miss and refreshing the
    /// entry's LRU position on a hit.
    pub fn lookup(&self, fp: PlanFingerprint) -> Option<Arc<CacheEntry>> {
        let mut inner = lock(&self.shards[self.shard_for(fp)]);
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get(&fp.raw()) {
            Some(entry) => {
                entry.last_used.store(tick, Ordering::Relaxed);
                entry.hits.fetch_add(1, Ordering::Relaxed);
                let entry = Arc::clone(entry);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a freshly prepared plan, evicting the least-recently-used
    /// entry if the cache is full. Returns the shared entry handle.
    ///
    /// If another thread inserted the same fingerprint in the meantime, the
    /// resident entry wins and is returned instead (last prepare is wasted
    /// work, never a split-brain cache).
    pub fn insert(
        &self,
        fp: PlanFingerprint,
        epoch: u64,
        base: PlanNode,
        physical: PlanNode,
    ) -> Arc<CacheEntry> {
        let shard = self.shard_for(fp);
        let mut inner = lock(&self.shards[shard]);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(existing) = inner.map.get(&fp.raw()) {
            existing.last_used.store(tick, Ordering::Relaxed);
            return Arc::clone(existing);
        }
        if inner.map.len() >= self.shard_budgets[shard] {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(&k, _)| k);
            if let Some(k) = victim {
                inner.map.remove(&k);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let entry = Arc::new(CacheEntry::new(fp, epoch, base, physical));
        entry.last_used.store(tick, Ordering::Relaxed);
        inner.map.insert(fp.raw(), Arc::clone(&entry));
        entry
    }

    /// Sweep entries prepared under a stats epoch older than
    /// `current_epoch`, returning how many were invalidated. (Such entries
    /// are already unreachable through lookups — the epoch is in the key —
    /// so this reclaims their memory and counts them.)
    pub fn evict_stale(&self, current_epoch: u64) -> usize {
        let mut swept = 0;
        for shard in &self.shards {
            let mut inner = lock(shard);
            let before = inner.map.len();
            inner.map.retain(|_, e| e.epoch == current_epoch);
            swept += before - inner.map.len();
        }
        self.invalidations
            .fetch_add(swept as u64, Ordering::Relaxed);
        swept
    }

    /// Drop every entry (counters are preserved). Lets benchmarks re-measure
    /// the miss path repeatably.
    pub fn clear(&self) {
        for shard in &self.shards {
            lock(shard).map.clear();
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).map.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot every resident entry, ordered by raw fingerprint for
    /// deterministic iteration. Backs the `sys.plan_cache` table.
    pub fn entries(&self) -> Vec<Arc<CacheEntry>> {
        let mut out: Vec<Arc<CacheEntry>> = self
            .shards
            .iter()
            .flat_map(|s| lock(s).map.values().cloned().collect::<Vec<_>>())
            .collect();
        out.sort_by_key(|e| e.fingerprint().raw());
        out
    }

    /// Snapshot the monotonic counters plus current occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Snapshot the monotonic adaptive-loop counters.
    pub fn adapt_stats(&self) -> AdaptStats {
        AdaptStats {
            installs: self.adapt_installs.load(Ordering::Relaxed),
            validations: self.adapt_validations.load(Ordering::Relaxed),
            rollbacks: self.adapt_rollbacks.load(Ordering::Relaxed),
            freezes: self.adapt_freezes.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn note_adapt_install(&self) {
        self.adapt_installs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_adapt_validate(&self) {
        self.adapt_validations.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_adapt_rollback(&self) {
        self.adapt_rollbacks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_adapt_freeze(&self) {
        self.adapt_freezes.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::super::fingerprint::fingerprint_plan;
    use super::*;
    use crate::refine::RefineConfig;
    use bufferdb_cachesim::MachineConfig;

    fn scan(table: &str) -> PlanNode {
        PlanNode::SeqScan {
            table: table.into(),
            predicate: None,
            projection: None,
        }
    }

    fn fp(table: &str, epoch: u64) -> PlanFingerprint {
        fingerprint_plan(
            &scan(table),
            &MachineConfig::pentium4_like(),
            1,
            epoch,
            &RefineConfig::default(),
        )
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = PlanCache::new(4);
        assert!(cache.lookup(fp("t", 0)).is_none());
        cache.insert(fp("t", 0), 0, scan("t"), scan("t"));
        assert!(cache.lookup(fp("t", 0)).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let cache = PlanCache::new(2);
        cache.insert(fp("a", 0), 0, scan("a"), scan("a"));
        cache.insert(fp("b", 0), 0, scan("b"), scan("b"));
        // Touch "a" so "b" is the LRU victim.
        assert!(cache.lookup(fp("a", 0)).is_some());
        cache.insert(fp("c", 0), 0, scan("c"), scan("c"));
        assert!(cache.lookup(fp("a", 0)).is_some(), "recently used survives");
        assert!(cache.lookup(fp("b", 0)).is_none(), "LRU entry evicted");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn stale_epoch_sweep_counts_invalidations() {
        let cache = PlanCache::new(4);
        cache.insert(fp("a", 0), 0, scan("a"), scan("a"));
        cache.insert(fp("b", 0), 0, scan("b"), scan("b"));
        cache.insert(fp("c", 1), 1, scan("c"), scan("c"));
        assert_eq!(cache.evict_stale(1), 2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn duplicate_insert_returns_resident_entry() {
        let cache = PlanCache::new(4);
        let a = cache.insert(fp("t", 0), 0, scan("t"), scan("t"));
        let b = cache.insert(fp("t", 0), 0, scan("t"), scan("u"));
        assert!(Arc::ptr_eq(&a, &b), "resident entry wins");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn entry_survives_eviction_via_arc() {
        let cache = PlanCache::new(1);
        let held = cache.insert(fp("a", 0), 0, scan("a"), scan("a"));
        cache.insert(fp("b", 0), 0, scan("b"), scan("b"));
        assert!(cache.lookup(fp("a", 0)).is_none());
        // The evicted entry's plan is still usable through the held handle.
        assert_eq!(held.physical_plan(), scan("a"));
    }

    #[test]
    fn sharded_cache_bounds_entries_and_still_hits() {
        let cache = PlanCache::sharded(8, 4);
        assert_eq!(cache.shard_count(), 4);
        assert_eq!(cache.capacity(), 8);
        let names: Vec<String> = (0..32).map(|i| format!("t{i}")).collect();
        for n in &names {
            cache.insert(fp(n, 0), 0, scan(n), scan(n));
        }
        // Per-shard budget is 8/4 = 2; whatever the fingerprint
        // distribution, residency never exceeds the total capacity.
        assert!(cache.len() <= 8, "len {} exceeds capacity", cache.len());
        // The most recent inserts are still resident in their shards.
        let resident = names
            .iter()
            .filter(|n| cache.lookup(fp(n, 0)).is_some())
            .count();
        assert_eq!(resident, cache.len());
        assert!(resident > 0);
        assert!(cache.stats().evictions >= 24);
    }

    #[test]
    fn sharded_budgets_conserve_total_capacity() {
        // capacity not divisible by shards: ceil-per-shard would allow
        // 8 × ceil(10/8) = 16 resident entries. The remainder distribution
        // must keep the worst case at exactly `capacity`.
        let cache = PlanCache::sharded(10, 8);
        assert_eq!(cache.capacity(), 10);
        assert_eq!(cache.shard_count(), 8);
        for i in 0..64 {
            let n = format!("t{i}");
            cache.insert(fp(&n, 0), 0, scan(&n), scan(&n));
        }
        assert!(
            cache.len() <= cache.capacity(),
            "len {} exceeds capacity {}",
            cache.len(),
            cache.capacity()
        );
        // More shards than capacity: every shard still needs ≥ 1 slot, so
        // the shard count is clamped down to the capacity.
        let tiny = PlanCache::sharded(3, 8);
        assert_eq!(tiny.shard_count(), 3);
        for i in 0..16 {
            let n = format!("u{i}");
            tiny.insert(fp(&n, 0), 0, scan(&n), scan(&n));
        }
        assert!(tiny.len() <= 3, "len {} exceeds capacity 3", tiny.len());
    }

    #[test]
    fn clear_preserves_counters() {
        let cache = PlanCache::new(4);
        cache.insert(fp("a", 0), 0, scan("a"), scan("a"));
        assert!(cache.lookup(fp("a", 0)).is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
    }
}
