//! Heap tables: rows in insertion order with simulated addresses.

use crate::stats::TableStats;
use bufferdb_types::{Schema, SchemaRef, Tuple};

/// Row identifier within one table (dense, 0-based).
pub type RowId = u32;

/// An immutable, memory-resident row heap.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: SchemaRef,
    rows: Vec<Tuple>,
    /// Simulated byte address of each row (sequential heap layout).
    addrs: Vec<u64>,
    /// Simulated width of each row in bytes.
    widths: Vec<u32>,
    stats: TableStats,
}

impl Table {
    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The row for `id`. Panics on out-of-range ids (row ids come from scans
    /// and index lookups over this same table).
    pub fn row(&self, id: RowId) -> &Tuple {
        &self.rows[id as usize]
    }

    /// Simulated address of row `id`.
    pub fn row_addr(&self, id: RowId) -> u64 {
        self.addrs[id as usize]
    }

    /// Simulated width in bytes of row `id`.
    pub fn row_width(&self, id: RowId) -> usize {
        self.widths[id as usize] as usize
    }

    /// All rows, in heap order.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Precomputed statistics ("optimizer estimates").
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Total simulated heap size in bytes.
    pub fn heap_bytes(&self) -> u64 {
        match (self.addrs.first(), self.addrs.last(), self.widths.last()) {
            (Some(first), Some(last), Some(w)) => last + *w as u64 - first,
            _ => 0,
        }
    }
}

/// Builds a [`Table`], assigning sequential simulated addresses.
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    schema: SchemaRef,
    rows: Vec<Tuple>,
}

impl TableBuilder {
    /// Start a table with the given name and schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        TableBuilder {
            name: name.into(),
            schema: schema.into_ref(),
            rows: Vec::new(),
        }
    }

    /// Append one row. Debug-asserts arity (generators are trusted; plans
    /// validate separately).
    pub fn push(&mut self, row: Tuple) {
        debug_assert_eq!(row.arity(), self.schema.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Append many rows.
    pub fn extend(&mut self, rows: impl IntoIterator<Item = Tuple>) {
        for r in rows {
            self.push(r);
        }
    }

    /// Number of rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Simulated heap bytes [`TableBuilder::build`] will lay out — the same
    /// per-row 16-byte-aligned widths, independent of the base address. Lets
    /// the catalog reserve an address range *before* building, without
    /// holding its allocator across the build.
    pub fn heap_bytes(&self) -> u64 {
        self.rows
            .iter()
            .map(|r| r.simulated_width().next_multiple_of(16) as u64)
            .sum()
    }

    /// Finish: lay rows out sequentially from `base_addr` (16-byte aligned
    /// slots, as a heap allocator would) and compute statistics.
    pub fn build(self, base_addr: u64) -> Table {
        let mut addrs = Vec::with_capacity(self.rows.len());
        let mut widths = Vec::with_capacity(self.rows.len());
        let mut addr = base_addr;
        for row in &self.rows {
            let w = row.simulated_width().next_multiple_of(16) as u32;
            addrs.push(addr);
            widths.push(w);
            addr += w as u64;
        }
        let stats = TableStats::compute(&self.schema, &self.rows);
        Table {
            name: self.name,
            schema: self.schema,
            rows: self.rows,
            addrs,
            widths,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bufferdb_types::{DataType, Datum, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::nullable("name", DataType::Str),
        ])
    }

    fn build_table(n: i64) -> Table {
        let mut b = TableBuilder::new("t", schema());
        for i in 0..n {
            b.push(Tuple::new(vec![
                Datum::Int(i),
                Datum::str(format!("row{i}")),
            ]));
        }
        b.build(0x1000)
    }

    #[test]
    fn rows_accessible_by_id() {
        let t = build_table(10);
        assert_eq!(t.row_count(), 10);
        assert_eq!(t.row(3).get(0).as_int(), Some(3));
        assert_eq!(t.name(), "t");
    }

    #[test]
    fn addresses_are_sequential_and_aligned() {
        let t = build_table(100);
        let mut prev_end = 0x1000;
        for id in 0..100u32 {
            let a = t.row_addr(id);
            assert_eq!(a, prev_end, "row {id} not contiguous");
            assert_eq!(a % 16, 0);
            prev_end = a + t.row_width(id) as u64;
        }
        assert_eq!(t.heap_bytes(), prev_end - 0x1000);
    }

    #[test]
    fn empty_table() {
        let t = TableBuilder::new("e", schema()).build(0);
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.heap_bytes(), 0);
        assert_eq!(t.stats().row_count, 0);
    }

    #[test]
    fn builder_extend_and_len() {
        let mut b = TableBuilder::new("t", schema());
        assert!(b.is_empty());
        b.extend((0..5).map(|i| Tuple::new(vec![Datum::Int(i), Datum::Null])));
        assert_eq!(b.len(), 5);
    }
}
