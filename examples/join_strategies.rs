//! The paper's Query 3 under all three join methods (§7.5): how buffering
//! interacts with nested-loop, hash and merge joins, and where the plan
//! refinement algorithm places buffers in each.
//!
//! ```sh
//! cargo run --release --example join_strategies [scale_factor]
//! ```

use bufferdb::prelude::*;
use bufferdb::tpch::{self, queries::JoinMethod};

fn main() -> Result<()> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.005);
    println!("generating TPC-H data at scale factor {scale}…");
    let catalog = tpch::generate_catalog(scale, 42);
    let machine = MachineConfig::pentium4_like();
    let refine_cfg = RefineConfig::default();

    let mut answers = Vec::new();
    for method in [
        JoinMethod::NestLoop,
        JoinMethod::HashJoin,
        JoinMethod::MergeJoin,
    ] {
        let plan = tpch::queries::paper_query3(&catalog, method)?;
        let refined = refine_plan(&plan, &catalog, &refine_cfg);
        let (rows, original, _) =
            execute_query(&plan, &catalog, &machine, &QueryOpts::new()).into_result()?;
        let (rows2, buffered, _) =
            execute_query(&refined, &catalog, &machine, &QueryOpts::new()).into_result()?;
        assert_eq!(format!("{}", rows[0]), format!("{}", rows2[0]));
        answers.push(format!("{}", rows[0]));

        println!("== {method:?} ==");
        println!("{}", explain(&refined, &catalog));
        println!(
            "modeled: {:.3}s -> {:.3}s ({:+.1}%), L1i misses {} -> {} ({:.0}% fewer), \
             mispredictions {} -> {}",
            original.seconds(),
            buffered.seconds(),
            100.0 * buffered.improvement_over(&original),
            original.counters.l1i_misses,
            buffered.counters.l1i_misses,
            100.0
                * (1.0
                    - buffered.counters.l1i_misses as f64
                        / original.counters.l1i_misses.max(1) as f64),
            original.counters.mispredictions,
            buffered.counters.mispredictions,
        );
        println!();
    }

    // All three methods are the same query: answers must agree.
    assert!(
        answers.windows(2).all(|w| w[0] == w[1]),
        "join methods disagree"
    );
    println!("all join methods return: {}", answers[0]);
    Ok(())
}
