//! Branch predictors with finite tables.
//!
//! The paper (§4) attributes mispredictions to two effects of long pipelines:
//! the branch-history hardware has finite capacity (512–4 K branches), and
//! interleaving operators mixes the branching patterns of shared code. A
//! gshare predictor captures both — distinct branches alias in one table and
//! a *global* history register is polluted when parent and child interleave
//! per tuple. A bimodal (per-address) predictor is provided for ablation.

/// Which predictor to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// Per-address two-bit counters.
    Bimodal,
    /// Global-history-xor-address two-bit counters (default).
    Gshare,
}

/// Common predictor interface: predict, then update with the real outcome.
pub trait BranchPredictor {
    /// Record one dynamic branch; returns `true` when the prediction was
    /// correct.
    fn predict_and_update(&mut self, site: u64, taken: bool) -> bool;

    /// Dynamic branches seen.
    fn branches(&self) -> u64;

    /// Mispredictions seen.
    fn mispredictions(&self) -> u64;
}

fn counter_predict(c: u8) -> bool {
    c >= 2
}

fn counter_update(c: u8, taken: bool) -> u8 {
    if taken {
        (c + 1).min(3)
    } else {
        c.saturating_sub(1)
    }
}

/// Two-bit saturating counters indexed by branch address.
#[derive(Debug, Clone)]
pub struct BimodalPredictor {
    table: Vec<u8>,
    mask: u64,
    branches: u64,
    mispredictions: u64,
}

impl BimodalPredictor {
    /// A predictor with `entries` two-bit counters (power of two),
    /// initialized weakly-taken.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two());
        BimodalPredictor {
            table: vec![2; entries],
            mask: (entries - 1) as u64,
            branches: 0,
            mispredictions: 0,
        }
    }

    fn index(&self, site: u64) -> usize {
        // Branch sites are 4-byte aligned at best; drop low bits then fold.
        (((site >> 2) ^ (site >> 14)) & self.mask) as usize
    }
}

impl BranchPredictor for BimodalPredictor {
    fn predict_and_update(&mut self, site: u64, taken: bool) -> bool {
        self.branches += 1;
        let idx = self.index(site);
        let predicted = counter_predict(self.table[idx]);
        self.table[idx] = counter_update(self.table[idx], taken);
        let correct = predicted == taken;
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    fn branches(&self) -> u64 {
        self.branches
    }

    fn mispredictions(&self) -> u64 {
        self.mispredictions
    }
}

/// Gshare: two-bit counters indexed by `address ⊕ global history`.
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    table: Vec<u8>,
    mask: u64,
    history: u64,
    history_mask: u64,
    branches: u64,
    mispredictions: u64,
}

impl GsharePredictor {
    /// A gshare predictor with `entries` counters and `history_bits` of
    /// global history.
    pub fn new(entries: usize, history_bits: u32) -> Self {
        assert!(entries.is_power_of_two());
        GsharePredictor {
            table: vec![2; entries],
            mask: (entries - 1) as u64,
            history: 0,
            history_mask: (1u64 << history_bits) - 1,
            branches: 0,
            mispredictions: 0,
        }
    }

    fn index(&self, site: u64) -> usize {
        ((((site >> 2) ^ (site >> 14)) ^ self.history) & self.mask) as usize
    }
}

impl BranchPredictor for GsharePredictor {
    fn predict_and_update(&mut self, site: u64, taken: bool) -> bool {
        self.branches += 1;
        let idx = self.index(site);
        let predicted = counter_predict(self.table[idx]);
        self.table[idx] = counter_update(self.table[idx], taken);
        self.history = ((self.history << 1) | taken as u64) & self.history_mask;
        let correct = predicted == taken;
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    fn branches(&self) -> u64 {
        self.branches
    }

    fn mispredictions(&self) -> u64 {
        self.mispredictions
    }
}

/// Build a predictor from a [`crate::BranchConfig`].
pub fn build_predictor(cfg: &crate::BranchConfig) -> Box<dyn BranchPredictor + Send> {
    match cfg.kind {
        PredictorKind::Bimodal => Box::new(BimodalPredictor::new(cfg.table_entries)),
        PredictorKind::Gshare => {
            Box::new(GsharePredictor::new(cfg.table_entries, cfg.history_bits))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_a_biased_branch() {
        let mut p = BimodalPredictor::new(64);
        for _ in 0..100 {
            p.predict_and_update(0x400, true);
        }
        // After warmup, always-taken is always predicted.
        assert!(p.mispredictions() <= 1);
    }

    #[test]
    fn bimodal_alternating_branch_mispredicts_heavily() {
        let mut p = BimodalPredictor::new(64);
        let mut taken = false;
        for _ in 0..100 {
            taken = !taken;
            p.predict_and_update(0x400, taken);
        }
        // A 2-bit counter cannot track strict alternation.
        assert!(p.mispredictions() >= 40, "got {}", p.mispredictions());
    }

    #[test]
    fn gshare_learns_alternation_via_history() {
        let mut p = GsharePredictor::new(1024, 8);
        let mut taken = false;
        for _ in 0..500 {
            taken = !taken;
            p.predict_and_update(0x400, taken);
        }
        // History disambiguates the two phases; late-run accuracy is high.
        assert!(p.mispredictions() < 50, "got {}", p.mispredictions());
    }

    #[test]
    fn gshare_interleaving_two_patterns_hurts() {
        // One branch site shared by two "operators" with opposite biases,
        // mirroring the paper's shared-function observation (§4).
        // Site A alternates (perfectly learnable through global history);
        // site B is data-dependent and effectively random. Interleaving
        // injects B's random outcomes into A's history, destroying A's
        // predictability; batched execution keeps A near-perfect.
        let noisy = |i: u64| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 63 == 0;
        let run = |interleaved: bool| {
            let mut p = GsharePredictor::new(256, 8);
            if interleaved {
                for i in 0..2000u64 {
                    p.predict_and_update(0x400, i % 2 == 0);
                    p.predict_and_update(0x800, noisy(i));
                }
            } else {
                for i in 0..2000u64 {
                    p.predict_and_update(0x400, i % 2 == 0);
                }
                for i in 0..2000u64 {
                    p.predict_and_update(0x800, noisy(i));
                }
            }
            p.mispredictions()
        };
        assert!(
            run(true) > run(false),
            "interleaved {} vs batched {}",
            run(true),
            run(false)
        );
    }

    #[test]
    fn counters_track_totals() {
        let mut p = BimodalPredictor::new(16);
        for i in 0..10u64 {
            p.predict_and_update(i * 4, i % 2 == 0);
        }
        assert_eq!(p.branches(), 10);
        assert!(p.mispredictions() <= 10);
    }

    #[test]
    fn build_predictor_dispatches() {
        let cfg = crate::BranchConfig {
            kind: PredictorKind::Bimodal,
            table_entries: 64,
            history_bits: 8,
        };
        let mut p = build_predictor(&cfg);
        p.predict_and_update(0, true);
        assert_eq!(p.branches(), 1);
    }
}
