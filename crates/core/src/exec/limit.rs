//! LIMIT operator.

use crate::arena::TupleSlot;
use crate::context::ExecContext;
use crate::exec::Operator;
use crate::footprint::{FootprintModel, OpKind};
use bufferdb_cachesim::CodeRegion;
use bufferdb_types::{Datum, Result, SchemaRef};

/// Limit operator: stops after `n` tuples. A tiny footprint — like the
/// buffer, it is a light-weight wrapper.
pub struct LimitOp {
    child: Box<dyn Operator>,
    limit: u64,
    produced: u64,
    schema: SchemaRef,
    code: CodeRegion,
}

impl LimitOp {
    /// Wrap `child`, producing at most `limit` tuples.
    pub fn new(fm: &mut FootprintModel, child: Box<dyn Operator>, limit: u64) -> Self {
        let schema = child.schema();
        LimitOp {
            child,
            limit,
            produced: 0,
            schema,
            code: fm.region_for(&OpKind::Limit),
        }
    }
}

impl Operator for LimitOp {
    fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn set_batch_hint(&mut self, n: usize) {
        self.child.set_batch_hint(n);
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.produced = 0;
        self.child.open(ctx)
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<TupleSlot>> {
        ctx.machine.exec_region(&mut self.code);
        if self.produced >= self.limit {
            return Ok(None);
        }
        match self.child.next(ctx)? {
            None => Ok(None),
            Some(slot) => {
                self.produced += 1;
                Ok(Some(slot))
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.child.close(ctx)
    }

    fn rescan(&mut self, ctx: &mut ExecContext, param: Option<&Datum>) -> Result<()> {
        self.child.rescan(ctx, param)?;
        self.produced = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::seqscan::SeqScanOp;
    use bufferdb_cachesim::MachineConfig;
    use bufferdb_storage::{Catalog, TableBuilder};
    use bufferdb_types::{DataType, Field, Schema, Tuple};

    fn setup(n: i64) -> (Catalog, FootprintModel, ExecContext) {
        let c = Catalog::new();
        let mut b = TableBuilder::new("t", Schema::new(vec![Field::new("k", DataType::Int)]));
        for i in 0..n {
            b.push(Tuple::new(vec![Datum::Int(i)]));
        }
        c.add_table(b);
        (
            c,
            FootprintModel::new(),
            ExecContext::new(MachineConfig::pentium4_like()),
        )
    }

    fn count(op: &mut dyn Operator, ctx: &mut ExecContext) -> usize {
        let mut n = 0;
        while op.next(ctx).unwrap().is_some() {
            n += 1;
        }
        n
    }

    #[test]
    fn limit_truncates() {
        let (c, mut fm, mut ctx) = setup(100);
        let child = Box::new(SeqScanOp::new(&c, &mut fm, "t", None, None).unwrap());
        let mut op = LimitOp::new(&mut fm, child, 7);
        op.open(&mut ctx).unwrap();
        assert_eq!(count(&mut op, &mut ctx), 7);
        assert!(op.next(&mut ctx).unwrap().is_none(), "stays exhausted");
    }

    #[test]
    fn limit_larger_than_input() {
        let (c, mut fm, mut ctx) = setup(3);
        let child = Box::new(SeqScanOp::new(&c, &mut fm, "t", None, None).unwrap());
        let mut op = LimitOp::new(&mut fm, child, 10);
        op.open(&mut ctx).unwrap();
        assert_eq!(count(&mut op, &mut ctx), 3);
    }

    #[test]
    fn limit_zero() {
        let (c, mut fm, mut ctx) = setup(3);
        let child = Box::new(SeqScanOp::new(&c, &mut fm, "t", None, None).unwrap());
        let mut op = LimitOp::new(&mut fm, child, 0);
        op.open(&mut ctx).unwrap();
        assert_eq!(count(&mut op, &mut ctx), 0);
    }

    #[test]
    fn rescan_resets_count() {
        let (c, mut fm, mut ctx) = setup(10);
        let child = Box::new(SeqScanOp::new(&c, &mut fm, "t", None, None).unwrap());
        let mut op = LimitOp::new(&mut fm, child, 4);
        op.open(&mut ctx).unwrap();
        assert_eq!(count(&mut op, &mut ctx), 4);
        op.rescan(&mut ctx, None).unwrap();
        assert_eq!(count(&mut op, &mut ctx), 4);
    }
}
