//! EXPLAIN ANALYZE: run a plan under the per-operator profiler and print
//! the annotated tree — actual vs estimated rows, each operator's share of
//! modeled time and L1i misses, and the buffer operator's fill gauges.
//!
//! ```sh
//! cargo run --release --example explain_analyze
//! ```

use bufferdb::prelude::*;

fn main() -> Result<()> {
    let catalog = bufferdb::tpch::generate_catalog(0.01, 42);
    let machine = MachineConfig::pentium4_like();
    let plan = bufferdb::tpch::queries::paper_query1(&catalog)?;

    // The unbuffered plan: Aggregate and SeqScan evict each other's code on
    // every tuple, so both operators carry millions of L1i misses.
    println!("-- original --");
    println!("{}", explain_analyze(&plan, &catalog, &machine)?);

    // After refinement a Buffer sits between them. The annotated tree shows
    // where the misses went: the buffer itself costs a few percent, while
    // the scan and aggregate drop orders of magnitude.
    let refined = refine_plan(&plan, &catalog, &RefineConfig::default());
    println!("-- refined --");
    println!("{}", explain_analyze(&refined, &catalog, &machine)?);
    Ok(())
}
