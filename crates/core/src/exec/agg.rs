//! Aggregation: plain (single row) and hash group-by.
//!
//! A plain aggregate consumes its entire input inside the first `next` call,
//! executing the aggregation code once per input row interleaved with the
//! child's code — the exact PCPC pattern of the paper's Query 1, and the
//! reason the refiner puts a buffer between scan and aggregation when the
//! combined footprint exceeds the L1 instruction cache.

use crate::arena::TupleSlot;
use crate::context::ExecContext;
use crate::exec::{schema_slot_bytes, Operator, DEFAULT_BATCH};
use crate::footprint::{FootprintModel, OpKind};
use crate::plan::{AggFunc, AggSpec};
use bufferdb_cachesim::CodeRegion;
use bufferdb_types::{ops, Datum, DbError, Result, Schema, SchemaRef, Tuple};
use std::collections::HashMap;
use std::sync::Arc;

/// Running state of one aggregate. Shared with the push executor
/// ([`crate::exec::push`]) so both backends fold values identically —
/// bit-identical accumulation is what the mode-equivalence tests pin.
#[derive(Debug, Clone)]
pub(crate) enum AggState {
    Count(i64),
    Sum(Option<Datum>),
    Min(Option<Datum>),
    Max(Option<Datum>),
    Avg { sum: f64, n: i64 },
}

impl AggState {
    pub(crate) fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::CountStar | AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(None),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
        }
    }

    pub(crate) fn update(&mut self, value: Option<&Datum>) -> Result<()> {
        match self {
            AggState::Count(n) => {
                // COUNT(*) is fed None-as-star; COUNT(expr) skips NULLs.
                match value {
                    Some(v) if v.is_null() => {}
                    _ => *n += 1,
                }
            }
            AggState::Sum(acc) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        *acc = Some(match acc.take() {
                            None => v.clone(),
                            Some(a) => ops::add(&a, v)?,
                        });
                    }
                }
            }
            AggState::Min(acc) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        let replace = match acc {
                            None => true,
                            Some(a) => {
                                matches!(ops::compare(v, a)?, Some(std::cmp::Ordering::Less))
                            }
                        };
                        if replace {
                            *acc = Some(v.clone());
                        }
                    }
                }
            }
            AggState::Max(acc) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        let replace = match acc {
                            None => true,
                            Some(a) => {
                                matches!(ops::compare(v, a)?, Some(std::cmp::Ordering::Greater))
                            }
                        };
                        if replace {
                            *acc = Some(v.clone());
                        }
                    }
                }
            }
            AggState::Avg { sum, n } => {
                if let Some(v) = value {
                    if let Some(f) = datum_to_f64(v) {
                        *sum += f;
                        *n += 1;
                    }
                }
            }
        }
        Ok(())
    }

    pub(crate) fn finish(&self) -> Datum {
        match self {
            AggState::Count(n) => Datum::Int(*n),
            AggState::Sum(acc) | AggState::Min(acc) | AggState::Max(acc) => {
                acc.clone().unwrap_or(Datum::Null)
            }
            AggState::Avg { sum, n } => {
                if *n == 0 {
                    Datum::Null
                } else {
                    Datum::Float(sum / *n as f64)
                }
            }
        }
    }
}

fn datum_to_f64(d: &Datum) -> Option<f64> {
    match d {
        Datum::Int(v) => Some(*v as f64),
        Datum::Float(v) => Some(*v),
        Datum::Decimal(v) => Some(v.to_f64()),
        _ => None,
    }
}

/// Hashable, equatable group key (floats are rejected at build time).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum KeyAtom {
    Null,
    Bool(bool),
    Int(i64),
    Date(i32),
    Str(Arc<str>),
    Dec(i128, u8),
}

pub(crate) fn key_atom(d: &Datum) -> Result<KeyAtom> {
    Ok(match d {
        Datum::Null => KeyAtom::Null,
        Datum::Bool(b) => KeyAtom::Bool(*b),
        Datum::Int(v) => KeyAtom::Int(*v),
        Datum::Date(v) => KeyAtom::Date(v.days()),
        Datum::Str(s) => KeyAtom::Str(Arc::clone(s)),
        Datum::Decimal(v) => {
            // Canonicalize so 1.50 and 1.5 group together.
            let (mut m, mut s) = (v.mantissa(), v.scale());
            while s > 0 && m % 10 == 0 {
                m /= 10;
                s -= 1;
            }
            KeyAtom::Dec(m, s)
        }
        Datum::Float(_) => {
            return Err(DbError::InvalidPlan(
                "cannot group by a float column".into(),
            ))
        }
    })
}

/// Aggregation operator.
pub struct AggregateOp {
    child: Box<dyn Operator>,
    group_by: Vec<usize>,
    aggs: Vec<AggSpec>,
    schema: SchemaRef,
    code: CodeRegion,
    /// Emit queue after the (blocking for group-by, single-pass for plain)
    /// input drain.
    results: Vec<Tuple>,
    pos: usize,
    drained: bool,
    out_region: u32,
    batch_hint: usize,
    ht_base: u64,
}

impl AggregateOp {
    /// Build an aggregation node.
    pub fn new(
        fm: &mut FootprintModel,
        child: Box<dyn Operator>,
        group_by: Vec<usize>,
        aggs: Vec<AggSpec>,
    ) -> Result<Self> {
        let input = child.schema();
        let mut fields = Vec::new();
        for &g in &group_by {
            if g >= input.len() {
                return Err(DbError::UnknownColumn(format!("group column #{g}")));
            }
            fields.push(input.field(g).clone());
        }
        for a in &aggs {
            let ty = match a.func {
                AggFunc::CountStar | AggFunc::Count => bufferdb_types::DataType::Int,
                AggFunc::Avg => bufferdb_types::DataType::Float,
                _ => match &a.input {
                    Some(e) => e.data_type(&input)?,
                    None => {
                        return Err(DbError::InvalidPlan(format!(
                            "{:?} requires an argument",
                            a.func
                        )))
                    }
                },
            };
            fields.push(bufferdb_types::Field::nullable(a.name.clone(), ty));
        }
        let schema = Schema::new(fields).into_ref();
        let code = fm.region_for(&OpKind::aggregate(&aggs));
        Ok(AggregateOp {
            child,
            group_by,
            aggs,
            schema,
            code,
            results: Vec::new(),
            pos: 0,
            drained: false,
            out_region: u32::MAX,
            batch_hint: DEFAULT_BATCH,
            ht_base: 0,
        })
    }

    fn update_states(
        &self,
        ctx: &mut ExecContext,
        states: &mut [AggState],
        row: &Tuple,
    ) -> Result<()> {
        for (spec, state) in self.aggs.iter().zip(states.iter_mut()) {
            match (&spec.input, spec.func) {
                (_, AggFunc::CountStar) => state.update(None)?,
                (Some(e), _) => {
                    ctx.machine.add_instructions(e.instruction_cost());
                    let v = e.eval(row)?;
                    state.update(Some(&v))?;
                }
                (None, _) => {
                    return Err(DbError::InvalidPlan(format!(
                        "{:?} requires an argument",
                        spec.func
                    )))
                }
            }
        }
        Ok(())
    }

    fn drain(&mut self, ctx: &mut ExecContext) -> Result<()> {
        if self.group_by.is_empty() {
            let mut states: Vec<AggState> =
                self.aggs.iter().map(|a| AggState::new(a.func)).collect();
            while let Some(slot) = self.child.next(ctx)? {
                ctx.check_cancel()?;
                ctx.tuple_yield();
                ctx.machine.exec_region(&mut self.code);
                let row = ctx.arena.tuple(slot).clone();
                self.update_states(ctx, &mut states, &row)?;
            }
            let vals: Vec<Datum> = states.iter().map(AggState::finish).collect();
            self.results = vec![Tuple::new(vals)];
        } else {
            self.ht_base = ctx.arena.sim_alloc(1 << 20);
            let mut groups: HashMap<Vec<KeyAtom>, (Vec<Datum>, Vec<AggState>)> = HashMap::new();
            let mut order: Vec<Vec<KeyAtom>> = Vec::new();
            while let Some(slot) = self.child.next(ctx)? {
                ctx.check_cancel()?;
                ctx.tuple_yield();
                ctx.machine.exec_region(&mut self.code);
                let row = ctx.arena.tuple(slot).clone();
                let mut key = Vec::with_capacity(self.group_by.len());
                let mut key_vals = Vec::with_capacity(self.group_by.len());
                for &g in &self.group_by {
                    key.push(key_atom(row.get(g))?);
                    key_vals.push(row.get(g).clone());
                }
                // One hash-bucket touch per input row.
                let h = fx_hash(&key);
                ctx.machine.data_read(self.ht_base + (h & 0xFFFF) * 16, 16);
                let entry = groups.entry(key.clone()).or_insert_with(|| {
                    order.push(key);
                    (
                        key_vals,
                        self.aggs.iter().map(|a| AggState::new(a.func)).collect(),
                    )
                });
                let states = &mut entry.1;
                let mut tmp = std::mem::take(states);
                self.update_states(ctx, &mut tmp, &row)?;
                entry.1 = tmp;
            }
            self.results = order
                .into_iter()
                // Every key in `order` was inserted into `groups` above, so
                // the filter never drops anything; it just keeps this path
                // free of panicking lookups.
                .filter_map(|k| groups.remove(&k))
                .map(|(key_vals, states)| {
                    let mut vals = key_vals;
                    vals.extend(states.iter().map(AggState::finish));
                    Tuple::new(vals)
                })
                .collect();
        }
        self.pos = 0;
        self.drained = true;
        Ok(())
    }
}

pub(crate) fn fx_hash(key: &[KeyAtom]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

impl Operator for AggregateOp {
    fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn set_batch_hint(&mut self, n: usize) {
        self.batch_hint = self.batch_hint.max(n);
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.child.open(ctx)?;
        self.out_region = ctx
            .arena
            .alloc_region(self.batch_hint as u32 + 1, schema_slot_bytes(&self.schema));
        self.results.clear();
        self.pos = 0;
        self.drained = false;
        Ok(())
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<TupleSlot>> {
        if !self.drained {
            self.drain(ctx)?;
        }
        ctx.machine.exec_region(&mut self.code);
        if self.pos >= self.results.len() {
            return Ok(None);
        }
        let t = self.results[self.pos].clone();
        self.pos += 1;
        Ok(Some(ctx.arena.store(self.out_region, t, &mut ctx.machine)))
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.results.clear();
        self.child.close(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::seqscan::SeqScanOp;
    use crate::expr::Expr;
    use bufferdb_cachesim::MachineConfig;
    use bufferdb_storage::{Catalog, TableBuilder};
    use bufferdb_types::{DataType, Decimal, Field};

    fn setup() -> (Catalog, FootprintModel, ExecContext) {
        let c = Catalog::new();
        let mut b = TableBuilder::new(
            "t",
            Schema::new(vec![
                Field::new("g", DataType::Int),
                Field::nullable("v", DataType::Int),
                Field::new("d", DataType::Decimal),
            ]),
        );
        // Groups 0,1,2 with values; one NULL v in group 0.
        let rows = [
            (0, Some(10), 100),
            (0, None, 200),
            (1, Some(5), 300),
            (1, Some(7), 50),
            (2, Some(1), 25),
        ];
        for (g, v, cents) in rows {
            b.push(Tuple::new(vec![
                Datum::Int(g),
                v.map(Datum::Int).unwrap_or(Datum::Null),
                Datum::Decimal(Decimal::from_cents(cents)),
            ]));
        }
        c.add_table(b);
        (
            c,
            FootprintModel::new(),
            ExecContext::new(MachineConfig::pentium4_like()),
        )
    }

    fn run(op: &mut AggregateOp, ctx: &mut ExecContext) -> Vec<Tuple> {
        op.open(ctx).unwrap();
        let mut out = Vec::new();
        while let Some(s) = op.next(ctx).unwrap() {
            out.push(ctx.arena.tuple(s).clone());
        }
        op.close(ctx).unwrap();
        out
    }

    #[test]
    fn plain_aggregate_single_row() {
        let (c, mut fm, mut ctx) = setup();
        let child = Box::new(SeqScanOp::new(&c, &mut fm, "t", None, None).unwrap());
        let mut op = AggregateOp::new(
            &mut fm,
            child,
            vec![],
            vec![
                AggSpec::count_star("n"),
                AggSpec::new(AggFunc::Count, Expr::col(1), "nv"),
                AggSpec::new(AggFunc::Sum, Expr::col(1), "sv"),
                AggSpec::new(AggFunc::Min, Expr::col(1), "minv"),
                AggSpec::new(AggFunc::Max, Expr::col(1), "maxv"),
                AggSpec::new(AggFunc::Avg, Expr::col(1), "avgv"),
            ],
        )
        .unwrap();
        let rows = run(&mut op, &mut ctx);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.get(0).as_int(), Some(5)); // COUNT(*)
        assert_eq!(r.get(1).as_int(), Some(4)); // COUNT(v) skips NULL
        assert_eq!(r.get(2).as_int(), Some(23)); // SUM
        assert_eq!(r.get(3).as_int(), Some(1)); // MIN
        assert_eq!(r.get(4).as_int(), Some(10)); // MAX
        assert!((r.get(5).as_float().unwrap() - 5.75).abs() < 1e-9); // AVG
    }

    #[test]
    fn sum_of_decimal_expression() {
        let (c, mut fm, mut ctx) = setup();
        let child = Box::new(SeqScanOp::new(&c, &mut fm, "t", None, None).unwrap());
        let expr = Expr::col(2).mul(Expr::lit(Datum::Decimal(Decimal::from_int(2))));
        let mut op = AggregateOp::new(
            &mut fm,
            child,
            vec![],
            vec![AggSpec::new(AggFunc::Sum, expr, "total")],
        )
        .unwrap();
        let rows = run(&mut op, &mut ctx);
        assert_eq!(
            rows[0].get(0).as_decimal().unwrap(),
            Decimal::from_cents(1350) // (100+200+300+50+25)*2 cents
        );
    }

    #[test]
    fn group_by_produces_one_row_per_group() {
        let (c, mut fm, mut ctx) = setup();
        let child = Box::new(SeqScanOp::new(&c, &mut fm, "t", None, None).unwrap());
        let mut op = AggregateOp::new(
            &mut fm,
            child,
            vec![0],
            vec![
                AggSpec::count_star("n"),
                AggSpec::new(AggFunc::Sum, Expr::col(1), "sv"),
            ],
        )
        .unwrap();
        let rows = run(&mut op, &mut ctx);
        assert_eq!(rows.len(), 3);
        // First-seen order: groups 0, 1, 2.
        assert_eq!(rows[0].get(0).as_int(), Some(0));
        assert_eq!(rows[0].get(1).as_int(), Some(2));
        assert_eq!(rows[0].get(2).as_int(), Some(10)); // NULL skipped in SUM
        assert_eq!(rows[1].get(2).as_int(), Some(12));
    }

    #[test]
    fn empty_input_plain_vs_grouped() {
        let (c, mut fm, mut ctx) = setup();
        let pred = Expr::col(0).lt(Expr::lit(0));
        let child = Box::new(SeqScanOp::new(&c, &mut fm, "t", Some(pred.clone()), None).unwrap());
        let mut plain = AggregateOp::new(
            &mut fm,
            child,
            vec![],
            vec![
                AggSpec::count_star("n"),
                AggSpec::new(AggFunc::Sum, Expr::col(1), "s"),
            ],
        )
        .unwrap();
        let rows = run(&mut plain, &mut ctx);
        assert_eq!(
            rows.len(),
            1,
            "plain aggregate yields a row even on empty input"
        );
        assert_eq!(rows[0].get(0).as_int(), Some(0));
        assert!(rows[0].get(1).is_null());

        let child2 = Box::new(SeqScanOp::new(&c, &mut fm, "t", Some(pred), None).unwrap());
        let mut grouped =
            AggregateOp::new(&mut fm, child2, vec![0], vec![AggSpec::count_star("n")]).unwrap();
        assert_eq!(
            run(&mut grouped, &mut ctx).len(),
            0,
            "no groups on empty input"
        );
    }

    #[test]
    fn schema_has_groups_then_aggs() {
        let (c, mut fm, _) = setup();
        let child = Box::new(SeqScanOp::new(&c, &mut fm, "t", None, None).unwrap());
        let op = AggregateOp::new(&mut fm, child, vec![0], vec![AggSpec::count_star("n")]).unwrap();
        let s = op.schema();
        assert_eq!(s.field(0).name, "g");
        assert_eq!(s.field(1).name, "n");
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let (c, mut fm, _) = setup();
        let child = Box::new(SeqScanOp::new(&c, &mut fm, "t", None, None).unwrap());
        let bad = AggregateOp::new(
            &mut fm,
            child,
            vec![],
            vec![AggSpec {
                func: AggFunc::Sum,
                input: None,
                name: "s".into(),
            }],
        );
        assert!(bad.is_err());
        let child2 = Box::new(SeqScanOp::new(&c, &mut fm, "t", None, None).unwrap());
        let bad_group = AggregateOp::new(&mut fm, child2, vec![9], vec![]);
        assert!(bad_group.is_err());
    }
}
