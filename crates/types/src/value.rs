//! Runtime values (`Datum`) with SQL NULL.

use crate::date::Date;
use crate::decimal::Decimal;
use crate::schema::DataType;
use std::fmt;
use std::sync::Arc;

/// A single runtime value. `Null` is typeless, as in SQL.
///
/// Strings use `Arc<str>` so that cloning a datum (e.g. into an intermediate
/// tuple held by a buffer operator) never copies string payloads — mirroring
/// the paper's pointer-based buffering, which copies no tuple bodies.
#[derive(Debug, Clone, PartialEq)]
pub enum Datum {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Fixed-point decimal.
    Decimal(Decimal),
    /// Calendar date.
    Date(Date),
    /// UTF-8 string.
    Str(Arc<str>),
}

impl Datum {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<Arc<str>>) -> Datum {
        Datum::Str(s.into())
    }

    /// True iff the datum is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// The datum's runtime type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Datum::Null => None,
            Datum::Bool(_) => Some(DataType::Bool),
            Datum::Int(_) => Some(DataType::Int),
            Datum::Float(_) => Some(DataType::Float),
            Datum::Decimal(_) => Some(DataType::Decimal),
            Datum::Date(_) => Some(DataType::Date),
            Datum::Str(_) => Some(DataType::Str),
        }
    }

    /// Integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Decimal payload, if this is a `Decimal`.
    pub fn as_decimal(&self) -> Option<Decimal> {
        match self {
            Datum::Decimal(v) => Some(*v),
            _ => None,
        }
    }

    /// Date payload, if this is a `Date`.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Datum::Date(v) => Some(*v),
            _ => None,
        }
    }

    /// Boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Datum::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// String payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Float payload, if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Datum::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Approximate in-memory size in bytes, used by the data-cache model to
    /// assign simulated addresses to tuple slots.
    pub fn simulated_width(&self) -> usize {
        match self {
            Datum::Null => 1,
            Datum::Bool(_) => 1,
            Datum::Int(_) => 8,
            Datum::Float(_) => 8,
            Datum::Decimal(_) => 16,
            Datum::Date(_) => 4,
            Datum::Str(s) => 16 + s.len(),
        }
    }
}

impl From<i64> for Datum {
    fn from(v: i64) -> Datum {
        Datum::Int(v)
    }
}

impl From<bool> for Datum {
    fn from(v: bool) -> Datum {
        Datum::Bool(v)
    }
}

impl From<f64> for Datum {
    fn from(v: f64) -> Datum {
        Datum::Float(v)
    }
}

impl From<Decimal> for Datum {
    fn from(v: Decimal) -> Datum {
        Datum::Decimal(v)
    }
}

impl From<Date> for Datum {
    fn from(v: Date) -> Datum {
        Datum::Date(v)
    }
}

impl From<&str> for Datum {
    fn from(v: &str) -> Datum {
        Datum::str(v)
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => write!(f, "NULL"),
            Datum::Bool(v) => write!(f, "{v}"),
            Datum::Int(v) => write!(f, "{v}"),
            Datum::Float(v) => write!(f, "{v}"),
            Datum::Decimal(v) => write!(f, "{v}"),
            Datum::Date(v) => write!(f, "{v}"),
            Datum::Str(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_checks() {
        assert!(Datum::Null.is_null());
        assert!(!Datum::Int(0).is_null());
        assert_eq!(Datum::Null.data_type(), None);
    }

    #[test]
    fn accessors_are_type_strict() {
        assert_eq!(Datum::Int(7).as_int(), Some(7));
        assert_eq!(Datum::Int(7).as_bool(), None);
        assert_eq!(Datum::Bool(true).as_bool(), Some(true));
        assert_eq!(Datum::str("abc").as_str(), Some("abc"));
        assert_eq!(Datum::Float(1.5).as_float(), Some(1.5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Datum::Null.to_string(), "NULL");
        assert_eq!(Datum::Decimal(Decimal::from_cents(150)).to_string(), "1.50");
        assert_eq!(
            Datum::Date(Date::parse("1998-09-02").unwrap()).to_string(),
            "1998-09-02"
        );
    }

    #[test]
    fn string_clone_is_shallow() {
        let s = Datum::str("shared payload");
        let t = s.clone();
        match (&s, &t) {
            (Datum::Str(a), Datum::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn simulated_widths() {
        assert_eq!(Datum::Int(1).simulated_width(), 8);
        assert_eq!(Datum::str("abcd").simulated_width(), 20);
        assert_eq!(Datum::Null.simulated_width(), 1);
    }
}
