//! `repro` — regenerate any table or figure from the paper.
//!
//! ```text
//! repro [--sf <scale>] [--seed <n>] <experiment>...
//! experiments: table1 table2 fig4 fig9 fig10 fig11 fig12 fig13
//!              fig15 fig16 fig17 table3 table4 table5 calibrate ablation all
//! ```
//!
//! The paper runs at TPC-H scale factor 0.2 on real hardware; the default
//! here is 0.02 because every tuple pays for cache simulation. Shapes (who
//! wins, by what factor, where crossovers fall) are scale-invariant.

use bufferdb_bench::experiments as exp;
use bufferdb_bench::experiments::ExperimentCtx;
use bufferdb_tpch::queries::JoinMethod;

const USAGE: &str = "usage: repro [--sf <scale>] [--seed <n>] [--threads <n>] [--timeout-ms <n>]
             [--qps <f>] [--duration <ms>] [--regimes <n>] [--streams <list>]
             <experiment>...
experiments:
  table1    machine specification
  table2    operator instruction footprints
  fig4      Query 1 breakdown (unbuffered)
  fig9      Query 2 original vs buffered (no benefit expected)
  fig10     Query 1 original vs buffered
  fig11     cardinality sweep
  fig12     buffer-size sweep (elapsed)
  fig13     buffer-size sweep (breakdown)
  fig15     Query 3, nested-loop join
  fig16     Query 3, hash join
  fig17     Query 3, merge join
  table3    overall improvement, three join methods
  table4    CPI, three join methods
  table5    TPC-H Q1/Q6/Q12/Q14 original vs refined
  calibrate cardinality-threshold calibration
  ablation  predictor / placement / cache-size / copy-buffer / cross-arch
  blockcmp  buffering vs block-oriented processing (related work)
  misscurve i-cache miss rate vs capacity, interleaved vs batched
  baseline  write per-query metrics to BENCH_baseline.json
  scaling   TPC-H at 1/2/4/8 workers, write BENCH_parallel.json
  modes     executor showdown: pull vs buffered pull vs push vs auto at
            1/2/4 workers on the TPC-H mix, write BENCH_modes.json
  prepared  plan-cache hit/miss timing + adaptive refinement,
            write BENCH_plancache.json
  analyze   EXPLAIN ANALYZE of Query 1, unbuffered vs buffered
  analyze <file.json>  validate a bench report's schema/schema_version and
            summarize it (rejects unknown versions, exit code 2)
  trace <query>  flight-recorder trace of one query (Q1 Q6 Q12 Q14
            paperQ1 paperQ2), write Perfetto JSON to TRACE_<query>.json
  trace --server  whole-server flight recorder: admission waits, query
            runs and quantum turns across a multi-stream run, write
            Perfetto JSON to TRACE_server.json
  heatmap   per-segment L1i eviction attribution over the multi-stream
            server workload, write BENCH_heatmap.json (exactly conserved
            against machine totals)
  systables install every sys.* introspection table, run a workload, and
            query each through an ordinary plan (asserts zero modeled cost)
  traffic   open-loop traffic run with scripted regime switches; writes
            BENCH_traffic.json, TRAFFIC_windows.jsonl, TRAFFIC_metrics.prom
  server    multi-query interference sweep: {1,2,4,8} concurrent streams ×
            {none,static,adaptive} buffer policy on the shared scheduler,
            write BENCH_server.json
  reuse     subplan reuse-cache sweep: zipfian workload over {1,2,4} client
            streams × {off,tight,default} cache budgets, write BENCH_reuse.json
  all       everything above (except trace, traffic and server)
options:
  --threads <n>     worker budget for parallel builds (default: all cores)
  --timeout-ms <n>  cancel any single query after <n> ms (exit code 3)
  --qps <f>         traffic: base offered rate in queries per virtual second
                    (default: auto-calibrate to ~70% utilization)
  --duration <ms>   traffic: virtual milliseconds per full regime
                    (default: sized so a regime sees ~40 queries)
  --regimes <n>     traffic: number of scripted regimes, 1-4 (default 4:
                    steady, shift, burst, chaos)
  --streams <list>  server: comma-separated stream counts (default 1,2,4,8)
environment:
  BUFFERDB_FAULT    comma-separated fault specs `site:mode:trigger` injected
                    into every query (sites: seqscan.next indexscan.next
                    exchange.morsel hashjoin.build buffer.fill; modes:
                    error panic; triggers: at_row(N) every(N) prob(SEED,P))";

fn main() {
    let mut scale = 0.02_f64;
    let mut seed = 42_u64;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut qps: Option<f64> = None;
    let mut duration_ms: Option<u64> = None;
    let mut regimes = 4_usize;
    let mut streams: Vec<usize> = bufferdb_bench::server_bench::STREAM_COUNTS.to_vec();
    let mut experiments: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sf" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--sf needs a number"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| die("--threads needs a positive integer"));
            }
            "--timeout-ms" => {
                let ms: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--timeout-ms needs an integer"));
                bufferdb_bench::runner::set_query_timeout_ms(ms);
            }
            "--qps" => {
                qps = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&q: &f64| q > 0.0)
                        .unwrap_or_else(|| die("--qps needs a positive number")),
                );
            }
            "--duration" => {
                duration_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&ms: &u64| ms >= 1)
                        .unwrap_or_else(|| die("--duration needs a positive integer (ms)")),
                );
            }
            "--regimes" => {
                regimes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| (1..=4).contains(&n))
                    .unwrap_or_else(|| die("--regimes needs an integer in 1..=4"));
            }
            "--streams" => {
                let list = args
                    .next()
                    .unwrap_or_else(|| die("--streams needs a comma-separated list"));
                streams = list
                    .split(',')
                    .map(|v| {
                        v.trim()
                            .parse()
                            .ok()
                            .filter(|&n: &usize| (1..=64).contains(&n))
                            .unwrap_or_else(|| die("--streams entries must be integers in 1..=64"))
                    })
                    .collect();
                if streams.is_empty() {
                    die("--streams needs at least one entry");
                }
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        die("no experiment given");
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = [
            "table1",
            "table2",
            "fig4",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig15",
            "fig16",
            "fig17",
            "table3",
            "table4",
            "table5",
            "calibrate",
            "ablation",
            "blockcmp",
            "misscurve",
            "baseline",
            "scaling",
            "modes",
            "prepared",
            "analyze",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    eprintln!("generating TPC-H catalog at scale factor {scale} (seed {seed})…");
    let ctx = ExperimentCtx::new(scale, seed);
    eprintln!(
        "lineitem rows: {}\n",
        ctx.catalog.table("lineitem").expect("lineitem").row_count()
    );

    let mut i = 0;
    while i < experiments.len() {
        let e = &experiments[i];
        i += 1;
        let report = match e.as_str() {
            "table1" => exp::table1(&ctx),
            "table2" => exp::table2(),
            "fig4" => exp::fig4(&ctx),
            "fig9" => exp::fig9(&ctx),
            "fig10" => exp::fig10(&ctx),
            "fig11" => exp::fig11(&ctx),
            "fig12" => exp::fig12(&ctx),
            "fig13" => exp::fig13(&ctx),
            "fig15" => exp::join_figure(&ctx, JoinMethod::NestLoop),
            "fig16" => exp::join_figure(&ctx, JoinMethod::HashJoin),
            "fig17" => exp::join_figure(&ctx, JoinMethod::MergeJoin),
            "table3" => exp::table3(&ctx),
            "table4" => exp::table4(&ctx),
            "table5" => exp::table5(&ctx),
            "calibrate" => exp::calibrate(&ctx),
            "ablation" => exp::ablation(&ctx),
            "blockcmp" => exp::blockcmp(&ctx),
            "misscurve" => exp::misscurve(&ctx),
            "baseline" => write_baseline(&ctx, seed, threads),
            "scaling" => write_scaling(&ctx, seed),
            "modes" => write_modes(&ctx, seed),
            "prepared" => write_prepared(&ctx, seed),
            "analyze" => {
                // `analyze <file.json>` validates a report; bare `analyze`
                // keeps the EXPLAIN ANALYZE behavior.
                match experiments.get(i).filter(|a| a.ends_with(".json")) {
                    Some(path) => {
                        let path = path.clone();
                        i += 1;
                        analyze_report(&path)
                    }
                    None => analyze_query1(&ctx),
                }
            }
            "traffic" => write_traffic(scale, seed, regimes, qps, duration_ms),
            "server" => write_server(scale, seed, &streams),
            "reuse" => write_reuse(scale, seed),
            "heatmap" => write_heatmap(scale, seed),
            "systables" => bufferdb_bench::sys_tables_demo(scale, seed),
            "trace" => {
                let query = experiments
                    .get(i)
                    .unwrap_or_else(|| die("trace needs a query name (e.g. `trace Q12`)"));
                i += 1;
                if query == "--server" {
                    write_server_trace(scale, seed)
                } else {
                    write_trace(&ctx, seed, threads, query)
                }
            }
            other => die(&format!("unknown experiment {other:?}")),
        };
        println!("{report}");
    }
}

/// Run the baseline query set and write `BENCH_baseline.json` next to the
/// current directory (uploaded as a CI artifact).
fn write_baseline(ctx: &ExperimentCtx, seed: u64, threads: usize) -> String {
    let report = exp::baseline_metrics(ctx, seed, threads);
    let path = "BENCH_baseline.json";
    let json = report.to_json();
    if let Err(e) = std::fs::write(path, &json) {
        die(&format!("cannot write {path}: {e}"));
    }
    let mut s = format!(
        "== Baseline metrics ==\nwrote {path} ({} entries)\n",
        report.entries.len()
    );
    for e in &report.entries {
        s.push_str(&format!(
            "{:<9} {:<8} | {:>9.3}s | CPI {:>5.2} | L1i misses {:>10}\n",
            e.query, e.variant, e.modeled_seconds, e.cpi, e.l1i_misses
        ));
    }
    s
}

/// Run the morsel-parallel scaling sweep and write `BENCH_parallel.json`
/// (uploaded as a CI artifact).
fn write_scaling(ctx: &ExperimentCtx, seed: u64) -> String {
    let report = exp::scaling_metrics(ctx, seed);
    let path = "BENCH_parallel.json";
    if let Err(e) = std::fs::write(path, report.to_json()) {
        die(&format!("cannot write {path}: {e}"));
    }
    format!(
        "{}wrote {path} ({} runs)\n",
        exp::scaling_table(&report),
        report.entries.len()
    )
}

/// Run the executor-mode showdown and write `BENCH_modes.json` (uploaded
/// as a CI artifact and drift-gated against the committed copy). Rows are
/// asserted bit-identical across modes before any physics are reported.
fn write_modes(ctx: &ExperimentCtx, seed: u64) -> String {
    let report = exp::modes_metrics(ctx, seed);
    let path = "BENCH_modes.json";
    if let Err(e) = std::fs::write(path, report.to_json()) {
        die(&format!("cannot write {path}: {e}"));
    }
    format!(
        "{}wrote {path} ({} cells)\n",
        exp::modes_table(&report),
        report.entries.len()
    )
}

/// Run the prepared-query study and write `BENCH_plancache.json`
/// (uploaded as a CI artifact). Runs serial — one worker — so the
/// committed artifact is host-independent and deterministic for a seed.
fn write_prepared(ctx: &ExperimentCtx, seed: u64) -> String {
    let report = exp::prepared_metrics(ctx, seed, 1);
    let path = "BENCH_plancache.json";
    if let Err(e) = std::fs::write(path, report.to_json()) {
        die(&format!("cannot write {path}: {e}"));
    }
    format!(
        "{}wrote {path} ({} queries)\n",
        exp::prepared_table(&report),
        report.queries.len()
    )
}

/// Trace one query under the flight recorder and write the Perfetto JSON
/// next to the current directory (load it at `ui.perfetto.dev` or
/// `chrome://tracing`).
fn write_trace(ctx: &ExperimentCtx, seed: u64, threads: usize, query: &str) -> String {
    const KNOWN: [&str; 6] = ["Q1", "Q6", "Q12", "Q14", "paperQ1", "paperQ2"];
    if !KNOWN.contains(&query) {
        die(&format!(
            "unknown trace query {query:?} (expected one of {})",
            KNOWN.join(" ")
        ));
    }
    let (json, summary) = exp::trace_query(ctx, seed, threads, query);
    let path = format!("TRACE_{query}.json");
    if let Err(e) = std::fs::write(&path, &json) {
        die(&format!("cannot write {path}: {e}"));
    }
    format!(
        "== Flight recorder: {query} at {threads} workers ==\n{summary}wrote {path} ({} bytes)\n",
        json.len()
    )
}

/// Run the open-loop traffic observatory and write `BENCH_traffic.json`
/// plus the telemetry exports (JSONL window log, Prometheus exposition).
fn write_traffic(
    scale: f64,
    seed: u64,
    regimes: usize,
    qps: Option<f64>,
    duration_ms: Option<u64>,
) -> String {
    use bufferdb_bench::traffic::{run_traffic, TrafficConfig};
    // Fail malformed BUFFERDB_FAULT with exit 2 (the CLI contract) before
    // the run starts; run_traffic itself re-arms it per regime.
    if let Err(msg) = bufferdb_core::fault::FaultRegistry::from_env() {
        die(&format!("invalid BUFFERDB_FAULT: {msg}"));
    }
    let mut cfg = TrafficConfig::scripted(scale, seed, regimes);
    cfg.qps = qps;
    if let Some(ms) = duration_ms {
        // A full regime is 8 windows; `--duration` fixes its virtual span.
        cfg.window_ns = Some(((ms as f64 * 1e6) / 8.0).round().max(1.0) as u64);
    }
    let run = run_traffic(&cfg);
    for (path, content) in [
        ("BENCH_traffic.json", run.report.to_json()),
        ("TRAFFIC_windows.jsonl", run.jsonl.clone()),
        ("TRAFFIC_metrics.prom", run.prometheus.clone()),
    ] {
        if let Err(e) = std::fs::write(path, content) {
            die(&format!("cannot write {path}: {e}"));
        }
    }
    format!(
        "{}wrote BENCH_traffic.json ({} regimes), TRAFFIC_windows.jsonl, TRAFFIC_metrics.prom\n",
        run.table,
        run.report.regimes.len()
    )
}

/// Run the multi-query interference sweep on the deterministic virtual
/// scheduler and write `BENCH_server.json` (uploaded as a CI artifact;
/// bit-stable for a given scale/seed/stream list).
fn write_server(scale: f64, seed: u64, streams: &[usize]) -> String {
    let report = bufferdb_bench::server_metrics(scale, seed, streams);
    let path = "BENCH_server.json";
    if let Err(e) = std::fs::write(path, report.to_json()) {
        die(&format!("cannot write {path}: {e}"));
    }
    format!(
        "{}wrote {path} ({} cells)\n",
        bufferdb_bench::server_table(&report),
        report.entries.len()
    )
}

/// Every committed report schema, paired with the top-level array its
/// payload lives in. `analyze` validates all of them through this one
/// table, so adding a report means adding a row — not a new code path.
const REPORT_SCHEMAS: [(&str, &str); 8] = [
    ("bufferdb-heatmap/v1", "segments"),
    ("bufferdb-metrics/v1", "entries"),
    ("bufferdb-modes/v1", "entries"),
    ("bufferdb-parallel/v1", "entries"),
    ("bufferdb-plancache/v1", "queries"),
    ("bufferdb-reuse/v1", "entries"),
    ("bufferdb-server/v1", "entries"),
    ("bufferdb-traffic/v1", "regimes"),
];

/// Run the subplan reuse-cache sweep and write `BENCH_reuse.json`
/// (uploaded as a CI artifact and drift-gated against the committed copy).
/// Runs serial and on the deterministic simulator, so the artifact is
/// bit-stable for a (scale, seed); rows are asserted bit-identical across
/// every cell before any physics are reported.
fn write_reuse(scale: f64, seed: u64) -> String {
    let report = bufferdb_bench::reuse_metrics(scale, seed);
    let path = "BENCH_reuse.json";
    if let Err(e) = std::fs::write(path, report.to_json()) {
        die(&format!("cannot write {path}: {e}"));
    }
    format!(
        "{}wrote {path} ({} cells)\n",
        bufferdb_bench::reuse_table(&report),
        report.entries.len()
    )
}

/// Run the server workload with the per-segment heat ledger on and write
/// `BENCH_heatmap.json` (uploaded as a CI artifact and drift-gated against
/// the committed copy). The serializer itself asserts exact conservation
/// against the machine-counter totals.
fn write_heatmap(scale: f64, seed: u64) -> String {
    let report = bufferdb_bench::heatmap_metrics(scale, seed);
    let path = "BENCH_heatmap.json";
    if let Err(e) = std::fs::write(path, report.to_json()) {
        die(&format!("cannot write {path}: {e}"));
    }
    format!(
        "{}wrote {path} ({} segments)\n",
        bufferdb_bench::heatmap_table(&report),
        report.segments.len()
    )
}

/// Run the server workload under the always-on flight recorder and write
/// the whole-run Perfetto timeline to `TRACE_server.json`.
fn write_server_trace(scale: f64, seed: u64) -> String {
    let (json, summary) = bufferdb_bench::server_trace(scale, seed);
    let path = "TRACE_server.json";
    if let Err(e) = std::fs::write(path, &json) {
        die(&format!("cannot write {path}: {e}"));
    }
    format!(
        "== Server flight recorder ==\n{summary}wrote {path} ({} bytes)\n",
        json.len()
    )
}

/// Parse a bench report, validate its `schema`/`schema_version` and the
/// schema's payload array, and print a short summary. Unknown schemas or
/// versions are a hard error (exit 2) rather than a misparse.
fn analyze_report(path: &str) -> String {
    use bufferdb_bench::json::{Json, SCHEMA_VERSION};
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let doc = Json::parse(&text).unwrap_or_else(|e| die(&format!("{path} is not valid JSON: {e}")));
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .unwrap_or_else(|| die(&format!("{path}: missing \"schema\" field")));
    let (_, payload_key) = REPORT_SCHEMAS
        .iter()
        .find(|(s, _)| *s == schema)
        .unwrap_or_else(|| {
            die(&format!(
                "{path}: unknown schema {schema:?} (known: {})",
                REPORT_SCHEMAS
                    .iter()
                    .map(|(s, _)| *s)
                    .collect::<Vec<_>>()
                    .join(" ")
            ))
        });
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .unwrap_or_else(|| {
            die(&format!(
                "{path}: missing \"schema_version\" (report predates version stamping; \
                 regenerate it with this build)"
            ))
        });
    if version != SCHEMA_VERSION {
        die(&format!(
            "{path}: schema_version {version} is not supported (this build reads version \
             {SCHEMA_VERSION}); refusing to misparse"
        ));
    }
    let payload = doc
        .get(payload_key)
        .and_then(Json::as_arr)
        .unwrap_or_else(|| {
            die(&format!(
                "{path}: schema {schema} requires a top-level {payload_key:?} array"
            ))
        });
    format!(
        "== Report check ==\n{path}: schema {schema}, version {version}, {} {payload_key}\n",
        payload.len()
    )
}

/// EXPLAIN ANALYZE of the paper's Query 1, before and after refinement:
/// per-operator attribution of the L1i misses buffering removes.
fn analyze_query1(ctx: &ExperimentCtx) -> String {
    use bufferdb_core::plan::analyze::explain_analyze;
    use bufferdb_core::refine::{refine_plan, RefineConfig};
    let plan = bufferdb_tpch::queries::paper_query1(&ctx.catalog).expect("query 1");
    let refined = refine_plan(&plan, &ctx.catalog, &RefineConfig::default());
    let orig = explain_analyze(&plan, &ctx.catalog, &ctx.machine).expect("analyze original");
    let buf = explain_analyze(&refined, &ctx.catalog, &ctx.machine).expect("analyze refined");
    format!("== EXPLAIN ANALYZE: Query 1 original ==\n{orig}\n== EXPLAIN ANALYZE: Query 1 refined ==\n{buf}")
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2)
}
