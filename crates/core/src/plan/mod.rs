//! Physical query plans.
//!
//! Plans are trees of physical operators, built programmatically (the paper
//! post-processes optimizer output rather than changing optimization; our
//! "optimizer" is the plan builder plus table statistics). The refinement
//! algorithm (§6.2) rewrites a plan by inserting [`PlanNode::Buffer`] nodes.

pub mod analyze;
pub mod estimate;
pub mod explain;

use crate::expr::Expr;
use crate::footprint::OpKind;
use crate::prepare::reuse::ReuseHandle;
use bufferdb_storage::Catalog;
use bufferdb_types::{DataType, DbError, Field, Result, Schema, SchemaRef};

/// Aggregate functions supported by [`PlanNode::Aggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)`
    CountStar,
    /// `COUNT(expr)` — non-null inputs.
    Count,
    /// `SUM(expr)`
    Sum,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

/// One aggregate in an aggregation node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Function.
    pub func: AggFunc,
    /// Argument (ignored for `COUNT(*)`).
    pub input: Option<Expr>,
    /// Output column name.
    pub name: String,
}

impl AggSpec {
    /// `COUNT(*) AS name`.
    pub fn count_star(name: impl Into<String>) -> Self {
        AggSpec {
            func: AggFunc::CountStar,
            input: None,
            name: name.into(),
        }
    }

    /// `func(expr) AS name`.
    pub fn new(func: AggFunc, input: Expr, name: impl Into<String>) -> Self {
        AggSpec {
            func,
            input: Some(input),
            name: name.into(),
        }
    }
}

/// How an index scan produces rows.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexMode {
    /// All keys in `[lo, hi]` (either bound optional).
    Range {
        /// Inclusive lower bound.
        lo: Option<i64>,
        /// Inclusive upper bound.
        hi: Option<i64>,
    },
    /// Parameterized lookup: rows matching the key passed by a nested-loop
    /// join's `rescan` (the inner side of an index nested-loop join).
    LookupParam,
}

/// A physical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Sequential heap scan with optional predicate and projection.
    SeqScan {
        /// Table name.
        table: String,
        /// Row filter evaluated per heap row.
        predicate: Option<Expr>,
        /// Output expressions (with names); `None` = all columns.
        projection: Option<Vec<(Expr, String)>>,
    },
    /// B+-tree index scan returning heap rows.
    IndexScan {
        /// Index name.
        index: String,
        /// Scan mode.
        mode: IndexMode,
    },
    /// Nested-loop join. When `param_outer_col` is set, the inner child is
    /// re-scanned per outer row with that outer column as parameter (index
    /// nested-loop join).
    NestLoopJoin {
        /// Outer (driving) input.
        outer: Box<PlanNode>,
        /// Inner input, re-scanned per outer row.
        inner: Box<PlanNode>,
        /// Outer column passed to the inner `rescan`.
        param_outer_col: Option<usize>,
        /// Join qualification over the concatenated row.
        qual: Option<Expr>,
        /// Foreign-key join: at most one inner match per outer row (the
        /// optimizer knowledge §7.5 uses to skip buffering the inner).
        fk_inner: bool,
    },
    /// Hash join: blocking build over `build`, pipelined probe over `probe`.
    HashJoin {
        /// Probe (outer) input.
        probe: Box<PlanNode>,
        /// Build (inner) input, fully consumed at open.
        build: Box<PlanNode>,
        /// Equi-join key column in the probe schema.
        probe_key: usize,
        /// Equi-join key column in the build schema.
        build_key: usize,
    },
    /// Merge join over inputs sorted by the key columns.
    MergeJoin {
        /// Left input (sorted by `left_key`).
        left: Box<PlanNode>,
        /// Right input (sorted by `right_key`).
        right: Box<PlanNode>,
        /// Key column in the left schema.
        left_key: usize,
        /// Key column in the right schema.
        right_key: usize,
    },
    /// Blocking sort.
    Sort {
        /// Input.
        input: Box<PlanNode>,
        /// Sort keys: `(column, ascending)`.
        keys: Vec<(usize, bool)>,
    },
    /// Aggregation; empty `group_by` yields a single row.
    Aggregate {
        /// Input.
        input: Box<PlanNode>,
        /// Grouping columns.
        group_by: Vec<usize>,
        /// Aggregates.
        aggs: Vec<AggSpec>,
    },
    /// Standalone projection.
    Project {
        /// Input.
        input: Box<PlanNode>,
        /// Output expressions with names.
        exprs: Vec<(Expr, String)>,
    },
    /// Standalone filter (extension; PostgreSQL folds filters into scans).
    Filter {
        /// Input.
        input: Box<PlanNode>,
        /// Predicate over the input schema.
        predicate: Expr,
    },
    /// LIMIT n (extension).
    Limit {
        /// Input.
        input: Box<PlanNode>,
        /// Maximum rows produced.
        limit: u64,
    },
    /// The paper's buffer operator (§5).
    Buffer {
        /// Input.
        input: Box<PlanNode>,
        /// Pointer-array capacity (the paper uses 100).
        size: usize,
    },
    /// Blocking materialization of the input.
    Materialize {
        /// Input.
        input: Box<PlanNode>,
    },
    /// Parallel exchange: partitions the input's driving scan into morsels,
    /// executes the subtree on `workers` simulated cores, and gathers the
    /// results in morsel order (so output order matches serial execution
    /// when the driving leaf is a sequential scan).
    Exchange {
        /// The pipeline executed by each worker.
        input: Box<PlanNode>,
        /// Worker count (must be ≥ 1).
        workers: usize,
    },
    /// Replay of a cached materialized intermediate installed by the
    /// subplan reuse cache ([`crate::prepare::ReuseCache`]). Spliced in
    /// place of a whole subtree at prepare time when the cache holds that
    /// subtree's output for the current stats epoch and replay is modeled
    /// cheaper than recompute. Produces the cached rows bit-identically
    /// through the normal arena/machine path, with a single tight-loop
    /// instruction footprint ([`OpKind::ReusedScan`]).
    ReusedScan {
        /// Handle to the cached rows (shared with the cache).
        handle: ReuseHandle,
    },
    /// Scan of a virtual `sys.*` introspection table. The provider snapshots
    /// live engine state (scheduler queues, plan caches, cache-segment heat)
    /// at open; rows flow through the normal operator protocol but the scan
    /// has **zero modeled cost** — no instruction footprint
    /// ([`OpKind::SysScan`] owns no segments) and no simulated memory
    /// traffic — so introspection never perturbs what it observes.
    SysScan {
        /// Virtual table name, e.g. `"sys.queries"`.
        table: String,
    },
    /// Executor-mode marker: run the wrapped pipeline on the push-based
    /// backend, batch-at-a-time, as ONE fused code region (scan → filters/
    /// projects → optional hash-join probes → optional terminal aggregate).
    /// The fused group has a single combined instruction footprint
    /// ([`OpKind::PushGroup`]) — the push model's alternative to the
    /// paper's buffer operators. Inserted by the mode-selection pass
    /// ([`crate::optimizer::choose_pipeline_modes`]); output rows are
    /// bit-identical to pull execution of the same subtree.
    PushPipeline {
        /// The pipeline executed push-style.
        input: Box<PlanNode>,
    },
}

/// The footprint kinds of the operators fused into a push pipeline over
/// `node`, top-down. Hash-join *build* sides are excluded — they stay pull
/// subtrees whose footprint is accounted separately, exactly as the
/// refiner treats blocking build phases.
pub fn push_member_kinds(node: &PlanNode) -> Vec<OpKind> {
    fn rec(n: &PlanNode, out: &mut Vec<OpKind>) {
        match n {
            PlanNode::Aggregate { input, aggs, .. } => {
                out.push(OpKind::aggregate(aggs));
                rec(input, out);
            }
            PlanNode::Filter { input, .. } => {
                out.push(OpKind::Filter);
                rec(input, out);
            }
            PlanNode::Project { input, .. } => {
                out.push(OpKind::Project);
                rec(input, out);
            }
            PlanNode::HashJoin { probe, .. } => {
                out.push(OpKind::HashProbe);
                rec(probe, out);
            }
            other => out.push(other.op_kind()),
        }
    }
    let mut out = Vec::new();
    rec(node, &mut out);
    out
}

impl PlanNode {
    /// Children, left-to-right.
    pub fn children(&self) -> Vec<&PlanNode> {
        match self {
            PlanNode::SeqScan { .. }
            | PlanNode::IndexScan { .. }
            | PlanNode::ReusedScan { .. }
            | PlanNode::SysScan { .. } => {
                vec![]
            }
            PlanNode::NestLoopJoin { outer, inner, .. } => vec![outer, inner],
            PlanNode::HashJoin { probe, build, .. } => vec![probe, build],
            PlanNode::MergeJoin { left, right, .. } => vec![left, right],
            PlanNode::Sort { input, .. }
            | PlanNode::Aggregate { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::Buffer { input, .. }
            | PlanNode::Filter { input, .. }
            | PlanNode::Limit { input, .. }
            | PlanNode::Exchange { input, .. }
            | PlanNode::PushPipeline { input }
            | PlanNode::Materialize { input } => vec![input],
        }
    }

    /// The footprint kind of this node (probe side for hash joins; the build
    /// side is accounted separately by the refiner and executor).
    pub fn op_kind(&self) -> OpKind {
        match self {
            PlanNode::SeqScan { predicate, .. } => OpKind::SeqScan {
                with_pred: predicate.is_some(),
            },
            PlanNode::IndexScan { .. } => OpKind::IndexScan,
            PlanNode::ReusedScan { .. } => OpKind::ReusedScan,
            PlanNode::SysScan { .. } => OpKind::SysScan,
            PlanNode::NestLoopJoin { .. } => OpKind::NestLoop,
            PlanNode::HashJoin { .. } => OpKind::HashProbe,
            PlanNode::MergeJoin { .. } => OpKind::MergeJoin,
            PlanNode::Sort { .. } => OpKind::Sort,
            PlanNode::Aggregate { aggs, .. } => OpKind::aggregate(aggs),
            PlanNode::Project { .. } => OpKind::Project,
            PlanNode::Buffer { .. } => OpKind::Buffer,
            PlanNode::Filter { .. } => OpKind::Filter,
            PlanNode::Limit { .. } => OpKind::Limit,
            PlanNode::Materialize { .. } => OpKind::Materialize,
            PlanNode::Exchange { .. } => OpKind::Exchange,
            PlanNode::PushPipeline { input } => OpKind::PushGroup(push_member_kinds(input)),
        }
    }

    /// Whether this operator breaks the pipeline (fully consumes its input
    /// before producing output). Such operators "already buffer query
    /// execution below them" (§6) and are never merged into execution groups.
    pub fn is_blocking(&self) -> bool {
        matches!(
            self,
            PlanNode::Sort { .. } | PlanNode::Materialize { .. } | PlanNode::Exchange { .. }
        )
    }

    /// Output schema, validated against the catalog.
    pub fn output_schema(&self, catalog: &Catalog) -> Result<SchemaRef> {
        match self {
            PlanNode::SeqScan {
                table,
                projection,
                predicate,
            } => {
                let t = catalog.table(table)?;
                if let Some(p) = predicate {
                    // Validate predicate against the table schema.
                    p.data_type(t.schema())?;
                }
                match projection {
                    None => Ok(t.schema().clone()),
                    Some(exprs) => projected_schema(t.schema(), exprs),
                }
            }
            PlanNode::IndexScan { index, .. } => {
                let idx = catalog.index(index)?;
                let t = catalog.table(&idx.table)?;
                Ok(t.schema().clone())
            }
            PlanNode::NestLoopJoin {
                outer, inner, qual, ..
            } => {
                let o = outer.output_schema(catalog)?;
                let i = inner.output_schema(catalog)?;
                let joined = o.join(&i).into_ref();
                if let Some(q) = qual {
                    q.data_type(&joined)?;
                }
                Ok(joined)
            }
            PlanNode::HashJoin {
                probe,
                build,
                probe_key,
                build_key,
            } => {
                let p = probe.output_schema(catalog)?;
                let b = build.output_schema(catalog)?;
                check_col(&p, *probe_key)?;
                check_col(&b, *build_key)?;
                Ok(p.join(&b).into_ref())
            }
            PlanNode::MergeJoin {
                left,
                right,
                left_key,
                right_key,
            } => {
                let l = left.output_schema(catalog)?;
                let r = right.output_schema(catalog)?;
                check_col(&l, *left_key)?;
                check_col(&r, *right_key)?;
                Ok(l.join(&r).into_ref())
            }
            PlanNode::Sort { input, keys } => {
                let s = input.output_schema(catalog)?;
                for (c, _) in keys {
                    check_col(&s, *c)?;
                }
                Ok(s)
            }
            PlanNode::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let s = input.output_schema(catalog)?;
                let mut fields = Vec::new();
                for &g in group_by {
                    check_col(&s, g)?;
                    fields.push(s.field(g).clone());
                }
                for a in aggs {
                    let ty = agg_output_type(a, &s)?;
                    fields.push(Field::nullable(a.name.clone(), ty));
                }
                Ok(Schema::new(fields).into_ref())
            }
            PlanNode::Project { input, exprs } => {
                let s = input.output_schema(catalog)?;
                projected_schema(&s, exprs)
            }
            PlanNode::Buffer { input, size } => {
                if *size == 0 {
                    return Err(DbError::InvalidPlan("buffer size must be > 0".into()));
                }
                input.output_schema(catalog)
            }
            PlanNode::Filter { input, predicate } => {
                let s = input.output_schema(catalog)?;
                predicate.data_type(&s)?;
                Ok(s)
            }
            PlanNode::Limit { input, .. } => input.output_schema(catalog),
            PlanNode::ReusedScan { handle } => Ok(handle.schema()),
            PlanNode::SysScan { table } => Ok(catalog.sys_table(table)?.schema()),
            PlanNode::Materialize { input } => input.output_schema(catalog),
            PlanNode::PushPipeline { input } => input.output_schema(catalog),
            PlanNode::Exchange { input, workers } => {
                if *workers == 0 {
                    return Err(DbError::InvalidPlan(
                        "exchange needs at least one worker".into(),
                    ));
                }
                input.output_schema(catalog)
            }
        }
    }

    /// Count of plan nodes (diagnostics / tests).
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Number of buffer operators in the tree.
    pub fn buffer_count(&self) -> usize {
        let own = usize::from(matches!(self, PlanNode::Buffer { .. }));
        own + self
            .children()
            .iter()
            .map(|c| c.buffer_count())
            .sum::<usize>()
    }
}

fn check_col(schema: &SchemaRef, col: usize) -> Result<()> {
    if col >= schema.len() {
        return Err(DbError::UnknownColumn(format!("column #{col} of {schema}")));
    }
    Ok(())
}

fn projected_schema(input: &SchemaRef, exprs: &[(Expr, String)]) -> Result<SchemaRef> {
    let mut fields = Vec::with_capacity(exprs.len());
    for (e, name) in exprs {
        let ty = e.data_type(input)?;
        fields.push(Field::nullable(name.clone(), ty));
    }
    Ok(Schema::new(fields).into_ref())
}

fn agg_output_type(a: &AggSpec, input: &SchemaRef) -> Result<DataType> {
    Ok(match a.func {
        AggFunc::CountStar | AggFunc::Count => DataType::Int,
        AggFunc::Avg => DataType::Float,
        AggFunc::Sum | AggFunc::Min | AggFunc::Max => match &a.input {
            Some(e) => e.data_type(input)?,
            None => {
                return Err(DbError::InvalidPlan(format!(
                    "{:?} needs an argument",
                    a.func
                )))
            }
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bufferdb_storage::TableBuilder;
    use bufferdb_types::{Datum, Tuple};

    fn catalog() -> Catalog {
        let c = Catalog::new();
        let mut b = TableBuilder::new(
            "t",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Decimal),
            ]),
        );
        for i in 0..10 {
            b.push(Tuple::new(vec![
                Datum::Int(i),
                Datum::Decimal(bufferdb_types::Decimal::from_cents(i * 100)),
            ]));
        }
        c.add_table(b);
        c
    }

    fn scan() -> PlanNode {
        PlanNode::SeqScan {
            table: "t".into(),
            predicate: None,
            projection: None,
        }
    }

    #[test]
    fn seqscan_schema_passthrough() {
        let c = catalog();
        let s = scan().output_schema(&c).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.field(0).name, "k");
    }

    #[test]
    fn unknown_table_is_error() {
        let c = catalog();
        let p = PlanNode::SeqScan {
            table: "nope".into(),
            predicate: None,
            projection: None,
        };
        assert!(matches!(
            p.output_schema(&c),
            Err(DbError::UnknownRelation(_))
        ));
    }

    #[test]
    fn aggregate_schema_groups_then_aggs() {
        let c = catalog();
        let p = PlanNode::Aggregate {
            input: Box::new(scan()),
            group_by: vec![0],
            aggs: vec![
                AggSpec::count_star("n"),
                AggSpec::new(AggFunc::Sum, Expr::col(1), "total"),
            ],
        };
        let s = p.output_schema(&c).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.field(0).name, "k");
        assert_eq!(s.field(1).name, "n");
        assert_eq!(s.field(1).ty, DataType::Int);
        assert_eq!(s.field(2).ty, DataType::Decimal);
    }

    #[test]
    fn join_schema_concatenates() {
        let c = catalog();
        let p = PlanNode::HashJoin {
            probe: Box::new(scan()),
            build: Box::new(scan()),
            probe_key: 0,
            build_key: 0,
        };
        assert_eq!(p.output_schema(&c).unwrap().len(), 4);
        let bad = PlanNode::HashJoin {
            probe: Box::new(scan()),
            build: Box::new(scan()),
            probe_key: 9,
            build_key: 0,
        };
        assert!(bad.output_schema(&c).is_err());
    }

    #[test]
    fn buffer_passthrough_and_validation() {
        let c = catalog();
        let p = PlanNode::Buffer {
            input: Box::new(scan()),
            size: 100,
        };
        assert_eq!(p.output_schema(&c).unwrap().len(), 2);
        let bad = PlanNode::Buffer {
            input: Box::new(scan()),
            size: 0,
        };
        assert!(bad.output_schema(&c).is_err());
        assert_eq!(p.buffer_count(), 1);
        assert_eq!(p.node_count(), 2);
    }

    #[test]
    fn blocking_classification() {
        let sort = PlanNode::Sort {
            input: Box::new(scan()),
            keys: vec![(0, true)],
        };
        assert!(sort.is_blocking());
        assert!(!scan().is_blocking());
        assert!(PlanNode::Materialize {
            input: Box::new(scan())
        }
        .is_blocking());
    }

    #[test]
    fn projection_validates_expressions() {
        let c = catalog();
        let ok = PlanNode::SeqScan {
            table: "t".into(),
            predicate: None,
            projection: Some(vec![(Expr::col(1).mul(Expr::col(1)), "v2".into())]),
        };
        assert_eq!(ok.output_schema(&c).unwrap().field(0).ty, DataType::Decimal);
        let bad = PlanNode::SeqScan {
            table: "t".into(),
            predicate: None,
            projection: Some(vec![(Expr::col(7), "x".into())]),
        };
        assert!(bad.output_schema(&c).is_err());
    }
}
