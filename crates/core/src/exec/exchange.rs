//! Morsel-driven parallel exchange: fan-out + ordered gather.
//!
//! The exchange partitions its subtree's driving scan into *morsels*
//! (contiguous row-id ranges), executes a private copy of the subtree on
//! each of a fixed pool of workers (`std::thread::scope`), and gathers the
//! produced tuples through a bounded MPSC channel. Each worker owns its own
//! [`ExecContext`] with its own simulated [`bufferdb_cachesim::Machine`] —
//! per-core L1i/ITLB/branch state, as the paper assumes — and, when the
//! query is profiled, its own [`QueryProfiler`] over the same subtree
//! labels. At the end of the parallel phase every worker's counters and
//! profile are merged into the coordinating context with exact conservation
//! (see [`ExecContext::absorb_worker`]).
//!
//! Gathered tuples are resequenced by morsel index, so when the driving
//! leaf is a sequential scan the output order is exactly the serial order —
//! parallel execution is bit-identical to serial, including the
//! floating-point accumulation order of any aggregate above the exchange.

use crate::arena::TupleSlot;
use crate::context::ExecContext;
use crate::exec::{schema_slot_bytes, Operator, DEFAULT_BATCH};
use crate::fault;
use crate::footprint::{FootprintModel, OpKind};
use crate::obs::hist;
use crate::obs::trace::{TraceEvent, Tracer};
use crate::obs::{ExchangeLane, ObsId, QueryProfile, QueryProfiler};
use crate::plan::PlanNode;
use bufferdb_cachesim::{CodeRegion, MachineConfig, PerfCounters};
use bufferdb_storage::Catalog;
use bufferdb_types::{DbError, Result, SchemaRef, Tuple};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex};

/// Upper bound on rows per morsel. Large enough that per-morsel overhead
/// (one subtree open/close, one coordinator dispatch) is noise; small
/// enough that a scan splits into many more morsels than workers, so the
/// shared queue balances skew from uneven predicates.
pub const MORSEL_ROWS: u32 = 4096;

/// Morsels per worker targeted when the domain is small: work-stealing off
/// the shared queue needs several morsels per worker to balance.
const MORSELS_PER_WORKER: usize = 4;

/// Modeled instructions a worker spends pushing one tuple into the gather
/// queue (outside any operator bracket: this is the lane residual charged
/// to the exchange operator).
const QUEUE_PUSH_INSTR: u64 = 12;

/// Modeled instructions the coordinator spends handing one gathered tuple
/// to its parent.
const GATHER_INSTR: u64 = 10;

/// Gather channel bound: workers stall once this many tuples are in flight.
const CHANNEL_BOUND: usize = 256;

/// Rows of the subtree's driving leaf scan — the morsel domain. The driving
/// leaf is the first-opened scan of the subtree (probe side of a hash join,
/// outer side of a nested loop), reached through first children.
pub(crate) fn driving_leaf_rows(plan: &PlanNode, catalog: &Catalog) -> Result<u32> {
    match plan {
        PlanNode::SeqScan { table, .. } => Ok(catalog.table(table)?.row_count() as u32),
        PlanNode::IndexScan { index, .. } => {
            let idx = catalog.index(index)?;
            Ok(catalog.table(&idx.table)?.row_count() as u32)
        }
        other => {
            let children = other.children();
            match children.first() {
                Some(c) => driving_leaf_rows(c, catalog),
                None => Err(DbError::InvalidPlan(
                    "exchange subtree has no driving scan".into(),
                )),
            }
        }
    }
}

/// What one worker (scoped thread or server lane) brings home from the
/// parallel phase.
pub(crate) struct WorkerOutcome {
    pub(crate) worker: u64,
    /// The worker's subtree, handed back for reuse — `None` when the worker
    /// panicked (the tree's internal state is indeterminate after unwind).
    pub(crate) tree: Option<Box<dyn Operator>>,
    pub(crate) counters: PerfCounters,
    pub(crate) profile: Option<QueryProfile>,
    /// The worker's flight-recorder track; unlike the profile it survives
    /// panics (the ring holds exactly the events leading up to the failure).
    pub(crate) trace: Option<Tracer>,
    pub(crate) morsels: u64,
    pub(crate) rows: u64,
    pub(crate) error: Option<DbError>,
}

impl WorkerOutcome {
    /// Outcome for a worker whose panic escaped even the in-thread
    /// containment (should be unreachable; kept so `join` never unwinds
    /// into the coordinator).
    fn from_escaped_panic(worker: usize, payload: &(dyn std::any::Any + Send)) -> Self {
        WorkerOutcome {
            worker: worker as u64,
            tree: None,
            counters: PerfCounters::default(),
            profile: None,
            trace: None,
            morsels: 0,
            rows: 0,
            error: Some(DbError::WorkerFailed(format!(
                "exchange worker {worker} panicked: {}",
                fault::panic_message(payload)
            ))),
        }
    }
}

/// A parallel phase an exchange hands to a server scheduler: the morsel
/// ranges (bucket `i` collects morsel `i`'s output rows, in index order)
/// plus the pre-built per-lane subtree copies and their profiler labels.
pub(crate) struct PhaseRequest {
    pub(crate) morsels: Vec<(u32, u32)>,
    pub(crate) trees: Vec<Box<dyn Operator>>,
    /// Subtree labels for per-lane profilers; empty when unprofiled.
    pub(crate) labels: Vec<String>,
}

/// What a delegated phase brings back: per-morsel output buckets plus one
/// outcome per lane, shaped exactly like a joined thread worker's so the
/// merge path is shared.
pub(crate) struct PhaseOutcome {
    pub(crate) buckets: Vec<Vec<Tuple>>,
    pub(crate) outcomes: Vec<WorkerOutcome>,
}

/// A scheduler that runs exchange phases on shared server workers instead of
/// per-query scoped threads. Installed on [`ExecContext`] by the server's
/// drive runners; when present, [`ExchangeOp::open`] routes its parallel
/// phase through it, so queries submitted to a [`crate::server`] share one
/// fixed worker pool (and its simulated per-core i-caches) instead of
/// spinning up threads per query.
///
/// The trait also owns the drive's counter bookkeeping: in server mode the
/// coordinator borrows a pool worker's long-lived machine, so the query's
/// total is *assembled* — machine deltas outside phases (tracked between
/// `begin_drive`/`run_phase`/`seal_drive` snapshots) plus every lane's
/// accumulated per-unit deltas — rather than read off a fresh machine.
///
/// `Send` because lane contexts (which embed the delegate slot's type) are
/// handed between pool workers behind locks.
pub(crate) trait ExchangeDelegate: Send {
    /// Note the machine snapshot at drive start: the baseline for the
    /// coordinator's own-work accounting.
    fn begin_drive(&mut self, base: PerfCounters);

    /// Run one parallel phase to completion. Called with the delegate taken
    /// *out* of `ctx` (no reentrancy through this context).
    fn run_phase(&mut self, ctx: &mut ExecContext, req: PhaseRequest) -> PhaseOutcome;

    /// Close the drive: `now` is the final machine snapshot. Returns the
    /// query's total counters: coordinator deltas outside phases plus every
    /// lane's accumulated counters.
    fn seal_drive(&mut self, now: PerfCounters) -> PerfCounters;
}

/// Pop the next morsel, recovering the queue from poison: the claim
/// critical section cannot itself panic, but one failed worker must never
/// cascade a poisoned-lock panic through the rest of the pool.
fn claim_morsel(queue: &Mutex<VecDeque<(usize, (u32, u32))>>) -> Option<(usize, (u32, u32))> {
    queue
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .pop_front()
}

/// One worker's whole parallel phase: claim morsels until the queue is
/// empty, a stop is signalled, the query is cancelled, or the subtree
/// fails. Panics anywhere inside the subtree are contained here and
/// converted to [`DbError::WorkerFailed`]; the first failure of any kind
/// raises `stop` so sibling workers quit at their next claim.
#[allow(clippy::too_many_arguments)]
fn worker_phase(
    worker: usize,
    mut tree: Box<dyn Operator>,
    cfg: MachineConfig,
    labels: &[String],
    queue: &Mutex<VecDeque<(usize, (u32, u32))>>,
    tx: mpsc::SyncSender<(usize, u64, Tuple)>,
    stop: &AtomicBool,
    cancel: &crate::cancel::CancelToken,
    faults: &std::sync::Arc<crate::fault::FaultRegistry>,
    tracer: Option<Tracer>,
) -> WorkerOutcome {
    let mut wctx = ExecContext::for_worker(cfg, cancel, faults);
    if !labels.is_empty() {
        wctx.profiler = Some(QueryProfiler::new(labels));
    }
    wctx.tracer = tracer;
    let mut morsels_done = 0u64;
    let mut rows = 0u64;
    // The morsel in flight, tracked outside the unwind boundary so an
    // error or contained panic still gets a terminal `MorselAbort` event.
    let mut in_flight: Option<u32> = None;
    let caught = catch_unwind(AssertUnwindSafe(|| -> Result<()> {
        loop {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            wctx.check_cancel()?;
            let Some((idx, range)) = claim_morsel(queue) else {
                break;
            };
            morsels_done += 1;
            let t0 = wctx.trace_now();
            wctx.trace(TraceEvent::MorselClaim {
                morsel: idx as u32,
                lo: range.0,
                hi: range.1,
            });
            in_flight = Some(idx as u32);
            wctx.fault(fault::EXCHANGE_MORSEL)?;
            wctx.morsel = Some(range);
            let before = rows;
            run_morsel(&mut *tree, &mut wctx, idx, &tx, &mut rows)?;
            wctx.trace(TraceEvent::MorselComplete {
                morsel: idx as u32,
                rows: rows - before,
                start_ns: t0,
            });
            if wctx.trace_enabled() {
                wctx.trace_metric(hist::MORSEL_SERVICE_NS, wctx.trace_now().saturating_sub(t0));
            }
            in_flight = None;
        }
        Ok(())
    }));
    drop(tx);
    let (error, panicked) = match caught {
        Ok(Ok(())) => (None, false),
        Ok(Err(e)) => (Some(e), false),
        Err(payload) => (
            Some(DbError::WorkerFailed(format!(
                "exchange worker {worker} panicked: {}",
                fault::panic_message(&*payload)
            ))),
            true,
        ),
    };
    if error.is_some() {
        stop.store(true, Ordering::Relaxed);
    }
    if let Some(morsel) = in_flight {
        wctx.trace(TraceEvent::MorselAbort { morsel });
    }
    if panicked {
        wctx.trace(TraceEvent::WorkerPanic);
    }
    let counters = wctx.machine.snapshot();
    // A panicked worker's profiler brackets are unbalanced mid-call; its
    // per-operator split is meaningless, so only the lane counters survive
    // (charged to the exchange operator — conservation holds).
    let profile = if panicked {
        wctx.profiler = None;
        None
    } else {
        wctx.profiler.take().map(|p| p.finish(counters))
    };
    WorkerOutcome {
        worker: worker as u64,
        tree: (!panicked).then_some(tree),
        counters,
        profile,
        trace: wctx.tracer.take(),
        morsels: morsels_done,
        rows,
        error,
    }
}

/// The exchange operator (plan node [`PlanNode::Exchange`]).
pub struct ExchangeOp {
    schema: SchemaRef,
    code: CodeRegion,
    workers: usize,
    /// Row-id domain of the driving leaf scan, partitioned into morsels.
    domain: u32,
    obs: Option<ObsId>,
    /// Profiler id of the subtree's root: worker op `i` merges into
    /// `child_base + i` (both sides register the subtree in pre-order).
    child_base: usize,
    worker_trees: Vec<Box<dyn Operator>>,
    /// Subtree labels for per-worker profilers; empty when unprofiled.
    worker_labels: Vec<String>,
    gathered: VecDeque<Tuple>,
    out_region: u32,
    batch_hint: usize,
}

impl ExchangeOp {
    /// Build an exchange over pre-built per-worker subtree copies.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        fm: &mut FootprintModel,
        schema: SchemaRef,
        workers: usize,
        domain: u32,
        obs: Option<ObsId>,
        child_base: usize,
        worker_trees: Vec<Box<dyn Operator>>,
        worker_labels: Vec<String>,
    ) -> Self {
        ExchangeOp {
            schema,
            code: fm.region_for(&OpKind::Exchange),
            workers: workers.max(1),
            domain,
            obs,
            child_base,
            worker_trees,
            worker_labels,
            gathered: VecDeque::new(),
            out_region: u32::MAX,
            batch_hint: DEFAULT_BATCH,
        }
    }

    fn morsels(&self) -> Vec<(u32, u32)> {
        let chunk = (self.domain as usize)
            .div_ceil(self.workers * MORSELS_PER_WORKER)
            .clamp(1, MORSEL_ROWS as usize) as u32;
        let mut out = Vec::new();
        let mut lo = 0u32;
        while lo < self.domain {
            let hi = lo.saturating_add(chunk).min(self.domain);
            out.push((lo, hi));
            lo = hi;
        }
        out
    }

    /// Merge joined worker (or server-lane) outcomes into the coordinating
    /// context: restore trees, fold profiles and lane records, model the
    /// per-morsel dispatch cost, surface the first failure.
    ///
    /// In `server_mode` the lane counters are *not* folded into the
    /// coordinator's machine — each lane ran on a long-lived pool-worker
    /// machine whose counters stay put; the delegate assembles the query
    /// total instead. After absorbing lane profiles the profiler is
    /// resynchronized to the machine so deltas that accrued on the borrowed
    /// core during the phase (they belong to lanes, already absorbed above)
    /// are not double-charged to the enclosing operator bracket.
    fn merge_outcomes(
        &mut self,
        ctx: &mut ExecContext,
        outcomes: Vec<WorkerOutcome>,
        server_mode: bool,
    ) -> Option<DbError> {
        let mut restored = Vec::with_capacity(outcomes.len());
        let mut first_err = None;
        let mut dispatched = 0u64;
        for oc in outcomes {
            dispatched += oc.morsels;
            let lane = ExchangeLane {
                worker: oc.worker,
                morsels: oc.morsels,
                rows: oc.rows,
                counters: oc.counters,
            };
            if server_mode {
                ctx.absorb_lane_profile(self.obs, self.child_base, oc.profile.as_ref(), lane);
            } else {
                ctx.absorb_worker(
                    self.obs,
                    self.child_base,
                    oc.counters,
                    oc.profile.as_ref(),
                    lane,
                );
            }
            ctx.absorb_trace(oc.trace);
            if let Some(tree) = oc.tree {
                restored.push(tree);
            }
            if first_err.is_none() {
                first_err = oc.error;
            }
        }
        self.worker_trees = restored;
        if server_mode {
            let now = ctx.machine.snapshot();
            if let Some(p) = ctx.profiler.as_mut() {
                p.resync(now);
            }
        }
        // Coordinator-side dispatch cost: one pass over the exchange's code
        // per morsel handed out, inside the exchange's profiling bracket.
        for _ in 0..dispatched {
            ctx.machine.exec_region(&mut self.code);
        }
        first_err
    }

    /// Server-mode `open`: hand the phase to the installed scheduler instead
    /// of spawning scoped threads, then merge exactly as the threaded path
    /// does.
    fn open_delegated(&mut self, ctx: &mut ExecContext) -> Result<()> {
        let Some(mut delegate) = ctx.delegate.take() else {
            return Err(DbError::ExecProtocol(
                "exchange delegate vanished before the phase".into(),
            ));
        };
        let req = PhaseRequest {
            morsels: self.morsels(),
            trees: std::mem::take(&mut self.worker_trees),
            labels: self.worker_labels.clone(),
        };
        let out = delegate.run_phase(ctx, req);
        ctx.delegate = Some(delegate);
        // Resequence by morsel index: serial row order for seq-scan leaves.
        self.gathered = out.buckets.into_iter().flatten().collect();
        match self.merge_outcomes(ctx, out.outcomes, true) {
            Some(e) => {
                // Partial gathers are meaningless once any lane failed.
                self.gathered.clear();
                Err(e)
            }
            None => Ok(()),
        }
    }
}

/// Run one morsel through a worker's subtree, streaming output to the
/// gather channel tagged with the morsel index and the enqueue timestamp
/// (0 when untraced; the coordinator turns it into a gather-wait sample).
fn run_morsel(
    tree: &mut dyn Operator,
    wctx: &mut ExecContext,
    idx: usize,
    tx: &mpsc::SyncSender<(usize, u64, Tuple)>,
    rows: &mut u64,
) -> Result<()> {
    tree.open(wctx)?;
    let mut sent = 0u64;
    while let Some(slot) = tree.next(wctx)? {
        let t = wctx.arena.tuple(slot).clone();
        wctx.machine.add_instructions(QUEUE_PUSH_INSTR);
        // A send error means the coordinator stopped draining (it is
        // unwinding an error of its own): stop producing.
        if tx.send((idx, wctx.trace_now(), t)).is_err() {
            break;
        }
        *rows += 1;
        sent += 1;
    }
    if sent > 0 {
        wctx.trace(TraceEvent::GatherEnqueue {
            morsel: idx as u32,
            rows: sent,
        });
    }
    tree.close(wctx)
}

/// Channel-free variant of [`run_morsel`] for server lanes: output rows are
/// collected straight into the morsel's bucket (the claiming worker already
/// holds it), with the same modeled enqueue cost per tuple so server and
/// scoped-thread execution charge identically.
pub(crate) fn run_morsel_into(
    tree: &mut dyn Operator,
    wctx: &mut ExecContext,
    idx: usize,
    out: &mut Vec<Tuple>,
    rows: &mut u64,
) -> Result<()> {
    tree.open(wctx)?;
    let mut sent = 0u64;
    while let Some(slot) = tree.next(wctx)? {
        let t = wctx.arena.tuple(slot).clone();
        wctx.machine.add_instructions(QUEUE_PUSH_INSTR);
        out.push(t);
        *rows += 1;
        sent += 1;
    }
    if sent > 0 {
        wctx.trace(TraceEvent::GatherEnqueue {
            morsel: idx as u32,
            rows: sent,
        });
    }
    tree.close(wctx)
}

impl Operator for ExchangeOp {
    fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn set_batch_hint(&mut self, n: usize) {
        self.batch_hint = self.batch_hint.max(n);
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.out_region = ctx
            .arena
            .alloc_region(self.batch_hint as u32 + 1, schema_slot_bytes(&self.schema));
        if ctx.delegate.is_some() {
            return self.open_delegated(ctx);
        }
        let cfg = ctx.machine.config().clone();
        let morsels = self.morsels();
        let n_morsels = morsels.len();
        let queue: Mutex<VecDeque<(usize, (u32, u32))>> =
            Mutex::new(morsels.into_iter().enumerate().collect());
        let trees = std::mem::take(&mut self.worker_trees);
        let labels = &self.worker_labels;
        let (tx, rx) = mpsc::sync_channel::<(usize, u64, Tuple)>(CHANNEL_BOUND);
        let mut buckets: Vec<Vec<Tuple>> = (0..n_morsels).map(|_| Vec::new()).collect();
        // First failure (error, panic, or cancellation) raises `stop`;
        // sibling workers observe it at their next morsel claim.
        let stop = AtomicBool::new(false);
        let cancel = ctx.cancel.clone();
        let faults = std::sync::Arc::clone(&ctx.faults);
        // Per-worker flight-recorder rings on the coordinator's clock; each
        // comes back in the worker's outcome and merges as its own track.
        let tracers: Vec<Option<Tracer>> = (0..trees.len())
            .map(|w| {
                ctx.tracer
                    .as_ref()
                    .map(|t| t.for_worker(format!("worker-{w}")))
            })
            .collect();
        let outcomes: Vec<WorkerOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = trees
                .into_iter()
                .zip(tracers)
                .enumerate()
                .map(|(w, (tree, tracer))| {
                    let tx = tx.clone();
                    let queue = &queue;
                    let cfg = cfg.clone();
                    let stop = &stop;
                    let cancel = &cancel;
                    let faults = &faults;
                    s.spawn(move || {
                        worker_phase(
                            w, tree, cfg, labels, queue, tx, stop, cancel, faults, tracer,
                        )
                    })
                })
                .collect();
            // The coordinator drains the gather channel while workers run;
            // dropping its own sender first lets the loop end when the last
            // worker hangs up.
            drop(tx);
            for (idx, enq_ns, t) in rx {
                if let Some(tr) = ctx.tracer.as_mut() {
                    tr.metric(hist::GATHER_WAIT_NS, tr.now_ns().saturating_sub(enq_ns));
                    if buckets[idx].is_empty() {
                        tr.record(TraceEvent::GatherDequeue { morsel: idx as u32 });
                    }
                }
                buckets[idx].push(t);
            }
            // Join-and-collect: a worker result is always a WorkerOutcome —
            // panics were contained inside the thread, and even an escaped
            // panic payload is converted here rather than unwinding into
            // the coordinator.
            handles
                .into_iter()
                .enumerate()
                .map(|(w, h)| {
                    h.join()
                        .unwrap_or_else(|p| WorkerOutcome::from_escaped_panic(w, &*p))
                })
                .collect()
        });
        // Resequence by morsel index: serial row order for seq-scan leaves.
        self.gathered = buckets.into_iter().flatten().collect();
        match self.merge_outcomes(ctx, outcomes, false) {
            Some(e) => {
                // Partial gathers are meaningless once any worker failed.
                self.gathered.clear();
                Err(e)
            }
            None => Ok(()),
        }
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<TupleSlot>> {
        match self.gathered.pop_front() {
            None => Ok(None),
            Some(t) => {
                ctx.machine.add_instructions(GATHER_INSTR);
                Ok(Some(ctx.arena.store(self.out_region, t, &mut ctx.machine)))
            }
        }
    }

    fn close(&mut self, _ctx: &mut ExecContext) -> Result<()> {
        self.gathered.clear();
        Ok(())
    }
}
