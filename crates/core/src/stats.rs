//! Execution statistics returned alongside query results.

use bufferdb_cachesim::{BreakdownReport, PerfCounters};
use std::time::Duration;

/// Everything the paper's experiments measure for one query execution.
#[derive(Debug, Clone, Copy)]
pub struct ExecStats {
    /// Result rows produced.
    pub rows: u64,
    /// Simulated hardware counters (VTune equivalent).
    pub counters: PerfCounters,
    /// Cost-model breakdown (trace / L2 / mispredict / other penalties).
    pub breakdown: BreakdownReport,
    /// Host wall-clock time (not the modeled time; useful for sanity only).
    pub wall: Duration,
}

impl ExecStats {
    /// Modeled elapsed seconds (cycles / clock).
    pub fn seconds(&self) -> f64 {
        self.breakdown.seconds()
    }

    /// Modeled cost per instruction (Table 4's metric).
    pub fn cpi(&self) -> f64 {
        self.breakdown.cpi()
    }

    /// Relative improvement of `self` over `baseline` in modeled time
    /// (positive = faster), e.g. `0.12` = 12 % faster.
    pub fn improvement_over(&self, baseline: &ExecStats) -> f64 {
        let base = baseline.seconds();
        if base == 0.0 {
            0.0
        } else {
            (base - self.seconds()) / base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bufferdb_cachesim::MachineConfig;

    fn stats(l1i_misses: u64) -> ExecStats {
        let counters = PerfCounters {
            instructions: 1000,
            l1i_misses,
            ..Default::default()
        };
        let cfg = MachineConfig::pentium4_like();
        ExecStats {
            rows: 1,
            counters,
            breakdown: BreakdownReport::from_counters(&counters, &cfg),
            wall: Duration::from_millis(1),
        }
    }

    #[test]
    fn improvement_is_relative_to_baseline() {
        let slow = stats(1000);
        let fast = stats(100);
        let imp = fast.improvement_over(&slow);
        assert!(imp > 0.0 && imp < 1.0);
        assert!(slow.improvement_over(&fast) < 0.0);
    }

    #[test]
    fn seconds_and_cpi_delegate_to_breakdown() {
        let s = stats(10);
        assert!(s.seconds() > 0.0);
        assert!(s.cpi() > 0.0);
    }
}
