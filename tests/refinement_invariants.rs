//! Structural invariants of refined plans, checked against the rules of §6:
//! no buffer above the root, none above blocking operators, none above the
//! parameterized inner of a foreign-key nested-loop join, configured sizes
//! everywhere, and idempotency.

use bufferdb::prelude::*;
use bufferdb::tpch::{self, queries, queries::JoinMethod};

fn all_plans(catalog: &bufferdb::storage::Catalog) -> Vec<(&'static str, PlanNode)> {
    vec![
        ("paper q1", queries::paper_query1(catalog).unwrap()),
        ("paper q2", queries::paper_query2(catalog).unwrap()),
        (
            "q3 nl",
            queries::paper_query3(catalog, JoinMethod::NestLoop).unwrap(),
        ),
        (
            "q3 hj",
            queries::paper_query3(catalog, JoinMethod::HashJoin).unwrap(),
        ),
        (
            "q3 mj",
            queries::paper_query3(catalog, JoinMethod::MergeJoin).unwrap(),
        ),
        ("tpch q1", queries::tpch_q1(catalog).unwrap()),
        ("tpch q6", queries::tpch_q6(catalog).unwrap()),
        ("tpch q12", queries::tpch_q12(catalog).unwrap()),
        ("tpch q14", queries::tpch_q14(catalog).unwrap()),
    ]
}

/// Walk the plan, asserting buffer-placement invariants.
fn check_invariants(node: &PlanNode, cfg: &RefineConfig, path: &str) {
    if let PlanNode::Buffer { input, size } = node {
        assert_eq!(*size, cfg.buffer_size, "buffer size at {path}");
        assert!(
            !input.is_blocking(),
            "buffer directly above blocking operator at {path}: {input:?}"
        );
        assert!(
            !matches!(**input, PlanNode::Buffer { .. }),
            "stacked buffers at {path}"
        );
    }
    if let PlanNode::NestLoopJoin {
        inner,
        fk_inner: true,
        ..
    } = node
    {
        assert!(
            !matches!(**inner, PlanNode::Buffer { .. }),
            "buffer above FK inner at {path}"
        );
    }
    for (i, c) in node.children().iter().enumerate() {
        check_invariants(c, cfg, &format!("{path}/{i}"));
    }
}

#[test]
fn refined_plans_satisfy_placement_rules() {
    let catalog = tpch::generate_catalog(0.002, 11);
    let cfg = RefineConfig::default();
    for (name, plan) in all_plans(&catalog) {
        let refined = refine_plan(&plan, &catalog, &cfg);
        assert!(
            !matches!(refined, PlanNode::Buffer { .. }),
            "{name}: root must not be a buffer"
        );
        check_invariants(&refined, &cfg, name);
    }
}

#[test]
fn refinement_is_idempotent() {
    let catalog = tpch::generate_catalog(0.002, 11);
    let cfg = RefineConfig::default();
    for (name, plan) in all_plans(&catalog) {
        let once = refine_plan(&plan, &catalog, &cfg);
        let twice = refine_plan(&once, &catalog, &cfg);
        assert_eq!(
            once.buffer_count(),
            twice.buffer_count(),
            "{name}: refining twice must not add buffers"
        );
    }
}

#[test]
fn no_buffers_below_the_cardinality_threshold() {
    let catalog = tpch::generate_catalog(0.002, 11);
    let cfg = RefineConfig {
        cardinality_threshold: f64::INFINITY,
        ..Default::default()
    };
    for (name, plan) in all_plans(&catalog) {
        let refined = refine_plan(&plan, &catalog, &cfg);
        assert_eq!(refined.buffer_count(), 0, "{name}");
    }
}

#[test]
fn infinite_cache_means_no_buffers() {
    let catalog = tpch::generate_catalog(0.002, 11);
    let cfg = RefineConfig {
        l1i_capacity: usize::MAX,
        ..Default::default()
    };
    for (name, plan) in all_plans(&catalog) {
        let refined = refine_plan(&plan, &catalog, &cfg);
        assert_eq!(refined.buffer_count(), 0, "{name}");
    }
}

#[test]
fn tiny_cache_buffers_every_eligible_group() {
    let catalog = tpch::generate_catalog(0.002, 11);
    // A 2 KB budget: nothing merges, every eligible group gets a buffer.
    let cfg = RefineConfig {
        l1i_capacity: 2 * 1024,
        cardinality_threshold: 0.0,
        ..Default::default()
    };
    let plan = queries::paper_query1(&catalog).unwrap();
    let refined = refine_plan(&plan, &catalog, &cfg);
    assert_eq!(refined.buffer_count(), 1, "scan group closed under agg");
    let q3 = queries::paper_query3(&catalog, JoinMethod::MergeJoin).unwrap();
    let refined3 = refine_plan(&q3, &catalog, &cfg);
    assert!(refined3.buffer_count() >= 3, "{refined3:#?}");
}

#[test]
fn refined_paper_plans_match_published_figures() {
    let catalog = tpch::generate_catalog(0.01, 11);
    let cfg = RefineConfig::default();
    // Figure 5(b): one buffer between scan and aggregation for Query 1.
    let q1 = refine_plan(&queries::paper_query1(&catalog).unwrap(), &catalog, &cfg);
    assert_eq!(q1.buffer_count(), 1);
    // §7.2: no buffers for Query 2.
    let q2 = refine_plan(&queries::paper_query2(&catalog).unwrap(), &catalog, &cfg);
    assert_eq!(q2.buffer_count(), 0);
    // Figure 15(b): one buffer (above the outer scan).
    let nl = refine_plan(
        &queries::paper_query3(&catalog, JoinMethod::NestLoop).unwrap(),
        &catalog,
        &cfg,
    );
    assert_eq!(nl.buffer_count(), 1);
    // Figure 16(b): two buffers (above each scan).
    let hj = refine_plan(
        &queries::paper_query3(&catalog, JoinMethod::HashJoin).unwrap(),
        &catalog,
        &cfg,
    );
    assert_eq!(hj.buffer_count(), 2);
    // Figure 17(b): two buffers (below the sort, above the index scan).
    let mj = refine_plan(
        &queries::paper_query3(&catalog, JoinMethod::MergeJoin).unwrap(),
        &catalog,
        &cfg,
    );
    assert_eq!(mj.buffer_count(), 2);
}
