//! The machine facade: caches + TLB + predictor + prefetcher + counters.

use crate::branch::{build_predictor, BranchPredictor};
use crate::cache::Cache;
use crate::config::MachineConfig;
use crate::counters::PerfCounters;
use crate::heat::{HeatSnapshot, UNTRACKED_SEGMENT};
use crate::layout::CodeRegion;
use crate::prefetch::StreamPrefetcher;
use crate::report::BreakdownReport;
use crate::tlb::Tlb;

/// One simulated CPU. The query executor drives it with three event kinds:
/// [`Machine::exec_region`] (an operator executes its code for one call),
/// [`Machine::branch`] (a data-dependent branch resolved), and
/// [`Machine::data_read`] / [`Machine::data_write`] (tuple memory traffic).
pub struct Machine {
    cfg: MachineConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    itlb: Tlb,
    predictor: Box<dyn BranchPredictor + Send>,
    prefetcher: StreamPrefetcher,
    instructions: u64,
    l2_accesses: u64,
    l2_misses: u64,
    l2_covered: u64,
    l2_line_shift: u32,
    /// Counters merged in from other simulated cores (worker machines).
    absorbed: PerfCounters,
    /// Segment-name interner for the L1i heat ledger; index = segment id.
    /// `None` while the heatmap is off (the common case).
    heat_names: Option<Vec<String>>,
}

impl Machine {
    /// A cold machine for `cfg`.
    pub fn new(cfg: MachineConfig) -> Self {
        cfg.validate().expect("invalid machine config");
        Machine {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            itlb: Tlb::new(cfg.itlb_entries),
            predictor: build_predictor(&cfg.branch),
            prefetcher: StreamPrefetcher::new(cfg.prefetch_streams),
            instructions: 0,
            l2_accesses: 0,
            l2_misses: 0,
            l2_covered: 0,
            l2_line_shift: cfg.l2.line_size.trailing_zeros(),
            absorbed: PerfCounters::default(),
            heat_names: None,
            cfg,
        }
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    fn l2_access(&mut self, addr: u64, prefetchable: bool) {
        self.l2_accesses += 1;
        if !self.l2.access(addr) {
            self.l2_misses += 1;
            let line = addr >> self.l2_line_shift;
            if prefetchable && self.prefetcher.observe_miss(line) {
                self.l2_covered += 1;
            }
        }
    }

    /// Simulate one execution of an operator's code: every function is
    /// entered (one ITLB lookup), every instruction line is fetched through
    /// L1i (missing to L2/memory), and every static branch site fires with
    /// its deterministic data-independent pattern.
    pub fn exec_region(&mut self, region: &mut CodeRegion) {
        let line = self.cfg.l1i.line_size as u64;
        for seg in region.segments() {
            if let Some(names) = &mut self.heat_names {
                // Announce the segment so L1i misses in the loop below land
                // in its heat cell. Interning is per segment execution, not
                // per line, and the vocabulary is ~30 names.
                let id = match names.iter().position(|n| n == &seg.name) {
                    Some(i) => i,
                    None => {
                        names.push(seg.name.clone());
                        names.len() - 1
                    }
                };
                self.l1i.set_heat_segment(id as u16);
            }
            for &(base, len) in &seg.functions {
                self.itlb.access(base);
                self.instructions += (len as u64) / 4;
                let mut addr = base;
                let end = base + len as u64;
                while addr < end {
                    if !self.l1i.access(addr) {
                        // Instruction refill from L2 (not prefetchable: the
                        // P4 trace cache rebuilds traces on demand).
                        self.l2_access(addr, false);
                    }
                    addr += line;
                }
            }
        }
        for (addr, kind, count) in region.site_state_mut() {
            let taken = kind.outcome(*count);
            *count += 1;
            self.predictor.predict_and_update(*addr, taken);
        }
    }

    /// Resolve one data-dependent branch (e.g. a predicate outcome) at the
    /// given site address.
    pub fn branch(&mut self, site: u64, taken: bool) {
        self.predictor.predict_and_update(site, taken);
    }

    /// Simulate a data read of `len` bytes at `addr` (tuple slot access).
    pub fn data_read(&mut self, addr: u64, len: usize) {
        self.data_access(addr, len)
    }

    /// Simulate a data write of `len` bytes at `addr` (write-allocate).
    pub fn data_write(&mut self, addr: u64, len: usize) {
        self.data_access(addr, len)
    }

    fn data_access(&mut self, addr: u64, len: usize) {
        let line = self.cfg.l1d.line_size as u64;
        let mut a = addr & !(line - 1);
        let end = addr + len.max(1) as u64;
        while a < end {
            if !self.l1d.access(a) {
                self.l2_access(a, true);
            }
            a += line;
        }
    }

    /// Account for computation that executes no modeled code region (e.g.
    /// tight loops inside sort comparisons).
    pub fn add_instructions(&mut self, n: u64) {
        self.instructions += n;
    }

    /// Tag all execution from this point as belonging to query `tag`,
    /// enabling cross-query L1i eviction attribution on this core.
    ///
    /// A multi-query server calls this whenever a worker's long-lived
    /// machine switches to a different query's work: L1i lines the new
    /// query pushes out are stamped with its tag, and when the *old* query
    /// later re-misses on those lines the miss lands in
    /// [`PerfCounters::l1i_cross_misses`] — the modeled cost of sharing an
    /// instruction cache between concurrent queries. Solo executions never
    /// call this and pay nothing.
    pub fn set_query_tag(&mut self, tag: u32) {
        self.l1i.set_owner(tag);
    }

    /// Enable the per-segment L1i heat ledger on this core. Idempotent.
    /// Enable before the first [`Machine::exec_region`] for exact
    /// miss-conservation (Σ cell misses == `l1i_misses`); attribution adds
    /// zero modeled cost either way.
    pub fn enable_heatmap(&mut self) {
        if self.heat_names.is_none() {
            self.heat_names = Some(vec![UNTRACKED_SEGMENT.to_string()]);
            self.l1i.enable_heat();
        }
    }

    /// Whether the heat ledger is on.
    pub fn heatmap_enabled(&self) -> bool {
        self.heat_names.is_some()
    }

    /// Resolve the L1i heat ledger into names: per-(segment, owner) miss/
    /// eviction attribution plus point-in-time per-set residency. Empty when
    /// the heatmap was never enabled. Snapshots of several machines merge
    /// with [`HeatSnapshot::merge`].
    pub fn heat_snapshot(&self) -> HeatSnapshot {
        let mut snap = HeatSnapshot::default();
        let Some(names) = &self.heat_names else {
            return snap;
        };
        snap.sets = self.l1i.sets();
        let name_of = |id: u16| -> String {
            names
                .get(id as usize)
                .cloned()
                .unwrap_or_else(|| UNTRACKED_SEGMENT.to_string())
        };
        for ((seg, owner), cell) in self.l1i.heat_cells() {
            snap.cells.insert((name_of(seg), owner), cell);
        }
        for (set, seg, n) in self.l1i.heat_residency() {
            *snap.residency.entry((set, name_of(seg))).or_insert(0) += n;
        }
        snap
    }

    /// Fold another core's counter delta into this machine's totals.
    ///
    /// Parallel operators (exchange, partitioned hash build) simulate each
    /// worker on its own [`Machine`] — per-core L1i/ITLB/branch state, as the
    /// paper assumes — and merge the workers' counters into the coordinating
    /// machine at the end of the parallel phase. The merge is exact: after
    /// absorbing every worker, [`Machine::snapshot`] equals the field-wise
    /// sum of the coordinator's own activity and all worker activity.
    pub fn absorb(&mut self, other: &PerfCounters) {
        self.absorbed = self.absorbed + *other;
    }

    /// Snapshot every counter (this core's activity plus anything absorbed
    /// from worker machines).
    pub fn snapshot(&self) -> PerfCounters {
        self.absorbed
            + PerfCounters {
                instructions: self.instructions,
                l1i_accesses: self.l1i.accesses(),
                l1i_misses: self.l1i.misses(),
                l1i_cross_misses: self.l1i.cross_misses(),
                l1d_accesses: self.l1d.accesses(),
                l1d_misses: self.l1d.misses(),
                l2_accesses: self.l2_accesses,
                l2_misses: self.l2_misses,
                l2_covered: self.l2_covered,
                itlb_accesses: self.itlb.accesses(),
                itlb_misses: self.itlb.misses(),
                branches: self.predictor.branches(),
                mispredictions: self.predictor.mispredictions(),
            }
    }

    /// Modeled cycles for a counter delta, per the paper's methodology
    /// (penalty = events × latency, plus a base issue cost).
    pub fn cycles_for(&self, c: &PerfCounters) -> u64 {
        BreakdownReport::from_counters(c, &self.cfg).total_cycles
    }

    /// Execution-time breakdown for a counter delta (the paper's Figures
    /// 4, 9, 10, 13, 15–17).
    pub fn breakdown_for(&self, c: &PerfCounters) -> BreakdownReport {
        BreakdownReport::from_counters(c, &self.cfg)
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("cfg", &self.cfg)
            .field("counters", &self.snapshot())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{CodeLayout, CodeRegion, SegmentSpec};

    fn machine() -> Machine {
        Machine::new(MachineConfig::pentium4_like())
    }

    fn region(layout: &mut CodeLayout, name: &str, bytes: usize) -> CodeRegion {
        let seg = layout.define(&SegmentSpec::new(name, bytes));
        CodeRegion::new(vec![seg])
    }

    #[test]
    fn small_region_becomes_cache_resident() {
        let mut m = machine();
        let mut l = CodeLayout::new();
        let mut r = region(&mut l, "small", 4000);
        m.exec_region(&mut r);
        let cold = m.snapshot();
        assert!(cold.l1i_misses > 0, "compulsory misses expected");
        for _ in 0..100 {
            m.exec_region(&mut r);
        }
        let warm = m.snapshot() - cold;
        assert_eq!(
            warm.l1i_misses, 0,
            "4 KB of code must stay resident in 16 KB L1i"
        );
    }

    #[test]
    fn interleaving_two_large_regions_thrashes() {
        // Two 13 KB regions: together 26 KB > 16 KB L1i. Interleaved
        // execution (the paper's PCPC pattern) must miss heavily; batched
        // execution (PCCCC...PPPP) must not.
        let interleaved = {
            let mut m = machine();
            let mut l = CodeLayout::new();
            let mut a = region(&mut l, "parent", 13_000);
            let mut b = region(&mut l, "child", 13_000);
            for _ in 0..200 {
                m.exec_region(&mut b);
                m.exec_region(&mut a);
            }
            m.snapshot().l1i_misses
        };
        let batched = {
            let mut m = machine();
            let mut l = CodeLayout::new();
            let mut a = region(&mut l, "parent", 13_000);
            let mut b = region(&mut l, "child", 13_000);
            for _ in 0..2 {
                for _ in 0..100 {
                    m.exec_region(&mut b);
                }
                for _ in 0..100 {
                    m.exec_region(&mut a);
                }
            }
            m.snapshot().l1i_misses
        };
        assert!(
            batched * 4 < interleaved,
            "batched {batched} should be ≪ interleaved {interleaved}"
        );
    }

    #[test]
    fn combined_regions_under_capacity_do_not_thrash() {
        // 7 KB + 7 KB = 14 KB < 16 KB: interleaving is fine (paper's Query 2).
        let mut m = machine();
        let mut l = CodeLayout::new();
        let mut a = region(&mut l, "p", 7000);
        let mut b = region(&mut l, "c", 7000);
        for _ in 0..5 {
            m.exec_region(&mut b);
            m.exec_region(&mut a);
        }
        let warmup = m.snapshot();
        for _ in 0..100 {
            m.exec_region(&mut b);
            m.exec_region(&mut a);
        }
        let delta = m.snapshot() - warmup;
        let per_iter = delta.l1i_misses as f64 / 100.0;
        // A few conflict misses are tolerated; thrashing would be hundreds.
        assert!(per_iter < 20.0, "per-iteration misses {per_iter}");
    }

    #[test]
    fn data_accesses_flow_through_hierarchy() {
        let mut m = machine();
        m.data_write(0x1000_0000, 64);
        let c = m.snapshot();
        assert_eq!(c.l1d_accesses, 1);
        assert_eq!(c.l1d_misses, 1);
        assert_eq!(c.l2_accesses, 1);
        assert_eq!(c.l2_misses, 1);
        m.data_read(0x1000_0000, 64);
        let c2 = m.snapshot();
        assert_eq!(c2.l1d_misses, 1, "second access hits L1d");
    }

    #[test]
    fn sequential_data_misses_are_prefetch_covered() {
        let mut m = machine();
        // Stream through 1 MB sequentially — far beyond L2 (256 KB).
        for i in 0..16_384u64 {
            m.data_read(0x2000_0000 + i * 64, 64);
        }
        let c = m.snapshot();
        assert!(c.l2_misses > 1000);
        let covered_frac = c.l2_covered as f64 / c.l2_misses as f64;
        assert!(covered_frac > 0.9, "covered fraction {covered_frac}");
    }

    #[test]
    fn data_dependent_branches_feed_predictor() {
        let mut m = machine();
        for i in 0..1000u64 {
            m.branch(0x5000, i % 10 != 0); // 90% taken: learnable
        }
        let c = m.snapshot();
        assert_eq!(c.branches, 1000);
        assert!(c.mispredictions < 200, "got {}", c.mispredictions);
    }

    #[test]
    fn unaligned_data_access_touches_both_lines() {
        let mut m = machine();
        m.data_read(0x1000_0020, 96); // crosses a 64 B boundary
        assert_eq!(m.snapshot().l1d_accesses, 2);
    }

    #[test]
    fn heat_snapshot_conserves_machine_l1i_totals() {
        let mut m = machine();
        m.enable_heatmap();
        let mut l = CodeLayout::new();
        let mut a = region(&mut l, "parent", 13_000);
        let mut b = region(&mut l, "child", 13_000);
        m.set_query_tag(1);
        for _ in 0..50 {
            m.exec_region(&mut b);
            m.exec_region(&mut a);
        }
        m.set_query_tag(2);
        for _ in 0..50 {
            m.exec_region(&mut a);
        }
        let c = m.snapshot();
        let snap = m.heat_snapshot();
        assert_eq!(snap.total_misses(), c.l1i_misses);
        assert_eq!(snap.total_cross_misses(), c.l1i_cross_misses);
        assert_eq!(snap.total_cross_caused(), c.l1i_cross_misses);
        assert!(snap.cells.keys().any(|(s, _)| s == "parent"));
        assert!(snap.cells.keys().any(|(s, _)| s == "child"));
        let resident: u32 = snap.residency.values().sum();
        assert!(resident > 0, "warm cache has resident lines");
    }

    #[test]
    fn heatmap_adds_zero_modeled_cost() {
        let run = |heat: bool| {
            let mut m = machine();
            if heat {
                m.enable_heatmap();
            }
            let mut l = CodeLayout::new();
            let mut a = region(&mut l, "p", 13_000);
            let mut b = region(&mut l, "c", 13_000);
            m.set_query_tag(7);
            for _ in 0..100 {
                m.exec_region(&mut b);
                m.exec_region(&mut a);
            }
            m.snapshot()
        };
        assert_eq!(run(false), run(true), "heat must not perturb counters");
    }

    #[test]
    fn instructions_counted_per_execution() {
        let mut m = machine();
        let mut l = CodeLayout::new();
        let mut r = region(&mut l, "s", 4000);
        m.exec_region(&mut r);
        assert_eq!(m.snapshot().instructions, 1000); // 4000 bytes / 4
        m.add_instructions(50);
        assert_eq!(m.snapshot().instructions, 1050);
    }
}
