//! Hardware-counter snapshots, mirroring what the paper reads via VTune.

use std::ops::{Add, Sub};

/// A snapshot of every simulated event counter. Obtain via
/// [`crate::Machine::snapshot`]; subtract snapshots to get per-query deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Instructions retired (bytes fetched / 4).
    pub instructions: u64,
    /// L1 instruction (trace) cache accesses.
    pub l1i_accesses: u64,
    /// L1 instruction (trace) cache misses.
    pub l1i_misses: u64,
    /// L1i misses on lines last evicted by a *different* query (a subset of
    /// `l1i_misses`). Zero unless cross-query tagging is enabled via
    /// [`crate::Machine::set_query_tag`].
    pub l1i_cross_misses: u64,
    /// L1 data cache accesses.
    pub l1d_accesses: u64,
    /// L1 data cache misses.
    pub l1d_misses: u64,
    /// Unified L2 accesses (from both L1i and L1d misses).
    pub l2_accesses: u64,
    /// L2 misses to memory, including prefetch-covered ones.
    pub l2_misses: u64,
    /// L2 misses whose latency the sequential prefetcher hid.
    pub l2_covered: u64,
    /// ITLB lookups (one per function entered).
    pub itlb_accesses: u64,
    /// ITLB misses.
    pub itlb_misses: u64,
    /// Dynamic branches executed.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredictions: u64,
}

impl PerfCounters {
    /// L2 misses that actually paid memory latency.
    pub fn l2_misses_uncovered(&self) -> u64 {
        self.l2_misses - self.l2_covered
    }

    /// Branch misprediction ratio in [0, 1].
    pub fn misprediction_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.branches as f64
        }
    }

    /// L1i miss ratio in [0, 1].
    pub fn l1i_miss_ratio(&self) -> f64 {
        if self.l1i_accesses == 0 {
            0.0
        } else {
            self.l1i_misses as f64 / self.l1i_accesses as f64
        }
    }
}

impl Add for PerfCounters {
    type Output = PerfCounters;

    fn add(self, rhs: PerfCounters) -> PerfCounters {
        PerfCounters {
            instructions: self.instructions + rhs.instructions,
            l1i_accesses: self.l1i_accesses + rhs.l1i_accesses,
            l1i_misses: self.l1i_misses + rhs.l1i_misses,
            l1i_cross_misses: self.l1i_cross_misses + rhs.l1i_cross_misses,
            l1d_accesses: self.l1d_accesses + rhs.l1d_accesses,
            l1d_misses: self.l1d_misses + rhs.l1d_misses,
            l2_accesses: self.l2_accesses + rhs.l2_accesses,
            l2_misses: self.l2_misses + rhs.l2_misses,
            l2_covered: self.l2_covered + rhs.l2_covered,
            itlb_accesses: self.itlb_accesses + rhs.itlb_accesses,
            itlb_misses: self.itlb_misses + rhs.itlb_misses,
            branches: self.branches + rhs.branches,
            mispredictions: self.mispredictions + rhs.mispredictions,
        }
    }
}

impl Sub for PerfCounters {
    type Output = PerfCounters;

    fn sub(self, rhs: PerfCounters) -> PerfCounters {
        PerfCounters {
            instructions: self.instructions - rhs.instructions,
            l1i_accesses: self.l1i_accesses - rhs.l1i_accesses,
            l1i_misses: self.l1i_misses - rhs.l1i_misses,
            l1i_cross_misses: self.l1i_cross_misses - rhs.l1i_cross_misses,
            l1d_accesses: self.l1d_accesses - rhs.l1d_accesses,
            l1d_misses: self.l1d_misses - rhs.l1d_misses,
            l2_accesses: self.l2_accesses - rhs.l2_accesses,
            l2_misses: self.l2_misses - rhs.l2_misses,
            l2_covered: self.l2_covered - rhs.l2_covered,
            itlb_accesses: self.itlb_accesses - rhs.itlb_accesses,
            itlb_misses: self.itlb_misses - rhs.itlb_misses,
            branches: self.branches - rhs.branches,
            mispredictions: self.mispredictions - rhs.mispredictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_adds_fieldwise() {
        let a = PerfCounters {
            instructions: 10,
            l1i_misses: 3,
            ..Default::default()
        };
        let b = PerfCounters {
            instructions: 4,
            branches: 2,
            ..Default::default()
        };
        let s = a + b;
        assert_eq!(s.instructions, 14);
        assert_eq!(s.l1i_misses, 3);
        assert_eq!(s.branches, 2);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = PerfCounters {
            instructions: 10,
            l1i_misses: 3,
            ..Default::default()
        };
        let b = PerfCounters {
            instructions: 4,
            l1i_misses: 1,
            ..Default::default()
        };
        let d = a - b;
        assert_eq!(d.instructions, 6);
        assert_eq!(d.l1i_misses, 2);
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let c = PerfCounters::default();
        assert_eq!(c.misprediction_ratio(), 0.0);
        assert_eq!(c.l1i_miss_ratio(), 0.0);
    }

    #[test]
    fn uncovered_l2() {
        let c = PerfCounters {
            l2_misses: 10,
            l2_covered: 7,
            ..Default::default()
        };
        assert_eq!(c.l2_misses_uncovered(), 3);
    }
}
