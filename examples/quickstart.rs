//! Quickstart: open a database, prepare a query, let the refiner add a
//! buffer, and re-prepare to hit the shared plan cache.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bufferdb::prelude::*;

fn main() -> Result<()> {
    // 1. A catalog with one table: 200k rows of (id, amount).
    let catalog = Catalog::new();
    let mut builder = TableBuilder::new(
        "payments",
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("amount", DataType::Decimal),
        ]),
    );
    for i in 0..200_000i64 {
        builder.push(Tuple::new(vec![
            Datum::Int(i),
            Datum::Decimal(Decimal::from_cents(100 + (i * 37) % 50_000)),
        ]));
    }
    catalog.add_table(builder);

    // 2. A demand-pull plan: SELECT SUM(amount), AVG(amount), COUNT(*)
    //    FROM payments WHERE id < 150000.
    let plan = PlanNode::Aggregate {
        input: Box::new(PlanNode::SeqScan {
            table: "payments".into(),
            predicate: Some(Expr::col(0).lt(Expr::lit(150_000))),
            projection: None,
        }),
        group_by: vec![],
        aggs: vec![
            AggSpec::new(AggFunc::Sum, Expr::col(1), "total"),
            AggSpec::new(AggFunc::Avg, Expr::col(1), "avg"),
            AggSpec::count_star("n"),
        ],
    };

    // 3. Open a database over the simulated Pentium-4-like machine. For
    //    comparison, first run the *unrefined* plan directly.
    let db = Database::open(catalog, MachineConfig::pentium4_like());
    let (rows, original, _) = execute_query(
        &plan,
        db.catalog(),
        db.session().machine(),
        &QueryOpts::new(),
    )
    .into_result()?;
    println!("result: {}", rows[0]);
    println!("\noriginal plan:\n{}", explain(&plan, db.catalog()));
    println!("{}", original.breakdown);

    // 4. Prepare: the scan (13.2 K) + computed aggregation exceed the L1
    //    instruction cache, so refinement inserts a buffer operator, and the
    //    refined physical plan is cached under the query's fingerprint.
    let query = db.prepare(&plan)?;
    let (rows2, buffered, _) = query.execute().into_result()?;
    assert_eq!(
        format!("{}", rows[0]),
        format!("{}", rows2[0]),
        "same answer"
    );
    println!("refined plan:\n{}", explain(&query.plan(), db.catalog()));
    println!("{}", buffered.breakdown);

    println!(
        "instruction-cache misses: {} -> {} ({:.0}% fewer)",
        original.counters.l1i_misses,
        buffered.counters.l1i_misses,
        100.0 * (1.0 - buffered.counters.l1i_misses as f64 / original.counters.l1i_misses as f64)
    );
    println!(
        "modeled time: {:.3}s -> {:.3}s ({:+.1}% improvement)",
        original.seconds(),
        buffered.seconds(),
        100.0 * buffered.improvement_over(&original)
    );

    // 5. Preparing the same plan again skips optimization entirely: the
    //    shared plan cache returns the refined plan by fingerprint.
    let again = db.prepare(&plan)?;
    assert_eq!(again.fingerprint(), query.fingerprint());
    let stats = db.plan_cache().stats();
    println!(
        "\nplan cache: {} hit(s), {} miss(es), {} resident",
        stats.hits, stats.misses, stats.entries
    );
    Ok(())
}
