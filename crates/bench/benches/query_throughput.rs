//! End-to-end query throughput under the simulator, original vs refined
//! plans, at a small scale factor. Wall-clock here measures the whole
//! simulate-and-execute pipeline; the *modeled* comparisons live in the
//! `repro` binary. These benches catch performance regressions in the
//! engine/simulator and demonstrate that refined plans do not burden the
//! host (the extra buffer work is tiny).

use bufferdb_cachesim::MachineConfig;
use bufferdb_core::exec::execute_collect;
use bufferdb_core::refine::{refine_plan, RefineConfig};
use bufferdb_tpch::queries;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_query1(c: &mut Criterion) {
    let catalog = bufferdb_tpch::generate_catalog(0.002, 42);
    let machine = MachineConfig::pentium4_like();
    let plan = queries::paper_query1(&catalog).unwrap();
    let refined = refine_plan(&plan, &catalog, &RefineConfig::default());
    let mut g = c.benchmark_group("query1");
    g.sample_size(10);
    g.bench_function("original", |b| {
        b.iter(|| black_box(execute_collect(&plan, &catalog, &machine).unwrap()))
    });
    g.bench_function("refined", |b| {
        b.iter(|| black_box(execute_collect(&refined, &catalog, &machine).unwrap()))
    });
    g.finish();
}

fn bench_query6(c: &mut Criterion) {
    let catalog = bufferdb_tpch::generate_catalog(0.002, 42);
    let machine = MachineConfig::pentium4_like();
    let plan = queries::tpch_q6(&catalog).unwrap();
    let refined = refine_plan(&plan, &catalog, &RefineConfig::default());
    let mut g = c.benchmark_group("tpch_q6");
    g.sample_size(10);
    g.bench_function("original", |b| {
        b.iter(|| black_box(execute_collect(&plan, &catalog, &machine).unwrap()))
    });
    g.bench_function("refined", |b| {
        b.iter(|| black_box(execute_collect(&refined, &catalog, &machine).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_query1, bench_query6);
criterion_main!(benches);
