//! Integration: the cost-based optimizer and the block-oriented baseline
//! running against generated TPC-H data, cross-checked against the
//! tuple-at-a-time engine.

use bufferdb::core::block::{BlockAggregate, BlockScan};
use bufferdb::core::context::ExecContext;
use bufferdb::core::optimizer::{choose_join_plan, JoinCostModel, JoinQuery};
use bufferdb::prelude::*;
use bufferdb::tpch;

fn collect(plan: &PlanNode, catalog: &Catalog, cfg: &MachineConfig) -> Result<Vec<Tuple>> {
    execute_query(plan, catalog, cfg, &QueryOpts::new())
        .into_result()
        .map(|(rows, _, _)| rows)
}

fn lineitem_orders_join(catalog: &Catalog, cutoff: &str) -> JoinQuery {
    let l_ship = catalog
        .table("lineitem")
        .unwrap()
        .schema()
        .index_of("l_shipdate")
        .unwrap();
    JoinQuery {
        outer_table: "lineitem".into(),
        outer_predicate: Some(Expr::col(l_ship).le(Expr::lit(bufferdb::types::Datum::Date(
            Date::parse(cutoff).unwrap(),
        )))),
        outer_key: 0,
        inner_table: "orders".into(),
        inner_key: 0,
        inner_index: Some("orders_pkey".into()),
    }
}

#[test]
fn optimizer_switches_methods_with_selectivity() {
    let catalog = tpch::generate_catalog(0.002, 13);
    let cost = JoinCostModel::default();
    let selective = choose_join_plan(
        &lineitem_orders_join(&catalog, "1992-02-01"),
        &catalog,
        &cost,
    )
    .unwrap();
    let bulk = choose_join_plan(
        &lineitem_orders_join(&catalog, "1998-09-02"),
        &catalog,
        &cost,
    )
    .unwrap();
    assert_eq!(selective.method, "nestloop");
    assert_eq!(bulk.method, "hashjoin");
    assert!(selective.cost < bulk.cost);
}

#[test]
fn optimizer_plans_execute_correctly_and_refine_cleanly() {
    let catalog = tpch::generate_catalog(0.002, 13);
    let machine = MachineConfig::pentium4_like();
    let cost = JoinCostModel::default();
    for cutoff in ["1992-02-01", "1998-09-02"] {
        let choice =
            choose_join_plan(&lineitem_orders_join(&catalog, cutoff), &catalog, &cost).unwrap();
        let refined = refine_plan(&choice.plan, &catalog, &RefineConfig::default());
        let a = collect(&choice.plan, &catalog, &machine).unwrap();
        let b = collect(&refined, &catalog, &machine).unwrap();
        assert_eq!(a.len(), b.len(), "{cutoff}");
        // Reference: count matching lineitems directly.
        let li = catalog.table("lineitem").unwrap();
        let cut = Date::parse(cutoff).unwrap();
        let expected = li
            .rows()
            .iter()
            .filter(|r| r.get(10).as_date().unwrap() <= cut)
            .count();
        assert_eq!(a.len(), expected, "{cutoff}");
    }
}

#[test]
fn block_engine_agrees_with_tuple_engine_on_query1() {
    let catalog = tpch::generate_catalog(0.002, 13);
    let machine = MachineConfig::pentium4_like();
    let plan = tpch::queries::paper_query1(&catalog).unwrap();
    let tuple_rows = collect(&plan, &catalog, &machine).unwrap();

    let PlanNode::Aggregate { input, aggs, .. } = plan else {
        panic!()
    };
    let PlanNode::SeqScan {
        table, predicate, ..
    } = *input
    else {
        panic!()
    };
    let mut fm = FootprintModel::new();
    let scan = Box::new(BlockScan::new(&catalog, &mut fm, &table, predicate, 100).unwrap());
    let mut agg = BlockAggregate::new(&mut fm, scan, aggs, 100).unwrap();
    let mut ctx = ExecContext::new(machine);
    let block_row = agg.execute(&mut ctx).unwrap();
    assert_eq!(format!("{}", block_row), format!("{}", tuple_rows[0]));
}

#[test]
fn filter_and_limit_compose_with_buffers() {
    let catalog = tpch::generate_catalog(0.001, 13);
    let machine = MachineConfig::pentium4_like();
    let l_qty = catalog
        .table("lineitem")
        .unwrap()
        .schema()
        .index_of("l_quantity")
        .unwrap();
    let plan = PlanNode::Limit {
        input: Box::new(PlanNode::Filter {
            input: Box::new(PlanNode::Buffer {
                input: Box::new(PlanNode::SeqScan {
                    table: "lineitem".into(),
                    predicate: None,
                    projection: None,
                }),
                size: 64,
            }),
            predicate: Expr::col(l_qty).ge(Expr::lit(bufferdb::types::Datum::Decimal(
                Decimal::from_int(25),
            ))),
        }),
        limit: 10,
    };
    let rows = collect(&plan, &catalog, &machine).unwrap();
    assert_eq!(rows.len(), 10);
    for r in &rows {
        assert!(r.get(l_qty).as_decimal().unwrap() >= Decimal::from_int(25));
    }
    // Refinement over the composed plan stays valid and equivalent.
    let refined = refine_plan(&plan, &catalog, &RefineConfig::default());
    let rows2 = collect(&refined, &catalog, &machine).unwrap();
    assert_eq!(rows.len(), rows2.len());
}
