//! Deterministic TPC-H data generation and the paper's query plans.
//!
//! The paper evaluates on a TPC-H database at scale factor 0.2, memory
//! resident. This crate is a from-scratch `dbgen` equivalent: all eight
//! tables at a configurable scale factor, generated deterministically from a
//! seed (workers generate tables in parallel; per-table seeds keep results
//! independent of scheduling). Value distributions follow the TPC-H spec
//! closely enough for the paper's queries: date ranges, discount/tax ranges,
//! return-flag/line-status derivation, foreign-key structure, and 1–7
//! lineitems per order. Order keys are dense (1..n) rather than sparse —
//! irrelevant to instruction-cache behaviour and documented in DESIGN.md.

#![warn(missing_docs)]

pub mod gen;
pub mod queries;
pub mod text;

pub use gen::{generate_catalog, GenConfig};
