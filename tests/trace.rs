//! Flight-recorder integration: ring overflow accounting, trace/profiler
//! conservation across worker counts, completeness under injected faults
//! and cancellation, Perfetto export stability, and the zero-overhead
//! guarantee for the disabled path.

use bufferdb::core::fault;
use bufferdb::core::obs::{TimedEvent, TraceRing};
use bufferdb::prelude::*;
use bufferdb::tpch::{self, queries};
use std::time::Duration;

fn small_catalog(n: i64) -> Catalog {
    let c = Catalog::new();
    let mut b = TableBuilder::new("t", Schema::new(vec![Field::new("k", DataType::Int)]));
    for i in 0..n {
        b.push(Tuple::new(vec![Datum::Int(i)]));
    }
    c.add_table(b);
    c
}

fn buffered_agg() -> PlanNode {
    PlanNode::Aggregate {
        input: Box::new(PlanNode::Buffer {
            input: Box::new(PlanNode::SeqScan {
                table: "t".into(),
                predicate: Some(Expr::col(0).le(Expr::lit(500))),
                projection: None,
            }),
            size: 100,
        }),
        group_by: vec![],
        aggs: vec![AggSpec::count_star("n")],
    }
}

/// Count terminal-event bookkeeping over every track: each claimed morsel
/// must end in exactly one `MorselComplete` or `MorselAbort`.
fn assert_morsel_completeness(trace: &TraceReport) {
    for track in &trace.tracks {
        assert_eq!(
            track.dropped, 0,
            "{}: this suite must not overflow the ring",
            track.name
        );
        let mut claims = 0u64;
        let mut terminal = 0u64;
        for ev in &track.events {
            match ev.event {
                TraceEvent::MorselClaim { .. } => claims += 1,
                TraceEvent::MorselComplete { .. } | TraceEvent::MorselAbort { .. } => terminal += 1,
                _ => {}
            }
        }
        assert_eq!(
            claims, terminal,
            "{}: every claimed morsel needs a terminal event",
            track.name
        );
    }
}

#[test]
fn ring_overflow_counts_drops_and_keeps_newest() {
    let mut ring = TraceRing::with_capacity(8);
    for i in 0..100u64 {
        ring.push(TimedEvent {
            ts_ns: i,
            event: TraceEvent::MorselClaim {
                morsel: i as u32,
                lo: 0,
                hi: 0,
            },
        });
    }
    assert_eq!(ring.capacity(), 8);
    assert_eq!(ring.recorded(), 100);
    assert_eq!(ring.dropped(), 92);
    let events = ring.events();
    assert_eq!(events.len(), 8);
    // Oldest-first rotation: the retained window is exactly the newest 8.
    let ts: Vec<u64> = events.iter().map(|e| e.ts_ns).collect();
    assert_eq!(ts, (92..100).collect::<Vec<u64>>());
}

#[test]
fn tracer_overflow_is_reported_never_fatal() {
    let mut tracer = Tracer::with_capacity("t", 4);
    for _ in 0..100 {
        tracer.record(TraceEvent::CancelObserved);
    }
    let report = tracer.finish();
    assert_eq!(report.events_recorded(), 100);
    assert_eq!(report.events_dropped(), 96);
    // The renderers stay well-defined on an overflowed trace.
    assert!(report.perfetto_json().contains("\"traceEvents\""));
    assert!(report.summary().contains("96 dropped"));
}

#[test]
fn trace_and_profiler_conserve_at_1_2_7_workers() {
    let catalog = tpch::generate_catalog(0.002, 7);
    let machine = MachineConfig::pentium4_like();
    let plan = queries::tpch_q12(&catalog).unwrap();
    for workers in [1usize, 2, 7] {
        let par = parallelize_plan(&plan, &catalog, workers).unwrap();
        let opts = QueryOpts::new().threads(workers).profile(true).trace(true);
        let mut out = execute_query(&par, &catalog, &machine, &opts);
        assert!(out.is_ok(), "{workers} workers: {:?}", out.error());
        let trace = out.take_trace().expect("trace was requested");
        let (_, stats, profile) = out.into_result().unwrap();
        let profile = profile.unwrap();

        // Profiler conservation: per-operator counters plus the explicit
        // gather-wait residual sum exactly to the machine snapshot.
        assert_eq!(
            profile.sum_op_counters(),
            stats.counters,
            "{workers} workers: counters not conserved"
        );
        let attributed = profile
            .ops
            .iter()
            .fold(PerfCounters::default(), |acc, op| acc + op.counters);
        assert_eq!(
            attributed + profile.gather_wait_total(),
            stats.counters,
            "{workers} workers: gather-wait residual not accounted"
        );

        // Trace completeness and cross-check against the profiler lanes.
        assert_morsel_completeness(&trace);
        let trace_morsels: u64 = trace
            .tracks
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| matches!(e.event, TraceEvent::MorselComplete { .. }))
            .count() as u64;
        let lane_morsels: u64 = profile
            .ops
            .iter()
            .filter_map(|op| op.workers.as_ref())
            .flatten()
            .map(|lane| lane.morsels)
            .sum();
        assert_eq!(
            trace_morsels, lane_morsels,
            "{workers} workers: trace morsels disagree with profiler lanes"
        );
        if workers > 1 {
            assert!(
                trace.tracks.iter().any(|t| t.name.starts_with("worker-")),
                "{workers} workers: no worker tracks"
            );
        }
    }
}

#[test]
fn injected_fill_fault_leaves_complete_trace() {
    // Buffer fills inside exchange workers, so the fault trips on a worker
    // thread mid-morsel and the abort bookkeeping is exercised.
    let plan = PlanNode::Exchange {
        input: Box::new(PlanNode::Buffer {
            input: Box::new(PlanNode::SeqScan {
                table: "t".into(),
                predicate: None,
                projection: None,
            }),
            size: 64,
        }),
        workers: 2,
    };
    let mut session = Session::new(small_catalog(20_000), MachineConfig::pentium4_like());
    session.set_threads(2);
    session
        .faults()
        .arm(fault::BUFFER_FILL, Trigger::at_row(3), FaultMode::Error);
    let out = session.query(&plan, &QueryOpts::new().trace(true));
    assert!(out.error().is_some(), "armed fault must surface");
    let trace = out.trace().expect("trace survives a failed query");
    assert_morsel_completeness(trace);
    let tripped =
        trace.tracks.iter().flat_map(|t| &t.events).any(
            |e| matches!(&e.event, TraceEvent::FaultTrip { site } if site == fault::BUFFER_FILL),
        );
    assert!(tripped, "fault trip must be recorded on some track");
}

#[test]
fn cancelled_query_leaves_complete_trace() {
    let catalog = tpch::generate_catalog(0.002, 7);
    let plan = queries::tpch_q6(&catalog).unwrap();
    let par = parallelize_plan(&plan, &catalog, 2).unwrap();
    let mut session = Session::new(catalog, MachineConfig::pentium4_like());
    session.set_threads(2);
    session.set_timeout(Some(Duration::ZERO));
    let out = session.query(&par, &QueryOpts::new().trace(true));
    assert!(
        matches!(out.error(), Some(DbError::Cancelled(_))),
        "{:?}",
        out.error()
    );
    let trace = out.trace().expect("trace survives a cancelled query");
    assert_morsel_completeness(trace);
    let observed = trace
        .tracks
        .iter()
        .flat_map(|t| &t.events)
        .any(|e| matches!(e.event, TraceEvent::CancelObserved));
    assert!(observed, "cancellation must be observed on some track");
}

/// Zero the volatile fields of a Perfetto document: wall-clock timestamps
/// and durations vary run to run, everything else (track layout, event
/// names, simulated counters in args) is deterministic.
fn normalize_times(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while let Some(pos) = find_time_key(rest) {
        let (key, at) = pos;
        let end = at + key.len();
        out.push_str(&rest[..end]);
        out.push('0');
        let tail = &rest[end..];
        let skip = tail
            .find(|c: char| !c.is_ascii_digit() && c != '.')
            .unwrap_or(tail.len());
        rest = &tail[skip..];
    }
    out.push_str(rest);
    out
}

fn find_time_key(s: &str) -> Option<(&'static str, usize)> {
    ["\"ts\":", "\"dur\":"]
        .iter()
        .filter_map(|k| s.find(k).map(|i| (*k, i)))
        .min_by_key(|&(_, i)| i)
}

#[test]
fn perfetto_export_matches_golden_file() {
    let c = small_catalog(1000);
    let opts = QueryOpts::new().trace(true);
    let mut out = execute_query(&buffered_agg(), &c, &MachineConfig::pentium4_like(), &opts);
    assert!(out.is_ok(), "{:?}", out.error());
    let json = out.take_trace().unwrap().perfetto_json();
    let got = normalize_times(&json);
    let full = format!(
        "{}/tests/golden/trace_buffered_agg.json",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var_os("BUFFERDB_UPDATE_GOLDEN").is_some() {
        std::fs::write(&full, &got).expect("write golden");
        return;
    }
    let want =
        std::fs::read_to_string(&full).expect("missing golden (set BUFFERDB_UPDATE_GOLDEN=1)");
    assert_eq!(
        got, want,
        "normalized Perfetto export changed; rerun with BUFFERDB_UPDATE_GOLDEN=1 \
         and review the diff if the change is intentional"
    );
}

#[test]
fn tracing_costs_nothing_modeled_and_is_off_by_default() {
    let c = small_catalog(5000);
    let machine = MachineConfig::pentium4_like();
    let plan = buffered_agg();
    let plain = execute_query(&plan, &c, &machine, &QueryOpts::new());
    assert!(plain.trace().is_none(), "tracing must be off by default");
    let opts = QueryOpts::new().trace(true);
    let traced = execute_query(&plan, &c, &machine, &opts);
    assert!(traced.trace().is_some());
    // The recorder adds zero modeled work: identical instruction stream
    // and cycle count, not merely "within 5%".
    let (_, a, _) = plain.into_result().unwrap();
    let (_, b, _) = traced.into_result().unwrap();
    assert_eq!(a.counters.instructions, b.counters.instructions);
    assert_eq!(a.counters, b.counters);
}
