//! Error type shared across the workspace.

use std::fmt;

/// Errors produced by BufferDB components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// An operation was applied to operands of incompatible types.
    TypeMismatch(String),
    /// Arithmetic overflow (decimals are checked).
    Overflow(String),
    /// Division by zero in expression evaluation.
    DivideByZero,
    /// A named column was not found in a schema.
    UnknownColumn(String),
    /// A table or index was not found in the catalog.
    UnknownRelation(String),
    /// Malformed literal (date or decimal parse failure).
    Parse(String),
    /// Invalid plan shape (e.g. merge join over unsorted input).
    InvalidPlan(String),
    /// Executor protocol violation (e.g. `next` before `open`).
    ExecProtocol(String),
    /// A parallel worker panicked; the panic was contained and converted.
    WorkerFailed(String),
    /// The query was cancelled (explicitly or by deadline).
    Cancelled(String),
    /// A fault-injection site fired (testing only; see `bufferdb_core::fault`).
    FaultInjected(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            DbError::Overflow(m) => write!(f, "arithmetic overflow: {m}"),
            DbError::DivideByZero => write!(f, "division by zero"),
            DbError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            DbError::UnknownRelation(r) => write!(f, "unknown relation: {r}"),
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
            DbError::ExecProtocol(m) => write!(f, "executor protocol violation: {m}"),
            DbError::WorkerFailed(m) => write!(f, "worker failed: {m}"),
            DbError::Cancelled(m) => write!(f, "query cancelled: {m}"),
            DbError::FaultInjected(m) => write!(f, "injected fault: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = DbError::UnknownColumn("l_shipdate".into());
        assert_eq!(e.to_string(), "unknown column: l_shipdate");
        let e = DbError::DivideByZero;
        assert_eq!(e.to_string(), "division by zero");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(DbError::DivideByZero, DbError::DivideByZero);
        assert_ne!(DbError::Overflow("a".into()), DbError::Overflow("b".into()));
    }
}
