//! Code layout: synthetic instruction footprints for query operators.
//!
//! The paper estimates per-module footprints (Table 2) by summing the binary
//! sizes of the functions each module calls at runtime, noting that "most
//! functions are smaller than 1 K bytes" and that modules share a fair number
//! of functions. We model exactly that: a *segment* (named unit of code such
//! as "seqscan core" or the shared "expression evaluator") is split into
//! functions of ≤ [`FUNC_BYTES`] bytes; each function lives on its own 4 KB
//! page at a hash-derived 64-byte-aligned offset, scattering the footprint
//! the way a multi-megabyte binary does. Operators reference segments by
//! handle; shared segments are allocated once, so combined execution-group
//! footprints automatically count common code once (§6.1).

use std::collections::HashMap;
use std::sync::Arc;

/// Maximum synthetic function size in bytes ("most functions < 1 K").
pub const FUNC_BYTES: usize = 832;
/// Page size for the ITLB model.
pub const PAGE_BYTES: u64 = 4096;
/// Base of the simulated text section.
pub const CODE_BASE: u64 = 0x0040_0000;
/// One static branch site per this many bytes of code.
pub const BRANCH_SITE_STRIDE: usize = 256;

/// Request to define a segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentSpec {
    /// Unique name, e.g. `"expr_eval"`.
    pub name: String,
    /// Footprint contribution in bytes.
    pub bytes: usize,
}

impl SegmentSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, bytes: usize) -> Self {
        SegmentSpec {
            name: name.into(),
            bytes,
        }
    }
}

/// Statically-biased behaviour class of a synthetic branch site.
///
/// These stand in for the data-independent control flow inside operator code
/// (error checks, type dispatch, loop back-edges). Data-*dependent* branches
/// (predicate outcomes) are fired separately by the engine with real
/// outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// Almost always taken (error-check style): not-taken once per 64.
    Biased,
    /// Short repeating pattern (taken-taken-not): learnable through clean
    /// global history, broken by polluted history — the §4 effect.
    Mixed,
    /// Loop back-edge: taken 7 of 8 consecutive executions.
    Loop,
}

impl SiteKind {
    /// Deterministic outcome of the `count`-th execution of a site.
    pub fn outcome(self, count: u64) -> bool {
        match self {
            SiteKind::Biased => count % 64 != 63,
            SiteKind::Mixed => count % 3 != 2,
            SiteKind::Loop => count % 8 != 7,
        }
    }
}

/// One immutable, laid-out segment.
#[derive(Debug)]
pub struct SegmentCode {
    /// Segment name (unique within a layout).
    pub name: String,
    /// Total bytes (the Table 2 footprint contribution).
    pub bytes: usize,
    /// Laid-out functions as `(base address, length)`.
    pub functions: Vec<(u64, u32)>,
    /// Static branch sites as `(address, kind)`.
    pub sites: Vec<(u64, SiteKind)>,
}

/// Shared handle to a laid-out segment.
pub type SegmentRef = Arc<SegmentCode>;

fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer: cheap, deterministic scatter.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Cache-set fold used to balance function placement. 64 covers both the
/// default 16 KB L1i (32 sets — balance mod 64 implies balance mod 32) and
/// the 32 KB ablation cache (64 sets).
pub const SET_FOLD: usize = 64;

/// Allocates segments within a simulated text section.
///
/// `Clone` is shallow where it matters: the clone shares the original's
/// [`SegmentRef`]s, so every clone of a pre-linked layout hands out the
/// *same* addresses for the same segment names — the way every query in a
/// server shares one binary's text section.
#[derive(Debug, Default, Clone)]
pub struct CodeLayout {
    segments: HashMap<String, SegmentRef>,
    next_page: u64,
    /// Cumulative i-cache-set load; used as a tie-break so different
    /// segments' spill lines spread over different sets.
    set_load: Vec<u32>,
}

impl CodeLayout {
    /// An empty layout.
    pub fn new() -> Self {
        CodeLayout {
            segments: HashMap::new(),
            next_page: 0,
            set_load: vec![0; SET_FOLD],
        }
    }

    /// The in-page line slot for a function of `lines` cache lines that
    /// minimizes the peak per-set load **within the segment being defined**
    /// (`local_load`), breaking ties on the layout-wide load.
    ///
    /// Balancing per segment — not globally — matters: a linker packs each
    /// module's functions contiguously, so *every* module covers the cache
    /// sets near-uniformly on its own. A query executes a subset of the
    /// segment vocabulary; only per-segment uniformity guarantees that any
    /// such subset is conflict-free whenever its total footprint fits.
    /// Globally-balanced placement looks uniform over the whole text
    /// section but leaves individual subsets clustered on hot sets, which
    /// thrash every row even though the working set fits overall.
    fn balanced_slot(&mut self, local_load: &mut [u32], lines: u64) -> u64 {
        let max_slot = (PAGE_BYTES - FUNC_BYTES as u64) / 64; // 51
                                                              // (local peak, local total, global total, slot)
        let mut best = (u32::MAX, u64::MAX, u64::MAX, 0u64);
        for slot in 0..=max_slot {
            let mut peak = 0u32;
            let mut total = 0u64;
            let mut global = 0u64;
            for k in 0..lines {
                let set = ((slot + k) % SET_FOLD as u64) as usize;
                let load = local_load[set] + 1;
                peak = peak.max(load);
                total += load as u64;
                global += self.set_load[set] as u64;
            }
            if (peak, total, global) < (best.0, best.1, best.2) {
                best = (peak, total, global, slot);
            }
        }
        let slot = best.3;
        for k in 0..lines {
            let set = ((slot + k) % SET_FOLD as u64) as usize;
            local_load[set] += 1;
            self.set_load[set] += 1;
        }
        slot
    }

    /// Define (or fetch the previously defined) segment for `spec`.
    /// Re-defining a name with a different size is a bug and panics.
    pub fn define(&mut self, spec: &SegmentSpec) -> SegmentRef {
        if let Some(existing) = self.segments.get(&spec.name) {
            assert_eq!(
                existing.bytes, spec.bytes,
                "segment {:?} redefined with a different size",
                spec.name
            );
            return Arc::clone(existing);
        }
        let mut functions = Vec::new();
        let mut sites = Vec::new();
        let mut remaining = spec.bytes;
        let mut local_load = vec![0u32; SET_FOLD];
        while remaining > 0 {
            let len = remaining.min(FUNC_BYTES) as u32;
            let page = CODE_BASE + self.next_page * PAGE_BYTES;
            self.next_page += 1;
            // Set-balanced 64-byte-aligned in-page offset (see balanced_slot).
            let slot = self.balanced_slot(&mut local_load, (len as u64).div_ceil(64));
            let base = page + slot * 64;
            for off in (0..len as usize).step_by(BRANCH_SITE_STRIDE) {
                let addr = base + off as u64 + 16;
                let kind = match mix(addr) % 10 {
                    0..=5 => SiteKind::Biased,
                    6..=8 => SiteKind::Mixed,
                    _ => SiteKind::Loop,
                };
                sites.push((addr, kind));
            }
            functions.push((base, len));
            remaining -= len as usize;
        }
        let seg = Arc::new(SegmentCode {
            name: spec.name.clone(),
            bytes: spec.bytes,
            functions,
            sites,
        });
        self.segments.insert(spec.name.clone(), Arc::clone(&seg));
        seg
    }

    /// Look up a previously defined segment.
    pub fn get(&self, name: &str) -> Option<SegmentRef> {
        self.segments.get(name).cloned()
    }

    /// Combined footprint in bytes of a set of segment names, counting each
    /// segment once (the paper's §6.1 shared-function rule).
    pub fn combined_bytes(&self, names: &[&str]) -> usize {
        let mut seen = Vec::new();
        let mut total = 0;
        for n in names {
            if !seen.contains(n) {
                seen.push(n);
                total += self.segments.get(*n).map_or(0, |s| s.bytes);
            }
        }
        total
    }
}

/// Per-operator-instance executable region: shared immutable segments plus
/// private per-site execution counters (branch history position). Cloning a
/// region models the same binary text mapped by another core: the addresses
/// are shared, the execution counters are private to the clone.
#[derive(Debug, Clone)]
pub struct CodeRegion {
    segments: Vec<SegmentRef>,
    /// `(address, kind, executions)` for every site of every segment.
    site_state: Vec<(u64, SiteKind, u64)>,
}

impl CodeRegion {
    /// Build a region over the given segments.
    pub fn new(segments: Vec<SegmentRef>) -> Self {
        let site_state = segments
            .iter()
            .flat_map(|s| s.sites.iter().map(|&(a, k)| (a, k, 0)))
            .collect();
        CodeRegion {
            segments,
            site_state,
        }
    }

    /// An empty region (an operator with no simulated code, used in tests).
    pub fn empty() -> Self {
        CodeRegion {
            segments: Vec::new(),
            site_state: Vec::new(),
        }
    }

    /// The segments making up this region.
    pub fn segments(&self) -> &[SegmentRef] {
        &self.segments
    }

    /// Mutable view of site execution state (used by [`crate::Machine`]).
    pub(crate) fn site_state_mut(&mut self) -> &mut [(u64, SiteKind, u64)] {
        &mut self.site_state
    }

    /// Total footprint bytes, counting shared segments once.
    pub fn footprint_bytes(&self) -> usize {
        let mut seen: Vec<&str> = Vec::new();
        let mut total = 0;
        for s in &self.segments {
            if !seen.contains(&s.name.as_str()) {
                seen.push(&s.name);
                total += s.bytes;
            }
        }
        total
    }

    /// Number of distinct 4 KB pages the region's functions touch.
    pub fn pages(&self) -> usize {
        let mut pages: Vec<u64> = self
            .segments
            .iter()
            .flat_map(|s| s.functions.iter().map(|&(b, _)| b / PAGE_BYTES))
            .collect();
        pages.sort_unstable();
        pages.dedup();
        pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_splits_into_small_functions() {
        let mut l = CodeLayout::new();
        let seg = l.define(&SegmentSpec::new("scan", 9000));
        assert_eq!(seg.bytes, 9000);
        assert_eq!(seg.functions.len(), 9000usize.div_ceil(FUNC_BYTES));
        assert!(seg
            .functions
            .iter()
            .all(|&(_, len)| len as usize <= FUNC_BYTES));
        let total: usize = seg.functions.iter().map(|&(_, l)| l as usize).sum();
        assert_eq!(total, 9000);
    }

    #[test]
    fn functions_live_on_distinct_pages() {
        let mut l = CodeLayout::new();
        let seg = l.define(&SegmentSpec::new("scan", 9000));
        let mut pages: Vec<u64> = seg.functions.iter().map(|&(b, _)| b / PAGE_BYTES).collect();
        pages.sort_unstable();
        pages.dedup();
        assert_eq!(pages.len(), seg.functions.len());
    }

    #[test]
    fn functions_fit_within_their_page() {
        let mut l = CodeLayout::new();
        let seg = l.define(&SegmentSpec::new("x", 5000));
        for &(base, len) in &seg.functions {
            assert_eq!(base % 64, 0, "function base must be line-aligned");
            assert_eq!(base / PAGE_BYTES, (base + len as u64 - 1) / PAGE_BYTES);
        }
    }

    #[test]
    fn redefinition_returns_same_segment() {
        let mut l = CodeLayout::new();
        let a = l.define(&SegmentSpec::new("expr", 1500));
        let b = l.define(&SegmentSpec::new("expr", 1500));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "redefined")]
    fn redefinition_with_new_size_panics() {
        let mut l = CodeLayout::new();
        l.define(&SegmentSpec::new("expr", 1500));
        l.define(&SegmentSpec::new("expr", 2000));
    }

    #[test]
    fn combined_bytes_counts_shared_once() {
        let mut l = CodeLayout::new();
        l.define(&SegmentSpec::new("common", 800));
        l.define(&SegmentSpec::new("scan", 8200));
        l.define(&SegmentSpec::new("agg", 200));
        assert_eq!(l.combined_bytes(&["common", "scan"]), 9000);
        assert_eq!(l.combined_bytes(&["common", "scan", "common", "agg"]), 9200);
    }

    #[test]
    fn region_footprint_counts_shared_once() {
        let mut l = CodeLayout::new();
        let common = l.define(&SegmentSpec::new("common", 800));
        let scan = l.define(&SegmentSpec::new("scan", 8200));
        let r = CodeRegion::new(vec![common.clone(), scan, common]);
        assert_eq!(r.footprint_bytes(), 9000);
        assert!(r.pages() >= 11);
    }

    #[test]
    fn branch_sites_every_stride() {
        let mut l = CodeLayout::new();
        let seg = l.define(&SegmentSpec::new("s", 2000));
        // 2000 bytes => functions of 832+832+336 => 4+4+2 sites.
        assert_eq!(seg.sites.len(), 10);
    }

    #[test]
    fn site_kind_patterns_are_deterministic_and_biased() {
        let taken = |k: SiteKind| (0..640u64).filter(|&c| k.outcome(c)).count();
        assert_eq!(taken(SiteKind::Biased), 630); // 1 in 64 not taken
        assert_eq!(taken(SiteKind::Loop), 560); // 7 in 8 taken
        assert_eq!(taken(SiteKind::Mixed), 427); // 2 of 3 taken (ceil for 640)
    }

    #[test]
    fn layout_is_deterministic() {
        let build = || {
            let mut l = CodeLayout::new();
            let s = l.define(&SegmentSpec::new("a", 3000));
            s.functions.clone()
        };
        assert_eq!(build(), build());
    }
}
