//! Experiment harness: one function per table/figure of the paper.
//!
//! Each experiment returns a plain-text report whose rows mirror what the
//! paper charts. The `repro` binary dispatches on experiment id; the
//! benches and integration tests reuse the same functions.

#![warn(missing_docs)]

pub mod experiments;
pub mod heatmap_bench;
pub mod json;
pub mod microbench;
pub mod reuse_bench;
pub mod runner;
pub mod server_bench;
pub mod traffic;

pub use experiments::*;
pub use heatmap_bench::{
    heatmap_metrics, heatmap_table, server_trace, sys_tables_demo, HeatmapReport,
};
pub use json::Json;
pub use reuse_bench::{reuse_metrics, reuse_table, ReuseReport, ReuseSweepEntry};
pub use runner::{run_plan, MetricsReport, QueryMetrics, RunResult};
pub use server_bench::{server_metrics, server_table, ServerReport, ServerSweepEntry};
pub use traffic::{run_traffic, RegimeSpec, TrafficConfig, TrafficRun};

/// Execute Query 1 with the ablation-only **copying** buffer (§5 argues the
/// production buffer must store pointers instead). Built by hand because
/// plans always instantiate the pointer variant. Returns
/// `(modeled seconds, instructions retired)`.
pub fn run_copy_buffered_query1(ctx: &experiments::ExperimentCtx) -> (f64, u64) {
    use bufferdb_core::context::ExecContext;
    use bufferdb_core::exec::agg::AggregateOp;
    use bufferdb_core::exec::copybuffer::CopyBufferOp;
    use bufferdb_core::exec::seqscan::SeqScanOp;
    use bufferdb_core::exec::Operator;
    use bufferdb_core::footprint::FootprintModel;
    use bufferdb_core::plan::PlanNode;

    let plan = bufferdb_tpch::queries::paper_query1(&ctx.catalog).expect("query 1");
    let PlanNode::Aggregate {
        input,
        group_by,
        aggs,
    } = plan
    else {
        unreachable!()
    };
    let PlanNode::SeqScan {
        table, predicate, ..
    } = *input
    else {
        unreachable!()
    };

    let mut fm = FootprintModel::new();
    let scan =
        Box::new(SeqScanOp::new(&ctx.catalog, &mut fm, &table, predicate, None).expect("scan"));
    let copy = Box::new(CopyBufferOp::new(&mut fm, scan, ctx.refine.buffer_size).expect("copy"));
    let mut agg = AggregateOp::new(&mut fm, copy, group_by, aggs).expect("agg");

    let mut exec_ctx = ExecContext::new(ctx.machine.clone());
    agg.open(&mut exec_ctx).expect("open");
    while agg.next(&mut exec_ctx).expect("next").is_some() {}
    agg.close(&mut exec_ctx).expect("close");
    let counters = exec_ctx.machine.snapshot();
    let breakdown = exec_ctx.machine.breakdown_for(&counters);
    (breakdown.seconds(), counters.instructions)
}
