//! A long-lived query session: repeated executions against one catalog with
//! cross-query settings (worker budget, timeout, fault registry) and a
//! handle for cancelling the in-flight query from another thread.
//!
//! The session exists for the robustness contract: after any failed query —
//! typed error, timeout, injected fault, or contained worker panic — the
//! session stays usable and the next query runs normally. The chaos suite
//! (`tests/chaos.rs`) exercises exactly that.
//!
//! The one entry point is [`Session::query`] with a [`QueryOpts`] builder.
//! For cached prepared execution, wrap the session in a
//! [`crate::prepare::Database`].

use crate::cancel::CancelToken;
use crate::exec::{execute_query, ExecOptions, QueryOutcome};
use crate::fault::FaultRegistry;
use crate::plan::PlanNode;
use bufferdb_cachesim::MachineConfig;
use bufferdb_storage::Catalog;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Per-query options for [`Session::query`], builder style.
///
/// Unset options fall back to the session's own defaults, so
/// `QueryOpts::new()` reproduces the session's plain execution path.
///
/// ```ignore
/// let opts = QueryOpts::new().profile(true).threads(4);
/// let out = session.query(&plan, &opts);
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueryOpts {
    profile: bool,
    trace: bool,
    threads: Option<usize>,
    timeout: Option<Duration>,
}

impl QueryOpts {
    /// Options that inherit every session default (no profiling).
    pub fn new() -> Self {
        Self::default()
    }

    /// Request per-operator profiling (adds zero modeled cost).
    pub fn profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Request a flight-recorder trace on the outcome (see
    /// [`crate::obs::trace`]; adds zero modeled cost, off by default).
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Override the session's worker budget for this query.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Override the session's per-query timeout for this query.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Whether profiling was requested.
    pub fn wants_profile(&self) -> bool {
        self.profile
    }

    /// Whether a flight-recorder trace was requested.
    pub fn wants_trace(&self) -> bool {
        self.trace
    }

    /// The thread override, if any.
    pub fn thread_override(&self) -> Option<usize> {
        self.threads
    }

    /// The timeout override, if any.
    pub fn timeout_override(&self) -> Option<Duration> {
        self.timeout
    }
}

/// Stateful query runner over one catalog.
pub struct Session {
    catalog: Catalog,
    cfg: MachineConfig,
    threads: usize,
    timeout: Option<Duration>,
    faults: Arc<FaultRegistry>,
    /// Cancel token of the in-flight (or most recent) query, so another
    /// thread holding a reference to the session can stop it.
    current: Mutex<CancelToken>,
}

impl Session {
    /// New session over `catalog` simulating `cfg`.
    pub fn new(catalog: Catalog, cfg: MachineConfig) -> Self {
        Session {
            catalog,
            cfg,
            threads: 1,
            timeout: None,
            faults: Arc::new(FaultRegistry::new()),
            current: Mutex::new(CancelToken::new()),
        }
    }

    /// The catalog queries run against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The simulated machine configuration queries run on.
    pub fn machine(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The session's default worker budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The session's default per-query timeout.
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// The session's fault registry: arm sites here to inject failures into
    /// subsequent queries.
    pub fn faults(&self) -> &Arc<FaultRegistry> {
        &self.faults
    }

    /// Set the worker budget for intra-operator parallelism.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Set (or clear) a per-query timeout; applies to queries started after
    /// this call.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.timeout = timeout;
    }

    /// Cancel the in-flight query (no-op when idle: the token is replaced at
    /// the start of each run).
    pub fn cancel(&self) {
        self.current
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .cancel();
    }

    /// Run `plan` to completion (or failure) under `opts`. Options left
    /// unset in `opts` inherit the session defaults.
    ///
    /// The plan is executed exactly as given — pass it through
    /// [`crate::prepare::prepare_physical_plan`] (or use a
    /// [`crate::prepare::Database`]) to parallelize and refine it first.
    pub fn query(&self, plan: &PlanNode, opts: &QueryOpts) -> QueryOutcome {
        let cancel = match opts.timeout_override().or(self.timeout) {
            Some(t) => CancelToken::with_timeout(t),
            None => CancelToken::new(),
        };
        *self
            .current
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = cancel.clone();
        let exec_opts = ExecOptions {
            threads: opts.thread_override().unwrap_or(self.threads),
            cancel,
            faults: Arc::clone(&self.faults),
            profile: opts.wants_profile(),
            trace: opts.wants_trace(),
        };
        execute_query(plan, &self.catalog, &self.cfg, &exec_opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bufferdb_storage::TableBuilder;
    use bufferdb_types::{DataType, Datum, DbError, Field, Schema, Tuple};

    fn session() -> Session {
        let c = Catalog::new();
        let mut b = TableBuilder::new("t", Schema::new(vec![Field::new("k", DataType::Int)]));
        for i in 0..100 {
            b.push(Tuple::new(vec![Datum::Int(i)]));
        }
        c.add_table(b);
        Session::new(c, MachineConfig::pentium4_like())
    }

    fn scan() -> PlanNode {
        PlanNode::SeqScan {
            table: "t".into(),
            predicate: None,
            projection: None,
        }
    }

    #[test]
    fn clean_run_returns_rows() {
        let s = session();
        let out = s.query(&scan(), &QueryOpts::new());
        assert!(out.is_ok());
        assert_eq!(out.rows().len(), 100);
    }

    #[test]
    fn zero_timeout_cancels_and_session_recovers() {
        let mut s = session();
        s.set_timeout(Some(Duration::ZERO));
        let out = s.query(&scan(), &QueryOpts::new());
        assert!(
            matches!(out.error(), Some(DbError::Cancelled(_))),
            "{out:?}"
        );
        s.set_timeout(None);
        let out = s.query(&scan(), &QueryOpts::new());
        assert!(out.is_ok());
        assert_eq!(out.rows().len(), 100);
    }

    #[test]
    fn per_query_timeout_override_beats_session_default() {
        let s = session();
        let out = s.query(&scan(), &QueryOpts::new().timeout(Duration::ZERO));
        assert!(matches!(out.error(), Some(DbError::Cancelled(_))));
        // Session default (no timeout) is untouched.
        let out = s.query(&scan(), &QueryOpts::new());
        assert!(out.is_ok());
    }

    #[test]
    fn pre_cancelled_session_token_is_replaced_per_query() {
        let s = session();
        s.cancel(); // cancels the idle placeholder token only
        let out = s.query(&scan(), &QueryOpts::new());
        assert!(out.is_ok(), "next query gets a fresh token");
    }
}
