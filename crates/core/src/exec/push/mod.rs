//! The push-based executor backend: batch-at-a-time data flow over one
//! fused code region.
//!
//! A [`PushPipelineOp`] compiles a `PlanNode::PushPipeline` subtree —
//! `[Aggregate?] [Filter|Project]* over (SeqScan | HashJoin)` — into a
//! single driver loop. Where the pull executor re-enters each operator's
//! private code region once per `next` call (the paper's PCPCPC
//! interleaving), the push driver executes the *combined* region
//! ([`OpKind::PushGroup`]) once per source batch and streams the batch
//! through the fused stages. The instruction-cache consequence is the whole
//! point: one footprint instead of several alternating ones — a win while
//! the fused group fits L1i, and exactly the layout the footprint model
//! prices via [`OpKind::PushGroup`] (mode selection in
//! [`crate::optimizer::choose_pipeline_modes`] uses that price).
//!
//! The backend shares everything else with the pull executor: plans,
//! catalog, the tuple arena, the profiler bracket protocol, fault sites
//! ([`crate::fault::SEQSCAN_NEXT`] per candidate row,
//! [`crate::fault::HASHJOIN_BUILD`] per build row), cancellation, and the
//! exchange morsel contract (the fused scan claims `ctx.morsel` at `open`,
//! so push pipelines run unchanged inside exchange workers). Output is
//! **bit-identical** to pull: rows flow in scan order, hash-join matches
//! emit in build-insertion order, aggregate accumulation reuses
//! `AggState` with the same first-seen group order.

use crate::arena::TupleSlot;
use crate::context::ExecContext;
use crate::exec::agg::{fx_hash, key_atom, AggState, KeyAtom};
use crate::exec::hashjoin::mix;
use crate::exec::{schema_slot_bytes, Operator, DEFAULT_BATCH};
use crate::expr::Expr;
use crate::fault;
use crate::footprint::{FootprintModel, OpKind};
use crate::plan::{push_member_kinds, AggFunc, AggSpec, PlanNode};
use bufferdb_cachesim::CodeRegion;
use bufferdb_storage::{Catalog, Table};
use bufferdb_types::{Datum, DbError, Result, SchemaRef, Tuple};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Source rows pumped per fused-region execution. One batch is one pass of
/// the push driver's hot loop; within it only the combined region is live.
const PUSH_BATCH_ROWS: u32 = 256;

/// Instructions charged per additional candidate row inside one batch —
/// the same tight inner loop the pull scan charges per extra candidate.
const SCAN_LOOP_INSTR: u64 = 90;

/// Instructions charged per tuple handed upward from the emit queue (the
/// push driver's dequeue is branch-free pointer work, not a region re-entry).
const EMIT_LOOP_INSTR: u64 = 24;

/// The fused scan at the bottom of a push pipeline. Mirrors
/// [`crate::exec::seqscan::SeqScanOp`] row for row — same data reads, same
/// predicate branch site discipline, same morsel claim.
struct PushSource {
    table: Arc<Table>,
    predicate: Option<Expr>,
    pred_site: u64,
    projection: Option<Vec<Expr>>,
    pos: u32,
    start: u32,
    limit: u32,
}

/// One fused non-terminal stage.
enum Stage {
    Filter {
        predicate: Expr,
        pred_site: u64,
    },
    Project {
        exprs: Vec<Expr>,
    },
    /// Hash-join probe. The build side stays a pull subtree drained at
    /// `open` (blocking, like the pull join); only probing is fused.
    Probe(ProbeStage),
}

struct ProbeStage {
    build: Box<dyn Operator>,
    build_code: CodeRegion,
    probe_key: usize,
    build_key: usize,
    match_site: u64,
    table: HashMap<i64, Vec<u32>>,
    build_rows: Vec<Tuple>,
    ht_base: u64,
    bucket_mask: u64,
}

impl ProbeStage {
    /// Serial blocking build, identical to the pull join's serial path:
    /// build code per row, bucket array sized after the drain, one
    /// simulated write per insert in build-row order.
    fn open_build(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.build.open(ctx)?;
        self.table.clear();
        self.build_rows.clear();
        while let Some(slot) = self.build.next(ctx)? {
            ctx.check_cancel()?;
            ctx.tuple_yield();
            ctx.fault(fault::HASHJOIN_BUILD)?;
            ctx.machine.exec_region(&mut self.build_code);
            let row = ctx.arena.tuple(slot).clone();
            let key = row.get(self.build_key).as_int();
            let idx = self.build_rows.len() as u32;
            self.build_rows.push(row);
            if let Some(k) = key {
                self.table.entry(k).or_default().push(idx);
            }
        }
        let buckets = (self.build_rows.len().max(1) * 2).next_power_of_two() as u64;
        self.bucket_mask = buckets - 1;
        self.ht_base = ctx.arena.sim_alloc(buckets * 16);
        for row in &self.build_rows {
            if let Some(k) = row.get(self.build_key).as_int() {
                ctx.machine
                    .data_write(self.ht_base + (mix(k as u64) & self.bucket_mask) * 16, 16);
            }
        }
        Ok(())
    }

    fn apply(&mut self, ctx: &mut ExecContext, rows: Vec<Tuple>) -> Vec<Tuple> {
        let mut out = Vec::new();
        for row in rows {
            let matches: &[u32] = match row.get(self.probe_key).as_int() {
                None => &[], // NULL probe key matches nothing
                Some(k) => {
                    ctx.machine
                        .data_read(self.ht_base + (mix(k as u64) & self.bucket_mask) * 16, 16);
                    self.table.get(&k).map(Vec::as_slice).unwrap_or(&[])
                }
            };
            ctx.machine.branch(self.match_site, !matches.is_empty());
            for &m in matches {
                out.push(row.join(&self.build_rows[m as usize]));
            }
        }
        out
    }
}

/// Terminal aggregate sink: consumes every batch, emits once at the end.
struct AggSink {
    group_by: Vec<usize>,
    aggs: Vec<AggSpec>,
    states: Vec<AggState>,
    groups: HashMap<Vec<KeyAtom>, (Vec<Datum>, Vec<AggState>)>,
    order: Vec<Vec<KeyAtom>>,
    ht_base: u64,
    emitted: bool,
}

impl AggSink {
    fn new(group_by: Vec<usize>, aggs: Vec<AggSpec>) -> Result<Self> {
        for a in &aggs {
            if a.input.is_none() && a.func != AggFunc::CountStar {
                return Err(DbError::InvalidPlan(format!(
                    "{:?} requires an argument",
                    a.func
                )));
            }
        }
        Ok(AggSink {
            group_by,
            aggs,
            states: Vec::new(),
            groups: HashMap::new(),
            order: Vec::new(),
            ht_base: 0,
            emitted: false,
        })
    }

    fn reset(&mut self, ctx: &mut ExecContext) {
        self.states = self.aggs.iter().map(|a| AggState::new(a.func)).collect();
        self.groups.clear();
        self.order.clear();
        self.emitted = false;
        if !self.group_by.is_empty() {
            self.ht_base = ctx.arena.sim_alloc(1 << 20);
        }
    }

    fn update_states(
        ctx: &mut ExecContext,
        aggs: &[AggSpec],
        states: &mut [AggState],
        row: &Tuple,
    ) -> Result<()> {
        for (spec, state) in aggs.iter().zip(states.iter_mut()) {
            match (&spec.input, spec.func) {
                (_, AggFunc::CountStar) => state.update(None)?,
                (Some(e), _) => {
                    ctx.machine.add_instructions(e.instruction_cost());
                    let v = e.eval(row)?;
                    state.update(Some(&v))?;
                }
                (None, _) => {
                    return Err(DbError::InvalidPlan(format!(
                        "{:?} requires an argument",
                        spec.func
                    )))
                }
            }
        }
        Ok(())
    }

    fn consume(&mut self, ctx: &mut ExecContext, rows: Vec<Tuple>) -> Result<()> {
        for row in rows {
            if self.group_by.is_empty() {
                Self::update_states(ctx, &self.aggs, &mut self.states, &row)?;
            } else {
                let mut key = Vec::with_capacity(self.group_by.len());
                let mut key_vals = Vec::with_capacity(self.group_by.len());
                for &g in &self.group_by {
                    key.push(key_atom(row.get(g))?);
                    key_vals.push(row.get(g).clone());
                }
                // One hash-bucket touch per input row, as in the pull path.
                let h = fx_hash(&key);
                ctx.machine.data_read(self.ht_base + (h & 0xFFFF) * 16, 16);
                let entry = self.groups.entry(key.clone()).or_insert_with(|| {
                    self.order.push(key);
                    (
                        key_vals,
                        self.aggs.iter().map(|a| AggState::new(a.func)).collect(),
                    )
                });
                let mut tmp = std::mem::take(&mut entry.1);
                Self::update_states(ctx, &self.aggs, &mut tmp, &row)?;
                entry.1 = tmp;
            }
        }
        Ok(())
    }

    fn finish(&mut self) -> Vec<Tuple> {
        if self.group_by.is_empty() {
            let vals: Vec<Datum> = self.states.iter().map(AggState::finish).collect();
            vec![Tuple::new(vals)]
        } else {
            std::mem::take(&mut self.order)
                .into_iter()
                .filter_map(|k| self.groups.remove(&k))
                .map(|(key_vals, states)| {
                    let mut vals = key_vals;
                    vals.extend(states.iter().map(AggState::finish));
                    Tuple::new(vals)
                })
                .collect()
        }
    }
}

/// A fused push pipeline behind the pull [`Operator`] interface: the parent
/// still demand-pulls one tuple per `next`, but internally tuples are
/// produced batch-at-a-time into an emit queue, with one combined-region
/// execution per batch.
pub struct PushPipelineOp {
    schema: SchemaRef,
    /// The fused group's combined code region.
    code: CodeRegion,
    source: PushSource,
    /// Stages in application order (closest to the scan first).
    stages: Vec<Stage>,
    agg: Option<AggSink>,
    emit: VecDeque<Tuple>,
    source_done: bool,
    out_region: u32,
    batch_hint: usize,
}

impl PushPipelineOp {
    /// Compile the subtree under a `PlanNode::PushPipeline` marker.
    ///
    /// Registers profiler labels for the fused nodes in plan pre-order
    /// (the contract `explain_analyze` and the exchange's
    /// `register_labels_rec` rely on); fused nodes own no brackets, so
    /// their slots read zero and all fused work lands on the enclosing
    /// `PushPipeline` bracket. Hash-join build subtrees are real pull
    /// operators built via the normal path and keep their own attribution.
    pub(crate) fn compile(
        input: &PlanNode,
        catalog: &Catalog,
        fm: &mut FootprintModel,
        worker_fm: &dyn Fn() -> FootprintModel,
    ) -> Result<Self> {
        let schema = input.output_schema(catalog)?;
        let code = fm.region_for(&OpKind::PushGroup(push_member_kinds(input)));
        let mut agg = None;
        let (source, stages) = walk(input, catalog, fm, worker_fm, true, &mut agg)?;
        Ok(PushPipelineOp {
            schema,
            code,
            source,
            stages,
            agg,
            emit: VecDeque::new(),
            source_done: false,
            out_region: u32::MAX,
            batch_hint: DEFAULT_BATCH,
        })
    }

    /// Pump one source batch through the fused stages into the emit queue
    /// (or the aggregate sink). One fused-region execution per call.
    fn pump_batch(&mut self, ctx: &mut ExecContext) -> Result<()> {
        ctx.check_cancel()?;
        ctx.machine.exec_region(&mut self.code);
        let mut batch = Vec::new();
        let mut scanned = 0u32;
        let mut first = true;
        while scanned < PUSH_BATCH_ROWS {
            if self.source.pos >= self.source.limit {
                self.source_done = true;
                break;
            }
            ctx.fault(fault::SEQSCAN_NEXT)?;
            ctx.tuple_yield();
            let id = self.source.pos;
            self.source.pos += 1;
            scanned += 1;
            if !first {
                ctx.machine.add_instructions(SCAN_LOOP_INSTR);
            }
            first = false;
            ctx.machine.data_read(
                self.source.table.row_addr(id),
                self.source.table.row_width(id),
            );
            let row = self.source.table.row(id);
            if let Some(pred) = &self.source.predicate {
                let keep = pred.eval_predicate(row)?;
                ctx.machine.add_instructions(pred.instruction_cost());
                ctx.machine.branch(self.source.pred_site, keep);
                if !keep {
                    continue;
                }
            }
            let out = match &self.source.projection {
                None => row.clone(),
                Some(exprs) => {
                    let mut vals = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        ctx.machine.add_instructions(e.instruction_cost());
                        vals.push(e.eval(row)?);
                    }
                    Tuple::new(vals)
                }
            };
            batch.push(out);
        }
        for stage in &mut self.stages {
            if batch.is_empty() {
                break;
            }
            batch = match stage {
                Stage::Filter {
                    predicate,
                    pred_site,
                } => {
                    let mut out = Vec::with_capacity(batch.len());
                    for row in batch {
                        let keep = predicate.eval_predicate(&row)?;
                        ctx.machine.add_instructions(predicate.instruction_cost());
                        ctx.machine.branch(*pred_site, keep);
                        if keep {
                            out.push(row);
                        }
                    }
                    out
                }
                Stage::Project { exprs } => {
                    let mut out = Vec::with_capacity(batch.len());
                    for row in batch {
                        let mut vals = Vec::with_capacity(exprs.len());
                        for e in exprs.iter() {
                            ctx.machine.add_instructions(e.instruction_cost());
                            vals.push(e.eval(&row)?);
                        }
                        out.push(Tuple::new(vals));
                    }
                    out
                }
                Stage::Probe(p) => p.apply(ctx, batch),
            };
        }
        match &mut self.agg {
            Some(a) => a.consume(ctx, batch)?,
            None => self.emit.extend(batch),
        }
        Ok(())
    }
}

/// Recursive pipeline compiler: registers the node's profiler label, then
/// returns the source plus the stages *below* this node in application
/// order. Build sides of hash joins are delegated to the pull builder.
fn walk(
    node: &PlanNode,
    catalog: &Catalog,
    fm: &mut FootprintModel,
    worker_fm: &dyn Fn() -> FootprintModel,
    at_root: bool,
    agg: &mut Option<AggSink>,
) -> Result<(PushSource, Vec<Stage>)> {
    if fm.obs_enabled() {
        fm.obs_register(super::obs_label(node));
    }
    match node {
        PlanNode::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            if !at_root {
                return Err(DbError::InvalidPlan(
                    "push group: aggregate must sit at the pipeline root".into(),
                ));
            }
            *agg = Some(AggSink::new(group_by.clone(), aggs.clone())?);
            walk(input, catalog, fm, worker_fm, false, agg)
        }
        PlanNode::Filter { input, predicate } => {
            let pred_site = fm.predicate_site();
            let (src, mut stages) = walk(input, catalog, fm, worker_fm, false, agg)?;
            stages.push(Stage::Filter {
                predicate: predicate.clone(),
                pred_site,
            });
            Ok((src, stages))
        }
        PlanNode::Project { input, exprs } => {
            let (src, mut stages) = walk(input, catalog, fm, worker_fm, false, agg)?;
            stages.push(Stage::Project {
                exprs: exprs.iter().map(|(e, _)| e.clone()).collect(),
            });
            Ok((src, stages))
        }
        PlanNode::HashJoin {
            probe,
            build,
            probe_key,
            build_key,
        } => {
            let build_code = fm.region_for(&OpKind::HashBuild);
            let match_site = fm.predicate_site();
            // Probe side first so label registration follows plan pre-order
            // (children are [probe, build]).
            let (src, mut stages) = walk(probe, catalog, fm, worker_fm, false, agg)?;
            let build_op = super::build_rec(build, catalog, fm, worker_fm)?;
            stages.push(Stage::Probe(ProbeStage {
                build: build_op,
                build_code,
                probe_key: *probe_key,
                build_key: *build_key,
                match_site,
                table: HashMap::new(),
                build_rows: Vec::new(),
                ht_base: 0,
                bucket_mask: 0,
            }));
            Ok((src, stages))
        }
        PlanNode::SeqScan {
            table,
            predicate,
            projection,
        } => {
            let table = catalog.table(table)?;
            let pred_site = fm.predicate_site();
            Ok((
                PushSource {
                    table,
                    predicate: predicate.clone(),
                    pred_site,
                    projection: projection
                        .as_ref()
                        .map(|v| v.iter().map(|(e, _)| e.clone()).collect()),
                    pos: 0,
                    start: 0,
                    limit: 0,
                },
                Vec::new(),
            ))
        }
        other => Err(DbError::InvalidPlan(format!(
            "plan node {:?} cannot join a push group",
            other.op_kind()
        ))),
    }
}

impl Operator for PushPipelineOp {
    fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn set_batch_hint(&mut self, n: usize) {
        self.batch_hint = self.batch_hint.max(n);
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.out_region = ctx
            .arena
            .alloc_region(self.batch_hint as u32 + 1, schema_slot_bytes(&self.schema));
        self.emit.clear();
        self.source_done = false;
        let count = self.source.table.row_count() as u32;
        self.source.start = 0;
        self.source.limit = count;
        // An exchange worker hands us a morsel: scan only that row range.
        if let Some((lo, hi)) = ctx.morsel.take() {
            self.source.start = lo.min(count);
            self.source.limit = hi.min(count);
        }
        self.source.pos = self.source.start;
        if let Some(a) = &mut self.agg {
            a.reset(ctx);
        }
        for stage in &mut self.stages {
            if let Stage::Probe(p) = stage {
                p.open_build(ctx)?;
            }
        }
        Ok(())
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<TupleSlot>> {
        loop {
            if let Some(t) = self.emit.pop_front() {
                ctx.machine.add_instructions(EMIT_LOOP_INSTR);
                let slot = ctx.arena.store(self.out_region, t, &mut ctx.machine);
                return Ok(Some(slot));
            }
            if self.source_done {
                if let Some(a) = &mut self.agg {
                    if !a.emitted {
                        a.emitted = true;
                        // Finalization pass over the group table: one last
                        // run of the fused region.
                        ctx.machine.exec_region(&mut self.code);
                        self.emit.extend(a.finish());
                        continue;
                    }
                }
                return Ok(None);
            }
            self.pump_batch(ctx)?;
        }
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.emit.clear();
        for stage in &mut self.stages {
            if let Stage::Probe(p) = stage {
                p.table.clear();
                p.build_rows.clear();
                p.build.close(ctx)?;
            }
        }
        Ok(())
    }
}
