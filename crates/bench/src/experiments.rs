//! One function per paper artifact (table or figure).

use crate::runner::{
    comparison_report, reduction, run_plan, run_plan_traced, CacheContentionPoint, MetricsReport,
    ModesEntry, ModesReport, PlanCacheReport, PreparedQueryMetrics, QueryMetrics, RunResult,
    ScalingEntry, ScalingReport, WorkerLaneMetrics,
};
use bufferdb_cachesim::MachineConfig;
use bufferdb_core::exec::execute_query;
use bufferdb_core::footprint::OpKind;
use bufferdb_core::obs::TraceEvent;
use bufferdb_core::optimizer::ExecModePolicy;
use bufferdb_core::plan::explain::explain;
use bufferdb_core::plan::{AggFunc, PlanNode};
use bufferdb_core::prepare::{prepare_physical_plan, prepare_plan_parts_with_mode, Database};
use bufferdb_core::refine::calibrate::calibrate_cardinality_threshold;
use bufferdb_core::refine::{refine_plan, RefineConfig};
use bufferdb_core::session::QueryOpts;
use bufferdb_storage::Catalog;
use bufferdb_tpch::queries::{self, JoinMethod};
use bufferdb_types::Date;
use std::fmt::Write as _;

/// Shared context for every experiment: data, machine, refiner settings.
pub struct ExperimentCtx {
    /// TPC-H catalog.
    pub catalog: Catalog,
    /// Simulated machine.
    pub machine: MachineConfig,
    /// Refinement configuration.
    pub refine: RefineConfig,
    /// Scale factor the catalog was generated at.
    pub scale: f64,
}

impl ExperimentCtx {
    /// Generate data and defaults for `scale` (the paper uses 0.2; smaller
    /// scales keep simulation time reasonable — shapes are scale-invariant).
    pub fn new(scale: f64, seed: u64) -> Self {
        ExperimentCtx {
            catalog: bufferdb_tpch::generate_catalog(scale, seed),
            machine: MachineConfig::pentium4_like(),
            refine: RefineConfig::default(),
            scale,
        }
    }

    fn buffered(&self, plan: &PlanNode) -> PlanNode {
        refine_plan(plan, &self.catalog, &self.refine)
    }
}

/// Wrap `plan`'s input edge in an explicit buffer (for experiments that
/// force buffering regardless of the refiner's verdict, e.g. Figure 9).
fn buffer_above_input(plan: &PlanNode, size: usize) -> PlanNode {
    match plan {
        PlanNode::Aggregate {
            input,
            group_by,
            aggs,
        } => PlanNode::Aggregate {
            input: Box::new(PlanNode::Buffer {
                input: input.clone(),
                size,
            }),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        other => PlanNode::Buffer {
            input: Box::new(other.clone()),
            size,
        },
    }
}

/// Table 1: the simulated machine specification.
pub fn table1(ctx: &ExperimentCtx) -> String {
    format!(
        "== Table 1: system specification ==\n{}",
        ctx.machine.to_table1()
    )
}

/// Table 2: operator instruction footprints.
pub fn table2() -> String {
    let rows: Vec<(&str, OpKind)> = vec![
        (
            "Scan, without predicates",
            OpKind::SeqScan { with_pred: false },
        ),
        ("Scan, with predicates", OpKind::SeqScan { with_pred: true }),
        ("IndexScan", OpKind::IndexScan),
        ("Sort", OpKind::Sort),
        ("NestLoop", OpKind::NestLoop),
        ("Merge Join", OpKind::MergeJoin),
        ("Hash Join, build", OpKind::HashBuild),
        ("Hash Join, probe", OpKind::HashProbe),
        ("Aggregation, base", OpKind::Aggregate { funcs: vec![] }),
        (
            "  + COUNT",
            OpKind::Aggregate {
                funcs: vec![AggFunc::CountStar],
            },
        ),
        (
            "  + MIN",
            OpKind::Aggregate {
                funcs: vec![AggFunc::Min],
            },
        ),
        (
            "  + MAX",
            OpKind::Aggregate {
                funcs: vec![AggFunc::Max],
            },
        ),
        (
            "  + SUM",
            OpKind::Aggregate {
                funcs: vec![AggFunc::Sum],
            },
        ),
        (
            "  + AVG",
            OpKind::Aggregate {
                funcs: vec![AggFunc::Avg],
            },
        ),
        ("Buffer", OpKind::Buffer),
    ];
    let mut s = String::from("== Table 2: instruction footprints ==\n");
    for (name, kind) in rows {
        let _ = writeln!(
            s,
            "{name:<28} {:>6.1} K",
            kind.footprint_bytes() as f64 / 1000.0
        );
    }
    s
}

/// Figure 4: execution-time breakdown of the unbuffered paper Query 1.
pub fn fig4(ctx: &ExperimentCtx) -> String {
    let plan = queries::paper_query1(&ctx.catalog).expect("query 1");
    let run = run_plan("Query 1 (original)", &plan, &ctx.catalog, &ctx.machine);
    let mut s = String::from("== Figure 4: instruction cache thrashing impact (Query 1) ==\n");
    let _ = writeln!(s, "{}", run.chart_row());
    let _ = writeln!(s, "{}", run.stats.breakdown);
    let _ = writeln!(
        s,
        "L1i miss fraction of modeled time: {:.1}%",
        100.0 * run.stats.breakdown.l1i_fraction()
    );
    s
}

/// Figure 9: Query 2 original vs (unhelpfully) buffered — the combined
/// footprint already fits in L1i, so buffering must not win.
pub fn fig9(ctx: &ExperimentCtx) -> String {
    let plan = queries::paper_query2(&ctx.catalog).expect("query 2");
    let refined = ctx.buffered(&plan);
    let forced = buffer_above_input(&plan, ctx.refine.buffer_size);
    let original = run_plan("Original Plan", &plan, &ctx.catalog, &ctx.machine);
    let buffered = run_plan("Buffered Plan", &forced, &ctx.catalog, &ctx.machine);
    let mut s = comparison_report("Figure 9: Query 2 (fits in L1i)", &original, &buffered);
    let _ = writeln!(
        s,
        "plan refinement adds {} buffer(s) for Query 2 (expected: 0)",
        refined.buffer_count()
    );
    s
}

/// Figure 10: Query 1 original vs buffered (the paper's headline single-table
/// result: ~80 % fewer trace-cache misses, ~12 % faster).
pub fn fig10(ctx: &ExperimentCtx) -> String {
    let plan = queries::paper_query1(&ctx.catalog).expect("query 1");
    let refined = ctx.buffered(&plan);
    let original = run_plan("Original Plan", &plan, &ctx.catalog, &ctx.machine);
    let buffered = run_plan("Buffered Plan", &refined, &ctx.catalog, &ctx.machine);
    let mut s = comparison_report("Figure 10: Query 1 (exceeds L1i)", &original, &buffered);
    let _ = writeln!(s, "\nrefined plan:\n{}", explain(&refined, &ctx.catalog));
    s
}

/// Figure 11: elapsed time vs output cardinality (the §7.3 threshold sweep).
pub fn fig11(ctx: &ExperimentCtx) -> String {
    let lineitem = ctx.catalog.table("lineitem").expect("lineitem");
    let n = lineitem.row_count() as f64;
    let start = Date::parse("1992-01-02").expect("date");
    let span = 2405 + 121; // order-date span + max ship offset
    let mut s = String::from(
        "== Figure 11: cardinality effects (Query 1 template) ==\n\
         cardinality | original (s) | buffered (s) | winner\n",
    );
    for frac in [0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.8] {
        let cutoff = start.add_days((span as f64 * frac) as i32);
        let plan = queries::paper_query1_with_cutoff(&ctx.catalog, &cutoff.to_string())
            .expect("query 1 template");
        let buffered_plan = buffer_above_input(&plan, ctx.refine.buffer_size);
        let orig = run_plan("orig", &plan, &ctx.catalog, &ctx.machine);
        let buf = run_plan("buf", &buffered_plan, &ctx.catalog, &ctx.machine);
        let card = orig.rows[0].get(2).as_int().unwrap_or(0);
        let _ = writeln!(
            s,
            "{:>11} | {:>12.4} | {:>12.4} | {}",
            card,
            orig.stats.seconds(),
            buf.stats.seconds(),
            if buf.stats.seconds() < orig.stats.seconds() {
                "buffered"
            } else {
                "original"
            },
        );
        let _ = n; // cardinality reported from the actual run
    }
    s
}

/// Buffer sizes swept by Figures 12 and 13.
pub const BUFFER_SIZES: [usize; 12] = [1, 2, 4, 8, 16, 32, 64, 100, 256, 1024, 4096, 8192];

/// Figure 12: elapsed time vs buffer size for Query 1.
pub fn fig12(ctx: &ExperimentCtx) -> String {
    let plan = queries::paper_query1(&ctx.catalog).expect("query 1");
    let orig = run_plan("orig", &plan, &ctx.catalog, &ctx.machine);
    let mut s = String::from(
        "== Figure 12: varied buffer sizes (Query 1) ==\n\
         buffer size | elapsed (s) | vs original\n",
    );
    let _ = writeln!(
        s,
        "{:>11} | {:>11.4} | (original plan)",
        0,
        orig.stats.seconds()
    );
    for size in BUFFER_SIZES {
        let buffered = buffer_above_input(&plan, size);
        let run = run_plan("buf", &buffered, &ctx.catalog, &ctx.machine);
        let _ = writeln!(
            s,
            "{:>11} | {:>11.4} | {:+.1}%",
            size,
            run.stats.seconds(),
            100.0 * run.stats.improvement_over(&orig.stats)
        );
    }
    s
}

/// Figure 13: breakdown per buffer size.
pub fn fig13(ctx: &ExperimentCtx) -> String {
    let plan = queries::paper_query1(&ctx.catalog).expect("query 1");
    let mut s = String::from("== Figure 13: breakdown for varied buffer sizes (Query 1) ==\n");
    for size in BUFFER_SIZES {
        let buffered = buffer_above_input(&plan, size);
        let run = run_plan(
            &format!("size {size}"),
            &buffered,
            &ctx.catalog,
            &ctx.machine,
        );
        let _ = writeln!(s, "{}", run.chart_row());
    }
    s
}

fn query3_pair(ctx: &ExperimentCtx, method: JoinMethod) -> (RunResult, RunResult, PlanNode) {
    let plan = queries::paper_query3(&ctx.catalog, method).expect("query 3");
    let refined = ctx.buffered(&plan);
    let original = run_plan("Original Plan", &plan, &ctx.catalog, &ctx.machine);
    let buffered = run_plan("Buffered Plan", &refined, &ctx.catalog, &ctx.machine);
    (original, buffered, refined)
}

/// Figures 15/16/17: Query 3 under one join method, original vs buffered.
pub fn join_figure(ctx: &ExperimentCtx, method: JoinMethod) -> String {
    let (fig, title) = match method {
        JoinMethod::NestLoop => (15, "nested-loop join"),
        JoinMethod::HashJoin => (16, "hash join"),
        JoinMethod::MergeJoin => (17, "merge join"),
    };
    let (original, buffered, refined) = query3_pair(ctx, method);
    let mut s = comparison_report(
        &format!("Figure {fig}: Query 3 with {title}"),
        &original,
        &buffered,
    );
    let _ = writeln!(s, "\nbuffered plan:\n{}", explain(&refined, &ctx.catalog));
    s
}

/// Table 3: overall improvement for the three join methods.
pub fn table3(ctx: &ExperimentCtx) -> String {
    let mut s = String::from(
        "== Table 3: overall improvement ==\n\
         method     | original (s) | buffered (s) | improvement\n",
    );
    for (name, m) in [
        ("NestLoop", JoinMethod::NestLoop),
        ("Hash Join", JoinMethod::HashJoin),
        ("Merge Join", JoinMethod::MergeJoin),
    ] {
        let (o, b, _) = query3_pair(ctx, m);
        let _ = writeln!(
            s,
            "{name:<10} | {:>12.3} | {:>12.3} | {:>4.1}%",
            o.stats.seconds(),
            b.stats.seconds(),
            100.0 * b.stats.improvement_over(&o.stats)
        );
    }
    s
}

/// Table 4: CPI for the three join methods (plus the instruction-count
/// delta confirming buffers are light-weight).
pub fn table4(ctx: &ExperimentCtx) -> String {
    let mut s = String::from(
        "== Table 4: cost per instruction ==\n\
         method     | original CPI | buffered CPI | instruction delta\n",
    );
    for (name, m) in [
        ("NestLoop", JoinMethod::NestLoop),
        ("Hash Join", JoinMethod::HashJoin),
        ("Merge Join", JoinMethod::MergeJoin),
    ] {
        let (o, b, _) = query3_pair(ctx, m);
        let delta = -reduction(o.stats.counters.instructions, b.stats.counters.instructions);
        let _ = writeln!(
            s,
            "{name:<10} | {:>12.2} | {:>12.2} | {delta:+.2}%",
            o.stats.cpi(),
            b.stats.cpi(),
        );
    }
    s
}

/// Table 5: TPC-H queries, original vs refined plan.
///
/// The paper's row labels were lost in the scanned text; per its prose
/// ("expensive queries without subqueries and without very selective
/// predicates") we use Q1, Q6, Q12 and Q14 — see EXPERIMENTS.md.
pub fn table5(ctx: &ExperimentCtx) -> String {
    let plans: Vec<(&str, PlanNode)> = vec![
        ("Q1", queries::tpch_q1(&ctx.catalog).expect("q1")),
        ("Q6", queries::tpch_q6(&ctx.catalog).expect("q6")),
        ("Q12", queries::tpch_q12(&ctx.catalog).expect("q12")),
        ("Q14", queries::tpch_q14(&ctx.catalog).expect("q14")),
    ];
    let mut s = String::from(
        "== Table 5: TPC-H queries ==\n\
         query | original (s) | buffered (s) | improvement | buffers added\n",
    );
    for (name, plan) in plans {
        let refined = ctx.buffered(&plan);
        let o = run_plan("orig", &plan, &ctx.catalog, &ctx.machine);
        let b = run_plan("buf", &refined, &ctx.catalog, &ctx.machine);
        let _ = writeln!(
            s,
            "{name:<5} | {:>12.3} | {:>12.3} | {:>10.1}% | {}",
            o.stats.seconds(),
            b.stats.seconds(),
            100.0 * b.stats.improvement_over(&o.stats),
            refined.buffer_count(),
        );
    }
    s
}

/// Per-query modeled metrics for the machine-readable baseline export:
/// the paper's Query 1 plus the Table 5 TPC-H queries, original vs refined.
/// The `repro` binary serializes this to `BENCH_baseline.json`.
pub fn baseline_metrics(ctx: &ExperimentCtx, seed: u64, threads: usize) -> MetricsReport {
    let plans: Vec<(&str, PlanNode)> = vec![
        (
            "paper Q1",
            queries::paper_query1(&ctx.catalog).expect("paper q1"),
        ),
        ("Q1", queries::tpch_q1(&ctx.catalog).expect("q1")),
        ("Q6", queries::tpch_q6(&ctx.catalog).expect("q6")),
        ("Q12", queries::tpch_q12(&ctx.catalog).expect("q12")),
        ("Q14", queries::tpch_q14(&ctx.catalog).expect("q14")),
    ];
    let mut report = MetricsReport {
        scale: ctx.scale,
        seed,
        threads: threads.max(1) as u64,
        entries: Vec::new(),
    };
    for (name, plan) in plans {
        let refined = ctx.buffered(&plan);
        let o = run_plan_traced("original", &plan, &ctx.catalog, &ctx.machine, threads);
        let b = run_plan_traced("refined", &refined, &ctx.catalog, &ctx.machine, threads);
        report
            .entries
            .push(QueryMetrics::from_run(name, "original", &plan, &o));
        report
            .entries
            .push(QueryMetrics::from_run(name, "refined", &refined, &b));
    }
    report
}

/// Worker counts swept by the scaling experiment.
pub const SCALING_WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Modeled wall-clock of a profiled parallel run: every core's cycles are
/// in the conserved total, but per exchange the worker lanes ran
/// concurrently — so the modeled wall clock replaces each exchange's
/// lane-cycle *sum* with its lane-cycle *maximum* (the critical path).
fn modeled_wall_seconds(
    stats: &bufferdb_core::stats::ExecStats,
    profile: &bufferdb_core::obs::QueryProfile,
    cfg: &MachineConfig,
) -> f64 {
    use bufferdb_cachesim::BreakdownReport;
    let cycles = |c: &bufferdb_cachesim::PerfCounters| {
        BreakdownReport::from_counters(c, cfg).total_cycles as i128
    };
    let mut wall = cycles(&stats.counters);
    for op in &profile.ops {
        if let Some(lanes) = &op.workers {
            let lane_cycles: Vec<i128> = lanes.iter().map(|l| cycles(&l.counters)).collect();
            wall -= lane_cycles.iter().sum::<i128>();
            wall += lane_cycles.iter().copied().max().unwrap_or(0);
        }
    }
    wall.max(0) as f64 / cfg.clock_hz as f64
}

/// Morsel-parallel scaling sweep: the Table 5 TPC-H queries executed at
/// 1/2/4/8 exchange workers (plan prepared by [`prepare_physical_plan`] —
/// the one parallelize-then-refine path — then run under the profiler).
/// At 1 worker the prepared plan is the serial plan (no exchange rewrite),
/// so the speedup baseline is a true serial run. Checks counter
/// conservation on
/// every run — the per-worker cache simulation must account for exactly the
/// work the serial run would have done, just on different cores — and
/// reports the modeled-machine wall-clock speedup relative to the 1-worker
/// run plus per-worker L1i lanes. The `repro` binary serializes this to
/// `BENCH_parallel.json`.
pub fn scaling_metrics(ctx: &ExperimentCtx, seed: u64) -> ScalingReport {
    let plans: Vec<(&str, PlanNode)> = vec![
        ("Q1", queries::tpch_q1(&ctx.catalog).expect("q1")),
        ("Q6", queries::tpch_q6(&ctx.catalog).expect("q6")),
        ("Q12", queries::tpch_q12(&ctx.catalog).expect("q12")),
        ("Q14", queries::tpch_q14(&ctx.catalog).expect("q14")),
    ];
    let mut report = ScalingReport {
        scale: ctx.scale,
        seed,
        entries: Vec::new(),
    };
    for (name, plan) in plans {
        let mut base_modeled = None;
        let mut base_host = None;
        for workers in SCALING_WORKERS {
            let par = prepare_physical_plan(&plan, &ctx.catalog, &ctx.refine, workers)
                .unwrap_or_else(|e| panic!("{name}: prepare: {e}"));
            let opts = QueryOpts::new().threads(workers).profile(true);
            let (rows, stats, profile) = execute_query(&par, &ctx.catalog, &ctx.machine, &opts)
                .into_result()
                .unwrap_or_else(|e| panic!("{name} at {workers} workers: {e}"));
            let profile = profile.expect("profiling was requested");
            assert_eq!(
                profile.sum_op_counters(),
                stats.counters,
                "{name} at {workers} workers: per-worker counters not conserved"
            );
            let modeled = modeled_wall_seconds(&stats, &profile, &ctx.machine);
            let host = stats.wall.as_secs_f64();
            let mbase = *base_modeled.get_or_insert(modeled);
            let hbase = *base_host.get_or_insert(host);
            let lanes: Vec<WorkerLaneMetrics> = profile
                .ops
                .iter()
                .filter_map(|op| op.workers.as_ref())
                .flatten()
                .map(WorkerLaneMetrics::from_lane)
                .collect();
            report.entries.push(ScalingEntry {
                query: name.to_string(),
                workers: workers as u64,
                rows: rows.len() as u64,
                modeled_wall_seconds: modeled,
                speedup: if modeled > 0.0 { mbase / modeled } else { 1.0 },
                modeled_cpu_seconds: stats.seconds(),
                host_seconds: host,
                host_speedup: if host > 0.0 { hbase / host } else { 1.0 },
                l1i_misses: stats.counters.l1i_misses,
                lanes,
            });
        }
    }
    report
}

/// Resolve a trace-target query name to its plan.
fn plan_by_name(catalog: &Catalog, name: &str) -> PlanNode {
    match name {
        "paperQ1" => queries::paper_query1(catalog).expect("paper q1"),
        "paperQ2" => queries::paper_query2(catalog).expect("paper q2"),
        "Q1" => queries::tpch_q1(catalog).expect("q1"),
        "Q6" => queries::tpch_q6(catalog).expect("q6"),
        "Q12" => queries::tpch_q12(catalog).expect("q12"),
        "Q14" => queries::tpch_q14(catalog).expect("q14"),
        other => panic!("unknown trace query {other:?} (try Q1 Q6 Q12 Q14 paperQ1 paperQ2)"),
    }
}

/// Run `name` under the flight recorder at `threads` workers through the
/// adaptive prepared-query path. Returns `(perfetto_json, summary)` — the
/// Chrome/Perfetto trace-event document and the terminal timeline.
///
/// The adaptive loop runs a few rounds so the exported trace carries
/// adaptivity instants when observation moves the plan. The round that
/// installed a new plan generation wins (it shows the pre-split
/// execution *and* the decision that changed it); failing that, the
/// last round with any instants; failing that, the last round.
pub fn trace_query(ctx: &ExperimentCtx, seed: u64, threads: usize, name: &str) -> (String, String) {
    let mut db = Database::open(
        bufferdb_tpch::generate_catalog(ctx.scale, seed),
        ctx.machine.clone(),
    )
    .with_refine_config(ctx.refine.clone());
    db.set_threads(threads);
    let plan = plan_by_name(db.catalog(), name);
    let prepared = db
        .prepare(&plan)
        .unwrap_or_else(|e| panic!("{name}: prepare: {e}"));
    let opts = QueryOpts::new().trace(true).threads(threads);
    const ROUNDS: usize = 6;
    let mut with_install = None;
    let mut with_instants = None;
    let mut last = None;
    for round in 0..ROUNDS {
        let mut out = prepared.execute_adaptive_opts(&opts);
        if let Some(err) = out.error() {
            panic!("{name}: traced round {round}: {err}");
        }
        let trace = out.take_trace().expect("trace was requested");
        let installed = trace
            .instants
            .iter()
            .any(|ev| matches!(ev.event, TraceEvent::AdaptInstall { .. }));
        if installed {
            with_install = Some(trace);
        } else if !trace.instants.is_empty() {
            with_instants = Some(trace);
        } else {
            last = Some(trace);
        }
    }
    let trace = with_install
        .or(with_instants)
        .or(last)
        .expect("at least one round executed");
    (trace.perfetto_json(), trace.summary())
}

/// Plain-text rendering of the scaling sweep (the `repro scaling` report).
pub fn scaling_table(report: &ScalingReport) -> String {
    let mut s = String::from(
        "== Scaling: TPC-H under morsel-driven parallelism ==\n\
         (wall = modeled machine wall clock: serial cycles + slowest lane per exchange;\n\
          cpu = conserved modeled cycles over all cores; host = simulation runtime)\n\
         query | workers | wall (s) | speedup | cpu (s) | host (s) | L1i misses | lanes\n",
    );
    for e in &report.entries {
        let _ = writeln!(
            s,
            "{:<5} | {:>7} | {:>8.4} | {:>6.2}x | {:>7.4} | {:>8.4} | {:>10} | {}",
            e.query,
            e.workers,
            e.modeled_wall_seconds,
            e.speedup,
            e.modeled_cpu_seconds,
            e.host_seconds,
            e.l1i_misses,
            e.lanes.len(),
        );
    }
    s
}

/// Worker counts swept by the executor-mode showdown.
pub const MODES_WORKERS: [usize; 3] = [1, 2, 4];

/// Mode policies swept by the showdown, pull first (it is the baseline
/// the other modes' speedups are computed against).
pub const MODES_POLICIES: [ExecModePolicy; 4] = [
    ExecModePolicy::Pull,
    ExecModePolicy::BufferedPull,
    ExecModePolicy::Push,
    ExecModePolicy::Auto,
];

fn push_pipeline_count(plan: &PlanNode) -> usize {
    let own = usize::from(matches!(plan, PlanNode::PushPipeline { .. }));
    own + plan
        .children()
        .iter()
        .map(|c| push_pipeline_count(c))
        .sum::<usize>()
}

/// The executor-mode showdown: the TPC-H mix prepared under each
/// [`ExecModePolicy`] — unbuffered pull, the paper's buffered pull, the
/// fused batch-at-a-time push backend, and footprint-driven auto selection
/// — at 1/2/4 exchange workers. Every cell asserts bit-identical rows
/// against the pull baseline and exact per-operator counter conservation
/// before any number is reported; the physics (instructions, L1i misses,
/// modeled wall clock) are the only things allowed to differ. The `repro`
/// binary serializes this to `BENCH_modes.json`.
pub fn modes_metrics(ctx: &ExperimentCtx, seed: u64) -> ModesReport {
    let plans: Vec<(&str, PlanNode)> = vec![
        (
            "paper Q1",
            queries::paper_query1(&ctx.catalog).expect("paper q1"),
        ),
        (
            "paper Q2",
            queries::paper_query2(&ctx.catalog).expect("paper q2"),
        ),
        ("Q1", queries::tpch_q1(&ctx.catalog).expect("q1")),
        ("Q6", queries::tpch_q6(&ctx.catalog).expect("q6")),
        ("Q12", queries::tpch_q12(&ctx.catalog).expect("q12")),
        ("Q14", queries::tpch_q14(&ctx.catalog).expect("q14")),
    ];
    let mut report = ModesReport {
        scale: ctx.scale,
        seed,
        entries: Vec::new(),
    };
    for (name, plan) in plans {
        for workers in MODES_WORKERS {
            let mut pull_rows: Option<Vec<String>> = None;
            let mut pull_wall: Option<f64> = None;
            for mode in MODES_POLICIES {
                let parts =
                    prepare_plan_parts_with_mode(&plan, &ctx.catalog, &ctx.refine, workers, mode)
                        .unwrap_or_else(|e| panic!("{name}: prepare ({}): {e}", mode.label()));
                let opts = crate::runner::profiled_exec_options(workers);
                let label = format!("{name} x{workers} ({})", mode.label());
                let outcome = execute_query(&parts.physical, &ctx.catalog, &ctx.machine, &opts);
                let (rows, stats, profile, error) = outcome.into_parts();
                if let Some(err) = error {
                    crate::runner::fail_query(&label, &stats, rows.len(), err);
                }
                let profile = profile.expect("profiling was requested");
                assert_eq!(
                    profile.sum_op_counters(),
                    stats.counters,
                    "{name} x{workers} under {}: counters not conserved",
                    mode.label()
                );
                let rendered: Vec<String> = rows.iter().map(|t| t.to_string()).collect();
                match &pull_rows {
                    None => pull_rows = Some(rendered),
                    Some(expected) => assert_eq!(
                        &rendered,
                        expected,
                        "{name} x{workers} under {}: rows diverge from pull",
                        mode.label()
                    ),
                }
                let modeled = modeled_wall_seconds(&stats, &profile, &ctx.machine);
                let base = *pull_wall.get_or_insert(modeled);
                report.entries.push(ModesEntry {
                    query: name.to_string(),
                    mode: mode.label().to_string(),
                    workers: workers as u64,
                    rows: rows.len() as u64,
                    fused_pipelines: push_pipeline_count(&parts.physical) as u64,
                    buffers: parts.physical.buffer_count() as u64,
                    modeled_wall_seconds: modeled,
                    modeled_cpu_seconds: stats.seconds(),
                    speedup_vs_pull: if modeled > 0.0 { base / modeled } else { 1.0 },
                    instructions: stats.counters.instructions,
                    l1i_misses: stats.counters.l1i_misses,
                });
            }
        }
    }
    report
}

/// Plain-text rendering of the mode showdown (the `repro modes` report).
pub fn modes_table(report: &ModesReport) -> String {
    let mut s = String::from(
        "== Executor-mode showdown: pull vs buffered pull vs push ==\n\
         (speedup is vs the unbuffered pull run of the same query/workers;\n\
          fused = push pipelines in the plan, buf = refiner-placed buffers)\n\
         query    | mode          | workers | fused | buf | wall (s) | speedup | L1i misses\n",
    );
    for e in &report.entries {
        let _ = writeln!(
            s,
            "{:<8} | {:<13} | {:>7} | {:>5} | {:>3} | {:>8.4} | {:>6.2}x | {:>10}",
            e.query,
            e.mode,
            e.workers,
            e.fused_pipelines,
            e.buffers,
            e.modeled_wall_seconds,
            e.speedup_vs_pull,
            e.l1i_misses,
        );
    }
    s
}

/// Prepared-query study for the plan cache and the adaptive refinement
/// loop: for each query, time the cold (miss) and warm (hit) prepare
/// paths, then execute adaptively until the feedback loop converges and
/// compare the static plan's simulated L1i misses against the adapted
/// plan's. The `repro` binary serializes this to `BENCH_plancache.json`;
/// CI asserts `cache_hits > 0` on it.
///
/// The interesting rows are queries whose execution groups *statically* fit
/// the 16 KB L1i budget but thrash at runtime (the footprint model excludes
/// the executor dispatch loop and conflict misses) — the paper's Query 2 is
/// the canonical case. There the observed group miss rate exceeds the
/// threshold, the adaptive loop tightens the effective budget, and
/// re-refinement splits the group with a buffer the static pass declined.
pub fn prepared_metrics(ctx: &ExperimentCtx, seed: u64, threads: usize) -> PlanCacheReport {
    // `Database` owns its catalog; regenerate identically from the seed.
    let mut db = Database::open(
        bufferdb_tpch::generate_catalog(ctx.scale, seed),
        ctx.machine.clone(),
    )
    .with_refine_config(ctx.refine.clone());
    db.set_threads(threads);
    let plans: Vec<(&str, PlanNode)> = vec![
        (
            "paperQ1",
            queries::paper_query1(db.catalog()).expect("paper q1"),
        ),
        (
            "paperQ2",
            queries::paper_query2(db.catalog()).expect("paper q2"),
        ),
        ("Q1", queries::tpch_q1(db.catalog()).expect("q1")),
        ("Q6", queries::tpch_q6(db.catalog()).expect("q6")),
        ("Q12", queries::tpch_q12(db.catalog()).expect("q12")),
        ("Q14", queries::tpch_q14(db.catalog()).expect("q14")),
    ];

    // Cold path: clear the cache each round so every prepare re-optimizes.
    const TIMING_ROUNDS: usize = 5;
    let mut miss_us = vec![0.0_f64; plans.len()];
    let mut hit_us = vec![0.0_f64; plans.len()];
    for _ in 0..TIMING_ROUNDS {
        db.plan_cache().clear();
        for (i, (name, plan)) in plans.iter().enumerate() {
            let t = std::time::Instant::now();
            db.prepare(plan)
                .unwrap_or_else(|e| panic!("{name}: prepare: {e}"));
            miss_us[i] += t.elapsed().as_secs_f64() * 1e6;
        }
    }
    // Warm path: every plan is now resident; prepares are pure lookups.
    for _ in 0..TIMING_ROUNDS {
        for (i, (name, plan)) in plans.iter().enumerate() {
            let t = std::time::Instant::now();
            db.prepare(plan)
                .unwrap_or_else(|e| panic!("{name}: prepare: {e}"));
            hit_us[i] += t.elapsed().as_secs_f64() * 1e6;
        }
    }

    let mut report = PlanCacheReport {
        scale: ctx.scale,
        seed,
        threads: threads as u64,
        ..PlanCacheReport::default()
    };
    for (i, (name, plan)) in plans.iter().enumerate() {
        let q = db
            .prepare(plan)
            .unwrap_or_else(|e| panic!("{name}: prepare: {e}"));
        let static_plan = q.plan();
        let profiled = QueryOpts::new().profile(true);
        let s_out = q.execute_opts(&profiled);
        assert!(s_out.is_ok(), "{name}: static run: {:?}", s_out.error());
        let static_l1i = s_out.stats().counters.l1i_misses;
        // Drive the feedback loop to convergence (bounded by the
        // generation cap in `AdaptConfig`).
        let mut generation = q.generation();
        loop {
            let out = q.execute_adaptive();
            assert!(out.is_ok(), "{name}: adaptive run: {:?}", out.error());
            if q.generation() == generation {
                break;
            }
            generation = q.generation();
        }
        let adapted_plan = q.plan();
        let a_out = q.execute_opts(&profiled);
        assert!(a_out.is_ok(), "{name}: adapted run: {:?}", a_out.error());
        report.queries.push(PreparedQueryMetrics {
            query: name.to_string(),
            miss_prepare_micros: miss_us[i] / TIMING_ROUNDS as f64,
            hit_prepare_micros: hit_us[i] / TIMING_ROUNDS as f64,
            rows: a_out.rows().len() as u64,
            static_buffers: static_plan.buffer_count() as u64,
            adapted_buffers: adapted_plan.buffer_count() as u64,
            generations: generation,
            static_l1i_misses: static_l1i,
            adapted_l1i_misses: a_out.stats().counters.l1i_misses,
        });
    }
    let cache = db.plan_cache().stats();
    report.hits = cache.hits;
    report.misses = cache.misses;
    report.entries = cache.entries as u64;
    report.contention = cache_contention();
    report
}

/// Hit-path latency under concurrent load, single-shard vs sharded.
///
/// Models a 256-session server: 256 distinct prepared-statement
/// fingerprints resident at once, with every available core hammering
/// lookups across that working set (each OS thread walks its own stride
/// through the 256 logical sessions' fingerprints). A single-shard cache
/// serializes every lookup on one mutex; the sharded cache splits the
/// population across independently locked shards, so the same offered load
/// contends only within a shard.
fn cache_contention() -> Vec<CacheContentionPoint> {
    use bufferdb_core::prepare::{fingerprint_plan, PlanCache};
    const POPULATION: usize = 256;
    const LOOKUPS_PER_THREAD: usize = 100_000;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(2, 8);
    let machine = MachineConfig::pentium4_like();
    let refine = RefineConfig::default();
    let plans: Vec<PlanNode> = (0..POPULATION)
        .map(|i| PlanNode::SeqScan {
            table: format!("session{i}"),
            predicate: None,
            projection: None,
        })
        .collect();
    let fps: Vec<_> = plans
        .iter()
        .map(|p| fingerprint_plan(p, &machine, 1, 0, &refine))
        .collect();
    let mut out = Vec::new();
    for shards in [1usize, bufferdb_core::prepare::DEFAULT_CACHE_SHARDS] {
        // Capacity 2× the population so per-shard LRU never evicts the
        // working set even under a skewed fingerprint distribution: every
        // timed lookup is a hit.
        let cache = PlanCache::sharded(POPULATION * 2, shards);
        for (plan, fp) in plans.iter().zip(&fps) {
            cache.insert(*fp, 0, plan.clone(), plan.clone());
        }
        let total = (threads * LOOKUPS_PER_THREAD) as u64;
        let start = std::time::Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let cache = &cache;
                let fps = &fps;
                s.spawn(move || {
                    let mut hits = 0_u64;
                    // Coprime stride per thread: all threads sweep the whole
                    // population in different orders, colliding on shards
                    // the way independent sessions would.
                    let stride = 2 * t + 1;
                    let mut at = t;
                    for _ in 0..LOOKUPS_PER_THREAD {
                        at = (at + stride) % POPULATION;
                        if cache.lookup(fps[at]).is_some() {
                            hits += 1;
                        }
                    }
                    std::hint::black_box(hits);
                });
            }
        });
        out.push(CacheContentionPoint {
            shards: shards as u64,
            threads: threads as u64,
            lookups: total,
            ns_per_lookup: start.elapsed().as_nanos() as f64 / total as f64,
        });
    }
    out
}

/// Plain-text rendering of the prepared-query study (`repro prepared`).
pub fn prepared_table(report: &PlanCacheReport) -> String {
    let mut s = String::from(
        "== Prepared queries: plan cache + adaptive refinement ==\n\
         query   | prepare miss | prepare hit | buffers     | gens | L1i misses static -> adapted\n",
    );
    for q in &report.queries {
        let _ = writeln!(
            s,
            "{:<7} | {:>9.1} us | {:>8.1} us | {:>2} -> {:>2}    | {:>4} | {:>10} -> {:>10}  ({:+.1}%)",
            q.query,
            q.miss_prepare_micros,
            q.hit_prepare_micros,
            q.static_buffers,
            q.adapted_buffers,
            q.generations,
            q.static_l1i_misses,
            q.adapted_l1i_misses,
            -reduction(q.static_l1i_misses, q.adapted_l1i_misses),
        );
    }
    let _ = writeln!(
        s,
        "cache: {} hits, {} misses, {} resident",
        report.hits, report.misses, report.entries
    );
    for c in &report.contention {
        let _ = writeln!(
            s,
            "hit path @ {} threads, {} shard{}: {:>7.1} ns/lookup ({} lookups)",
            c.threads,
            c.shards,
            if c.shards == 1 { "" } else { "s" },
            c.ns_per_lookup,
            c.lookups
        );
    }
    s
}

/// §7.3 calibration: the cardinality threshold for this machine.
pub fn calibrate(ctx: &ExperimentCtx) -> String {
    let report = calibrate_cardinality_threshold(&ctx.machine, ctx.refine.buffer_size);
    let mut s = String::from(
        "== Calibration: cardinality threshold (Query 1 template) ==\n\
         cardinality | original (s) | buffered (s)\n",
    );
    for (card, o, b) in &report.points {
        let _ = writeln!(s, "{card:>11} | {o:>12.4} | {b:>12.4}");
    }
    let _ = writeln!(s, "threshold: {}", report.threshold);
    s
}

/// Ablations called out in DESIGN.md: predictor choice, refinement vs
/// buffer-everything, and a larger L1i.
pub fn ablation(ctx: &ExperimentCtx) -> String {
    let plan = queries::paper_query1(&ctx.catalog).expect("query 1");
    let refined = ctx.buffered(&plan);
    let mut s = String::from("== Ablations (Query 1) ==\n");

    // (a) Branch predictor: gshare vs bimodal.
    for (name, machine) in [
        ("bimodal", ctx.machine.clone()),
        ("gshare", ctx.machine.clone().with_gshare()),
    ] {
        let o = run_plan("orig", &plan, &ctx.catalog, &machine);
        let b = run_plan("buf", &refined, &ctx.catalog, &machine);
        let _ = writeln!(
            s,
            "predictor {name:<8}: mispred {} -> {} ({:+.1}% reduction), time {:+.1}%",
            o.stats.counters.mispredictions,
            b.stats.counters.mispredictions,
            reduction(
                o.stats.counters.mispredictions,
                b.stats.counters.mispredictions
            ),
            100.0 * b.stats.improvement_over(&o.stats),
        );
    }

    // (b) Refinement vs buffering every edge (the "too much buffering" risk
    // §6 warns about: extra buffers cost overhead without extra locality).
    let everywhere = buffer_everywhere(&plan, ctx.refine.buffer_size);
    let o = run_plan("orig", &plan, &ctx.catalog, &ctx.machine);
    let r = run_plan("refined", &refined, &ctx.catalog, &ctx.machine);
    let e = run_plan("everywhere", &everywhere, &ctx.catalog, &ctx.machine);
    let _ = writeln!(
        s,
        "placement: none {:.4}s | refined {:.4}s ({} buffers) | everywhere {:.4}s ({} buffers)",
        o.stats.seconds(),
        r.stats.seconds(),
        refined.buffer_count(),
        e.stats.seconds(),
        everywhere.buffer_count(),
    );

    // (c) A 32 KB L1i: the refiner stops recommending buffers.
    let mut big = ctx.machine.clone();
    big.l1i.capacity = 32 * 1024;
    let big_refine = RefineConfig {
        l1i_capacity: 40 * 1024,
        ..ctx.refine.clone()
    };
    let refined_big = refine_plan(&plan, &ctx.catalog, &big_refine);
    let o_big = run_plan("orig-32k", &plan, &ctx.catalog, &big);
    let _ = writeln!(
        s,
        "32 KB L1i: refiner adds {} buffer(s); unbuffered L1i misses drop to {} (16 KB: {})",
        refined_big.buffer_count(),
        o_big.stats.counters.l1i_misses,
        o.stats.counters.l1i_misses,
    );

    // (d) Pointer buffering vs copying the tuples (§5: "the overhead of
    // copying would reduce the benefit of buffering instructions").
    let (copy_secs, copy_instr) = crate::run_copy_buffered_query1(ctx);
    let _ = writeln!(
        s,
        "buffer variant: pointer {:.4}s ({} instr) | copying {:.4}s ({} instr, {:+.1}% slower than pointer)",
        r.stats.seconds(),
        r.stats.counters.instructions,
        copy_secs,
        copy_instr,
        100.0 * (copy_secs / r.stats.seconds() - 1.0),
    );

    // (e) Other architectures (the paper also ran UltraSparc and Athlon).
    for (name, machine) in [
        ("ultrasparc", MachineConfig::ultrasparc_like()),
        ("athlon", MachineConfig::athlon_like()),
    ] {
        let oo = run_plan("orig", &plan, &ctx.catalog, &machine);
        let bb = run_plan("buf", &refined, &ctx.catalog, &machine);
        let _ = writeln!(
            s,
            "arch {name:<10}: {:.4}s -> {:.4}s ({:+.1}%), L1i misses {} -> {}",
            oo.stats.seconds(),
            bb.stats.seconds(),
            100.0 * bb.stats.improvement_over(&oo.stats),
            oo.stats.counters.l1i_misses,
            bb.stats.counters.l1i_misses,
        );
    }
    s
}

/// Miss-curve analysis (§3's premise that L1 caches stay small): per-iteration
/// i-cache misses of the Query-1 operator pair (scan 13.2 K, aggregation
/// 8.4 K) as cache capacity grows, interleaved vs batched.
pub fn misscurve(_ctx: &ExperimentCtx) -> String {
    use bufferdb_cachesim::misscurve::{sweep, STANDARD_CAPACITIES};
    let points = sweep(13_200, 8_400, &STANDARD_CAPACITIES);
    let mut s = String::from(
        "== Miss curve: Query-1 operator pair vs L1i capacity ==\n         capacity | interleaved misses/iter | batched misses/iter\n",
    );
    for p in points {
        let _ = writeln!(
            s,
            "{:>7}K | {:>23.1} | {:>19.1}",
            p.capacity / 1024,
            p.interleaved,
            p.batched
        );
    }
    let _ = writeln!(
        s,
        "the interleaved cliff sits between the individual and combined \
         footprints; batching (buffering) moves it down to the larger \
         individual footprint."
    );
    s
}

/// Related-work comparison (§2): tuple-at-a-time vs the paper's buffering vs
/// Padmanabhan-style block-oriented processing, on the Query 1 shape.
pub fn blockcmp(ctx: &ExperimentCtx) -> String {
    use bufferdb_core::block::{BlockAggregate, BlockScan};
    use bufferdb_core::context::ExecContext;
    use bufferdb_core::footprint::FootprintModel;

    let plan = queries::paper_query1(&ctx.catalog).expect("query 1");
    let refined = ctx.buffered(&plan);
    let tuple = run_plan("tuple-at-a-time", &plan, &ctx.catalog, &ctx.machine);
    let buffered = run_plan("buffered (paper)", &refined, &ctx.catalog, &ctx.machine);

    // Block-oriented engine on the same query.
    let PlanNode::Aggregate { input, aggs, .. } = plan else {
        unreachable!()
    };
    let PlanNode::SeqScan {
        table, predicate, ..
    } = *input
    else {
        unreachable!()
    };
    let mut fm = FootprintModel::new();
    let scan = Box::new(
        BlockScan::new(
            &ctx.catalog,
            &mut fm,
            &table,
            predicate,
            ctx.refine.buffer_size,
        )
        .expect("block scan"),
    );
    let mut agg =
        BlockAggregate::new(&mut fm, scan, aggs, ctx.refine.buffer_size).expect("block agg");
    let mut exec_ctx = ExecContext::new(ctx.machine.clone());
    let row = agg.execute(&mut exec_ctx).expect("block query");
    let counters = exec_ctx.machine.snapshot();
    let block_breakdown = exec_ctx.machine.breakdown_for(&counters);

    let mut s =
        String::from("== Related work: buffering vs block-oriented processing (Query 1) ==\n");
    let _ = writeln!(s, "{}", tuple.chart_row());
    let _ = writeln!(s, "{}", buffered.chart_row());
    let _ = writeln!(s, "{}", block_breakdown.chart_row("block-oriented"));
    let _ = writeln!(
        s,
        "L1i misses: tuple {} | buffered {} | block {}",
        tuple.stats.counters.l1i_misses, buffered.stats.counters.l1i_misses, counters.l1i_misses,
    );
    let _ = writeln!(
        s,
        "block result check: {} (must equal {})",
        row, tuple.rows[0]
    );
    let _ = writeln!(
        s,
        "note: block processing reaches buffered-level locality but required \
         reimplementing scan and aggregation; the buffer operator reuses the \
         existing operators unchanged (§2, §5)."
    );
    s
}

/// Wrap every pipelined edge in a buffer (ablation baseline: "too much
/// buffering").
pub fn buffer_everywhere(plan: &PlanNode, size: usize) -> PlanNode {
    let wrap = |p: &PlanNode| -> Box<PlanNode> {
        let inner = buffer_everywhere(p, size);
        if matches!(inner, PlanNode::Buffer { .. }) || p.is_blocking() {
            Box::new(inner)
        } else {
            Box::new(PlanNode::Buffer {
                input: Box::new(inner),
                size,
            })
        }
    };
    match plan {
        PlanNode::SeqScan { .. }
        | PlanNode::IndexScan { .. }
        | PlanNode::ReusedScan { .. }
        | PlanNode::SysScan { .. } => plan.clone(),
        // A fused push group is already batch-at-a-time internally; a
        // buffer above (or inside) it would only add copies.
        PlanNode::PushPipeline { .. } => plan.clone(),
        PlanNode::Aggregate {
            input,
            group_by,
            aggs,
        } => PlanNode::Aggregate {
            input: wrap(input),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        PlanNode::Project { input, exprs } => PlanNode::Project {
            input: wrap(input),
            exprs: exprs.clone(),
        },
        PlanNode::Sort { input, keys } => PlanNode::Sort {
            input: wrap(input),
            keys: keys.clone(),
        },
        PlanNode::Materialize { input } => PlanNode::Materialize { input: wrap(input) },
        PlanNode::Filter { input, predicate } => PlanNode::Filter {
            input: wrap(input),
            predicate: predicate.clone(),
        },
        PlanNode::Limit { input, limit } => PlanNode::Limit {
            input: wrap(input),
            limit: *limit,
        },
        PlanNode::Buffer { input, size: s } => PlanNode::Buffer {
            input: Box::new(buffer_everywhere(input, size)),
            size: *s,
        },
        PlanNode::NestLoopJoin {
            outer,
            inner,
            param_outer_col,
            qual,
            fk_inner,
        } => {
            PlanNode::NestLoopJoin {
                outer: wrap(outer),
                // The parameterized inner cannot be usefully buffered.
                inner: Box::new(buffer_everywhere(inner, size)),
                param_outer_col: *param_outer_col,
                qual: qual.clone(),
                fk_inner: *fk_inner,
            }
        }
        PlanNode::HashJoin {
            probe,
            build,
            probe_key,
            build_key,
        } => PlanNode::HashJoin {
            probe: wrap(probe),
            build: wrap(build),
            probe_key: *probe_key,
            build_key: *build_key,
        },
        PlanNode::MergeJoin {
            left,
            right,
            left_key,
            right_key,
        } => PlanNode::MergeJoin {
            left: wrap(left),
            right: wrap(right),
            left_key: *left_key,
            right_key: *right_key,
        },
        // An exchange already batches at its boundary; buffer below it only.
        PlanNode::Exchange { input, workers } => PlanNode::Exchange {
            input: Box::new(buffer_everywhere(input, size)),
            workers: *workers,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentCtx {
        ExperimentCtx::new(0.001, 42)
    }

    #[test]
    fn table_reports_render() {
        let ctx = tiny();
        assert!(table1(&ctx).contains("27 cycles"));
        assert!(table2().contains("Buffer"));
        assert!(table2().contains("13.2 K"));
    }

    #[test]
    fn fig10_shows_buffered_winning() {
        let ctx = tiny();
        let report = fig10(&ctx);
        assert!(report.contains("Buffered Plan"), "{report}");
        assert!(
            report.contains("*Buffer*"),
            "refined plan must contain a buffer\n{report}"
        );
    }

    #[test]
    fn fig9_refiner_declines() {
        let ctx = tiny();
        let report = fig9(&ctx);
        assert!(report.contains("(expected: 0)"));
        assert!(report.contains("adds 0 buffer(s)"), "{report}");
    }

    #[test]
    fn buffer_everywhere_adds_more_buffers_than_refinement() {
        let ctx = tiny();
        let plan = queries::paper_query3(&ctx.catalog, JoinMethod::MergeJoin).unwrap();
        let everywhere = buffer_everywhere(&plan, 100);
        let refined = ctx.buffered(&plan);
        assert!(everywhere.buffer_count() >= refined.buffer_count());
        // Results agree.
        let a = run_plan("a", &plan, &ctx.catalog, &ctx.machine);
        let b = run_plan("b", &everywhere, &ctx.catalog, &ctx.machine);
        assert_eq!(format!("{}", a.rows[0]), format!("{}", b.rows[0]));
    }

    #[test]
    fn join_figures_render_for_all_methods() {
        let ctx = tiny();
        for m in [
            JoinMethod::NestLoop,
            JoinMethod::HashJoin,
            JoinMethod::MergeJoin,
        ] {
            let report = join_figure(&ctx, m);
            assert!(report.contains("trace (L1i) misses"), "{report}");
        }
    }
}
