//! Core value, schema and tuple types shared by every BufferDB crate.
//!
//! The type system deliberately mirrors what the paper's evaluation needs
//! (TPC-H over PostgreSQL): 64-bit integers, floats, fixed-point decimals,
//! dates, strings and booleans, all nullable with SQL three-valued logic.

#![warn(missing_docs)]

pub mod date;
pub mod decimal;
pub mod error;
pub mod ops;
pub mod rng;
pub mod schema;
pub mod tuple;
pub mod value;

pub use date::Date;
pub use decimal::Decimal;
pub use error::{DbError, Result};
pub use rng::Rng;
pub use schema::{DataType, Field, Schema, SchemaRef};
pub use tuple::Tuple;
pub use value::Datum;
