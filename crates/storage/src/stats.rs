//! Table statistics: the "cardinality estimates from the optimizer" that the
//! paper's plan refinement algorithm consumes (§6).

use bufferdb_types::{ops, Datum, SchemaRef, Tuple};
use std::cmp::Ordering;

/// Per-column summary statistics.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Smallest non-null value, if any non-null value exists.
    pub min: Option<Datum>,
    /// Largest non-null value.
    pub max: Option<Datum>,
    /// Number of NULLs.
    pub null_count: u64,
}

/// Whole-table statistics.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Exact row count (tables are immutable after load).
    pub row_count: u64,
    /// One entry per column.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Compute statistics in one pass over the rows.
    pub fn compute(schema: &SchemaRef, rows: &[Tuple]) -> TableStats {
        let mut columns: Vec<ColumnStats> = (0..schema.len())
            .map(|_| ColumnStats {
                min: None,
                max: None,
                null_count: 0,
            })
            .collect();
        for row in rows {
            for (c, stats) in columns.iter_mut().enumerate() {
                let v = row.get(c);
                if v.is_null() {
                    stats.null_count += 1;
                    continue;
                }
                let lower = match &stats.min {
                    None => true,
                    Some(m) => matches!(ops::compare(v, m), Ok(Some(Ordering::Less))),
                };
                if lower {
                    stats.min = Some(v.clone());
                }
                let higher = match &stats.max {
                    None => true,
                    Some(m) => matches!(ops::compare(v, m), Ok(Some(Ordering::Greater))),
                };
                if higher {
                    stats.max = Some(v.clone());
                }
            }
        }
        TableStats {
            row_count: rows.len() as u64,
            columns,
        }
    }

    /// Estimated selectivity of `col <= bound`, by linear interpolation over
    /// the column's [min, max] range (the classic uniform assumption). Falls
    /// back to 1/3 — PostgreSQL's default for inequality — when the column
    /// range is unknown or non-numeric.
    pub fn estimate_le_selectivity(&self, col: usize, bound: &Datum) -> f64 {
        const DEFAULT_INEQ_SEL: f64 = 1.0 / 3.0;
        let Some(stats) = self.columns.get(col) else {
            return DEFAULT_INEQ_SEL;
        };
        let (Some(min), Some(max)) = (&stats.min, &stats.max) else {
            return DEFAULT_INEQ_SEL;
        };
        let (Some(lo), Some(hi), Some(b)) =
            (datum_to_f64(min), datum_to_f64(max), datum_to_f64(bound))
        else {
            return DEFAULT_INEQ_SEL;
        };
        if hi <= lo {
            return if b >= hi { 1.0 } else { 0.0 };
        }
        ((b - lo) / (hi - lo)).clamp(0.0, 1.0)
    }

    /// Estimated selectivity of an equality predicate against a key-like
    /// column: 1 / row_count (unique-key assumption).
    pub fn estimate_eq_key_selectivity(&self) -> f64 {
        if self.row_count == 0 {
            0.0
        } else {
            1.0 / self.row_count as f64
        }
    }
}

fn datum_to_f64(d: &Datum) -> Option<f64> {
    match d {
        Datum::Int(v) => Some(*v as f64),
        Datum::Float(v) => Some(*v),
        Datum::Decimal(v) => Some(v.to_f64()),
        Datum::Date(v) => Some(v.days() as f64),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bufferdb_types::{DataType, Date, Field, Schema};

    fn table_stats(values: Vec<Datum>) -> TableStats {
        let schema = Schema::new(vec![Field::nullable("c", DataType::Int)]).into_ref();
        let rows: Vec<Tuple> = values.into_iter().map(|v| Tuple::new(vec![v])).collect();
        TableStats::compute(&schema, &rows)
    }

    #[test]
    fn min_max_and_nulls() {
        let s = table_stats(vec![
            Datum::Int(5),
            Datum::Null,
            Datum::Int(-3),
            Datum::Int(9),
        ]);
        assert_eq!(s.row_count, 4);
        assert_eq!(s.columns[0].min, Some(Datum::Int(-3)));
        assert_eq!(s.columns[0].max, Some(Datum::Int(9)));
        assert_eq!(s.columns[0].null_count, 1);
    }

    #[test]
    fn le_selectivity_interpolates() {
        let s = table_stats((0..=100).map(Datum::Int).collect());
        let sel = s.estimate_le_selectivity(0, &Datum::Int(25));
        assert!((sel - 0.25).abs() < 1e-9);
        assert_eq!(s.estimate_le_selectivity(0, &Datum::Int(1000)), 1.0);
        assert_eq!(s.estimate_le_selectivity(0, &Datum::Int(-5)), 0.0);
    }

    #[test]
    fn le_selectivity_on_dates() {
        let mk = |s: &str| Datum::Date(Date::parse(s).unwrap());
        let schema = Schema::new(vec![Field::new("d", DataType::Date)]).into_ref();
        let rows: Vec<Tuple> = (0..=1000)
            .map(|i| {
                Tuple::new(vec![Datum::Date(
                    Date::parse("1992-01-01").unwrap().add_days(i),
                )])
            })
            .collect();
        let s = TableStats::compute(&schema, &rows);
        let sel = s.estimate_le_selectivity(0, &mk("1992-01-01"));
        assert!(sel < 0.01);
    }

    #[test]
    fn defaults_when_unknown() {
        let s = table_stats(vec![Datum::Null, Datum::Null]);
        let sel = s.estimate_le_selectivity(0, &Datum::Int(0));
        assert!((sel - 1.0 / 3.0).abs() < 1e-9);
        let s2 = table_stats(vec![]);
        assert_eq!(s2.estimate_eq_key_selectivity(), 0.0);
    }

    #[test]
    fn eq_key_selectivity() {
        let s = table_stats((0..10).map(Datum::Int).collect());
        assert!((s.estimate_eq_key_selectivity() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn constant_column_degenerate_range() {
        let s = table_stats(vec![Datum::Int(7); 5]);
        assert_eq!(s.estimate_le_selectivity(0, &Datum::Int(7)), 1.0);
        assert_eq!(s.estimate_le_selectivity(0, &Datum::Int(6)), 0.0);
    }
}
