//! Property test over *randomly generated plan trees*: for any valid plan,
//! plan refinement and constant folding must preserve the result set, and
//! refined plans must satisfy the buffer-placement invariants.

use bufferdb::core::expr_fold::fold_plan;
use bufferdb::prelude::*;
use bufferdb::types::Rng;

fn collect(plan: &PlanNode, catalog: &Catalog, cfg: &MachineConfig) -> Result<Vec<Tuple>> {
    execute_query(plan, catalog, cfg, &QueryOpts::new())
        .into_result()
        .map(|(rows, _, _)| rows)
}

fn catalog() -> Catalog {
    let c = Catalog::new();
    for (name, rows) in [("fact", 600i64), ("dim", 40)] {
        let mut b = TableBuilder::new(
            name,
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::nullable("v", DataType::Int),
            ]),
        );
        for i in 0..rows {
            let v = if i % 11 == 0 {
                Datum::Null
            } else {
                Datum::Int((i * 7) % 100)
            };
            b.push(Tuple::new(vec![Datum::Int(i % 40), v]));
        }
        c.add_table(b);
    }
    c
}

/// A recipe for one random plan node layer; interpreted bottom-up so every
/// generated plan is valid by construction (arity 2 preserved throughout by
/// projecting join outputs back to two columns).
#[derive(Debug, Clone)]
enum Layer {
    Filter(i64),
    Project,
    SortAsc,
    Limit(u64),
    Buffer(usize),
    HashJoinDim,
    MergeJoinSelf,
    Aggregate,
}

fn random_layer(rng: &mut Rng) -> Layer {
    match rng.gen_range(0u32..8) {
        0 => Layer::Filter(rng.gen_range(-20i64..120)),
        1 => Layer::Project,
        2 => Layer::SortAsc,
        3 => Layer::Limit(rng.gen_range(1u64..500)),
        4 => Layer::Buffer(rng.gen_range(1usize..200)),
        5 => Layer::HashJoinDim,
        6 => Layer::MergeJoinSelf,
        _ => Layer::Aggregate,
    }
}

fn base_scan(table: &str) -> PlanNode {
    PlanNode::SeqScan {
        table: table.into(),
        predicate: None,
        projection: None,
    }
}

/// Apply layers bottom-up. Invariant: the running plan always has schema
/// (k: Int, v: Int?) so every layer composes; `sorted` tracks whether the
/// stream is ordered by column 0 (required by MergeJoinSelf).
fn build_plan(layers: &[Layer]) -> PlanNode {
    let mut plan = base_scan("fact");
    let mut sorted = false;
    let mut aggregated = false;
    for layer in layers {
        if aggregated {
            break; // aggregate output schema differs; stop stacking
        }
        plan = match layer {
            // Filters preserve order, so `sorted` is untouched.
            Layer::Filter(bound) => PlanNode::Filter {
                input: Box::new(plan),
                predicate: Expr::col(1).le(Expr::lit(*bound)),
            },
            Layer::Project => PlanNode::Project {
                input: Box::new(plan),
                exprs: vec![
                    (Expr::col(0), "k".into()),
                    (Expr::col(1).add(Expr::lit(0)), "v".into()),
                ],
            },
            Layer::SortAsc => {
                sorted = true;
                PlanNode::Sort {
                    input: Box::new(plan),
                    keys: vec![(0, true), (1, true)],
                }
            }
            Layer::Limit(n) => PlanNode::Limit {
                input: Box::new(plan),
                limit: *n,
            },
            Layer::Buffer(size) => PlanNode::Buffer {
                input: Box::new(plan),
                size: *size,
            },
            Layer::HashJoinDim => {
                sorted = false;
                // Join against dim and project back to (k, v).
                PlanNode::Project {
                    input: Box::new(PlanNode::HashJoin {
                        probe: Box::new(plan),
                        build: Box::new(base_scan("dim")),
                        probe_key: 0,
                        build_key: 0,
                    }),
                    exprs: vec![(Expr::col(0), "k".into()), (Expr::col(1), "v".into())],
                }
            }
            Layer::MergeJoinSelf => {
                // Requires sorted input: sort both sides explicitly.
                let sort = |p: PlanNode| PlanNode::Sort {
                    input: Box::new(p),
                    keys: vec![(0, true), (1, true)],
                };
                sorted = true;
                PlanNode::Project {
                    input: Box::new(PlanNode::MergeJoin {
                        left: Box::new(sort(plan)),
                        right: Box::new(sort(PlanNode::Limit {
                            input: Box::new(base_scan("dim")),
                            limit: 10,
                        })),
                        left_key: 0,
                        right_key: 0,
                    }),
                    exprs: vec![(Expr::col(0), "k".into()), (Expr::col(1), "v".into())],
                }
            }
            Layer::Aggregate => {
                aggregated = true;
                PlanNode::Aggregate {
                    input: Box::new(plan),
                    group_by: vec![0],
                    aggs: vec![
                        AggSpec::count_star("n"),
                        AggSpec::new(AggFunc::Sum, Expr::col(1), "s"),
                    ],
                }
            }
        };
    }
    let _ = sorted;
    plan
}

/// Result comparison: order-insensitive unless the plan's root guarantees
/// order (comparing sorted string signatures is sufficient for equivalence).
fn signature(rows: &[Tuple]) -> Vec<String> {
    let mut v: Vec<String> = rows.iter().map(|t| t.to_string()).collect();
    v.sort();
    v
}

fn check_no_stacked_or_blocking_buffers(node: &PlanNode) {
    if let PlanNode::Buffer { input, .. } = node {
        assert!(!input.is_blocking(), "refined buffer above blocking op");
        assert!(
            !matches!(**input, PlanNode::Buffer { .. }),
            "refined stacked buffers"
        );
    }
    for c in node.children() {
        check_no_stacked_or_blocking_buffers(c);
    }
}

/// Remove hand-placed buffer nodes so placement invariants apply only to
/// buffers the *refiner* adds (it intentionally preserves user buffers).
fn strip_buffers(node: &PlanNode) -> PlanNode {
    match node {
        PlanNode::Buffer { input, .. } => strip_buffers(input),
        PlanNode::Filter { input, predicate } => PlanNode::Filter {
            input: Box::new(strip_buffers(input)),
            predicate: predicate.clone(),
        },
        PlanNode::Limit { input, limit } => PlanNode::Limit {
            input: Box::new(strip_buffers(input)),
            limit: *limit,
        },
        PlanNode::Project { input, exprs } => PlanNode::Project {
            input: Box::new(strip_buffers(input)),
            exprs: exprs.clone(),
        },
        PlanNode::Sort { input, keys } => PlanNode::Sort {
            input: Box::new(strip_buffers(input)),
            keys: keys.clone(),
        },
        PlanNode::Materialize { input } => PlanNode::Materialize {
            input: Box::new(strip_buffers(input)),
        },
        PlanNode::Aggregate {
            input,
            group_by,
            aggs,
        } => PlanNode::Aggregate {
            input: Box::new(strip_buffers(input)),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        PlanNode::HashJoin {
            probe,
            build,
            probe_key,
            build_key,
        } => PlanNode::HashJoin {
            probe: Box::new(strip_buffers(probe)),
            build: Box::new(strip_buffers(build)),
            probe_key: *probe_key,
            build_key: *build_key,
        },
        PlanNode::MergeJoin {
            left,
            right,
            left_key,
            right_key,
        } => PlanNode::MergeJoin {
            left: Box::new(strip_buffers(left)),
            right: Box::new(strip_buffers(right)),
            left_key: *left_key,
            right_key: *right_key,
        },
        PlanNode::NestLoopJoin {
            outer,
            inner,
            param_outer_col,
            qual,
            fk_inner,
        } => PlanNode::NestLoopJoin {
            outer: Box::new(strip_buffers(outer)),
            inner: Box::new(strip_buffers(inner)),
            param_outer_col: *param_outer_col,
            qual: qual.clone(),
            fk_inner: *fk_inner,
        },
        leaf => leaf.clone(),
    }
}

#[test]
fn refinement_and_folding_preserve_any_plan() {
    let c = catalog();
    let machine = MachineConfig::pentium4_like();
    for seed in 0..20u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let n_layers = rng.gen_range(0usize..5);
        let layers: Vec<Layer> = (0..n_layers).map(|_| random_layer(&mut rng)).collect();
        let plan = build_plan(&layers);
        // The generated plan must validate.
        plan.output_schema(&c)
            .expect("generated plan must be valid");

        let baseline = collect(&plan, &c, &machine).unwrap();

        let refined = refine_plan(&plan, &c, &RefineConfig::default());
        let refined_rows = collect(&refined, &c, &machine).unwrap();
        assert_eq!(
            signature(&baseline),
            signature(&refined_rows),
            "seed {seed}: {layers:?}"
        );

        // Placement invariants apply to refiner-added buffers: strip the
        // hand-placed ones first, then refine and check.
        let stripped = strip_buffers(&plan);
        let refined_clean = refine_plan(&stripped, &c, &RefineConfig::default());
        check_no_stacked_or_blocking_buffers(&refined_clean);
        let clean_rows = collect(&refined_clean, &c, &machine).unwrap();
        assert_eq!(
            signature(&baseline),
            signature(&clean_rows),
            "seed {seed}: {layers:?}"
        );

        let folded = fold_plan(&plan);
        let folded_rows = collect(&folded, &c, &machine).unwrap();
        assert_eq!(
            signature(&baseline),
            signature(&folded_rows),
            "seed {seed}: {layers:?}"
        );

        // Refinement after folding also agrees and is idempotent.
        let both = refine_plan(&folded, &c, &RefineConfig::default());
        let both_rows = collect(&both, &c, &machine).unwrap();
        assert_eq!(
            signature(&baseline),
            signature(&both_rows),
            "seed {seed}: {layers:?}"
        );
        let again = refine_plan(&both, &c, &RefineConfig::default());
        assert_eq!(
            again.buffer_count(),
            both.buffer_count(),
            "seed {seed}: {layers:?}"
        );
    }
}
