//! Multi-query server: many concurrent sessions over one shared
//! work-stealing morsel scheduler and a **fixed pool of simulated cores**.
//!
//! The paper models a single query's instruction-cache behaviour; a real
//! database runs many queries at once, and their code footprints fight over
//! the same L1i. This module makes that fight observable. A [`Server`] owns
//! `workers` long-lived [`bufferdb_cachesim::Machine`]s — one per pool
//! worker, created once and reused for every query the server ever runs —
//! so L1i/ITLB/branch state carries across query switches exactly as it
//! does on a real core. Admission is bounded: at most `admission_slots`
//! queries drive concurrently, the rest wait FIFO.
//!
//! A submitted query is decomposed the same way the standalone executor
//! decomposes it — the exchange operator splits its driving scan into
//! morsels — but instead of spawning per-query scoped threads, the exchange
//! hands the phase to the server scheduler
//! (`ExchangeDelegate`). Morsels land in per-lane
//! shards and any pool worker may claim or steal them, interleaving units
//! of *different queries* on one core. Misses a query takes on cache lines
//! evicted by another query's code are attributed to the victim query's
//! [`bufferdb_cachesim::PerfCounters::l1i_cross_misses`].
//!
//! Counter conservation is exact: a query's total equals its coordinator's
//! own machine deltas (tracked between phase boundaries) plus every lane's
//! per-unit deltas, and the per-operator profile sums to that total — the
//! same invariant the scoped-thread path keeps, asserted in
//! `tests/server.rs`.
//!
//! Two frontends share this machinery:
//! - [`Server`]: real OS threads, for concurrent-session workloads;
//! - [`virt::VirtualServer`]: a single-threaded deterministic twin driven
//!   by simulated time, for reproducible interference experiments
//!   (`repro server`) and the traffic driver's queueing model.

pub mod virt;

mod phase;

use crate::cancel::CancelToken;
use crate::context::ExecContext;
use crate::exec::exchange::{ExchangeDelegate, PhaseOutcome, PhaseRequest};
use crate::exec::{build_executor_with, Operator, QueryOutcome};
use crate::fault::{self, FaultRegistry};
use crate::footprint::FootprintModel;
use crate::obs::trace::{
    TimedEvent, TraceClock, TraceEvent, TraceReport, TraceRing, TraceTrack, Tracer,
    DEFAULT_RING_CAPACITY,
};
use crate::obs::QueryProfiler;
use crate::plan::PlanNode;
use crate::session::QueryOpts;
use crate::stats::ExecStats;
use bufferdb_cachesim::{CodeLayout, Machine, MachineConfig, PerfCounters};
use bufferdb_storage::Catalog;
use bufferdb_types::{DbError, Result};
use phase::PhaseState;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Lock, recovering from poison (a failed query must not wedge the pool).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Server sizing and the simulated hardware its pool runs on.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Pool workers; each owns one long-lived simulated machine.
    pub workers: usize,
    /// Queries allowed to drive concurrently; the rest queue FIFO.
    pub admission_slots: usize,
    /// Hardware model for every pool machine.
    pub machine: MachineConfig,
}

impl ServerConfig {
    /// `workers` pool cores, `slots` admission slots, on `machine`.
    pub fn new(workers: usize, slots: usize, machine: MachineConfig) -> Self {
        ServerConfig {
            workers: workers.max(1),
            admission_slots: slots.max(1),
            machine,
        }
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig::new(4, 4, MachineConfig::pentium4_like())
    }
}

/// Aggregate scheduler counters, snapshotted via [`Server::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Queries accepted by `submit`.
    pub submitted: u64,
    /// Queries whose drives finished (clean or failed).
    pub completed: u64,
    /// Queries that finished with an error.
    pub failed: u64,
    /// Morsel units executed across all phases.
    pub units: u64,
    /// Units claimed from a shard other than the claimant's preferred one.
    pub steals: u64,
}

/// The always-on server flight recorder: two continuous rings spanning the
/// whole server run — one for query lifecycle spans
/// ([`TraceEvent::QueryWait`] / [`TraceEvent::QueryRun`]), one for
/// session-core activity ([`TraceEvent::CoreTurn`] on the virtual server).
/// Unlike the per-query [`Tracer`], these rings outlive individual queries,
/// so cross-query effects (a burst of admissions, one query's turns
/// displacing another's cache state) land on one shared timeline.
///
/// The owning server stamps every event itself: virtual nanoseconds on
/// [`virt::VirtualServer`], wall nanoseconds (via the internal clock) on
/// the threaded [`Server`]. Recording is a ring store — no simulated code
/// executes, so an observed server retires exactly the same modeled
/// instructions as an unobserved one.
pub struct ServerRecorder {
    clock: TraceClock,
    queries: TraceRing,
    core: TraceRing,
}

impl ServerRecorder {
    /// A recorder with default-capacity rings, clock origin now.
    pub fn new() -> Self {
        ServerRecorder::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A recorder with explicit per-ring capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ServerRecorder {
            clock: TraceClock::new(),
            queries: TraceRing::with_capacity(cap),
            core: TraceRing::with_capacity(cap),
        }
    }

    /// Wall nanoseconds since the recorder was created (the threaded
    /// server's time base; the virtual server uses its own clock).
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Record a query-lifecycle event at an explicit timestamp.
    pub fn record_query(&mut self, ts_ns: u64, event: TraceEvent) {
        self.queries.push(TimedEvent { ts_ns, event });
    }

    /// Record a session-core event at an explicit timestamp.
    pub fn record_core(&mut self, ts_ns: u64, event: TraceEvent) {
        self.core.push(TimedEvent { ts_ns, event });
    }

    /// Seal into a [`TraceReport`]: `server.queries` and `server.core`
    /// tracks on one shared timeline, renderable with
    /// [`TraceReport::perfetto_json`] or [`TraceReport::summary`].
    pub fn finish(self) -> TraceReport {
        TraceReport::from_tracks(vec![
            TraceTrack::from_ring("server.queries".into(), self.queries),
            TraceTrack::from_ring("server.core".into(), self.core),
        ])
    }
}

impl Default for ServerRecorder {
    fn default() -> Self {
        ServerRecorder::new()
    }
}

#[derive(Default)]
struct StatCells {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    units: AtomicU64,
    steals: AtomicU64,
}

/// One query submission, builder style — the single entry point for both
/// servers ([`Server::submit`] and [`virt::VirtualServer::submit`]).
///
/// Everything per-query rides on the unified [`QueryOpts`]: profiling,
/// tracing, timeout, a caller-held cancel token, a per-query fault
/// registry, and the subplan-reuse policy. The arrival time matters only to
/// the virtual server's simulated clock (the threaded server admits
/// immediately) and defaults to 0.
///
/// ```ignore
/// let id = vs.submit(SubmitSpec::new(&plan, &catalog).at(500).opts(
///     QueryOpts::new().profile(true).cancel(token),
/// ))?;
/// ```
pub struct SubmitSpec<'a> {
    plan: &'a PlanNode,
    catalog: &'a Catalog,
    arrival_ns: u64,
    opts: QueryOpts,
}

impl<'a> SubmitSpec<'a> {
    /// A submission of `plan` against `catalog` with default options,
    /// arriving at virtual time 0.
    pub fn new(plan: &'a PlanNode, catalog: &'a Catalog) -> Self {
        SubmitSpec {
            plan,
            catalog,
            arrival_ns: 0,
            opts: QueryOpts::new(),
        }
    }

    /// Set the simulated arrival time in nanoseconds (virtual server only;
    /// the threaded server ignores it).
    pub fn at(mut self, arrival_ns: u64) -> Self {
        self.arrival_ns = arrival_ns;
        self
    }

    /// Replace the per-query options.
    pub fn opts(mut self, opts: QueryOpts) -> Self {
        self.opts = opts;
        self
    }

    /// The plan to execute.
    pub fn plan(&self) -> &'a PlanNode {
        self.plan
    }

    /// The catalog the plan runs against.
    pub fn catalog(&self) -> &'a Catalog {
        self.catalog
    }

    /// The simulated arrival time (nanoseconds).
    pub fn arrival_ns(&self) -> u64 {
        self.arrival_ns
    }

    /// The per-query options.
    pub fn query_opts(&self) -> &QueryOpts {
        &self.opts
    }
}

/// Everything a drive runner needs that is decided at submit time.
pub(crate) struct DriveSpec {
    pub(crate) root: Box<dyn Operator>,
    /// Profiler labels (empty when profiling is off).
    pub(crate) labels: Vec<String>,
    pub(crate) tag: u32,
    pub(crate) cancel: CancelToken,
    pub(crate) faults: Arc<FaultRegistry>,
    pub(crate) trace: bool,
    /// Cooperative time-slicer installed into the drive context. `None` on
    /// the threaded server (each drive owns its core for the duration);
    /// the virtual server's session core sets one so resident queries
    /// time-share a single simulated machine at tuple granularity.
    pub(crate) slicer: Option<Box<dyn crate::context::CoreSlicer>>,
}

/// Coordinator-side counter assembly shared by both delegate impls: the
/// query total is (machine deltas outside phases) + (sum of lane deltas),
/// because lanes run on other cores — or on this core, excluded here and
/// charged to their own query.
#[derive(Default)]
pub(crate) struct DriveAccounting {
    unit_base: PerfCounters,
    drive_total: PerfCounters,
    lanes_total: PerfCounters,
}

impl DriveAccounting {
    pub(crate) fn begin(&mut self, base: PerfCounters) {
        self.unit_base = base;
    }

    /// Close the coordinator segment ending at `now`; returns its delta.
    pub(crate) fn pause(&mut self, now: PerfCounters) -> PerfCounters {
        let d = now - self.unit_base;
        self.drive_total = self.drive_total + d;
        self.unit_base = now;
        d
    }

    /// Reopen coordinator accounting at `now` (end of a phase: whatever the
    /// machine did in between belongs to lanes, not the coordinator).
    pub(crate) fn resume(&mut self, now: PerfCounters) {
        self.unit_base = now;
    }

    pub(crate) fn add_lanes(&mut self, sum: PerfCounters) {
        self.lanes_total = self.lanes_total + sum;
    }

    /// Final segment + assembled query total.
    pub(crate) fn seal(&mut self, now: PerfCounters) -> PerfCounters {
        self.pause(now);
        self.total()
    }

    /// Assembled total so far (coordinator segments + lane deltas).
    pub(crate) fn total(&self) -> PerfCounters {
        self.drive_total + self.lanes_total
    }
}

/// Run one admitted query start to finish on the borrowed pool `machine`,
/// mirroring [`crate::exec::execute_query`]'s containment exactly: typed
/// errors and contained panics both land in the outcome, never unwind.
pub(crate) fn run_drive(
    spec: DriveSpec,
    machine: &mut Machine,
    delegate: Box<dyn ExchangeDelegate>,
    cfg: &MachineConfig,
) -> QueryOutcome {
    let wall_start = std::time::Instant::now();
    let mut ctx = ExecContext::new(cfg.clone());
    std::mem::swap(&mut ctx.machine, machine);
    ctx.machine.set_query_tag(spec.tag);
    ctx.cancel = spec.cancel;
    ctx.faults = spec.faults;
    ctx.slicer = spec.slicer;
    if !spec.labels.is_empty() {
        ctx.profiler = Some(QueryProfiler::new(&spec.labels));
    }
    if spec.trace {
        ctx.tracer = Some(Tracer::new(&format!("query-{}", spec.tag)));
    }
    let mut delegate = delegate;
    delegate.begin_drive(ctx.machine.snapshot());
    ctx.delegate = Some(delegate);
    let mut root = spec.root;
    let mut rows = Vec::new();
    let mut panicked = false;
    let caught = catch_unwind(AssertUnwindSafe(|| -> Result<()> {
        root.open(&mut ctx)?;
        while let Some(slot) = root.next(&mut ctx)? {
            // Root drive loop is the universal cancellation granule.
            ctx.check_cancel()?;
            ctx.tuple_yield();
            rows.push(ctx.arena.tuple(slot).clone());
        }
        root.close(&mut ctx)
    }));
    let error = match caught {
        Ok(Ok(())) => None,
        Ok(Err(e)) => Some(e),
        Err(payload) => {
            panicked = true;
            Some(DbError::WorkerFailed(format!(
                "server drive panicked: {}",
                fault::panic_message(&*payload)
            )))
        }
    };
    if panicked {
        ctx.trace(TraceEvent::WorkerPanic);
    }
    let final_snap = ctx.machine.snapshot();
    let total = match ctx.delegate.take() {
        Some(mut d) => d.seal_drive(final_snap),
        // Unreachable: the exchange always puts the delegate back. Fall
        // back to whole-machine counters rather than panic.
        None => final_snap,
    };
    let breakdown = ctx.machine.breakdown_for(&total);
    let profile = match ctx.profiler.take() {
        Some(p) if !panicked => Some(p.seal(total)),
        _ => None,
    };
    let trace = ctx.tracer.take().map(Tracer::finish);
    std::mem::swap(&mut ctx.machine, machine);
    let row_count = rows.len() as u64;
    QueryOutcome::new(
        rows,
        ExecStats {
            rows: row_count,
            counters: total,
            breakdown,
            wall: wall_start.elapsed(),
        },
        profile,
        error,
        trace,
    )
}

/// An admitted-or-waiting query on the threaded server.
struct Job {
    /// Submission id (monotonic per server), echoed in recorder spans.
    id: u64,
    /// Wall timestamp at submit on the recorder's clock (0 when the
    /// recorder is off).
    arrival_ns: u64,
    spec: DriveSpec,
    reply: mpsc::Sender<QueryOutcome>,
}

struct SchedState {
    waiting: VecDeque<Job>,
    active: usize,
    /// Open phases, claimable by any pool worker.
    phases: Vec<Arc<PhaseState>>,
}

struct Shared {
    cfg: ServerConfig,
    state: Mutex<SchedState>,
    cv: Condvar,
    shutdown: AtomicBool,
    next_tag: AtomicU32,
    stats: StatCells,
    /// Server-scoped flight recorder; `None` until enabled.
    recorder: Mutex<Option<ServerRecorder>>,
}

impl Shared {
    /// Wake everyone; taken after any state change a parked worker might be
    /// waiting on. The lock round-trip prevents missed wakeups.
    fn notify(&self) {
        drop(lock(&self.state));
        self.cv.notify_all();
    }
}

/// Handle to one submitted query: await its outcome, or cancel it.
pub struct QueryTicket {
    rx: mpsc::Receiver<QueryOutcome>,
    cancel: CancelToken,
    tag: u32,
    cfg: MachineConfig,
}

impl QueryTicket {
    /// The query's server-assigned tag (its owner id in cross-query miss
    /// attribution).
    pub fn tag(&self) -> u32 {
        self.tag
    }

    /// Request cooperative cancellation of the in-flight query.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Block until the query finishes. If the server died under the query
    /// (unreachable in normal operation), a synthesized failure outcome is
    /// returned rather than panicking.
    pub fn wait(self) -> QueryOutcome {
        match self.rx.recv() {
            Ok(out) => out,
            Err(_) => {
                let zero = PerfCounters::default();
                let machine = Machine::new(self.cfg);
                QueryOutcome::new(
                    Vec::new(),
                    ExecStats {
                        rows: 0,
                        counters: zero,
                        breakdown: machine.breakdown_for(&zero),
                        wall: Duration::ZERO,
                    },
                    None,
                    Some(DbError::WorkerFailed(
                        "server shut down before the query completed".into(),
                    )),
                    None,
                )
            }
        }
    }
}

/// The threaded multi-query server. See the module docs for the model.
pub struct Server {
    shared: Arc<Shared>,
    /// Pre-linked master code layout; every submitted query's footprint
    /// model is a clone, so all queries share one simulated text section.
    master: CodeLayout,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Spin up the fixed worker pool. Workers (and their simulated
    /// machines) live until the server is dropped.
    pub fn new(cfg: ServerConfig) -> Self {
        let shared = Arc::new(Shared {
            cfg: cfg.clone(),
            state: Mutex::new(SchedState {
                waiting: VecDeque::new(),
                active: 0,
                phases: Vec::new(),
            }),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_tag: AtomicU32::new(1),
            stats: StatCells::default(),
            recorder: Mutex::new(None),
        });
        let handles = (0..cfg.workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(w, &shared))
            })
            .collect();
        Server {
            shared,
            master: FootprintModel::prelinked(),
            handles,
        }
    }

    /// Switch on the always-on flight recorder. Spans for queries already
    /// in flight are not back-filled — enable before submitting for a
    /// complete timeline. Idempotent (re-enabling keeps the current rings).
    pub fn enable_flight_recorder(&self) {
        let mut rec = lock(&self.shared.recorder);
        if rec.is_none() {
            *rec = Some(ServerRecorder::new());
        }
    }

    /// Seal and take the server flight recorder's report, switching
    /// recording off. `None` when it was never enabled.
    pub fn finish_recorder(&self) -> Option<TraceReport> {
        lock(&self.shared.recorder)
            .take()
            .map(ServerRecorder::finish)
    }

    /// Scheduler counters so far.
    pub fn stats(&self) -> ServerStats {
        let s = &self.shared.stats;
        ServerStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            failed: s.failed.load(Ordering::Relaxed),
            units: s.units.load(Ordering::Relaxed),
            steals: s.steals.load(Ordering::Relaxed),
        }
    }

    /// Submit a query for execution. The operator tree is built on the
    /// calling thread (pool workers never touch the catalog); execution
    /// starts when an admission slot and a worker free up. Arrival time on
    /// the spec is ignored — the threaded server has no simulated clock.
    ///
    /// Per-query cancel tokens, timeouts, and fault registries all ride on
    /// the spec's [`QueryOpts`]; an explicit cancel token wins over a
    /// timeout-derived one, and an unset fault registry means no faults.
    pub fn submit(&self, spec: SubmitSpec<'_>) -> Result<QueryTicket> {
        let (plan, catalog, opts) = (spec.plan, spec.catalog, &spec.opts);
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(DbError::WorkerFailed("server is shut down".into()));
        }
        let mut fm = FootprintModel::with_layout(self.master.clone());
        if opts.wants_profile() {
            fm.enable_obs();
        }
        let master = &self.master;
        let root = build_executor_with(plan, catalog, &mut fm, &|| {
            FootprintModel::with_layout(master.clone())
        })?;
        let cancel = opts.resolve_cancel();
        let faults = opts.resolve_faults();
        let tag = self.shared.next_tag.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let id = self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let arrival_ns = lock(&self.shared.recorder)
            .as_ref()
            .map_or(0, ServerRecorder::now_ns);
        let job = Job {
            id,
            arrival_ns,
            spec: DriveSpec {
                root,
                labels: if opts.wants_profile() {
                    fm.obs_labels().to_vec()
                } else {
                    Vec::new()
                },
                tag,
                cancel: cancel.clone(),
                faults,
                trace: opts.wants_trace(),
                slicer: None,
            },
            reply: tx,
        };
        lock(&self.shared.state).waiting.push_back(job);
        self.shared.cv.notify_all();
        Ok(QueryTicket {
            rx,
            cancel,
            tag,
            cfg: self.shared.cfg.machine.clone(),
        })
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Claim one unit from any open phase (own shard first within each phase).
fn find_unit(shared: &Shared, w: usize) -> Option<(Arc<PhaseState>, phase::Lane, usize)> {
    let phases: Vec<Arc<PhaseState>> = lock(&shared.state).phases.clone();
    let n = phases.len();
    if n == 0 {
        return None;
    }
    for off in 0..n {
        let p = &phases[(w + off) % n];
        if let Some((lane, idx)) = p.begin_unit(w) {
            return Some((Arc::clone(p), lane, idx));
        }
    }
    None
}

fn worker_loop(w: usize, shared: &Arc<Shared>) {
    let mut machine = Machine::new(shared.cfg.machine.clone());
    loop {
        // 1. Morsels of running queries take priority over admission:
        //    finish what is in flight before widening the working set.
        if let Some((phase, lane, idx)) = find_unit(shared, w) {
            phase.run_unit(lane, idx, &mut machine);
            shared.stats.units.fetch_add(1, Ordering::Relaxed);
            shared.notify();
            continue;
        }
        // 2. Admit the next waiting query if a slot is open.
        let admitted = {
            let mut st = lock(&shared.state);
            let job = if st.active < shared.cfg.admission_slots {
                st.waiting.pop_front()
            } else {
                None
            };
            if job.is_some() {
                st.active += 1;
            }
            job
        };
        if let Some(job) = admitted {
            let delegate = Box::new(ServerDelegate {
                shared: Arc::clone(shared),
                acct: DriveAccounting::default(),
                tag: job.spec.tag,
                hint: w,
            });
            // Wait span: arrival (at submit) → first run (now).
            let run_start_ns = {
                let mut rec = lock(&shared.recorder);
                rec.as_mut().map(|r| {
                    let now = r.now_ns();
                    r.record_query(
                        now,
                        TraceEvent::QueryWait {
                            query: job.id,
                            start_ns: job.arrival_ns.min(now),
                        },
                    );
                    now
                })
            };
            let out = run_drive(job.spec, &mut machine, delegate, &shared.cfg.machine);
            if let Some(start_ns) = run_start_ns {
                let mut rec = lock(&shared.recorder);
                if let Some(r) = rec.as_mut() {
                    let now = r.now_ns();
                    r.record_query(
                        now,
                        TraceEvent::QueryRun {
                            query: job.id,
                            rows: out.rows().len() as u64,
                            ok: out.is_ok(),
                            start_ns,
                        },
                    );
                }
            }
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            if !out.is_ok() {
                shared.stats.failed.fetch_add(1, Ordering::Relaxed);
            }
            // A dropped ticket just discards the outcome.
            let _ = job.reply.send(out);
            lock(&shared.state).active -= 1;
            shared.cv.notify_all();
            continue;
        }
        // 3. Park until something changes.
        let st = lock(&shared.state);
        if shared.shutdown.load(Ordering::Acquire) && st.waiting.is_empty() && st.phases.is_empty()
        {
            break;
        }
        let has_work = !st.phases.is_empty()
            || (!st.waiting.is_empty() && st.active < shared.cfg.admission_slots);
        if !has_work {
            // Timed, as a belt against lost notifications.
            let _ = shared.cv.wait_timeout(st, Duration::from_millis(5));
        }
    }
}

/// The threaded server's phase scheduler: registers the phase for the pool,
/// then helps run **its own** phase's units (deadlock-free: it can always
/// drain its own phase; a unit never blocks) while parking between claims.
struct ServerDelegate {
    shared: Arc<Shared>,
    acct: DriveAccounting,
    tag: u32,
    /// Preferred shard: the admitting worker's index.
    hint: usize,
}

impl ExchangeDelegate for ServerDelegate {
    fn begin_drive(&mut self, base: PerfCounters) {
        self.acct.begin(base);
    }

    fn run_phase(&mut self, ctx: &mut ExecContext, req: PhaseRequest) -> PhaseOutcome {
        self.acct.pause(ctx.machine.snapshot());
        let phase = Arc::new(PhaseState::new(req, self.tag, ctx));
        {
            lock(&self.shared.state).phases.push(Arc::clone(&phase));
        }
        self.shared.cv.notify_all();
        while !phase.done() {
            if let Some((lane, idx)) = phase.begin_unit(self.hint) {
                phase.run_unit(lane, idx, &mut ctx.machine);
                self.shared.stats.units.fetch_add(1, Ordering::Relaxed);
                self.shared.notify();
            } else {
                // Units in flight on other workers: wait for completions.
                let st = lock(&self.shared.state);
                if !phase.done() {
                    let _ = self.shared.cv.wait_timeout(st, Duration::from_millis(2));
                }
            }
        }
        {
            let mut st = lock(&self.shared.state);
            st.phases.retain(|p| !Arc::ptr_eq(p, &phase));
        }
        self.shared
            .stats
            .steals
            .fetch_add(phase.steals(), Ordering::Relaxed);
        let out = phase.collect();
        let lane_sum = out
            .outcomes
            .iter()
            .fold(PerfCounters::default(), |acc, o| acc + o.counters);
        self.acct.add_lanes(lane_sum);
        self.acct.resume(ctx.machine.snapshot());
        out
    }

    fn seal_drive(&mut self, now: PerfCounters) -> PerfCounters {
        self.acct.seal(now)
    }
}
