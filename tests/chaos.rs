//! Chaos suite: every fault-injection site, at every worker count, in both
//! modes (typed error and contained panic), must fail with a clean typed
//! `Err` — no hang, no poisoned lock — and leave the session fully usable:
//! the very next query over the same plan returns the complete, correct
//! result. Error-mode failures additionally keep the per-operator profile
//! balanced, so partial counters conserve exactly.

use bufferdb::core::fault;
use bufferdb::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Large enough to trigger both exchange parallelization (512-row floor)
/// and the parallel hash-join build (256-row floor).
const ROWS: i64 = 2000;

/// Suppress the default panic-hook backtrace for *injected* panics (they are
/// the point of this suite); genuine panics still print normally.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if fault::panic_message(info.payload()).starts_with(fault::INJECTED_PANIC_PREFIX) {
                return;
            }
            default(info);
        }));
    });
}

fn chaos_catalog() -> Catalog {
    let c = Catalog::new();
    let mut big = TableBuilder::new(
        "big",
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Int),
        ]),
    );
    for i in 0..ROWS {
        big.push(Tuple::new(vec![Datum::Int(i), Datum::Int(i * 3 % 97)]));
    }
    c.add_table(big);
    let t = c.table("big").unwrap();
    let pairs: Vec<(i64, u32)> = t
        .rows()
        .iter()
        .enumerate()
        .map(|(i, r)| (r.get(0).as_int().unwrap(), i as u32))
        .collect();
    c.add_index(IndexDef {
        name: "big_k".into(),
        table: "big".into(),
        key_column: 0,
        btree: BTreeIndex::bulk_load(pairs),
    });
    c
}

fn scan() -> PlanNode {
    PlanNode::SeqScan {
        table: "big".into(),
        predicate: None,
        projection: None,
    }
}

/// A plan guaranteed to pass through `site` when run at `workers` threads.
/// Every plan produces exactly [`ROWS`] rows when no fault fires.
fn plan_for(site: &str, workers: usize, catalog: &Catalog) -> PlanNode {
    match site {
        fault::SEQSCAN_NEXT => parallelize_plan(&scan(), catalog, workers).unwrap(),
        fault::INDEXSCAN_NEXT => PlanNode::IndexScan {
            index: "big_k".into(),
            mode: IndexMode::Range { lo: None, hi: None },
        },
        fault::EXCHANGE_MORSEL => PlanNode::Exchange {
            input: Box::new(scan()),
            workers,
        },
        fault::HASHJOIN_BUILD => PlanNode::HashJoin {
            probe: Box::new(scan()),
            build: Box::new(scan()),
            probe_key: 0,
            build_key: 0,
        },
        fault::BUFFER_FILL => PlanNode::Buffer {
            input: Box::new(scan()),
            size: 64,
        },
        other => panic!("no chaos plan for site {other:?}"),
    }
}

/// The tentpole sweep: site x worker count x mode. Error mode must surface
/// as `FaultInjected` (even when the fault fires on a worker thread); panic
/// mode must be contained and surface as `WorkerFailed`. After every
/// failure the session runs the same plan clean and gets the full result —
/// proving no lock was poisoned and no stale state leaked.
#[test]
fn every_site_and_worker_count_fails_cleanly_and_recovers() {
    quiet_injected_panics();
    let mut session = Session::new(chaos_catalog(), MachineConfig::pentium4_like());
    for workers in [1usize, 2, 7] {
        session.set_threads(workers);
        for site in fault::ALL_SITES {
            let plan = plan_for(site, workers, session.catalog());
            for mode in [FaultMode::Error, FaultMode::Panic] {
                session.faults().arm(site, Trigger::at_row(2), mode);
                let out = session.query(&plan, &QueryOpts::new());
                match mode {
                    FaultMode::Error => assert!(
                        matches!(out.error(), Some(DbError::FaultInjected(_))),
                        "{site} x{workers} error mode: {:?}",
                        out.error()
                    ),
                    FaultMode::Panic => assert!(
                        matches!(out.error(), Some(DbError::WorkerFailed(_))),
                        "{site} x{workers} panic mode: {:?}",
                        out.error()
                    ),
                }
                session.faults().clear();
                let clean = session.query(&plan, &QueryOpts::new());
                assert!(
                    clean.error().is_none(),
                    "{site} x{workers} after {mode:?}: session did not recover: {:?}",
                    clean.error()
                );
                assert_eq!(
                    clean.rows().len(),
                    ROWS as usize,
                    "{site} x{workers} after {mode:?}: wrong recovery result"
                );
            }
        }
    }
}

/// An injected *error* unwinds cleanly through the profiler brackets, so
/// the partial per-operator profile still sums exactly to the aggregate
/// machine snapshot — the acceptance criterion for counter conservation
/// after failure.
#[test]
fn injected_error_keeps_profiled_counters_conserved() {
    quiet_injected_panics();
    let mut session = Session::new(chaos_catalog(), MachineConfig::pentium4_like());
    session.set_threads(2);
    for site in fault::ALL_SITES {
        let plan = plan_for(site, 2, session.catalog());
        session
            .faults()
            .arm(site, Trigger::at_row(2), FaultMode::Error);
        let out = session.query(&plan, &QueryOpts::new().profile(true));
        assert!(
            matches!(out.error(), Some(DbError::FaultInjected(_))),
            "{site}: {:?}",
            out.error()
        );
        let profile = out
            .profile()
            .unwrap_or_else(|| panic!("{site}: clean error unwind must keep a balanced profile"));
        assert_eq!(
            profile.sum_op_counters(),
            out.stats().counters,
            "{site}: partial profile does not conserve"
        );
        session.faults().clear();
    }
    // Follow-up profiled query on the recovered session: complete and exact.
    let plan = plan_for(fault::SEQSCAN_NEXT, 2, session.catalog());
    let out = session.query(&plan, &QueryOpts::new().profile(true));
    assert!(out.error().is_none(), "{:?}", out.error());
    assert_eq!(out.rows().len(), ROWS as usize);
    let profile = out.profile().expect("profiled clean run");
    assert_eq!(profile.sum_op_counters(), out.stats().counters);
}

/// A zero timeout cancels at the first granule boundary with a typed
/// `Cancelled` error, partial counters conserved; clearing the timeout
/// restores normal operation on the same session.
#[test]
fn zero_timeout_cancels_with_conserved_partial_profile() {
    let mut session = Session::new(chaos_catalog(), MachineConfig::pentium4_like());
    let plan = plan_for(fault::BUFFER_FILL, 1, session.catalog());
    session.set_timeout(Some(Duration::ZERO));
    let out = session.query(&plan, &QueryOpts::new().profile(true));
    assert!(
        matches!(out.error(), Some(DbError::Cancelled(_))),
        "{:?}",
        out.error()
    );
    let profile = out.profile().expect("cancellation unwinds cleanly");
    assert_eq!(
        profile.sum_op_counters(),
        out.stats().counters,
        "partial profile after timeout does not conserve"
    );
    session.set_timeout(None);
    let out = session.query(&plan, &QueryOpts::new().profile(true));
    assert!(out.error().is_none(), "{:?}", out.error());
    assert_eq!(out.rows().len(), ROWS as usize);
    let profile = out.profile().expect("profiled clean run");
    assert_eq!(profile.sum_op_counters(), out.stats().counters);
}

/// `Session::cancel` from another thread stops the in-flight query with a
/// typed `Cancelled` error, and the session remains usable afterwards.
#[test]
fn cross_thread_cancel_stops_inflight_query() {
    let session = Session::new(chaos_catalog(), MachineConfig::pentium4_like());
    // Hash self-join: expensive enough that the canceller thread always
    // lands while the query is in flight.
    let plan = plan_for(fault::HASHJOIN_BUILD, 1, session.catalog());
    let done = AtomicBool::new(false);
    let out = std::thread::scope(|s| {
        s.spawn(|| {
            // Cancel continuously: the first call after `run` installs its
            // fresh token stops the query at the next granule boundary.
            while !done.load(Ordering::Relaxed) {
                session.cancel();
                std::thread::yield_now();
            }
        });
        let out = session.query(&plan, &QueryOpts::new());
        done.store(true, Ordering::Relaxed);
        out
    });
    assert!(
        matches!(out.error(), Some(DbError::Cancelled(_))),
        "{:?}",
        out.error()
    );
    let clean = session.query(&plan, &QueryOpts::new());
    assert!(clean.error().is_none(), "{:?}", clean.error());
    assert_eq!(clean.rows().len(), ROWS as usize);
}
