//! Constant folding for expressions.
//!
//! Plans built programmatically (or by the optimizer) often contain
//! all-literal subtrees like `1 - 0.05` in Query 1's charge expression.
//! Folding them once at plan time removes per-tuple work — PostgreSQL's
//! `eval_const_expressions` does the same. Folding is *conservative*:
//! any subtree whose evaluation errors (overflow, division by zero, type
//! mismatch) is left intact so the error surfaces at execution time with
//! row context, preserving semantics.

use crate::expr::Expr;
use bufferdb_types::Tuple;

/// Fold every all-literal subtree of `e` into a literal. Returns the
/// simplified expression; idempotent.
pub fn fold_constants(e: &Expr) -> Expr {
    let folded = match e {
        Expr::Column(_) | Expr::Literal(_) => e.clone(),
        Expr::Cmp { op, left, right } => Expr::Cmp {
            op: *op,
            left: Box::new(fold_constants(left)),
            right: Box::new(fold_constants(right)),
        },
        Expr::Arith { op, left, right } => Expr::Arith {
            op: *op,
            left: Box::new(fold_constants(left)),
            right: Box::new(fold_constants(right)),
        },
        Expr::And(a, b) => Expr::And(Box::new(fold_constants(a)), Box::new(fold_constants(b))),
        Expr::Or(a, b) => Expr::Or(Box::new(fold_constants(a)), Box::new(fold_constants(b))),
        Expr::Not(a) => Expr::Not(Box::new(fold_constants(a))),
        Expr::IsNull(a) => Expr::IsNull(Box::new(fold_constants(a))),
        Expr::Case {
            cond,
            then,
            otherwise,
        } => Expr::Case {
            cond: Box::new(fold_constants(cond)),
            then: Box::new(fold_constants(then)),
            otherwise: Box::new(fold_constants(otherwise)),
        },
        Expr::StartsWith { input, prefix } => Expr::StartsWith {
            input: Box::new(fold_constants(input)),
            prefix: prefix.clone(),
        },
    };
    if is_literal(&folded) {
        return folded;
    }
    if has_no_columns(&folded) {
        // Evaluate against an empty row; keep the original on error.
        if let Ok(v) = folded.eval(&Tuple::new(vec![])) {
            return Expr::Literal(v);
        }
    }
    folded
}

fn is_literal(e: &Expr) -> bool {
    matches!(e, Expr::Literal(_))
}

fn has_no_columns(e: &Expr) -> bool {
    match e {
        Expr::Column(_) => false,
        Expr::Literal(_) => true,
        Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
            has_no_columns(left) && has_no_columns(right)
        }
        Expr::And(a, b) | Expr::Or(a, b) => has_no_columns(a) && has_no_columns(b),
        Expr::Not(a) | Expr::IsNull(a) => has_no_columns(a),
        Expr::Case {
            cond,
            then,
            otherwise,
        } => has_no_columns(cond) && has_no_columns(then) && has_no_columns(otherwise),
        Expr::StartsWith { input, .. } => has_no_columns(input),
    }
}

/// Fold constants in every expression of a plan tree.
pub fn fold_plan(plan: &crate::plan::PlanNode) -> crate::plan::PlanNode {
    use crate::plan::PlanNode as P;
    let fold_proj = |p: &Option<Vec<(Expr, String)>>| {
        p.as_ref().map(|v| {
            v.iter()
                .map(|(e, n)| (fold_constants(e), n.clone()))
                .collect::<Vec<_>>()
        })
    };
    match plan {
        P::SeqScan {
            table,
            predicate,
            projection,
        } => P::SeqScan {
            table: table.clone(),
            predicate: predicate.as_ref().map(fold_constants),
            projection: fold_proj(projection),
        },
        P::IndexScan { .. } | P::ReusedScan { .. } | P::SysScan { .. } => plan.clone(),
        P::NestLoopJoin {
            outer,
            inner,
            param_outer_col,
            qual,
            fk_inner,
        } => P::NestLoopJoin {
            outer: Box::new(fold_plan(outer)),
            inner: Box::new(fold_plan(inner)),
            param_outer_col: *param_outer_col,
            qual: qual.as_ref().map(fold_constants),
            fk_inner: *fk_inner,
        },
        P::HashJoin {
            probe,
            build,
            probe_key,
            build_key,
        } => P::HashJoin {
            probe: Box::new(fold_plan(probe)),
            build: Box::new(fold_plan(build)),
            probe_key: *probe_key,
            build_key: *build_key,
        },
        P::MergeJoin {
            left,
            right,
            left_key,
            right_key,
        } => P::MergeJoin {
            left: Box::new(fold_plan(left)),
            right: Box::new(fold_plan(right)),
            left_key: *left_key,
            right_key: *right_key,
        },
        P::Sort { input, keys } => P::Sort {
            input: Box::new(fold_plan(input)),
            keys: keys.clone(),
        },
        P::Aggregate {
            input,
            group_by,
            aggs,
        } => P::Aggregate {
            input: Box::new(fold_plan(input)),
            group_by: group_by.clone(),
            aggs: aggs
                .iter()
                .map(|a| crate::plan::AggSpec {
                    func: a.func,
                    input: a.input.as_ref().map(fold_constants),
                    name: a.name.clone(),
                })
                .collect(),
        },
        P::Project { input, exprs } => P::Project {
            input: Box::new(fold_plan(input)),
            exprs: exprs
                .iter()
                .map(|(e, n)| (fold_constants(e), n.clone()))
                .collect(),
        },
        P::Filter { input, predicate } => P::Filter {
            input: Box::new(fold_plan(input)),
            predicate: fold_constants(predicate),
        },
        P::Limit { input, limit } => P::Limit {
            input: Box::new(fold_plan(input)),
            limit: *limit,
        },
        P::Buffer { input, size } => P::Buffer {
            input: Box::new(fold_plan(input)),
            size: *size,
        },
        P::Materialize { input } => P::Materialize {
            input: Box::new(fold_plan(input)),
        },
        P::Exchange { input, workers } => P::Exchange {
            input: Box::new(fold_plan(input)),
            workers: *workers,
        },
        P::PushPipeline { input } => P::PushPipeline {
            input: Box::new(fold_plan(input)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bufferdb_types::{Datum, Decimal};

    fn dec(s: &str) -> Expr {
        Expr::lit(Datum::Decimal(Decimal::parse(s).unwrap()))
    }

    #[test]
    fn folds_all_literal_arithmetic() {
        // 1 - 0.05 => 0.95
        let e = dec("1").sub(dec("0.05"));
        let f = fold_constants(&e);
        assert_eq!(f, dec("0.95"));
    }

    #[test]
    fn folds_inside_column_expressions() {
        // col0 * (1 - 0.05): the inner subtree folds, the product stays.
        let e = Expr::col(0).mul(dec("1").sub(dec("0.05")));
        let f = fold_constants(&e);
        assert_eq!(f, Expr::col(0).mul(dec("0.95")));
        assert!(f.node_count() < e.node_count());
    }

    #[test]
    fn keeps_erroring_subtrees_intact() {
        // 1 / 0 must NOT fold away; the error surfaces at execution.
        let e = Expr::lit(1).div(Expr::lit(0));
        assert_eq!(fold_constants(&e), e);
    }

    #[test]
    fn folds_logic_and_case() {
        let e = Expr::lit(Datum::Bool(true)).and(Expr::lit(Datum::Bool(false)));
        assert_eq!(fold_constants(&e), Expr::lit(Datum::Bool(false)));
        let c = Expr::lit(1)
            .le(Expr::lit(2))
            .case(Expr::lit(10), Expr::lit(20));
        assert_eq!(fold_constants(&c), Expr::lit(10));
    }

    #[test]
    fn is_idempotent_and_semantics_preserving() {
        use bufferdb_types::Tuple;
        let exprs = [
            Expr::col(0).mul(dec("1").add(dec("0.08"))),
            Expr::col(0).le(Expr::lit(3).add(Expr::lit(4))),
            Expr::col(0).is_null().or(Expr::lit(Datum::Bool(false))),
        ];
        let row = Tuple::new(vec![Datum::Int(5)]);
        for e in &exprs {
            let f = fold_constants(e);
            assert_eq!(fold_constants(&f), f, "idempotent");
            assert_eq!(e.eval(&row).unwrap(), f.eval(&row).unwrap(), "same value");
        }
    }

    #[test]
    fn fold_plan_reduces_query1_expression_cost() {
        use crate::plan::PlanNode;
        let catalog = {
            use bufferdb_storage::{Catalog, TableBuilder};
            use bufferdb_types::{DataType, Field, Schema, Tuple};
            let c = Catalog::new();
            let mut b =
                TableBuilder::new("t", Schema::new(vec![Field::new("x", DataType::Decimal)]));
            b.push(Tuple::new(vec![Datum::Decimal(Decimal::from_cents(100))]));
            c.add_table(b);
            c
        };
        let plan = PlanNode::Project {
            input: Box::new(PlanNode::SeqScan {
                table: "t".into(),
                predicate: None,
                projection: None,
            }),
            exprs: vec![(Expr::col(0).mul(dec("1").sub(dec("0.05"))), "v".into())],
        };
        let folded = fold_plan(&plan);
        // Same results, fewer expression nodes.
        use crate::exec::execute_query;
        use crate::session::QueryOpts;
        use bufferdb_cachesim::MachineConfig;
        let m = MachineConfig::pentium4_like();
        let collect = |p: &PlanNode| {
            execute_query(p, &catalog, &m, &QueryOpts::new())
                .into_result()
                .map(|(rows, _, _)| rows)
                .unwrap()
        };
        let a = collect(&plan);
        let b = collect(&folded);
        assert_eq!(a, b);
        let PlanNode::Project { exprs, .. } = &folded else {
            panic!()
        };
        assert_eq!(exprs[0].0.node_count(), 3); // col * lit
    }
}
