//! End-to-end query throughput under the simulator, original vs refined
//! plans, at a small scale factor. Wall-clock here measures the whole
//! simulate-and-execute pipeline; the *modeled* comparisons live in the
//! `repro` binary. These benches catch performance regressions in the
//! engine/simulator and demonstrate that refined plans do not burden the
//! host (the extra buffer work is tiny).

use bufferdb_bench::microbench::bench_n;
use bufferdb_cachesim::MachineConfig;
use bufferdb_core::exec::execute_query;
use bufferdb_core::plan::PlanNode;
use bufferdb_core::refine::{refine_plan, RefineConfig};
use bufferdb_core::session::QueryOpts;
use bufferdb_storage::Catalog;
use bufferdb_tpch::queries;
use bufferdb_types::Tuple;
use std::hint::black_box;

fn collect(plan: &PlanNode, catalog: &Catalog, cfg: &MachineConfig) -> Vec<Tuple> {
    let (rows, _, _) = execute_query(plan, catalog, cfg, &QueryOpts::new())
        .into_result()
        .unwrap();
    rows
}

fn bench_query1() {
    let catalog = bufferdb_tpch::generate_catalog(0.002, 42);
    let machine = MachineConfig::pentium4_like();
    let plan = queries::paper_query1(&catalog).unwrap();
    let refined = refine_plan(&plan, &catalog, &RefineConfig::default());
    bench_n("query1/original", 10, || {
        black_box(collect(&plan, &catalog, &machine))
    });
    bench_n("query1/refined", 10, || {
        black_box(collect(&refined, &catalog, &machine))
    });
}

fn bench_query6() {
    let catalog = bufferdb_tpch::generate_catalog(0.002, 42);
    let machine = MachineConfig::pentium4_like();
    let plan = queries::tpch_q6(&catalog).unwrap();
    let refined = refine_plan(&plan, &catalog, &RefineConfig::default());
    bench_n("tpch_q6/original", 10, || {
        black_box(collect(&plan, &catalog, &machine))
    });
    bench_n("tpch_q6/refined", 10, || {
        black_box(collect(&refined, &catalog, &machine))
    });
}

fn main() {
    bench_query1();
    bench_query6();
}
