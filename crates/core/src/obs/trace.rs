//! The flight recorder: per-worker event rings, end-of-query merge, and
//! the Perfetto/terminal renderers.
//!
//! Each execution thread (coordinator, exchange workers, parallel hash-join
//! build workers) owns a private [`TraceRing`] — a fixed-size, power-of-two
//! ring of timestamped [`TraceEvent`]s. Writes are single-producer and
//! wait-free: one slot store plus a release-ordered cursor bump, overwriting
//! the oldest event when full and *counting* the overflow instead of ever
//! blocking the hot path. Rings merge at query end (workers hand their
//! [`Tracer`] back with their counters, exactly like profiler absorption)
//! into a [`TraceReport`] carried on `QueryOutcome`.
//!
//! Like the profiler, the recorder executes no simulated code regions: a
//! traced run retires the same modeled instructions as an untraced one. The
//! only cost is real (host) time, bounded by a few stores per event.

use crate::obs::hist::MetricsRegistry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Default per-ring capacity in events (power of two).
pub const DEFAULT_RING_CAPACITY: usize = 16 * 1024;

/// The monotonic time base shared by every ring of one query execution.
///
/// Workers copy the coordinator's clock so all tracks share one origin;
/// timestamps are nanoseconds since that origin.
#[derive(Debug, Clone, Copy)]
pub struct TraceClock {
    origin: Instant,
}

impl TraceClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        TraceClock {
            origin: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the origin.
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

impl Default for TraceClock {
    fn default() -> Self {
        TraceClock::new()
    }
}

/// One typed flight-recorder event.
///
/// Duration-shaped events carry their own `start_ns`, so a span never needs
/// a matching begin event to survive ring overflow — whatever is left in
/// the ring renders standalone.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A worker claimed morsel `morsel` covering rows `[lo, hi)`.
    MorselClaim {
        /// Morsel index in scan order.
        morsel: u32,
        /// First row of the morsel.
        lo: u32,
        /// One past the last row of the morsel.
        hi: u32,
    },
    /// A claimed morsel ran to completion (span since `start_ns`).
    MorselComplete {
        /// Morsel index in scan order.
        morsel: u32,
        /// Tuples the morsel produced into the gather queue.
        rows: u64,
        /// Timestamp of the corresponding claim.
        start_ns: u64,
    },
    /// A claimed morsel terminated abnormally (error, cancel, or panic).
    MorselAbort {
        /// Morsel index in scan order.
        morsel: u32,
    },
    /// A buffer refill pass finished (span since `start_ns`).
    FillEnd {
        /// Operator id ([`crate::obs::ObsId`]) of the buffer, `u32::MAX`
        /// when the plan is unprofiled.
        op: u32,
        /// Tuples stored by this fill.
        rows: u64,
        /// Simulated L1i misses charged while filling this granule.
        l1i_misses: u64,
        /// Timestamp at fill start.
        start_ns: u64,
    },
    /// The parent fully consumed a buffered batch.
    DrainEnd {
        /// Operator id of the buffer, `u32::MAX` when unprofiled.
        op: u32,
        /// Tuples that were resident when the drain completed.
        occupancy: u64,
    },
    /// A worker pushed a morsel's output into the gather queue.
    GatherEnqueue {
        /// Morsel index in scan order.
        morsel: u32,
        /// Tuples sent for this morsel.
        rows: u64,
    },
    /// The coordinator received the first tuple of a morsel from the queue.
    GatherDequeue {
        /// Morsel index in scan order.
        morsel: u32,
    },
    /// A parallel hash-join build partition finished (span since
    /// `start_ns`).
    BuildPartition {
        /// Build-worker index.
        worker: u32,
        /// Rows inserted by this partition.
        rows: u64,
        /// Timestamp at partition start.
        start_ns: u64,
    },
    /// Adaptive refinement installed a new plan generation.
    AdaptInstall {
        /// Generation number after the install.
        generation: u64,
        /// Buffer operators in the installed plan.
        buffers: u64,
    },
    /// A pending adaptation was validated against its first clean run.
    AdaptValidate {
        /// Whether the validation measured a regression.
        regressed: bool,
    },
    /// Adaptive refinement rolled back to the prior plan.
    AdaptRollback,
    /// Adaptation froze this plan-cache entry (no further attempts).
    AdaptFreeze,
    /// A fault-injection site tripped.
    FaultTrip {
        /// The site name (e.g. `buffer.fill`).
        site: String,
    },
    /// A cancellation (explicit or deadline) was observed at a check point.
    CancelObserved,
    /// A panic was contained on this track (`catch_unwind`).
    WorkerPanic,
    /// A query waited for admission + its first core grant (span since
    /// `start_ns` = arrival). Server flight recorder only.
    QueryWait {
        /// Submission id.
        query: u64,
        /// Arrival timestamp (span start).
        start_ns: u64,
    },
    /// A query's drive ran start to finish (span since `start_ns` = first
    /// grant). Server flight recorder only.
    QueryRun {
        /// Submission id.
        query: u64,
        /// Result rows produced.
        rows: u64,
        /// Whether the drive completed cleanly.
        ok: bool,
        /// First-grant timestamp (span start).
        start_ns: u64,
    },
    /// One session-core quantum turn (span since `start_ns` = grant).
    /// Each turn switches the shared machine to another resident's code
    /// footprint; `cross_misses` is the L1i displacement this turn paid
    /// for lines other queries evicted. Server flight recorder only.
    CoreTurn {
        /// The running query's cross-query attribution tag.
        tag: u32,
        /// Cross-query L1i misses charged during this turn.
        cross_misses: u64,
        /// Grant timestamp (span start).
        start_ns: u64,
    },
}

/// Internal: one argument value for the Perfetto `args` object.
enum Arg {
    U(u64),
    B(bool),
    S(String),
}

impl TraceEvent {
    /// Stable dotted event name, used as the Perfetto event name.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::MorselClaim { .. } => "morsel.claim",
            TraceEvent::MorselComplete { .. } => "morsel.run",
            TraceEvent::MorselAbort { .. } => "morsel.abort",
            TraceEvent::FillEnd { .. } => "buffer.fill",
            TraceEvent::DrainEnd { .. } => "buffer.drain",
            TraceEvent::GatherEnqueue { .. } => "gather.enqueue",
            TraceEvent::GatherDequeue { .. } => "gather.dequeue",
            TraceEvent::BuildPartition { .. } => "build.partition",
            TraceEvent::AdaptInstall { .. } => "adapt.install",
            TraceEvent::AdaptValidate { .. } => "adapt.validate",
            TraceEvent::AdaptRollback => "adapt.rollback",
            TraceEvent::AdaptFreeze => "adapt.freeze",
            TraceEvent::FaultTrip { .. } => "fault.trip",
            TraceEvent::CancelObserved => "cancel.observed",
            TraceEvent::WorkerPanic => "worker.panic",
            TraceEvent::QueryWait { .. } => "query.wait",
            TraceEvent::QueryRun { .. } => "query.run",
            TraceEvent::CoreTurn { .. } => "core.turn",
        }
    }

    /// For duration-shaped events, the embedded start timestamp.
    pub fn span_start_ns(&self) -> Option<u64> {
        match self {
            TraceEvent::MorselComplete { start_ns, .. }
            | TraceEvent::FillEnd { start_ns, .. }
            | TraceEvent::BuildPartition { start_ns, .. }
            | TraceEvent::QueryWait { start_ns, .. }
            | TraceEvent::QueryRun { start_ns, .. }
            | TraceEvent::CoreTurn { start_ns, .. } => Some(*start_ns),
            _ => None,
        }
    }

    /// Whether this is an adaptivity decision (rendered on its own track).
    pub fn is_adaptivity(&self) -> bool {
        matches!(
            self,
            TraceEvent::AdaptInstall { .. }
                | TraceEvent::AdaptValidate { .. }
                | TraceEvent::AdaptRollback
                | TraceEvent::AdaptFreeze
        )
    }

    fn args(&self) -> Vec<(&'static str, Arg)> {
        match self {
            TraceEvent::MorselClaim { morsel, lo, hi } => vec![
                ("morsel", Arg::U(*morsel as u64)),
                ("lo", Arg::U(*lo as u64)),
                ("hi", Arg::U(*hi as u64)),
            ],
            TraceEvent::MorselComplete { morsel, rows, .. } => {
                vec![("morsel", Arg::U(*morsel as u64)), ("rows", Arg::U(*rows))]
            }
            TraceEvent::MorselAbort { morsel } => vec![("morsel", Arg::U(*morsel as u64))],
            TraceEvent::FillEnd {
                op,
                rows,
                l1i_misses,
                ..
            } => vec![
                ("op", Arg::U(*op as u64)),
                ("rows", Arg::U(*rows)),
                ("l1i_misses", Arg::U(*l1i_misses)),
            ],
            TraceEvent::DrainEnd { op, occupancy } => vec![
                ("op", Arg::U(*op as u64)),
                ("occupancy", Arg::U(*occupancy)),
            ],
            TraceEvent::GatherEnqueue { morsel, rows } => {
                vec![("morsel", Arg::U(*morsel as u64)), ("rows", Arg::U(*rows))]
            }
            TraceEvent::GatherDequeue { morsel } => vec![("morsel", Arg::U(*morsel as u64))],
            TraceEvent::BuildPartition { worker, rows, .. } => {
                vec![("worker", Arg::U(*worker as u64)), ("rows", Arg::U(*rows))]
            }
            TraceEvent::AdaptInstall {
                generation,
                buffers,
            } => vec![
                ("generation", Arg::U(*generation)),
                ("buffers", Arg::U(*buffers)),
            ],
            TraceEvent::AdaptValidate { regressed } => vec![("regressed", Arg::B(*regressed))],
            TraceEvent::AdaptRollback | TraceEvent::AdaptFreeze => vec![],
            TraceEvent::FaultTrip { site } => vec![("site", Arg::S(site.clone()))],
            TraceEvent::CancelObserved | TraceEvent::WorkerPanic => vec![],
            TraceEvent::QueryWait { query, .. } => vec![("query", Arg::U(*query))],
            TraceEvent::QueryRun {
                query, rows, ok, ..
            } => vec![
                ("query", Arg::U(*query)),
                ("rows", Arg::U(*rows)),
                ("ok", Arg::B(*ok)),
            ],
            TraceEvent::CoreTurn {
                tag, cross_misses, ..
            } => vec![
                ("tag", Arg::U(*tag as u64)),
                ("cross_misses", Arg::U(*cross_misses)),
            ],
        }
    }
}

/// A timestamped event (nanoseconds since the query's [`TraceClock`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Nanoseconds since the clock origin.
    pub ts_ns: u64,
    /// The event.
    pub event: TraceEvent,
}

/// A fixed-capacity, single-writer event ring.
///
/// Capacity is rounded up to a power of two; the write cursor is an
/// [`AtomicU64`] bumped with release ordering after the slot store
/// (seqlock-style publication), so recording is a handful of instructions,
/// never allocates after warm-up, and never blocks. When full, the oldest
/// event is overwritten and the loss shows up in [`TraceRing::dropped`].
#[derive(Debug)]
pub struct TraceRing {
    slots: Vec<TimedEvent>,
    mask: u64,
    cursor: AtomicU64,
}

impl TraceRing {
    /// A ring with [`DEFAULT_RING_CAPACITY`] slots.
    pub fn new() -> Self {
        TraceRing::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A ring with at least `cap` slots (rounded up to a power of two).
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(2).next_power_of_two();
        TraceRing {
            slots: Vec::with_capacity(cap),
            mask: (cap as u64) - 1,
            cursor: AtomicU64::new(0),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        (self.mask + 1) as usize
    }

    /// Record one event, overwriting the oldest when full.
    pub fn push(&mut self, ev: TimedEvent) {
        let cur = self.cursor.load(Ordering::Relaxed);
        let idx = (cur & self.mask) as usize;
        if idx < self.slots.len() {
            self.slots[idx] = ev;
        } else {
            self.slots.push(ev);
        }
        self.cursor.store(cur + 1, Ordering::Release);
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Acquire)
    }

    /// Events lost to overwriting.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.capacity() as u64)
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TimedEvent> {
        let cur = self.recorded();
        if cur <= self.capacity() as u64 {
            return self.slots.clone();
        }
        let start = (cur & self.mask) as usize;
        let mut out = Vec::with_capacity(self.slots.len());
        out.extend_from_slice(&self.slots[start..]);
        out.extend_from_slice(&self.slots[..start]);
        out
    }
}

impl Default for TraceRing {
    fn default() -> Self {
        TraceRing::new()
    }
}

/// One finished track of the merged trace: a named thread's retained
/// events plus its overflow accounting.
#[derive(Debug, Clone)]
pub struct TraceTrack {
    /// Track name (`coordinator`, `worker-0`, `build-1`, …).
    pub name: String,
    /// Retained events, oldest first.
    pub events: Vec<TimedEvent>,
    /// Total events ever recorded on this track.
    pub recorded: u64,
    /// Events lost to ring overflow.
    pub dropped: u64,
}

impl TraceTrack {
    /// Seal a ring into a finished track (used by the per-query tracer and
    /// by the server flight recorder, whose rings live outside any tracer).
    pub fn from_ring(name: String, ring: TraceRing) -> Self {
        TraceTrack {
            events: ring.events(),
            recorded: ring.recorded(),
            dropped: ring.dropped(),
            name,
        }
    }
}

/// One thread's handle on the flight recorder: a ring, the shared clock,
/// and a private metrics registry; absorbed worker tracers accumulate as
/// finished tracks.
#[derive(Debug)]
pub struct Tracer {
    clock: TraceClock,
    name: String,
    ring: TraceRing,
    finished: Vec<TraceTrack>,
    metrics: MetricsRegistry,
}

impl Tracer {
    /// A fresh tracer (and clock) named `name`, default ring capacity.
    pub fn new(name: &str) -> Self {
        Tracer::with_capacity(name, DEFAULT_RING_CAPACITY)
    }

    /// A fresh tracer with an explicit ring capacity.
    pub fn with_capacity(name: &str, cap: usize) -> Self {
        Tracer {
            clock: TraceClock::new(),
            name: name.to_string(),
            ring: TraceRing::with_capacity(cap),
            finished: Vec::new(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// A tracer for a spawned worker: same clock (shared time base), same
    /// ring capacity, empty ring and metrics. Hand it back via
    /// [`Tracer::absorb`] when the worker joins.
    pub fn for_worker(&self, name: String) -> Tracer {
        Tracer {
            clock: self.clock,
            name,
            ring: TraceRing::with_capacity(self.ring.capacity()),
            finished: Vec::new(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Nanoseconds since the shared clock origin.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Record `event` stamped now.
    pub fn record(&mut self, event: TraceEvent) {
        let ts_ns = self.now_ns();
        self.record_at(ts_ns, event);
    }

    /// Record `event` with an explicit timestamp.
    pub fn record_at(&mut self, ts_ns: u64, event: TraceEvent) {
        self.ring.push(TimedEvent { ts_ns, event });
    }

    /// Record one histogram sample (see [`crate::obs::hist`] metric names).
    pub fn metric(&mut self, name: &str, v: u64) {
        self.metrics.record(name, v);
    }

    /// Merge a joined worker's tracer: its ring becomes a finished track,
    /// its own finished tracks (e.g. nested build workers) chain along, and
    /// its metrics fold into ours.
    pub fn absorb(&mut self, worker: Tracer) {
        let Tracer {
            name,
            ring,
            finished,
            metrics,
            ..
        } = worker;
        self.metrics.merge(&metrics);
        self.finished.push(TraceTrack::from_ring(name, ring));
        self.finished.extend(finished);
    }

    /// Seal the recorder into a [`TraceReport`]; this tracer's own ring
    /// becomes the first track.
    pub fn finish(self) -> TraceReport {
        let Tracer {
            clock,
            name,
            ring,
            finished,
            metrics,
        } = self;
        let mut tracks = vec![TraceTrack::from_ring(name, ring)];
        tracks.extend(finished);
        TraceReport {
            tracks,
            instants: Vec::new(),
            metrics,
            clock,
        }
    }
}

/// The merged flight-recorder output of one query execution.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Per-thread tracks; index 0 is the coordinator.
    pub tracks: Vec<TraceTrack>,
    /// Query-level instants recorded after execution (adaptivity
    /// decisions), on their own Perfetto track.
    pub instants: Vec<TimedEvent>,
    /// Merged histogram metrics from every track.
    pub metrics: MetricsRegistry,
    clock: TraceClock,
}

impl TraceReport {
    /// Assemble a report from externally built tracks — the server flight
    /// recorder stamps its rings with virtual (or wall) time itself, so the
    /// report's clock is fresh and only used for later `record_instant`s.
    pub fn from_tracks(tracks: Vec<TraceTrack>) -> Self {
        TraceReport {
            tracks,
            instants: Vec::new(),
            metrics: MetricsRegistry::new(),
            clock: TraceClock::new(),
        }
    }

    /// Record a query-level instant stamped now (the report keeps the
    /// execution's clock, so post-execution decisions — plan-cache installs,
    /// rollbacks — land on the same time base).
    pub fn record_instant(&mut self, event: TraceEvent) {
        self.instants.push(TimedEvent {
            ts_ns: self.clock.now_ns(),
            event,
        });
    }

    /// Total events recorded across all tracks (including dropped ones).
    pub fn events_recorded(&self) -> u64 {
        self.tracks.iter().map(|t| t.recorded).sum()
    }

    /// Total events lost to ring overflow across all tracks.
    pub fn events_dropped(&self) -> u64 {
        self.tracks.iter().map(|t| t.dropped).sum()
    }

    /// The track named `name`, if present.
    pub fn track(&self, name: &str) -> Option<&TraceTrack> {
        self.tracks.iter().find(|t| t.name == name)
    }

    /// Render as Chrome/Perfetto trace-event JSON (catapult format): one
    /// `thread_name`-labelled track per recorded thread, duration (`"X"`)
    /// events for spans, instants (`"i"`) otherwise, and adaptivity
    /// decisions as global instants on a dedicated track. Timestamps are
    /// microseconds with nanosecond fraction.
    pub fn perfetto_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut emit = |s: String, out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('\n');
            out.push_str(&s);
        };
        for (tid, track) in self.tracks.iter().enumerate() {
            emit(
                format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    json_escape(&track.name)
                ),
                &mut out,
            );
            for ev in &track.events {
                emit(render_event(ev, tid, false), &mut out);
            }
        }
        if !self.instants.is_empty() {
            let tid = self.tracks.len();
            emit(
                format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"adaptivity\"}}}}"
                ),
                &mut out,
            );
            for ev in &self.instants {
                emit(render_event(ev, tid, true), &mut out);
            }
        }
        out.push_str("\n]}\n");
        out
    }

    /// A terminal timeline: per-track activity strips on a shared time
    /// axis, morsel/fill/drain tallies, adaptivity instants, and histogram
    /// quantiles.
    pub fn summary(&self) -> String {
        const WIDTH: usize = 28;
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for ev in self
            .tracks
            .iter()
            .flat_map(|t| t.events.iter())
            .chain(self.instants.iter())
        {
            let start = ev.event.span_start_ns().unwrap_or(ev.ts_ns);
            lo = lo.min(start);
            hi = hi.max(ev.ts_ns);
        }
        let span = if lo == u64::MAX { 0 } else { hi - lo };
        let mut s = format!(
            "flight recorder: {} tracks, {} events ({} dropped), span {:.3} ms\n",
            self.tracks.len(),
            self.events_recorded(),
            self.events_dropped(),
            span as f64 / 1e6,
        );
        let name_w = self
            .tracks
            .iter()
            .map(|t| t.name.len())
            .max()
            .unwrap_or(0)
            .max(11);
        for track in &self.tracks {
            let mut strip = ['.'; WIDTH];
            let mut claims = 0u64;
            let mut completes = 0u64;
            let mut aborts = 0u64;
            let mut fills = 0u64;
            let mut drains = 0u64;
            let mut builds = 0u64;
            let mut faults = 0u64;
            let mut cancels = 0u64;
            let mut panics = 0u64;
            let mut waits = 0u64;
            let mut runs = 0u64;
            let mut turns = 0u64;
            let mut turn_cross = 0u64;
            for ev in &track.events {
                let a = ev.event.span_start_ns().unwrap_or(ev.ts_ns);
                let (ca, cb) = (col(a, lo, span, WIDTH), col(ev.ts_ns, lo, span, WIDTH));
                for c in strip.iter_mut().take(cb + 1).skip(ca) {
                    *c = '#';
                }
                match ev.event {
                    TraceEvent::MorselClaim { .. } => claims += 1,
                    TraceEvent::MorselComplete { .. } => completes += 1,
                    TraceEvent::MorselAbort { .. } => aborts += 1,
                    TraceEvent::FillEnd { .. } => fills += 1,
                    TraceEvent::DrainEnd { .. } => drains += 1,
                    TraceEvent::BuildPartition { .. } => builds += 1,
                    TraceEvent::FaultTrip { .. } => faults += 1,
                    TraceEvent::CancelObserved => cancels += 1,
                    TraceEvent::WorkerPanic => panics += 1,
                    TraceEvent::QueryWait { .. } => waits += 1,
                    TraceEvent::QueryRun { .. } => runs += 1,
                    TraceEvent::CoreTurn { cross_misses, .. } => {
                        turns += 1;
                        turn_cross += cross_misses;
                    }
                    _ => {}
                }
            }
            let mut notes = Vec::new();
            if claims + completes + aborts > 0 {
                notes.push(format!(
                    "morsels {claims} claimed/{completes} ok/{aborts} aborted"
                ));
            }
            if fills + drains > 0 {
                notes.push(format!("fills {fills}, drains {drains}"));
            }
            if builds > 0 {
                notes.push(format!("build parts {builds}"));
            }
            if faults > 0 {
                notes.push(format!("faults {faults}"));
            }
            if cancels > 0 {
                notes.push(format!("cancel seen {cancels}"));
            }
            if panics > 0 {
                notes.push(format!("panics contained {panics}"));
            }
            if waits + runs > 0 {
                notes.push(format!("queries {waits} waited/{runs} ran"));
            }
            if turns > 0 {
                notes.push(format!("turns {turns} ({turn_cross} cross misses)"));
            }
            let notes = if notes.is_empty() {
                String::new()
            } else {
                format!("  {}", notes.join(", "))
            };
            s.push_str(&format!(
                "  {:<name_w$} |{}| {} ev{}\n",
                track.name,
                strip.iter().collect::<String>(),
                track.events.len(),
                notes,
            ));
        }
        for ev in &self.instants {
            s.push_str(&format!(
                "  adaptivity @{:>9.3} ms  {:?}\n",
                ev.ts_ns as f64 / 1e6,
                ev.event
            ));
        }
        let sums = self.metrics.summaries();
        if !sums.is_empty() {
            s.push_str("  histograms (p50/p95/p99/max):\n");
            for (name, h) in sums {
                s.push_str(&format!(
                    "    {:<22} n={:<7} {} / {} / {} / {}\n",
                    name, h.count, h.p50, h.p95, h.p99, h.max
                ));
            }
        }
        s
    }
}

/// Map a timestamp to a strip column.
fn col(ts: u64, lo: u64, span: u64, width: usize) -> usize {
    if span == 0 {
        0
    } else {
        (((ts - lo) as u128 * (width as u128 - 1)) / span as u128) as usize
    }
}

fn render_event(ev: &TimedEvent, tid: usize, global: bool) -> String {
    let name = ev.event.name();
    let mut args = String::new();
    for (i, (k, v)) in ev.event.args().iter().enumerate() {
        if i > 0 {
            args.push(',');
        }
        match v {
            Arg::U(u) => args.push_str(&format!("\"{k}\":{u}")),
            Arg::B(b) => args.push_str(&format!("\"{k}\":{b}")),
            Arg::S(s) => args.push_str(&format!("\"{k}\":\"{}\"", json_escape(s))),
        }
    }
    let ts_us = |ns: u64| format!("{:.3}", ns as f64 / 1000.0);
    match ev.event.span_start_ns() {
        Some(start) => format!(
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"name\":\"{name}\",\"ts\":{},\
             \"dur\":{},\"args\":{{{args}}}}}",
            ts_us(start),
            ts_us(ev.ts_ns.saturating_sub(start)),
        ),
        None => format!(
            "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"name\":\"{name}\",\"ts\":{},\
             \"s\":\"{}\",\"args\":{{{args}}}}}",
            ts_us(ev.ts_ns),
            if global { "g" } else { "t" },
        ),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::hist::MORSEL_SERVICE_NS;

    fn claim(m: u32) -> TraceEvent {
        TraceEvent::MorselClaim {
            morsel: m,
            lo: 0,
            hi: 10,
        }
    }

    #[test]
    fn ring_overflow_overwrites_oldest_and_counts() {
        let mut ring = TraceRing::with_capacity(8);
        assert_eq!(ring.capacity(), 8);
        for i in 0..100u32 {
            ring.push(TimedEvent {
                ts_ns: i as u64,
                event: claim(i),
            });
        }
        assert_eq!(ring.recorded(), 100);
        assert_eq!(ring.dropped(), 92);
        let events = ring.events();
        assert_eq!(events.len(), 8);
        // Oldest-first: exactly the last 8 events survive, in order.
        let ts: Vec<u64> = events.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, (92..100).collect::<Vec<u64>>());
    }

    #[test]
    fn ring_capacity_rounds_to_power_of_two() {
        assert_eq!(TraceRing::with_capacity(100).capacity(), 128);
        assert_eq!(TraceRing::with_capacity(0).capacity(), 2);
    }

    #[test]
    fn absorb_chains_tracks_and_merges_metrics() {
        let mut root = Tracer::new("coordinator");
        root.record(claim(0));
        let mut w0 = root.for_worker("worker-0".into());
        w0.metric(MORSEL_SERVICE_NS, 100);
        let mut nested = w0.for_worker("build-0".into());
        nested.record(TraceEvent::WorkerPanic);
        w0.absorb(nested);
        root.absorb(w0);
        root.metric(MORSEL_SERVICE_NS, 300);
        let report = root.finish();
        let names: Vec<_> = report.tracks.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["coordinator", "worker-0", "build-0"]);
        assert_eq!(report.events_recorded(), 2);
        assert_eq!(report.events_dropped(), 0);
        assert_eq!(
            report.metrics.get(MORSEL_SERVICE_NS).map(|h| h.count()),
            Some(2)
        );
    }

    #[test]
    fn perfetto_json_shape() {
        let mut t = Tracer::new("coordinator");
        t.record(TraceEvent::FillEnd {
            op: 1,
            rows: 100,
            l1i_misses: 7,
            start_ns: 0,
        });
        t.record(TraceEvent::FaultTrip {
            site: "buffer.fill".into(),
        });
        let mut report = t.finish();
        report.record_instant(TraceEvent::AdaptInstall {
            generation: 1,
            buffers: 3,
        });
        let json = report.perfetto_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"coordinator\""));
        assert!(json.contains("\"ph\":\"X\"") && json.contains("\"name\":\"buffer.fill\""));
        assert!(json.contains("\"l1i_misses\":7"));
        assert!(json.contains("\"site\":\"buffer.fill\""));
        assert!(json.contains("\"name\":\"adaptivity\""));
        assert!(json.contains("\"name\":\"adapt.install\"") && json.contains("\"s\":\"g\""));
        // Balanced braces => plausibly well-formed; the integration tests
        // parse it properly with python in CI.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn summary_renders_tracks_and_histograms() {
        let mut t = Tracer::new("coordinator");
        t.record(claim(0));
        t.record(TraceEvent::MorselComplete {
            morsel: 0,
            rows: 10,
            start_ns: 0,
        });
        t.metric(MORSEL_SERVICE_NS, 1234);
        let report = t.finish();
        let s = report.summary();
        assert!(s.contains("flight recorder: 1 tracks"));
        assert!(s.contains("morsels 1 claimed/1 ok/0 aborted"));
        assert!(s.contains(MORSEL_SERVICE_NS));
    }

    #[test]
    fn clock_is_monotonic_and_shared() {
        let t = Tracer::new("a");
        let w = t.for_worker("b".into());
        let a = t.now_ns();
        let b = w.now_ns();
        assert!(b >= a, "worker clock shares the origin");
    }
}
