//! Replay of a cached materialized intermediate.
//!
//! A [`ReusedScanOp`] is the executor leaf behind
//! [`crate::plan::PlanNode::ReusedScan`]: it preloads the cache entry's rows
//! into an arena region at `open` (the producing query already modeled the
//! writes when it materialized them) and replays them one slot per `next`
//! through the normal arena read path, so downstream operators see tuples
//! bit-identical to recomputing the replaced subtree — but the instruction
//! stream is one tiny loop ([`crate::footprint::OpKind::ReusedScan`])
//! instead of the subtree's whole operator stack.

use crate::arena::TupleSlot;
use crate::context::ExecContext;
use crate::exec::{schema_slot_bytes, Operator};
use crate::footprint::{FootprintModel, OpKind};
use crate::prepare::reuse::ReuseHandle;
use bufferdb_cachesim::CodeRegion;
use bufferdb_types::{Datum, DbError, Result, SchemaRef};

/// Leaf operator replaying a reuse-cache entry.
pub struct ReusedScanOp {
    handle: ReuseHandle,
    schema: SchemaRef,
    code: CodeRegion,
    slots: Vec<TupleSlot>,
    pos: usize,
}

impl ReusedScanOp {
    /// A replay leaf over `handle`'s cached rows.
    pub fn new(fm: &mut FootprintModel, handle: ReuseHandle) -> Self {
        let schema = handle.schema();
        ReusedScanOp {
            handle,
            schema,
            code: fm.region_for(&OpKind::ReusedScan),
            slots: Vec::new(),
            pos: 0,
        }
    }
}

impl Operator for ReusedScanOp {
    fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<()> {
        let region = ctx
            .arena
            .alloc_unbounded_region(schema_slot_bytes(&self.schema));
        self.slots.clear();
        self.slots.reserve(self.handle.row_count());
        for t in self.handle.rows().iter() {
            self.slots.push(ctx.arena.preload(region, t.clone()));
        }
        self.pos = 0;
        self.handle.note_hit();
        Ok(())
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<TupleSlot>> {
        ctx.check_cancel()?;
        ctx.machine.exec_region(&mut self.code);
        if self.pos >= self.slots.len() {
            return Ok(None);
        }
        let slot = self.slots[self.pos];
        self.pos += 1;
        ctx.tuple_yield();
        ctx.arena.read(slot, &mut ctx.machine);
        Ok(Some(slot))
    }

    fn close(&mut self, _ctx: &mut ExecContext) -> Result<()> {
        self.slots.clear();
        Ok(())
    }

    fn rescan(&mut self, _ctx: &mut ExecContext, param: Option<&Datum>) -> Result<()> {
        if param.is_some() {
            return Err(DbError::ExecProtocol(
                "reused scan takes no parameter".into(),
            ));
        }
        // Replay from the top; the rows are already resident, so a rescan
        // costs only the reads (and is not a new cache hit).
        self.pos = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepare::reuse::ReuseCache;
    use bufferdb_cachesim::MachineConfig;
    use bufferdb_types::{DataType, Field, Schema, Tuple};

    fn handle(n: i64) -> ReuseHandle {
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]).into_ref();
        let rows: Vec<Tuple> = (0..n).map(|i| Tuple::new(vec![Datum::Int(i)])).collect();
        let cache = ReuseCache::new(1 << 20);
        cache
            .install(7, 0, schema, rows, 1_000_000, 1_000)
            .expect("install")
    }

    fn drain(op: &mut ReusedScanOp, ctx: &mut ExecContext) -> Vec<i64> {
        let mut out = Vec::new();
        while let Some(s) = op.next(ctx).unwrap() {
            out.push(ctx.arena.tuple(s).get(0).as_int().unwrap());
        }
        out
    }

    #[test]
    fn replays_rows_in_order_and_counts_one_hit_per_open() {
        let h = handle(5);
        let mut fm = FootprintModel::new();
        let mut op = ReusedScanOp::new(&mut fm, h.clone());
        let mut ctx = ExecContext::new(MachineConfig::pentium4_like());
        op.open(&mut ctx).unwrap();
        assert_eq!(drain(&mut op, &mut ctx), vec![0, 1, 2, 3, 4]);
        assert_eq!(h.hits(), 1);
        // Rescan replays without a new hit.
        op.rescan(&mut ctx, None).unwrap();
        assert_eq!(drain(&mut op, &mut ctx), vec![0, 1, 2, 3, 4]);
        assert_eq!(h.hits(), 1);
        op.close(&mut ctx).unwrap();
    }

    #[test]
    fn parameterized_rescan_is_a_protocol_error() {
        let h = handle(1);
        let mut fm = FootprintModel::new();
        let mut op = ReusedScanOp::new(&mut fm, h);
        let mut ctx = ExecContext::new(MachineConfig::pentium4_like());
        op.open(&mut ctx).unwrap();
        let err = op.rescan(&mut ctx, Some(&Datum::Int(3))).unwrap_err();
        assert!(matches!(err, DbError::ExecProtocol(_)));
    }

    #[test]
    fn preload_is_free_and_replay_models_its_reads() {
        let h = handle(100);
        let mut fm = FootprintModel::new();
        let mut op = ReusedScanOp::new(&mut fm, h);
        let mut ctx = ExecContext::new(MachineConfig::pentium4_like());
        op.open(&mut ctx).unwrap();
        let at_open = ctx.machine.snapshot();
        assert_eq!(
            at_open.l1d_accesses, 0,
            "preload must not touch the modeled memory system"
        );
        drain(&mut op, &mut ctx);
        let done = ctx.machine.snapshot();
        assert!(
            done.l1d_accesses >= 100,
            "replay models at least one data read per row"
        );
    }
}
