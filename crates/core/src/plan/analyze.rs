//! EXPLAIN ANALYZE: run the query under the profiler and render the plan
//! tree annotated with what actually happened at every node.
//!
//! Each node line carries estimated vs. actual rows; the indented detail
//! line under it shows the node's *exclusive* share of whole-query L1i
//! misses and modeled time — the paper's thesis made visible per operator
//! (an interleaved scan/aggregate pair splits the misses it causes between
//! both nodes; inserting a buffer collapses both shares).

use crate::exec::execute_query;
use crate::obs::{ObsId, QueryProfile};
use crate::plan::estimate::estimate_rows;
use crate::plan::explain::node_label;
use crate::plan::PlanNode;
use crate::session::QueryOpts;
use bufferdb_cachesim::{format_counter_table, BreakdownReport, MachineConfig};
use bufferdb_storage::Catalog;
use bufferdb_types::Result;
use std::fmt::Write as _;

/// Execute `plan` and render its tree annotated per node with actual vs.
/// estimated rows, iterator-call counts, exclusive L1i-miss share and
/// exclusive modeled-time share. Buffer nodes additionally report their
/// fill/occupancy/drain gauges.
pub fn explain_analyze(plan: &PlanNode, catalog: &Catalog, cfg: &MachineConfig) -> Result<String> {
    let opts = QueryOpts::new().profile(true).trace(true).heatmap(true);
    let mut outcome = execute_query(plan, catalog, cfg, &opts);
    let trace = outcome.take_trace();
    let heat = outcome.heat().cloned();
    let (rows, stats, profile) = outcome.into_result()?;
    let profile = profile.expect("profiling was requested");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "EXPLAIN ANALYZE  rows={} modeled={:.3}s cpi={:.2}",
        rows.len(),
        stats.seconds(),
        stats.cpi()
    );
    let mut next_id = 0usize;
    render(plan, catalog, cfg, &profile, 0, &mut next_id, &mut out);
    debug_assert_eq!(
        next_id,
        profile.ops.len(),
        "plan walk must visit every operator"
    );
    out.push_str("totals:\n");
    for line in format_counter_table(&profile.total).lines() {
        let _ = writeln!(out, "  {line}");
    }
    if let Some(trace) = trace {
        out.push_str("flight recorder:\n");
        for line in trace.summary().lines() {
            let _ = writeln!(out, "  {line}");
        }
    }
    if let Some(heat) = heat {
        if !heat.cells.is_empty() {
            out.push_str("i-cache heatmap:\n");
            for line in heat.render(32).lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
    }
    Ok(out)
}

fn render(
    node: &PlanNode,
    catalog: &Catalog,
    cfg: &MachineConfig,
    profile: &QueryProfile,
    depth: usize,
    next_id: &mut usize,
    out: &mut String,
) {
    // Ids were assigned pre-order during executor construction; mirror that
    // exact walk (parent first, children in `children()` order).
    let id = ObsId(*next_id);
    *next_id += 1;
    let op = profile.op(id);
    let pad = "  ".repeat(depth);
    let est = estimate_rows(node, catalog);
    let _ = writeln!(
        out,
        "{pad}{}  (est_rows {est:.0}, actual_rows {}, opens {}, nexts {}, rescans {})",
        node_label(node),
        op.rows,
        op.opens,
        op.next_calls,
        op.rescans,
    );
    let bd = BreakdownReport::from_counters(&op.counters, cfg);
    let total_bd = BreakdownReport::from_counters(&profile.total, cfg);
    let time_share = if total_bd.total_cycles == 0 {
        0.0
    } else {
        bd.total_cycles as f64 / total_bd.total_cycles as f64
    };
    let _ = writeln!(
        out,
        "{pad}  self: {:.3}s ({:.1}% of time) | L1i misses {} ({:.1}% of query) | {} instr",
        bd.seconds(),
        100.0 * time_share,
        op.counters.l1i_misses,
        100.0 * profile.l1i_share(id),
        op.counters.instructions,
    );
    if let Some(g) = &op.buffer {
        let _ = writeln!(
            out,
            "{pad}  buffer: {} fills, avg occupancy {:.1}, {} drains",
            g.fills,
            g.avg_occupancy(),
            g.drains,
        );
    }
    let gw = BreakdownReport::from_counters(&op.gather_wait, cfg);
    if gw.total_cycles > 0 {
        let gw_share = if total_bd.total_cycles == 0 {
            0.0
        } else {
            gw.total_cycles as f64 / total_bd.total_cycles as f64
        };
        let _ = writeln!(
            out,
            "{pad}  gather wait: {:.3}s ({:.1}% of time) | L1i misses {}",
            gw.seconds(),
            100.0 * gw_share,
            op.gather_wait.l1i_misses,
        );
    }
    if let Some(lanes) = &op.workers {
        for lane in lanes {
            let miss_rate = if lane.counters.l1i_accesses == 0 {
                0.0
            } else {
                lane.counters.l1i_misses as f64 / lane.counters.l1i_accesses as f64
            };
            let _ = writeln!(
                out,
                "{pad}  worker {}: {} morsels, {} rows, {} instr, L1i misses {} ({:.2}% miss rate)",
                lane.worker,
                lane.morsels,
                lane.rows,
                lane.counters.instructions,
                lane.counters.l1i_misses,
                100.0 * miss_rate,
            );
        }
    }
    for c in node.children() {
        render(c, catalog, cfg, profile, depth + 1, next_id, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::AggSpec;
    use bufferdb_storage::TableBuilder;
    use bufferdb_types::{DataType, Datum, Field, Schema, Tuple};

    fn catalog(n: i64) -> Catalog {
        let c = Catalog::new();
        let mut b = TableBuilder::new("t", Schema::new(vec![Field::new("k", DataType::Int)]));
        for i in 0..n {
            b.push(Tuple::new(vec![Datum::Int(i)]));
        }
        c.add_table(b);
        c
    }

    fn agg_over_scan(buffered: bool) -> PlanNode {
        let scan = PlanNode::SeqScan {
            table: "t".into(),
            predicate: Some(Expr::col(0).le(Expr::lit(500))),
            projection: None,
        };
        let input = if buffered {
            PlanNode::Buffer {
                input: Box::new(scan),
                size: 100,
            }
        } else {
            scan
        };
        PlanNode::Aggregate {
            input: Box::new(input),
            group_by: vec![],
            aggs: vec![AggSpec::count_star("n")],
        }
    }

    #[test]
    fn annotates_every_node_with_actuals() {
        let c = catalog(1000);
        let cfg = MachineConfig::pentium4_like();
        let text = explain_analyze(&agg_over_scan(false), &c, &cfg).unwrap();
        assert!(text.contains("Aggregate [n]"), "{text}");
        assert!(text.contains("SeqScan on t filter"), "{text}");
        // The scan produced 501 rows, the aggregate 1.
        assert!(text.contains("actual_rows 501"), "{text}");
        assert!(text.contains("actual_rows 1,"), "{text}");
        assert!(text.contains("% of time"), "{text}");
        assert!(text.contains("trace (L1i) misses"), "{text}");
    }

    #[test]
    fn buffer_nodes_report_gauges() {
        let c = catalog(1000);
        let cfg = MachineConfig::pentium4_like();
        let text = explain_analyze(&agg_over_scan(true), &c, &cfg).unwrap();
        assert!(text.contains("*Buffer* (size 100)"), "{text}");
        // 501 rows through a 100-slot buffer: 6 fills (last partial), and
        // 5 full batches drained plus the final 1-row batch.
        assert!(
            text.contains("buffer: 6 fills, avg occupancy 83.5, 6 drains"),
            "{text}"
        );
    }

    #[test]
    fn shares_sum_to_one_hundred_ish() {
        let c = catalog(2000);
        let cfg = MachineConfig::pentium4_like();
        let plan = agg_over_scan(false);
        let opts = QueryOpts::new().profile(true);
        let (_, stats, profile) = execute_query(&plan, &c, &cfg, &opts).into_result().unwrap();
        let profile = profile.unwrap();
        assert_eq!(profile.sum_op_counters(), stats.counters, "conservation");
        let share_sum: f64 = (0..profile.ops.len())
            .map(|i| profile.l1i_share(ObsId(i)))
            .sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "shares sum to {share_sum}");
    }
}
