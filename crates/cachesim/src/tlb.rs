//! A small fully-associative, LRU translation lookaside buffer.
//!
//! Used for instruction pages (the paper reports ITLB misses dropping by
//! ~60–86 % under buffering). 4 KB pages.

const PAGE_SHIFT: u32 = 12;

/// Fully-associative LRU TLB over 4 KB pages.
#[derive(Debug, Clone)]
pub struct Tlb {
    /// Resident page numbers, MRU first. Small (≤ tens of entries), so a
    /// vector beats any hashing scheme.
    pages: Vec<u64>,
    entries: usize,
    accesses: u64,
    misses: u64,
}

impl Tlb {
    /// An empty TLB with `entries` slots.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "TLB must have at least one entry");
        Tlb {
            pages: Vec::with_capacity(entries),
            entries,
            accesses: 0,
            misses: 0,
        }
    }

    /// Translate the page containing `addr`; returns `true` on TLB hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let page = addr >> PAGE_SHIFT;
        if let Some(pos) = self.pages.iter().position(|&p| p == page) {
            // Move to MRU position.
            self.pages.remove(pos);
            self.pages.insert(0, page);
            true
        } else {
            self.misses += 1;
            if self.pages.len() == self.entries {
                self.pages.pop();
            }
            self.pages.insert(0, page);
            false
        }
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of configured entries.
    pub fn entries(&self) -> usize {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(4);
        assert!(!t.access(0x1000));
        assert!(t.access(0x1abc)); // same 4 KB page
        assert!(!t.access(0x2000)); // next page
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut t = Tlb::new(2);
        t.access(0x1000); // page 1
        t.access(0x2000); // page 2
        t.access(0x1000); // page 1 is MRU
        t.access(0x3000); // evicts page 2
        assert!(t.access(0x1000));
        assert!(!t.access(0x2000));
        assert_eq!(t.misses(), 4);
    }

    #[test]
    fn working_set_larger_than_entries_thrashes() {
        let mut t = Tlb::new(4);
        let pages: Vec<u64> = (0..5).map(|i| i * 0x1000).collect();
        for p in &pages {
            t.access(*p);
        }
        let before = t.misses();
        for _ in 0..10 {
            for p in &pages {
                t.access(*p);
            }
        }
        assert_eq!(t.misses() - before, 50); // cyclic over entries+1 always misses
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_panics() {
        Tlb::new(0);
    }
}
