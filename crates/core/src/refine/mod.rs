//! Plan refinement: where to put buffer operators (§6).
//!
//! A bottom-up pass groups pipelined operators into *execution groups* whose
//! combined instruction footprint — shared functions counted once — plus the
//! footprint of a buffer operator fits in the L1 instruction cache. A buffer
//! operator is placed above each completed group. Exclusions, per the paper:
//!
//! * **blocking operators** (sort, materialize, the hash-join build phase)
//!   already batch execution below them and never join a group — though the
//!   pipeline *feeding* a blocking phase is itself a group and may get a
//!   buffer (Figures 16, 17);
//! * **low-cardinality operators** (output below a calibrated threshold,
//!   §7.3) are never buffered: per-call work is too small to amortize the
//!   buffer overhead. The inner side of a foreign-key index nested-loop join
//!   is the canonical case (Figure 15: "the optimizer knows that at most one
//!   row matches each outer tuple");
//! * the **root** never gets a buffer: output goes straight to the client.

pub mod calibrate;

use crate::footprint::{FootprintModel, OpKind};
use crate::plan::estimate::estimate_rows;
use crate::plan::PlanNode;
use crate::prepare::fingerprint::subtree_hash;
use bufferdb_storage::Catalog;
use std::collections::HashMap;

/// Observed output cardinalities from a profiled execution, keyed by the
/// structural hash ([`subtree_hash`]) of the producing subtree. The adaptive
/// re-refinement loop feeds these back so the paper's cardinality rule
/// (§7.3) runs on *measured* rows instead of catalog estimates.
pub type ObservedCards = HashMap<u64, f64>;

/// Configuration for the refinement pass.
#[derive(Debug, Clone)]
pub struct RefineConfig {
    /// Effective L1 instruction cache capacity in bytes an execution group
    /// (plus one buffer operator) may occupy — the paper's 16 KB upper
    /// estimate of the 12 K-µop trace cache.
    pub l1i_capacity: usize,
    /// Output-cardinality threshold below which buffering is not worthwhile
    /// (calibrate with [`calibrate::calibrate_cardinality_threshold`]).
    pub cardinality_threshold: f64,
    /// Buffer array size; the paper settles on 100 entries (§7.4).
    pub buffer_size: usize,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            l1i_capacity: 16 * 1024,
            cardinality_threshold: 400.0,
            buffer_size: 100,
        }
    }
}

/// The current execution group while walking up the plan: the operator kinds
/// whose footprints interleave per tuple.
type Group = Vec<OpKind>;

struct Refiner<'a> {
    catalog: &'a Catalog,
    cfg: &'a RefineConfig,
    observed: Option<&'a ObservedCards>,
}

/// Refine `plan`, returning an equivalent plan with buffer operators added
/// where the footprint analysis recommends them.
pub fn refine_plan(plan: &PlanNode, catalog: &Catalog, cfg: &RefineConfig) -> PlanNode {
    refine_plan_observed(plan, catalog, cfg, None)
}

/// [`refine_plan`] with measured cardinalities: where `observed` has an
/// entry for a subtree, the cardinality rule uses the measured row count in
/// place of the catalog estimate (subtrees without an entry fall back to the
/// estimator). This is how the adaptive loop drops a buffer whose group
/// produced fewer rows than predicted.
pub fn refine_plan_observed(
    plan: &PlanNode,
    catalog: &Catalog,
    cfg: &RefineConfig,
    observed: Option<&ObservedCards>,
) -> PlanNode {
    let r = Refiner {
        catalog,
        cfg,
        observed,
    };
    let (plan, _group) = r.refine(plan);
    plan
}

impl Refiner<'_> {
    /// Does a group (plus a new buffer operator above it) fit in L1i?
    fn fits(&self, group: &Group) -> bool {
        let mut kinds = group.clone();
        kinds.push(OpKind::Buffer);
        FootprintModel::combined_footprint(&kinds) <= self.cfg.l1i_capacity
    }

    fn above_threshold(&self, node: &PlanNode) -> bool {
        let rows = self
            .observed
            .and_then(|m| m.get(&subtree_hash(node)).copied())
            .unwrap_or_else(|| estimate_rows(node, self.catalog));
        rows >= self.cfg.cardinality_threshold
    }

    fn buffer(&self, plan: PlanNode) -> PlanNode {
        PlanNode::Buffer {
            input: Box::new(plan),
            size: self.cfg.buffer_size,
        }
    }

    /// Close out a child group: wrap it in a buffer when the group's output
    /// cardinality clears the calibration threshold (§7.3) — buffering a
    /// low-cardinality pipeline costs more than it saves.
    fn finalize(&self, plan: PlanNode, group: Option<Group>) -> PlanNode {
        match group {
            Some(_) if self.above_threshold(&plan) => self.buffer(plan),
            _ => plan,
        }
    }

    /// Returns the refined node plus the open execution group ending at it
    /// (`None` = boundary: blocking, excluded, or already buffered).
    fn refine(&self, node: &PlanNode) -> (PlanNode, Option<Group>) {
        match node {
            PlanNode::SeqScan { .. } | PlanNode::IndexScan { .. } | PlanNode::ReusedScan { .. } => {
                (node.clone(), Some(vec![node.op_kind()]))
            }

            // A sys scan has no instruction footprint, so buffering above it
            // can never pay for itself: treat it as a group boundary.
            PlanNode::SysScan { .. } => (node.clone(), None),

            PlanNode::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let rebuild = |i: PlanNode| PlanNode::Aggregate {
                    input: Box::new(i),
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                };
                self.refine_unary(node, input, rebuild)
            }
            PlanNode::Project { input, exprs } => {
                let rebuild = |i: PlanNode| PlanNode::Project {
                    input: Box::new(i),
                    exprs: exprs.clone(),
                };
                self.refine_unary(node, input, rebuild)
            }
            PlanNode::Filter { input, predicate } => {
                let rebuild = |i: PlanNode| PlanNode::Filter {
                    input: Box::new(i),
                    predicate: predicate.clone(),
                };
                self.refine_unary(node, input, rebuild)
            }
            PlanNode::Limit { input, limit } => {
                let rebuild = |i: PlanNode| PlanNode::Limit {
                    input: Box::new(i),
                    limit: *limit,
                };
                self.refine_unary(node, input, rebuild)
            }

            PlanNode::Sort { input, keys } => {
                let (child, child_group) = self.refine(input);
                let child = self.close_before_blocking(child, child_group, OpKind::Sort);
                (
                    PlanNode::Sort {
                        input: Box::new(child),
                        keys: keys.clone(),
                    },
                    None,
                )
            }
            PlanNode::Materialize { input } => {
                let (child, child_group) = self.refine(input);
                let child = self.close_before_blocking(child, child_group, OpKind::Materialize);
                (
                    PlanNode::Materialize {
                        input: Box::new(child),
                    },
                    None,
                )
            }

            PlanNode::NestLoopJoin {
                outer,
                inner,
                param_outer_col,
                qual,
                fk_inner,
            } => {
                let (outer_p, outer_g) = self.refine(outer);
                let (inner_p, inner_g) = self.refine(inner);
                // A foreign-key / parameterized inner runs once per outer
                // tuple with tiny per-call cardinality: never buffered
                // (Figure 15). A non-FK inner that formed a group is closed
                // with a buffer like any other.
                let inner_p = if *fk_inner || param_outer_col.is_some() {
                    inner_p
                } else {
                    self.finalize(inner_p, inner_g)
                };
                let rebuild = |o: PlanNode| PlanNode::NestLoopJoin {
                    outer: Box::new(o),
                    inner: Box::new(inner_p.clone()),
                    param_outer_col: *param_outer_col,
                    qual: qual.clone(),
                    fk_inner: *fk_inner,
                };
                self.refine_join_side(node, outer_p, outer_g, rebuild)
            }

            PlanNode::HashJoin {
                probe,
                build,
                probe_key,
                build_key,
            } => {
                let (probe_p, probe_g) = self.refine(probe);
                let (build_p, build_g) = self.refine(build);
                // The blocking build phase interleaves HashBuild code with
                // the build child per row: close the build group with a
                // buffer when the pair overflows L1i (Figure 16).
                let build_p = self.close_before_blocking(build_p, build_g, OpKind::HashBuild);
                let rebuild = |p: PlanNode| PlanNode::HashJoin {
                    probe: Box::new(p),
                    build: Box::new(build_p.clone()),
                    probe_key: *probe_key,
                    build_key: *build_key,
                };
                self.refine_join_side(node, probe_p, probe_g, rebuild)
            }

            PlanNode::MergeJoin {
                left,
                right,
                left_key,
                right_key,
            } => {
                let (left_p, left_g) = self.refine(left);
                let (right_p, right_g) = self.refine(right);
                let my_kind = node.op_kind();
                // Try one group spanning the join and both pipelined inputs.
                let mut all: Group = vec![my_kind.clone()];
                let mut have_any = false;
                for g in [&left_g, &right_g].into_iter().flatten() {
                    all.extend(g.iter().cloned());
                    have_any = true;
                }
                if have_any && self.fits(&all) {
                    let p = PlanNode::MergeJoin {
                        left: Box::new(left_p),
                        right: Box::new(right_p),
                        left_key: *left_key,
                        right_key: *right_key,
                    };
                    return (p, Some(all));
                }
                // Otherwise close each input group separately (Figure 17:
                // buffer above the IndexScan; the Sort side is a boundary).
                let left_p = self.finalize(left_p, left_g);
                let right_p = self.finalize(right_p, right_g);
                let p = PlanNode::MergeJoin {
                    left: Box::new(left_p),
                    right: Box::new(right_p),
                    left_key: *left_key,
                    right_key: *right_key,
                };
                (p, Some(vec![my_kind]))
            }

            PlanNode::Buffer { input, size } => {
                // A hand-placed buffer: keep it, close anything below.
                let (child, _group) = self.refine(input);
                (
                    PlanNode::Buffer {
                        input: Box::new(child),
                        size: *size,
                    },
                    None,
                )
            }

            PlanNode::PushPipeline { .. } => {
                // A fused push pipeline executes as ONE code region: there
                // is nothing inside for a buffer to amortize (the fusion
                // already removed the per-tuple interleaving), so the
                // subtree is left untouched. Toward the parent the group
                // carries the fused footprint, so pull operators stacked
                // above a push pipeline buffer against its real size.
                (node.clone(), Some(vec![node.op_kind()]))
            }

            PlanNode::Exchange { input, workers } => {
                // The worker pipeline's code never interleaves with the
                // parent's (they run on different simulated cores), so
                // groups never span *down* the exchange edge: the subtree
                // is refined in isolation. The parent side is different —
                // the exchange's own gather/merge code runs in the
                // coordinator pipeline, so it opens a fresh group that
                // parents may join or buffer against, exactly like a leaf.
                // Without this, nothing above an exchange could ever be
                // buffered, and parallel plans would be stuck with their
                // full coordinator footprint per tuple.
                let (child, _group) = self.refine(input);
                (
                    PlanNode::Exchange {
                        input: Box::new(child),
                        workers: *workers,
                    },
                    Some(vec![OpKind::Exchange]),
                )
            }
        }
    }

    /// Shared logic for pipelined unary operators: merge with the child
    /// group when the union fits, otherwise buffer the child group.
    fn refine_unary(
        &self,
        node: &PlanNode,
        input: &PlanNode,
        rebuild: impl Fn(PlanNode) -> PlanNode,
    ) -> (PlanNode, Option<Group>) {
        let (child, child_group) = self.refine(input);
        self.refine_join_side(node, child, child_group, rebuild)
    }

    /// Merge `node` with the group coming from its pipelined input, or close
    /// that group with a buffer. Shared by unary operators and the pipelined
    /// side of joins.
    fn refine_join_side(
        &self,
        node: &PlanNode,
        child: PlanNode,
        child_group: Option<Group>,
        rebuild: impl Fn(PlanNode) -> PlanNode,
    ) -> (PlanNode, Option<Group>) {
        let my_kind = node.op_kind();
        match child_group {
            Some(g) => {
                let mut merged: Group = vec![my_kind.clone()];
                merged.extend(g.iter().cloned());
                if self.fits(&merged) {
                    (rebuild(child), Some(merged))
                } else {
                    let child = self.finalize(child, Some(g));
                    (rebuild(child), Some(vec![my_kind]))
                }
            }
            None => (rebuild(child), Some(vec![my_kind])),
        }
    }

    /// Close a child group feeding a blocking phase: insert a buffer only
    /// when the pair (child group + blocking code + buffer) overflows L1i
    /// and the child produces enough rows to amortize it.
    fn close_before_blocking(
        &self,
        child: PlanNode,
        child_group: Option<Group>,
        blocking: OpKind,
    ) -> PlanNode {
        match child_group {
            None => child,
            Some(g) => {
                let mut pair: Group = vec![blocking];
                pair.extend(g.iter().cloned());
                if self.fits(&pair) || !self.above_threshold(&child) {
                    child
                } else {
                    self.buffer(child)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::{AggFunc, AggSpec, IndexMode};
    use bufferdb_index::BTreeIndex;
    use bufferdb_storage::{IndexDef, TableBuilder};
    use bufferdb_types::{DataType, Datum, Field, Schema, Tuple};

    /// A catalog with a biggish "lineitem" and an indexed "orders".
    fn catalog() -> Catalog {
        let c = Catalog::new();
        let mut li = TableBuilder::new(
            "lineitem",
            Schema::new(vec![
                Field::new("l_orderkey", DataType::Int),
                Field::new("l_quantity", DataType::Int),
            ]),
        );
        for i in 0..10_000 {
            li.push(Tuple::new(vec![Datum::Int(i / 4), Datum::Int(i % 50)]));
        }
        c.add_table(li);
        let mut orders = TableBuilder::new(
            "orders",
            Schema::new(vec![Field::new("o_orderkey", DataType::Int)]),
        );
        let mut btree = BTreeIndex::new();
        for i in 0..2500 {
            orders.push(Tuple::new(vec![Datum::Int(i)]));
            btree.insert(i, i as u32);
        }
        c.add_table(orders);
        c.add_index(IndexDef {
            name: "orders_pkey".into(),
            table: "orders".into(),
            key_column: 0,
            btree,
        });
        c
    }

    fn scan(pred: bool) -> PlanNode {
        PlanNode::SeqScan {
            table: "lineitem".into(),
            predicate: pred.then(|| Expr::col(1).le(Expr::lit(45))),
            projection: None,
        }
    }

    fn agg_q1() -> Vec<AggSpec> {
        vec![
            AggSpec::new(AggFunc::Sum, Expr::col(1), "s"),
            AggSpec::new(AggFunc::Avg, Expr::col(1), "a"),
            AggSpec::count_star("n"),
        ]
    }

    #[test]
    fn query1_gets_a_buffer() {
        // Scan-with-pred (13.2K) + SUM/AVG/COUNT agg => > 16K: buffer added.
        let c = catalog();
        let plan = PlanNode::Aggregate {
            input: Box::new(scan(true)),
            group_by: vec![],
            aggs: agg_q1(),
        };
        let refined = refine_plan(&plan, &c, &RefineConfig::default());
        assert_eq!(refined.buffer_count(), 1);
        // Buffer sits directly above the scan.
        let PlanNode::Aggregate { input, .. } = &refined else {
            panic!()
        };
        assert!(matches!(**input, PlanNode::Buffer { .. }));
    }

    #[test]
    fn query2_gets_no_buffer() {
        // Scan-with-pred + COUNT(*) => ~15K < 16K: same group, no buffer.
        let c = catalog();
        let plan = PlanNode::Aggregate {
            input: Box::new(scan(true)),
            group_by: vec![],
            aggs: vec![AggSpec::count_star("n")],
        };
        let refined = refine_plan(&plan, &c, &RefineConfig::default());
        assert_eq!(refined.buffer_count(), 0);
    }

    #[test]
    fn root_is_never_buffered() {
        let c = catalog();
        let refined = refine_plan(&scan(true), &c, &RefineConfig::default());
        assert!(matches!(refined, PlanNode::SeqScan { .. }));
    }

    #[test]
    fn low_cardinality_scan_is_not_buffered() {
        let c = catalog();
        // Selective predicate: quantity <= 0 matches ~1/50 of rows… use an
        // impossible one via threshold instead: crank the threshold up.
        let cfg = RefineConfig {
            cardinality_threshold: 1e12,
            ..Default::default()
        };
        let plan = PlanNode::Aggregate {
            input: Box::new(scan(true)),
            group_by: vec![],
            aggs: agg_q1(),
        };
        assert_eq!(refine_plan(&plan, &c, &cfg).buffer_count(), 0);
    }

    #[test]
    fn fk_nestloop_matches_figure15() {
        // Agg over NestLoop(outer=scan lineitem, inner=IndexScan orders):
        // buffer above the outer scan only; none above the FK inner; agg
        // merges with the nestloop group.
        let c = catalog();
        let plan = PlanNode::Aggregate {
            input: Box::new(PlanNode::NestLoopJoin {
                outer: Box::new(scan(true)),
                inner: Box::new(PlanNode::IndexScan {
                    index: "orders_pkey".into(),
                    mode: IndexMode::LookupParam,
                }),
                param_outer_col: Some(0),
                qual: None,
                fk_inner: true,
            }),
            group_by: vec![],
            aggs: agg_q1(),
        };
        let refined = refine_plan(&plan, &c, &RefineConfig::default());
        assert_eq!(refined.buffer_count(), 1);
        let PlanNode::Aggregate { input, .. } = &refined else {
            panic!()
        };
        let PlanNode::NestLoopJoin { outer, inner, .. } = &**input else {
            panic!("agg must merge with the join group, not buffer it: {refined:?}")
        };
        assert!(
            matches!(**outer, PlanNode::Buffer { .. }),
            "outer scan buffered"
        );
        assert!(
            matches!(**inner, PlanNode::IndexScan { .. }),
            "inner not buffered"
        );
    }

    #[test]
    fn hashjoin_matches_figure16() {
        // Buffers above both the probe scan and the build scan.
        let c = catalog();
        let plan = PlanNode::Aggregate {
            input: Box::new(PlanNode::HashJoin {
                probe: Box::new(scan(true)),
                build: Box::new(PlanNode::SeqScan {
                    table: "orders".into(),
                    predicate: None,
                    projection: None,
                }),
                probe_key: 0,
                build_key: 0,
            }),
            group_by: vec![],
            aggs: agg_q1(),
        };
        let refined = refine_plan(&plan, &c, &RefineConfig::default());
        assert_eq!(refined.buffer_count(), 2, "{refined:#?}");
        let PlanNode::Aggregate { input, .. } = &refined else {
            panic!()
        };
        let PlanNode::HashJoin { probe, build, .. } = &**input else {
            panic!()
        };
        assert!(matches!(**probe, PlanNode::Buffer { .. }));
        assert!(matches!(**build, PlanNode::Buffer { .. }));
    }

    #[test]
    fn mergejoin_matches_figure17() {
        // MergeJoin(left=Sort(scan lineitem), right=IndexScan range orders):
        // buffer below the sort (scan 13.2K + sort 14K > 16K), buffer above
        // the index scan, no buffer above the sort itself.
        let c = catalog();
        let plan = PlanNode::Aggregate {
            input: Box::new(PlanNode::MergeJoin {
                left: Box::new(PlanNode::Sort {
                    input: Box::new(scan(true)),
                    keys: vec![(0, true)],
                }),
                right: Box::new(PlanNode::IndexScan {
                    index: "orders_pkey".into(),
                    mode: IndexMode::Range { lo: None, hi: None },
                }),
                left_key: 0,
                right_key: 0,
            }),
            group_by: vec![],
            aggs: agg_q1(),
        };
        let refined = refine_plan(&plan, &c, &RefineConfig::default());
        assert_eq!(refined.buffer_count(), 2, "{refined:#?}");
        let PlanNode::Aggregate { input, .. } = &refined else {
            panic!()
        };
        let PlanNode::MergeJoin { left, right, .. } = &**input else {
            panic!("no buffer above merge join (agg merges): {refined:#?}")
        };
        let PlanNode::Sort { input: sort_in, .. } = &**left else {
            panic!()
        };
        assert!(
            matches!(**sort_in, PlanNode::Buffer { .. }),
            "buffer below sort"
        );
        assert!(
            matches!(**right, PlanNode::Buffer { .. }),
            "buffer above index scan"
        );
    }

    #[test]
    fn refined_plan_uses_configured_buffer_size() {
        let c = catalog();
        let cfg = RefineConfig {
            buffer_size: 777,
            ..Default::default()
        };
        let plan = PlanNode::Aggregate {
            input: Box::new(scan(true)),
            group_by: vec![],
            aggs: agg_q1(),
        };
        let refined = refine_plan(&plan, &c, &cfg);
        let PlanNode::Aggregate { input, .. } = &refined else {
            panic!()
        };
        let PlanNode::Buffer { size, .. } = &**input else {
            panic!()
        };
        assert_eq!(*size, 777);
    }

    #[test]
    fn hand_placed_buffers_are_preserved() {
        let c = catalog();
        let plan = PlanNode::Buffer {
            input: Box::new(scan(true)),
            size: 64,
        };
        let refined = refine_plan(&plan, &c, &RefineConfig::default());
        assert_eq!(refined.buffer_count(), 1);
    }

    #[test]
    fn bigger_l1i_removes_the_buffer() {
        // With a 32 KB L1i, Query 1 fits in one group: no buffering needed.
        let c = catalog();
        let cfg = RefineConfig {
            l1i_capacity: 32 * 1024,
            ..Default::default()
        };
        let plan = PlanNode::Aggregate {
            input: Box::new(scan(true)),
            group_by: vec![],
            aggs: agg_q1(),
        };
        assert_eq!(refine_plan(&plan, &c, &cfg).buffer_count(), 0);
    }
}
