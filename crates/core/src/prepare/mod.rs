//! Prepared queries: the [`Database`] facade, the shared [`PlanCache`], and
//! feedback-driven adaptive refinement.
//!
//! ```ignore
//! let db = Database::open(catalog, MachineConfig::pentium4_like());
//! let q = db.prepare(&plan)?;       // parallelize + refine once, cached
//! let out = q.execute();           // repeated executions skip optimization
//! let out = q.execute_adaptive();  // profiled; re-refines on divergence
//! ```
//!
//! [`prepare_physical_plan`] is the *single* logical→physical path —
//! parallelization (when the worker budget warrants it) strictly before
//! refinement, so exchange boundaries are in place when execution groups
//! form. Every caller (the facade, the bench harness, examples) routes
//! through it; ad-hoc `parallelize_plan` + `refine_plan` glue is gone.

pub mod adapt;
pub mod fingerprint;
pub mod plancache;
pub mod reuse;

pub use adapt::{adapt_plan, AdaptConfig, AdaptDecision, AdaptState, PendingValidation};
pub use fingerprint::{
    fingerprint_plan, fingerprint_plan_with_mode, subtree_hash, PlanFingerprint,
};
pub use plancache::{
    AdaptStats, CacheEntry, CacheStats, PlanCache, DEFAULT_CACHE_CAPACITY, DEFAULT_CACHE_SHARDS,
};
pub use reuse::{
    eligible_subtrees, reuse_key, splice_reused, ReuseCache, ReuseHandle, ReuseStats,
    DEFAULT_REUSE_BUDGET_BYTES,
};

use crate::exec::QueryOutcome;
use crate::obs::prom::PromText;
use crate::obs::trace::TraceEvent;
use crate::optimizer::{choose_pipeline_modes, ExecModePolicy};
use crate::parallel::parallelize_plan;
use crate::plan::PlanNode;
use crate::refine::{refine_plan, RefineConfig};
use crate::session::{QueryOpts, Session};
use bufferdb_cachesim::MachineConfig;
use bufferdb_storage::{Catalog, FnSysTable};
use bufferdb_types::{DataType, Datum, Field, Result, Schema, Tuple};
use std::sync::Arc;
use std::time::Duration;

/// A prepared physical plan: the parallelized base kept for adaptive
/// re-refinement, plus the refined plan executions actually run.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedPlan {
    /// Parallelized, pre-refinement plan.
    pub base: PlanNode,
    /// Refined physical plan.
    pub physical: PlanNode,
}

/// The canonical logical→physical pipeline: parallelize (only when
/// `workers > 1` — the exchange rewrite is not free at one worker), then
/// refine under the default [`ExecModePolicy::BufferedPull`]. Returns both
/// stages; use [`prepare_physical_plan`] when only the executable plan is
/// needed, or [`prepare_plan_parts_with_mode`] to pick the executor
/// backend per pipeline.
pub fn prepare_plan_parts(
    plan: &PlanNode,
    catalog: &Catalog,
    refine_cfg: &RefineConfig,
    workers: usize,
) -> Result<PreparedPlan> {
    prepare_plan_parts_with_mode(
        plan,
        catalog,
        refine_cfg,
        workers,
        ExecModePolicy::BufferedPull,
    )
}

/// [`prepare_plan_parts`] with an explicit executor-mode policy:
/// parallelize, then mark pipelines for push execution per `mode`
/// ([`choose_pipeline_modes`]), then refine — except under
/// [`ExecModePolicy::Pull`], whose whole point is the unbuffered baseline,
/// so refinement is skipped. Mode selection runs *before* refinement so
/// the refiner sees fused groups as opaque single-footprint operators and
/// never buffers inside them.
pub fn prepare_plan_parts_with_mode(
    plan: &PlanNode,
    catalog: &Catalog,
    refine_cfg: &RefineConfig,
    workers: usize,
    mode: ExecModePolicy,
) -> Result<PreparedPlan> {
    let base = if workers > 1 {
        parallelize_plan(plan, catalog, workers)?
    } else {
        plan.clone()
    };
    let base = choose_pipeline_modes(&base, refine_cfg, mode);
    let physical = if mode.refines() {
        refine_plan(&base, catalog, refine_cfg)
    } else {
        base.clone()
    };
    Ok(PreparedPlan { base, physical })
}

/// [`prepare_plan_parts`], returning just the executable physical plan.
pub fn prepare_physical_plan(
    plan: &PlanNode,
    catalog: &Catalog,
    refine_cfg: &RefineConfig,
    workers: usize,
) -> Result<PlanNode> {
    Ok(prepare_plan_parts(plan, catalog, refine_cfg, workers)?.physical)
}

/// The top-level facade: a [`Session`] plus a shared [`PlanCache`] and the
/// adaptive-refinement configuration.
///
/// `Database` wraps rather than replaces `Session`: cancellation, fault
/// injection, and default thread/timeout settings all live on the session
/// and apply to prepared executions unchanged.
pub struct Database {
    session: Session,
    cache: Arc<PlanCache>,
    reuse: Arc<ReuseCache>,
    refine_cfg: RefineConfig,
    adapt_cfg: AdaptConfig,
    mode: ExecModePolicy,
}

impl Database {
    /// Open a database over `catalog` simulating `cfg`, with a
    /// default-capacity plan cache and default refinement/adaptation
    /// configuration.
    pub fn open(catalog: Catalog, cfg: MachineConfig) -> Self {
        Database {
            session: Session::new(catalog, cfg),
            cache: Arc::new(PlanCache::default()),
            reuse: Arc::new(ReuseCache::default()),
            refine_cfg: RefineConfig::default(),
            adapt_cfg: AdaptConfig::default(),
            mode: ExecModePolicy::default(),
        }
    }

    /// Replace the subplan reuse cache (e.g. a different byte budget, or a
    /// cache shared with another database over the same catalog).
    pub fn with_reuse_cache(mut self, reuse: Arc<ReuseCache>) -> Self {
        self.reuse = reuse;
        self
    }

    /// The subplan reuse cache (inspect [`ReuseCache::stats`] for hit rates
    /// and modeled cycles saved).
    pub fn reuse_cache(&self) -> &Arc<ReuseCache> {
        &self.reuse
    }

    /// Replace the executor-mode policy used by [`Database::prepare`].
    /// The mode is part of the plan fingerprint, so databases sharing one
    /// cache never serve each other plans prepared for another backend.
    pub fn with_exec_mode(mut self, mode: ExecModePolicy) -> Self {
        self.mode = mode;
        self
    }

    /// The executor-mode policy prepares run under.
    pub fn exec_mode(&self) -> ExecModePolicy {
        self.mode
    }

    /// Replace the plan cache (e.g. a smaller capacity for tests, or a
    /// cache shared with another database over the same catalog semantics).
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Replace the refinement configuration used by [`Database::prepare`].
    pub fn with_refine_config(mut self, cfg: RefineConfig) -> Self {
        self.refine_cfg = cfg;
        self
    }

    /// Replace the adaptive-refinement configuration.
    pub fn with_adapt_config(mut self, cfg: AdaptConfig) -> Self {
        self.adapt_cfg = cfg;
        self
    }

    /// The underlying session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The catalog queries run against.
    pub fn catalog(&self) -> &Catalog {
        self.session.catalog()
    }

    /// The shared plan cache (inspect [`PlanCache::stats`] for hit rates).
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The refinement configuration prepares run under.
    pub fn refine_config(&self) -> &RefineConfig {
        &self.refine_cfg
    }

    /// Register this database's `sys.*` introspection tables in its own
    /// catalog:
    ///
    /// * `sys.plan_cache` — one row per resident [`CacheEntry`]
    ///   (fingerprint, stats epoch, adaptive generation, lookup hits, and
    ///   the physical plan's buffer-operator count);
    /// * `sys.reuse_cache` — one row per live materialized intermediate
    ///   (key, rows, exact bytes, replay hits, modeled recompute/replay
    ///   cycles and the benefit gate).
    ///
    /// Providers capture `Arc` handles to the caches, snapshot under their
    /// short internal locks, and run as zero-footprint
    /// [`PlanNode::SysScan`] leaves — introspecting the caches never adds
    /// modeled cycles or perturbs hit counters (registration bumps the
    /// stats epoch once, like any other catalog change).
    pub fn install_sys_tables(&self) {
        let plan_schema = Schema::new(vec![
            Field::new("fingerprint", DataType::Str),
            Field::new("epoch", DataType::Int),
            Field::new("generation", DataType::Int),
            Field::new("hits", DataType::Int),
            Field::new("buffers", DataType::Int),
        ])
        .into_ref();
        let cache = Arc::clone(&self.cache);
        self.catalog().register_sys_table(
            "sys.plan_cache",
            Arc::new(FnSysTable::new(plan_schema, move || {
                cache
                    .entries()
                    .iter()
                    .map(|e| {
                        Tuple::new(vec![
                            Datum::str(format!("{:#018x}", e.fingerprint().raw())),
                            Datum::Int(e.epoch() as i64),
                            Datum::Int(e.generation() as i64),
                            Datum::Int(e.hits() as i64),
                            Datum::Int(e.physical_plan().buffer_count() as i64),
                        ])
                    })
                    .collect()
            })),
        );

        let reuse_schema = Schema::new(vec![
            Field::new("key", DataType::Str),
            Field::new("rows", DataType::Int),
            Field::new("bytes", DataType::Int),
            Field::new("hits", DataType::Int),
            Field::new("recompute_cycles", DataType::Int),
            Field::new("replay_cycles", DataType::Int),
            Field::new("benefit_cycles", DataType::Int),
            Field::new("beneficial", DataType::Bool),
        ])
        .into_ref();
        let reuse = Arc::clone(&self.reuse);
        self.catalog().register_sys_table(
            "sys.reuse_cache",
            Arc::new(FnSysTable::new(reuse_schema, move || {
                reuse
                    .entries()
                    .iter()
                    .map(|h| {
                        Tuple::new(vec![
                            Datum::str(format!("{:#018x}", h.key())),
                            Datum::Int(h.row_count() as i64),
                            Datum::Int(h.bytes() as i64),
                            Datum::Int(h.hits() as i64),
                            Datum::Int(h.recompute_cycles() as i64),
                            Datum::Int(h.replay_cycles() as i64),
                            Datum::Int(
                                h.recompute_cycles().saturating_sub(h.replay_cycles()) as i64
                            ),
                            Datum::Bool(h.beneficial()),
                        ])
                    })
                    .collect()
            })),
        );
    }

    /// Render the plan-cache, reuse-cache, and adaptive-loop counters in
    /// Prometheus text exposition under `prefix` (e.g.
    /// `bufferdb_plancache_hits_total`). Shares the [`PromText`] registry
    /// conventions with the traffic observatory's series dump and
    /// [`crate::server::virt::VirtualServer::prometheus_text`], so sections
    /// concatenate into one well-formed scrape body.
    pub fn prometheus_text(&self, prefix: &str) -> String {
        let mut p = PromText::new();
        let cs = self.cache.stats();
        let c = |n: &str| format!("{prefix}_plancache_{n}");
        p.counter(&c("hits_total"), "Plan-cache lookup hits.", cs.hits as f64);
        p.counter(
            &c("misses_total"),
            "Plan-cache lookup misses.",
            cs.misses as f64,
        );
        p.counter(
            &c("evictions_total"),
            "Plan-cache capacity evictions.",
            cs.evictions as f64,
        );
        p.counter(
            &c("invalidations_total"),
            "Plan-cache stale-epoch invalidations.",
            cs.invalidations as f64,
        );
        p.gauge(
            &c("entries"),
            "Resident plan-cache entries.",
            cs.entries as f64,
        );
        let ad = self.cache.adapt_stats();
        let a = |n: &str| format!("{prefix}_adapt_{n}");
        p.counter(
            &a("installs_total"),
            "Adapted plans installed.",
            ad.installs as f64,
        );
        p.counter(
            &a("validations_total"),
            "Adapted plans validated.",
            ad.validations as f64,
        );
        p.counter(
            &a("rollbacks_total"),
            "Adapted plans rolled back.",
            ad.rollbacks as f64,
        );
        p.counter(
            &a("freezes_total"),
            "Plan entries frozen.",
            ad.freezes as f64,
        );
        let rs = self.reuse.stats();
        let r = |n: &str| format!("{prefix}_reuse_{n}");
        p.counter(
            &r("lookups_total"),
            "Reuse-cache subtree lookups.",
            rs.lookups as f64,
        );
        p.counter(&r("hits_total"), "Reuse-cache splice hits.", rs.hits as f64);
        p.counter(
            &r("installs_total"),
            "Reuse-cache installs.",
            rs.installs as f64,
        );
        p.counter(
            &r("evictions_total"),
            "Reuse-cache benefit-ranked evictions.",
            rs.evictions as f64,
        );
        p.gauge(
            &r("entries"),
            "Live reuse-cache entries.",
            rs.entries as f64,
        );
        p.gauge(&r("bytes"), "Live reuse-cache bytes.", rs.bytes as f64);
        p.counter(
            &r("cycles_saved_total"),
            "Modeled cycles saved by replaying cached intermediates.",
            rs.cycles_saved as f64,
        );
        p.finish()
    }

    /// Set the default worker budget for subsequent prepares/executions.
    /// Changing it re-keys future fingerprints (a plan parallelized for 2
    /// workers is not the plan for 8).
    pub fn set_threads(&mut self, threads: usize) {
        self.session.set_threads(threads);
    }

    /// Set (or clear) the session's default per-query timeout.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.session.set_timeout(timeout);
    }

    /// Feed one profiled outcome back into `entry`'s adaptive loop: the
    /// deferred half of [`PreparedQuery::execute_adaptive_opts`], for
    /// callers that execute the cached plan elsewhere (the server admission
    /// path runs `executed` on a [`crate::server::virt::VirtualServer`] and only
    /// sees the profile at completion time). Gated on a **clean** profiled
    /// outcome — a failed, cancelled, or panicked execution never modifies
    /// the cached plan. Adaptivity instants are appended to `out`'s trace
    /// when one was recorded.
    pub fn absorb_feedback(
        &self,
        entry: &Arc<CacheEntry>,
        executed: &PlanNode,
        out: &mut QueryOutcome,
    ) {
        // Adaptation moves buffer operators; under a policy that did not
        // ask for refiner-placed buffers the cached plan is pinned.
        if !self.mode.adapts() {
            return;
        }
        // Instants for the flight recorder: collected while the profile
        // borrow is live, recorded onto the trace afterwards.
        let mut instants: Vec<TraceEvent> = Vec::new();
        if let (true, Some(profile)) = (out.is_ok(), out.profile()) {
            let mut state = entry.adapt_state();
            let had_pending = state.pending_validation.is_some();
            let decision = adapt_plan(
                entry.base_plan(),
                executed,
                profile,
                self.catalog(),
                &self.refine_cfg,
                &self.adapt_cfg,
                &mut state,
            );
            if had_pending {
                self.cache.note_adapt_validate();
                instants.push(TraceEvent::AdaptValidate {
                    regressed: decision.rolled_back,
                });
            }
            if decision.rolled_back {
                self.cache.note_adapt_rollback();
                instants.push(TraceEvent::AdaptRollback);
                if state.frozen {
                    self.cache.note_adapt_freeze();
                    instants.push(TraceEvent::AdaptFreeze);
                }
            }
            match decision.new_plan {
                Some(new_plan) => {
                    self.cache.note_adapt_install();
                    instants.push(TraceEvent::AdaptInstall {
                        generation: state.generation,
                        buffers: new_plan.buffer_count() as u64,
                    });
                    entry.install(new_plan, state);
                }
                None => entry.store_adapt_state(state),
            }
        }
        if let Some(trace) = out.trace_mut() {
            for ev in instants {
                trace.record_instant(ev);
            }
        }
    }

    /// Prepare `plan` under default [`QueryOpts`]: on a cache hit the
    /// stored physical plan is reused outright; on a miss the plan is
    /// parallelized + refined and cached. See [`Database::prepare_opts`].
    pub fn prepare(&self, plan: &PlanNode) -> Result<PreparedQuery<'_>> {
        self.prepare_opts(plan, &QueryOpts::new())
    }

    /// Prepare `plan` under explicit [`QueryOpts`].
    ///
    /// When `opts.reuse_policy()` splices (the default), the logical plan
    /// is first rewritten against the subplan [`ReuseCache`]: any subtree
    /// whose output is cached for the current stats epoch — and whose
    /// replay is modeled cheaper than recompute — is replaced by a
    /// [`PlanNode::ReusedScan`] leaf. The fingerprint is computed over the
    /// *spliced* plan, so the plan cache automatically keys reused and
    /// recomputing variants separately.
    ///
    /// Also sweeps plan-cache and reuse-cache entries whose stats epoch
    /// went stale (they are already unreachable — the epoch is part of
    /// both keys — this reclaims their memory).
    pub fn prepare_opts(&self, plan: &PlanNode, opts: &QueryOpts) -> Result<PreparedQuery<'_>> {
        let epoch = self.catalog().stats_epoch();
        self.cache.evict_stale(epoch);
        self.reuse.sweep_epoch(epoch);
        let logical = plan.clone();
        let plan = if opts.reuse_policy().splices() {
            reuse::splice_reused(plan, &self.reuse, self.session.machine(), epoch).0
        } else {
            plan.clone()
        };
        let threads = self.session.threads();
        let fp = fingerprint::fingerprint_plan_with_mode(
            &plan,
            self.session.machine(),
            threads,
            epoch,
            &self.refine_cfg,
            self.mode,
        );
        let entry = match self.cache.lookup(fp) {
            Some(entry) => entry,
            None => {
                let parts = prepare_plan_parts_with_mode(
                    &plan,
                    self.catalog(),
                    &self.refine_cfg,
                    threads,
                    self.mode,
                )?;
                self.cache.insert(fp, epoch, parts.base, parts.physical)
            }
        };
        Ok(PreparedQuery {
            db: self,
            entry,
            logical,
        })
    }

    /// Harvest `plan`'s eligible materialization points into the reuse
    /// cache: each hash-join build input, aggregate, and materialize node
    /// of the *logical* plan is run standalone (under `opts` minus
    /// profiling/tracing — so armed faults, timeouts, and cancellation
    /// apply to the producing runs exactly as they would to a query), its
    /// modeled recompute cost read off the run, its replay cost measured
    /// by actually driving a [`crate::exec::reused::ReusedScanOp`] over a
    /// scratch machine, and the pair offered to [`ReuseCache::install`].
    ///
    /// Correctness gates, in order:
    /// * `opts.reuse_policy()` must install (default [`crate::session::ReusePolicy::Enabled`]);
    /// * a failed, cancelled, or faulted producing run installs nothing;
    /// * a stats-epoch bump between the start of the harvest and the end
    ///   of a producing run discards that run's rows (they reflect the old
    ///   catalog);
    /// * the cache itself refuses entries over budget or whose replay does
    ///   not beat recompute.
    ///
    /// Returns the number of entries installed. Installation is explicit —
    /// executing a prepared query never grows the cache behind the
    /// caller's back; call this after (or instead of) executions whose
    /// intermediates are worth keeping.
    pub fn harvest_reuse(&self, plan: &PlanNode, opts: &QueryOpts) -> usize {
        if !opts.reuse_policy().installs() || self.reuse.budget_bytes() == 0 {
            return 0;
        }
        let machine = self.session.machine().clone();
        let epoch0 = self.catalog().stats_epoch();
        let run_opts = opts.clone().profile(false).trace(false);
        let mut installed = 0;
        for sub in reuse::eligible_subtrees(plan) {
            let key = reuse::reuse_key(sub, &machine, epoch0);
            if self.reuse.contains(key) || self.reuse.is_refused(key) {
                continue;
            }
            let Ok(schema) = sub.output_schema(self.catalog()) else {
                continue;
            };
            let out = self.session.query(sub, &run_opts);
            if !out.is_ok() {
                // Fault, cancel, or error mid-produce: never install.
                self.reuse.note_install_failure();
                continue;
            }
            if self.catalog().stats_epoch() != epoch0 {
                // Stats moved mid-stream: the rows reflect the old catalog.
                self.reuse.note_install_failure();
                continue;
            }
            let recompute = out.stats().breakdown.total_cycles;
            let rows = out.rows().to_vec();
            let replay = measure_replay_cycles(&schema, rows.clone(), &machine);
            if self
                .reuse
                .install(key, epoch0, schema, rows, recompute, replay)
                .is_some()
            {
                installed += 1;
            }
        }
        installed
    }
}

/// Modeled cycles one full replay of `rows` costs: build a
/// [`crate::exec::reused::ReusedScanOp`] over a detached handle and drive
/// it on a scratch machine. This is a measurement, not an estimate — the
/// exact operator the splice would run, over the exact rows.
fn measure_replay_cycles(
    schema: &bufferdb_types::SchemaRef,
    rows: Vec<bufferdb_types::Tuple>,
    cfg: &MachineConfig,
) -> u64 {
    use crate::exec::reused::ReusedScanOp;
    use crate::exec::Operator;
    let handle = reuse::ReuseHandle::scratch(schema.clone(), rows);
    let mut fm = crate::footprint::FootprintModel::new();
    let mut op = ReusedScanOp::new(&mut fm, handle);
    let mut ctx = crate::context::ExecContext::new(cfg.clone());
    let drove = (|| -> Result<()> {
        op.open(&mut ctx)?;
        while op.next(&mut ctx)?.is_some() {}
        op.close(&mut ctx)
    })();
    if drove.is_err() {
        // Replay cannot even be measured: report it as never profitable.
        return u64::MAX;
    }
    let counters = ctx.machine.snapshot();
    ctx.machine.cycles_for(&counters)
}

/// A handle on one cached prepared plan, ready for repeated execution.
///
/// The handle stays valid even if the cache evicts the entry (it holds the
/// entry `Arc`); adaptation performed through any handle is visible to all
/// handles sharing the entry.
pub struct PreparedQuery<'db> {
    db: &'db Database,
    entry: Arc<CacheEntry>,
    /// The original logical plan as handed to `prepare_opts`, before any
    /// reuse splice — the tree [`Database::harvest_reuse`] walks.
    logical: PlanNode,
}

impl PreparedQuery<'_> {
    /// Execute the cached physical plan with session defaults, no
    /// profiling, no adaptation.
    pub fn execute(&self) -> QueryOutcome {
        self.execute_opts(&QueryOpts::new())
    }

    /// Execute the cached physical plan under explicit [`QueryOpts`].
    pub fn execute_opts(&self, opts: &QueryOpts) -> QueryOutcome {
        let plan = self.entry.physical_plan();
        self.db.session.query(&plan, opts)
    }

    /// Execute with profiling and feed the measurements back: when observed
    /// group miss rates or cardinalities diverge from the refiner's
    /// predictions, the cached plan is re-refined in place (visible to
    /// every holder of this prepared query; see [`adapt_plan`]).
    ///
    /// Adaptation is gated on a **clean** profiled outcome — a failed,
    /// cancelled, or panicked execution returns its outcome untouched and
    /// never modifies the cached plan.
    pub fn execute_adaptive(&self) -> QueryOutcome {
        self.execute_adaptive_opts(&QueryOpts::new())
    }

    /// [`PreparedQuery::execute_adaptive`] with explicit options
    /// (profiling is forced on — the feedback needs the measurements).
    pub fn execute_adaptive_opts(&self, opts: &QueryOpts) -> QueryOutcome {
        let plan = self.entry.physical_plan();
        let mut out = self.db.session.query(&plan, &opts.clone().profile(true));
        self.db.absorb_feedback(&self.entry, &plan, &mut out);
        out
    }

    /// Snapshot of the physical plan the next execution will run.
    pub fn plan(&self) -> PlanNode {
        self.entry.physical_plan()
    }

    /// How many times adaptation has replaced this entry's plan.
    pub fn generation(&self) -> u64 {
        self.entry.generation()
    }

    /// The cache entry backing this handle.
    pub fn entry(&self) -> &Arc<CacheEntry> {
        &self.entry
    }

    /// The fingerprint this query is cached under.
    pub fn fingerprint(&self) -> PlanFingerprint {
        self.entry.fingerprint()
    }

    /// The original logical plan (pre-splice), as handed to prepare.
    pub fn logical_plan(&self) -> &PlanNode {
        &self.logical
    }

    /// Harvest this query's eligible subtrees into the reuse cache — a
    /// convenience for [`Database::harvest_reuse`] over the logical plan.
    pub fn harvest_reuse(&self, opts: &QueryOpts) -> usize {
        self.db.harvest_reuse(&self.logical, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bufferdb_storage::TableBuilder;
    use bufferdb_types::{DataType, Datum, Field, Schema, Tuple};

    fn catalog(rows: i64) -> Catalog {
        let c = Catalog::new();
        let mut b = TableBuilder::new("t", Schema::new(vec![Field::new("k", DataType::Int)]));
        for i in 0..rows {
            b.push(Tuple::new(vec![Datum::Int(i)]));
        }
        c.add_table(b);
        c
    }

    fn scan() -> PlanNode {
        PlanNode::SeqScan {
            table: "t".into(),
            predicate: None,
            projection: None,
        }
    }

    #[test]
    fn prepare_twice_hits_the_cache() {
        let db = Database::open(catalog(100), MachineConfig::pentium4_like());
        let a = db.prepare(&scan()).unwrap();
        let b = db.prepare(&scan()).unwrap();
        assert!(Arc::ptr_eq(a.entry(), b.entry()));
        let s = db.plan_cache().stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn prepared_execution_returns_rows() {
        let db = Database::open(catalog(100), MachineConfig::pentium4_like());
        let q = db.prepare(&scan()).unwrap();
        let out = q.execute();
        assert!(out.is_ok());
        assert_eq!(out.rows().len(), 100);
    }

    #[test]
    fn stats_epoch_bump_invalidates() {
        let db = Database::open(catalog(100), MachineConfig::pentium4_like());
        let a = db.prepare(&scan()).unwrap();
        db.catalog().bump_stats_epoch();
        let b = db.prepare(&scan()).unwrap();
        assert!(!Arc::ptr_eq(a.entry(), b.entry()), "stale entry not reused");
        assert_eq!(db.plan_cache().stats().invalidations, 1);
    }

    #[test]
    fn thread_count_re_keys_the_cache() {
        let mut db = Database::open(catalog(100), MachineConfig::pentium4_like());
        let a = db.prepare(&scan()).unwrap().fingerprint();
        db.set_threads(4);
        let b = db.prepare(&scan()).unwrap().fingerprint();
        assert_ne!(a, b);
    }

    #[test]
    fn prepare_physical_plan_skips_exchange_at_one_worker() {
        let c = catalog(5000);
        let p = prepare_physical_plan(&scan(), &c, &RefineConfig::default(), 1).unwrap();
        assert!(!format!("{p:?}").contains("Exchange"));
        let p = prepare_physical_plan(&scan(), &c, &RefineConfig::default(), 4).unwrap();
        assert!(format!("{p:?}").contains("Exchange"));
    }
}
