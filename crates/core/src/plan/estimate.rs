//! Cardinality estimation — the "optimizer estimates" consumed by the plan
//! refinement algorithm (§6: "operators with small cardinality estimates are
//! unlikely to benefit from buffering").

use crate::expr::{CmpOp, Expr};
use crate::plan::{AggFunc, PlanNode};
use bufferdb_storage::Catalog;
use bufferdb_types::Datum;

/// Default selectivity for predicates we cannot interpolate (PostgreSQL's
/// inequality default).
const DEFAULT_SEL: f64 = 1.0 / 3.0;

/// Estimated output rows of `plan`. For the inner side of a parameterized
/// nested-loop join, this is the *per-rescan* estimate — matching PostgreSQL,
/// whose inner-path rows are per execution.
pub fn estimate_rows(plan: &PlanNode, catalog: &Catalog) -> f64 {
    match plan {
        PlanNode::SeqScan {
            table, predicate, ..
        } => {
            let Ok(t) = catalog.table(table) else {
                return 0.0;
            };
            let rows = t.stats().row_count as f64;
            match predicate {
                None => rows,
                Some(p) => rows * predicate_selectivity(p, table, catalog),
            }
        }
        PlanNode::IndexScan { index, mode } => {
            let Ok(idx) = catalog.index(index) else {
                return 0.0;
            };
            let Ok(t) = catalog.table(&idx.table) else {
                return 0.0;
            };
            match mode {
                // Per-rescan: a key lookup returns ~1 row (unique keys).
                crate::plan::IndexMode::LookupParam => 1.0,
                crate::plan::IndexMode::Range { lo, hi } => {
                    let rows = t.stats().row_count as f64;
                    let lo_sel = match lo {
                        None => 0.0,
                        Some(v) => t
                            .stats()
                            .estimate_le_selectivity(idx.key_column, &Datum::Int(*v)),
                    };
                    let hi_sel = match hi {
                        None => 1.0,
                        Some(v) => t
                            .stats()
                            .estimate_le_selectivity(idx.key_column, &Datum::Int(*v)),
                    };
                    rows * (hi_sel - lo_sel).max(0.0)
                }
            }
        }
        // A reused scan's cardinality is exact: the rows are already there.
        PlanNode::ReusedScan { handle } => handle.row_count() as f64,
        // Sys tables are tiny; the provider hint is best-effort.
        PlanNode::SysScan { table } => match catalog.sys_table(table) {
            Ok(p) => p.approx_rows() as f64,
            Err(_) => 0.0,
        },
        PlanNode::NestLoopJoin {
            outer,
            inner,
            fk_inner,
            ..
        } => {
            let o = estimate_rows(outer, catalog);
            if *fk_inner {
                o // one match per outer row
            } else {
                o * estimate_rows(inner, catalog).max(1.0) * 0.1
            }
        }
        // FK equi-joins: output ≈ the FK (probe/left) side.
        PlanNode::HashJoin { probe, .. } => estimate_rows(probe, catalog),
        PlanNode::MergeJoin { left, .. } => estimate_rows(left, catalog),
        PlanNode::Sort { input, .. }
        | PlanNode::Project { input, .. }
        | PlanNode::Buffer { input, .. }
        | PlanNode::Exchange { input, .. }
        | PlanNode::PushPipeline { input }
        | PlanNode::Materialize { input } => estimate_rows(input, catalog),
        PlanNode::Filter { input, .. } => estimate_rows(input, catalog) * DEFAULT_SEL,
        PlanNode::Limit { input, limit } => estimate_rows(input, catalog).min(*limit as f64),
        PlanNode::Aggregate {
            input, group_by, ..
        } => {
            if group_by.is_empty() {
                1.0
            } else {
                // Square-root heuristic for group count.
                estimate_rows(input, catalog).sqrt().max(1.0)
            }
        }
    }
}

/// Estimated selectivity of a scan predicate against `table`'s statistics.
/// Range comparisons over a column and a literal interpolate linearly; AND
/// multiplies; OR adds (capped); everything else falls back to the default.
pub fn predicate_selectivity(pred: &Expr, table: &str, catalog: &Catalog) -> f64 {
    let Ok(t) = catalog.table(table) else {
        return DEFAULT_SEL;
    };
    selectivity_rec(pred, t.stats())
}

fn selectivity_rec(pred: &Expr, stats: &bufferdb_storage::TableStats) -> f64 {
    match pred {
        Expr::And(a, b) => selectivity_rec(a, stats) * selectivity_rec(b, stats),
        Expr::Or(a, b) => {
            let (x, y) = (selectivity_rec(a, stats), selectivity_rec(b, stats));
            (x + y - x * y).min(1.0)
        }
        Expr::Not(a) => 1.0 - selectivity_rec(a, stats),
        Expr::Cmp { op, left, right } => match (&**left, &**right) {
            (Expr::Column(c), Expr::Literal(v)) => column_cmp_selectivity(*op, *c, v, stats),
            (Expr::Literal(v), Expr::Column(c)) => column_cmp_selectivity(flip(*op), *c, v, stats),
            _ => DEFAULT_SEL,
        },
        _ => DEFAULT_SEL,
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

fn column_cmp_selectivity(
    op: CmpOp,
    col: usize,
    v: &Datum,
    stats: &bufferdb_storage::TableStats,
) -> f64 {
    let le = stats.estimate_le_selectivity(col, v);
    match op {
        CmpOp::Le | CmpOp::Lt => le,
        CmpOp::Ge | CmpOp::Gt => 1.0 - le,
        CmpOp::Eq => {
            if stats.row_count == 0 {
                0.0
            } else {
                (1.0 / stats.row_count as f64).max(1e-9)
            }
        }
        CmpOp::Ne => 1.0 - 1.0 / stats.row_count.max(1) as f64,
    }
}

/// Whether the aggregate list contains expensive computed aggregates — used
/// by `explain` annotations only.
pub fn has_computed_aggs(aggs: &[crate::plan::AggSpec]) -> bool {
    aggs.iter()
        .any(|a| matches!(a.func, AggFunc::Sum | AggFunc::Avg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{AggSpec, IndexMode};
    use bufferdb_storage::TableBuilder;
    use bufferdb_types::{DataType, Field, Schema, Tuple};

    fn catalog(n: i64) -> Catalog {
        let c = Catalog::new();
        let mut b = TableBuilder::new("t", Schema::new(vec![Field::new("k", DataType::Int)]));
        for i in 0..n {
            b.push(Tuple::new(vec![Datum::Int(i)]));
        }
        c.add_table(b);
        c
    }

    fn scan_with(pred: Option<Expr>) -> PlanNode {
        PlanNode::SeqScan {
            table: "t".into(),
            predicate: pred,
            projection: None,
        }
    }

    #[test]
    fn unfiltered_scan_estimates_full_table() {
        let c = catalog(1000);
        assert!((estimate_rows(&scan_with(None), &c) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn le_predicate_interpolates() {
        let c = catalog(1000);
        let p = scan_with(Some(Expr::col(0).le(Expr::lit(249))));
        let est = estimate_rows(&p, &c);
        assert!((est - 249.25).abs() < 5.0, "est {est}");
        let p_gt = scan_with(Some(Expr::col(0).gt(Expr::lit(249))));
        assert!((estimate_rows(&p_gt, &c) - 750.0).abs() < 5.0);
    }

    #[test]
    fn and_multiplies_or_adds() {
        let c = catalog(1000);
        let half = Expr::col(0).le(Expr::lit(499));
        let and = scan_with(Some(half.clone().and(half.clone())));
        assert!((estimate_rows(&and, &c) - 250.0).abs() < 5.0);
        let or = scan_with(Some(half.clone().or(half.clone())));
        assert!((estimate_rows(&or, &c) - 750.0).abs() < 5.0);
    }

    #[test]
    fn plain_aggregate_is_one_row() {
        let c = catalog(100);
        let p = PlanNode::Aggregate {
            input: Box::new(scan_with(None)),
            group_by: vec![],
            aggs: vec![AggSpec::count_star("n")],
        };
        assert_eq!(estimate_rows(&p, &c), 1.0);
    }

    #[test]
    fn parameterized_index_lookup_is_one_row() {
        let c = catalog(100);
        let mut btree = bufferdb_index::BTreeIndex::new();
        for i in 0..100 {
            btree.insert(i, i as u32);
        }
        c.add_index(bufferdb_storage::IndexDef {
            name: "t_pkey".into(),
            table: "t".into(),
            key_column: 0,
            btree,
        });
        let p = PlanNode::IndexScan {
            index: "t_pkey".into(),
            mode: IndexMode::LookupParam,
        };
        assert_eq!(estimate_rows(&p, &c), 1.0);
        let range = PlanNode::IndexScan {
            index: "t_pkey".into(),
            mode: IndexMode::Range {
                lo: None,
                hi: Some(49),
            },
        };
        let est = estimate_rows(&range, &c);
        assert!(est > 30.0 && est < 70.0, "est {est}");
    }

    #[test]
    fn fk_nestloop_estimates_outer_cardinality() {
        let c = catalog(500);
        let p = PlanNode::NestLoopJoin {
            outer: Box::new(scan_with(None)),
            inner: Box::new(scan_with(None)),
            param_outer_col: Some(0),
            qual: None,
            fk_inner: true,
        };
        assert!((estimate_rows(&p, &c) - 500.0).abs() < 1e-9);
    }
}
