//! Quickstart: build a table, run a query, let the refiner add a buffer.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bufferdb::core::exec::execute_with_stats;
use bufferdb::core::plan::explain::explain;
use bufferdb::prelude::*;
use bufferdb::storage::TableBuilder;

fn main() -> Result<()> {
    // 1. A catalog with one table: 200k rows of (id, amount).
    let catalog = Catalog::new();
    let mut builder = TableBuilder::new(
        "payments",
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("amount", DataType::Decimal),
        ]),
    );
    for i in 0..200_000i64 {
        builder.push(Tuple::new(vec![
            Datum::Int(i),
            Datum::Decimal(Decimal::from_cents(100 + (i * 37) % 50_000)),
        ]));
    }
    catalog.add_table(builder);

    // 2. A demand-pull plan: SELECT SUM(amount), AVG(amount), COUNT(*)
    //    FROM payments WHERE id < 150000.
    let plan = PlanNode::Aggregate {
        input: Box::new(PlanNode::SeqScan {
            table: "payments".into(),
            predicate: Some(Expr::col(0).lt(Expr::lit(150_000))),
            projection: None,
        }),
        group_by: vec![],
        aggs: vec![
            bufferdb::core::plan::AggSpec::new(AggFunc::Sum, Expr::col(1), "total"),
            bufferdb::core::plan::AggSpec::new(AggFunc::Avg, Expr::col(1), "avg"),
            bufferdb::core::plan::AggSpec::count_star("n"),
        ],
    };

    // 3. Execute on the simulated Pentium-4-like machine.
    let machine = MachineConfig::pentium4_like();
    let (rows, original) = execute_with_stats(&plan, &catalog, &machine)?;
    println!("result: {}", rows[0]);
    println!("\noriginal plan:\n{}", explain(&plan, &catalog));
    println!("{}", original.breakdown);

    // 4. Refine: the scan (13.2 K) + computed aggregation exceed the L1
    //    instruction cache, so a buffer operator is inserted.
    let refined = refine_plan(&plan, &catalog, &RefineConfig::default());
    let (rows2, buffered) = execute_with_stats(&refined, &catalog, &machine)?;
    assert_eq!(
        format!("{}", rows[0]),
        format!("{}", rows2[0]),
        "same answer"
    );
    println!("refined plan:\n{}", explain(&refined, &catalog));
    println!("{}", buffered.breakdown);

    println!(
        "instruction-cache misses: {} -> {} ({:.0}% fewer)",
        original.counters.l1i_misses,
        buffered.counters.l1i_misses,
        100.0 * (1.0 - buffered.counters.l1i_misses as f64 / original.counters.l1i_misses as f64)
    );
    println!(
        "modeled time: {:.3}s -> {:.3}s ({:+.1}% improvement)",
        original.seconds(),
        buffered.seconds(),
        100.0 * buffered.improvement_over(&original)
    );
    Ok(())
}
