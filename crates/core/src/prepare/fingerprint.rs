//! Canonical plan fingerprints: the plan-cache key.
//!
//! A fingerprint folds everything that determines the refined + parallelized
//! physical plan into one 64-bit FNV-1a hash:
//!
//! * the **logical plan** (its canonical `Debug` rendering — `PlanNode`
//!   derives a deterministic, whitespace-free single-line format);
//! * the **machine configuration** (a different L1i capacity or line size
//!   refines differently);
//! * the **worker budget** (parallelization rewrites the plan per count);
//! * the **catalog stats epoch** (cardinality estimates feed the refiner's
//!   threshold rule, so any registration or re-analyze must miss);
//! * the **refinement configuration** (capacity, threshold, buffer size).
//!
//! Baking the epoch into the key makes invalidation correct *by
//! construction*: a stale entry can never be returned for a fresh lookup —
//! [`crate::prepare::PlanCache::evict_stale`] merely reclaims its memory.

use crate::optimizer::ExecModePolicy;
use crate::plan::PlanNode;
use crate::refine::RefineConfig;
use bufferdb_cachesim::MachineConfig;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(hash, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

/// Structural hash of one plan subtree (FNV-1a over its canonical `Debug`
/// rendering). Identical subtrees — which execute identically against the
/// same catalog — hash identically, which is what lets observed
/// cardinalities survive a re-refinement that moves buffers around (see
/// [`crate::refine::ObservedCards`]).
pub fn subtree_hash(plan: &PlanNode) -> u64 {
    fnv1a(FNV_OFFSET, format!("{plan:?}").as_bytes())
}

/// The plan-cache key: see the module docs for what it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanFingerprint(u64);

impl PlanFingerprint {
    /// The raw 64-bit hash (for diagnostics and JSON export).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Fingerprint `plan` under the full preparation context, at the default
/// [`ExecModePolicy::BufferedPull`].
pub fn fingerprint_plan(
    plan: &PlanNode,
    machine: &MachineConfig,
    threads: usize,
    stats_epoch: u64,
    refine: &RefineConfig,
) -> PlanFingerprint {
    fingerprint_plan_with_mode(
        plan,
        machine,
        threads,
        stats_epoch,
        refine,
        ExecModePolicy::BufferedPull,
    )
}

/// [`fingerprint_plan`] with an explicit executor-mode policy. The mode
/// determines where push groups are carved and whether buffers exist at
/// all, so it is as much a part of the physical plan as the worker budget:
/// a plan prepared for `push` must never be served to a `pull` lookup.
pub fn fingerprint_plan_with_mode(
    plan: &PlanNode,
    machine: &MachineConfig,
    threads: usize,
    stats_epoch: u64,
    refine: &RefineConfig,
    mode: ExecModePolicy,
) -> PlanFingerprint {
    let mut h = fnv1a(FNV_OFFSET, format!("{plan:?}").as_bytes());
    h = fnv1a(h, format!("{machine:?}").as_bytes());
    h = fnv1a(h, &(threads as u64).to_le_bytes());
    h = fnv1a(h, &stats_epoch.to_le_bytes());
    h = fnv1a(h, &(refine.l1i_capacity as u64).to_le_bytes());
    h = fnv1a(h, &refine.cardinality_threshold.to_bits().to_le_bytes());
    h = fnv1a(h, &(refine.buffer_size as u64).to_le_bytes());
    h = fnv1a(h, mode.label().as_bytes());
    PlanFingerprint(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(table: &str) -> PlanNode {
        PlanNode::SeqScan {
            table: table.into(),
            predicate: None,
            projection: None,
        }
    }

    #[test]
    fn identical_inputs_fingerprint_identically() {
        let cfg = MachineConfig::pentium4_like();
        let r = RefineConfig::default();
        let a = fingerprint_plan(&scan("t"), &cfg, 1, 0, &r);
        let b = fingerprint_plan(&scan("t"), &cfg, 1, 0, &r);
        assert_eq!(a, b);
    }

    #[test]
    fn every_key_component_perturbs_the_fingerprint() {
        let cfg = MachineConfig::pentium4_like();
        let r = RefineConfig::default();
        let base = fingerprint_plan(&scan("t"), &cfg, 1, 0, &r);
        assert_ne!(base, fingerprint_plan(&scan("u"), &cfg, 1, 0, &r), "plan");
        assert_ne!(
            base,
            fingerprint_plan(&scan("t"), &cfg, 2, 0, &r),
            "threads"
        );
        assert_ne!(base, fingerprint_plan(&scan("t"), &cfg, 1, 1, &r), "epoch");
        let mut small = MachineConfig::pentium4_like();
        small.l1i.capacity /= 2;
        assert_ne!(
            base,
            fingerprint_plan(&scan("t"), &small, 1, 0, &r),
            "machine"
        );
        let tight = RefineConfig {
            l1i_capacity: 8 * 1024,
            ..RefineConfig::default()
        };
        assert_ne!(
            base,
            fingerprint_plan(&scan("t"), &cfg, 1, 0, &tight),
            "refine cfg"
        );
        for mode in [
            ExecModePolicy::Pull,
            ExecModePolicy::Push,
            ExecModePolicy::Auto,
        ] {
            assert_ne!(
                base,
                fingerprint_plan_with_mode(&scan("t"), &cfg, 1, 0, &r, mode),
                "mode {}",
                mode.label()
            );
        }
        assert_eq!(
            base,
            fingerprint_plan_with_mode(&scan("t"), &cfg, 1, 0, &r, ExecModePolicy::BufferedPull),
            "buffered-pull is the default keying"
        );
    }

    #[test]
    fn subtree_hash_is_structural() {
        assert_eq!(subtree_hash(&scan("t")), subtree_hash(&scan("t")));
        assert_ne!(subtree_hash(&scan("t")), subtree_hash(&scan("u")));
        let buffered = PlanNode::Buffer {
            input: Box::new(scan("t")),
            size: 100,
        };
        assert_ne!(subtree_hash(&scan("t")), subtree_hash(&buffered));
    }
}
