//! Server observatory invariants: `sys.*` introspection must be provably
//! free (zero modeled cycles or misses — the observer effect the design
//! forbids), the per-segment i-cache heatmap must conserve *exactly*
//! against machine counter totals at any concurrency and under faults, and
//! the server flight recorder must change nothing it records.

use bufferdb::prelude::*;
use bufferdb::tpch::{self, queries};
use std::sync::{Arc, Mutex};

fn catalog() -> Catalog {
    tpch::generate_catalog(0.002, 7)
}

fn machine() -> MachineConfig {
    MachineConfig::pentium4_like()
}

/// The multi-stream workload every server test drives: 8 jobs cycling 4
/// distinct plans, closed-loop over `streams` admission slots.
fn run_workload(vs: &mut VirtualServer, catalog: &Catalog, streams: usize) -> Vec<CompletedQuery> {
    run_workload_with(vs, catalog, streams, false)
}

/// `refine` inserts buffer operators (as production plans would), so fault
/// sites like `buffer.fill` exist in the plan.
fn run_workload_with(
    vs: &mut VirtualServer,
    catalog: &Catalog,
    streams: usize,
    refine: bool,
) -> Vec<CompletedQuery> {
    const JOBS: usize = 8;
    let mut plans = vec![
        queries::paper_query1(catalog).unwrap(),
        queries::tpch_q6(catalog).unwrap(),
        queries::paper_query2(catalog).unwrap(),
        queries::tpch_q12(catalog).unwrap(),
    ];
    if refine {
        plans = plans
            .iter()
            .map(|p| refine_plan(p, catalog, &RefineConfig::default()))
            .collect();
    }
    let mut next_job: Vec<usize> = Vec::new();
    for job in 0..streams.min(JOBS) {
        vs.submit(SubmitSpec::new(&plans[job % plans.len()], catalog))
            .unwrap();
        next_job.push(job);
    }
    let mut all = Vec::new();
    loop {
        let done = vs.drain();
        if done.is_empty() {
            break;
        }
        for c in done {
            let next = next_job[c.id as usize] + streams;
            if next < JOBS {
                vs.submit(SubmitSpec::new(&plans[next % plans.len()], catalog).at(c.done_ns))
                    .unwrap();
                next_job.push(next);
            }
            all.push(c);
        }
    }
    all
}

fn sys_scan(table: &str) -> PlanNode {
    PlanNode::SysScan {
        table: table.into(),
    }
}

// --- sys.* tables are real tables -----------------------------------------

#[test]
fn sys_tables_compose_with_filters_aggregates_and_explain() {
    let catalog = catalog();
    let mut vs = VirtualServer::new(ServerConfig::new(4, 2, machine()));
    vs.install_sys_tables(&catalog);
    let done = run_workload(&mut vs, &catalog, 2);
    assert_eq!(done.len(), 8);

    // Plain scan: every completed query appears as a "done" row.
    let (rows, _, _) = execute_query(
        &sys_scan("sys.queries"),
        &catalog,
        &machine(),
        &QueryOpts::new(),
    )
    .into_result()
    .unwrap();
    let done_rows = rows
        .iter()
        .filter(|t| t.get(1).as_str() == Some("done"))
        .count();
    assert_eq!(done_rows, 8, "one sys.queries row per completed query");
    for t in &rows {
        if t.get(1).as_str() == Some("done") {
            let wait = t.get(6).as_int().unwrap();
            let run = t.get(7).as_int().unwrap();
            assert!(wait >= 0 && run > 0, "wait {wait} run {run}");
            assert_eq!(t.get(9), &Datum::Bool(true), "workload runs clean");
        }
    }

    // Filter + aggregate over sys.queries: count failed queries (none).
    let agg = PlanNode::Aggregate {
        input: Box::new(PlanNode::Filter {
            input: Box::new(sys_scan("sys.queries")),
            predicate: Expr::col(9).eq(Expr::lit(Datum::Bool(false))),
        }),
        group_by: vec![],
        aggs: vec![AggSpec::count_star("failed")],
    };
    let (rows, _, _) = execute_query(&agg, &catalog, &machine(), &QueryOpts::new())
        .into_result()
        .unwrap();
    assert_eq!(rows[0].get(0).as_int(), Some(0));

    // sys.workers: session row plus one per pool core, all home between
    // drains, carrying their L1i state.
    let (rows, _, _) = execute_query(
        &sys_scan("sys.workers"),
        &catalog,
        &machine(),
        &QueryOpts::new(),
    )
    .into_result()
    .unwrap();
    assert_eq!(rows.len(), 4, "session + (workers - 1) pool cores");
    let session = rows
        .iter()
        .find(|t| t.get(0).as_str() == Some("session"))
        .expect("session row");
    assert!(session.get(2).as_int().unwrap() > 0, "turns counted");
    assert_eq!(session.get(4), &Datum::Bool(true), "machine home");
    assert!(session.get(5).as_int().unwrap() > 0, "carried L1i state");

    // explain_analyze runs over a sys table like any heap table.
    let text = explain_analyze(&sys_scan("sys.workers"), &catalog, &machine()).unwrap();
    assert!(text.contains("actual_rows 4"), "{text}");
}

#[test]
fn database_cache_tables_reflect_cache_state() {
    let db = Database::open(catalog(), machine());
    db.install_sys_tables();
    let plan = queries::paper_query1(db.catalog()).unwrap();
    let q = db.prepare(&plan).unwrap();
    assert!(q.execute().is_ok());
    let q2 = db.prepare(&plan).unwrap(); // second prepare hits the cache
    assert!(q2.execute().is_ok());

    let (rows, _, _) = execute_query(
        &sys_scan("sys.plan_cache"),
        db.catalog(),
        &machine(),
        &QueryOpts::new(),
    )
    .into_result()
    .unwrap();
    assert_eq!(rows.len(), 1, "one resident entry");
    let hits = rows[0].get(3).as_int().unwrap();
    assert!(hits >= 1, "second prepare must count as a hit, got {hits}");
    assert!(
        rows[0].get(0).as_str().unwrap().starts_with("0x"),
        "fingerprint is hex"
    );

    // The reuse cache table exists and matches its stats() entry count.
    let (rows, _, _) = execute_query(
        &sys_scan("sys.reuse_cache"),
        db.catalog(),
        &machine(),
        &QueryOpts::new(),
    )
    .into_result()
    .unwrap();
    assert_eq!(rows.len() as u64, db.reuse_cache().stats().entries);
}

#[test]
fn slo_windows_table_exposes_verdicts() {
    let catalog = catalog();
    let mut ts = TimeSeriesRegistry::new(1000);
    ts.record_latency("all", 10, 50);
    ts.counter_add("queries_ok", 10, 1);
    ts.record_latency("all", 1010, 5_000_000_000);
    ts.counter_add("queries_ok", 1010, 1);
    let done = ts.finish(2000);
    let mut slo = SloTracker::new(SloConfig {
        p95_ns: 100,
        ..SloConfig::default()
    });
    for w in &done.windows {
        slo.observe(w);
    }
    let tracker = Arc::new(Mutex::new(slo));
    catalog.register_sys_table("sys.slo_windows", slo_windows_table(tracker));
    let (rows, _, _) = execute_query(
        &sys_scan("sys.slo_windows"),
        &catalog,
        &machine(),
        &QueryOpts::new(),
    )
    .into_result()
    .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].get(7), &Datum::Bool(true), "fast window passes");
    assert_eq!(rows[1].get(7), &Datum::Bool(false), "slow window fails");
}

// --- observer-effect zero --------------------------------------------------

#[test]
fn sys_scans_add_exactly_zero_modeled_cost() {
    let catalog = catalog();
    let mut vs = VirtualServer::new(ServerConfig::new(4, 2, machine()));
    vs.install_sys_tables(&catalog);
    run_workload(&mut vs, &catalog, 2);

    for table in ["sys.queries", "sys.workers", "sys.cache_segments"] {
        let out = execute_query(&sys_scan(table), &catalog, &machine(), &QueryOpts::new());
        assert!(out.is_ok(), "{table}: {:?}", out.error());
        assert_eq!(
            out.stats().counters,
            PerfCounters::default(),
            "{table}: a sys scan must execute zero modeled work"
        );
    }

    // Composition stays free only for the sys leaf: a filter over it runs
    // real predicate code. What must hold is that *observing the server*
    // changes nothing in the server: counters before == after the scans.
    let before = vs.machine_counters();
    for table in ["sys.queries", "sys.workers", "sys.cache_segments"] {
        execute_query(&sys_scan(table), &catalog, &machine(), &QueryOpts::new());
    }
    assert_eq!(
        vs.machine_counters(),
        before,
        "introspection must not perturb the observed server"
    );
}

#[test]
fn flight_recorder_and_heatmap_change_no_physics() {
    let catalog = catalog();
    let run = |observe: bool| {
        let mut vs = VirtualServer::new(ServerConfig::new(4, 2, machine()));
        if observe {
            vs.enable_heatmap();
            vs.enable_flight_recorder();
        }
        let done = run_workload(&mut vs, &catalog, 2);
        let per_query: Vec<PerfCounters> =
            done.iter().map(|c| c.outcome.stats().counters).collect();
        let latencies: Vec<u64> = done.iter().map(|c| c.done_ns - c.arrival_ns).collect();
        (per_query, latencies, vs.machine_counters())
    };
    let (base_counters, base_latency, base_machine) = run(false);
    let (obs_counters, obs_latency, obs_machine) = run(true);
    assert_eq!(base_counters, obs_counters, "per-query counters identical");
    assert_eq!(base_latency, obs_latency, "virtual timelines identical");
    assert_eq!(base_machine, obs_machine, "machine totals identical");
}

#[test]
fn recorder_captures_waits_runs_and_turns() {
    let catalog = catalog();
    let mut vs = VirtualServer::new(ServerConfig::new(4, 2, machine()));
    vs.enable_flight_recorder();
    let done = run_workload(&mut vs, &catalog, 2);
    let report = vs.finish_recorder().expect("recorder enabled");
    assert!(vs.finish_recorder().is_none(), "finish detaches");
    let names: Vec<&str> = report.tracks.iter().map(|t| t.name.as_str()).collect();
    assert_eq!(names, ["server.queries", "server.core"]);
    let runs = report.tracks[0]
        .events
        .iter()
        .filter(|e| matches!(e.event, TraceEvent::QueryRun { .. }))
        .count();
    assert_eq!(runs, done.len(), "one run span per completed query");
    let turns = report.tracks[1]
        .events
        .iter()
        .filter(|e| matches!(e.event, TraceEvent::CoreTurn { .. }))
        .count();
    assert!(turns as u64 >= done.len() as u64, "turn spans recorded");
    let json = report.perfetto_json();
    assert!(
        json.contains("query.wait") && json.contains("core.turn"),
        "{json}"
    );
}

// --- heatmap conservation --------------------------------------------------

#[test]
fn heatmap_conserves_exactly_at_any_concurrency() {
    let catalog = catalog();
    for streams in [1usize, 2, 7] {
        let mut vs = VirtualServer::new(ServerConfig::new(8, streams, machine()));
        vs.enable_heatmap();
        run_workload(&mut vs, &catalog, streams);
        let totals = vs.machine_counters();
        let snap = vs.heatmap();
        assert_eq!(
            snap.total_misses(),
            totals.l1i_misses,
            "{streams} streams: per-(segment,owner) misses must sum to machine L1i misses"
        );
        assert_eq!(
            snap.total_cross_misses(),
            totals.l1i_cross_misses,
            "{streams} streams: cross-attributed misses must sum to machine cross misses"
        );
        assert_eq!(
            snap.total_cross_caused(),
            snap.total_cross_misses(),
            "{streams} streams: every cross miss has exactly one attributed culprit"
        );
        if streams > 1 {
            assert!(
                totals.l1i_cross_misses > 0,
                "{streams} streams must actually interfere"
            );
        }
    }
}

#[test]
fn heatmap_conserves_under_injected_faults() {
    let catalog = catalog();
    let mut vs = VirtualServer::new(ServerConfig::new(4, 2, machine()));
    vs.enable_heatmap();
    vs.faults()
        .arm("buffer.fill", Trigger::every(3), FaultMode::Error);
    let done = run_workload_with(&mut vs, &catalog, 2, true);
    assert!(
        done.iter().any(|c| !c.outcome.is_ok()),
        "the fault must actually trip"
    );
    let totals = vs.machine_counters();
    let snap = vs.heatmap();
    assert_eq!(snap.total_misses(), totals.l1i_misses);
    assert_eq!(snap.total_cross_misses(), totals.l1i_cross_misses);
}

#[test]
fn sys_cache_segments_matches_heatmap_rollup() {
    let catalog = catalog();
    let mut vs = VirtualServer::new(ServerConfig::new(4, 2, machine()));
    vs.enable_heatmap();
    vs.install_sys_tables(&catalog);
    run_workload(&mut vs, &catalog, 2);
    let (rows, _, _) = execute_query(
        &sys_scan("sys.cache_segments"),
        &catalog,
        &machine(),
        &QueryOpts::new(),
    )
    .into_result()
    .unwrap();
    assert!(!rows.is_empty(), "workload must heat some segments");
    let table_misses: i64 = rows.iter().map(|t| t.get(1).as_int().unwrap()).sum();
    let table_cross: i64 = rows.iter().map(|t| t.get(2).as_int().unwrap()).sum();
    let totals = vs.machine_counters();
    assert_eq!(table_misses as u64, totals.l1i_misses);
    assert_eq!(table_cross as u64, totals.l1i_cross_misses);
}

// --- per-query heatmap + explain_analyze ----------------------------------

#[test]
fn query_heatmap_conserves_and_renders() {
    let catalog = catalog();
    let plan = queries::paper_query1(&catalog).unwrap();
    let out = execute_query(&plan, &catalog, &machine(), &QueryOpts::new().heatmap(true));
    assert!(out.is_ok());
    let heat = out.heat().expect("heatmap requested");
    assert_eq!(heat.total_misses(), out.stats().counters.l1i_misses);
    assert!(
        heat.cells.keys().any(|(seg, _)| seg == "scan_core"),
        "scan segment attributed: {:?}",
        heat.cells.keys().collect::<Vec<_>>()
    );

    let text = explain_analyze(&plan, &catalog, &machine()).unwrap();
    assert!(text.contains("i-cache heatmap:"), "{text}");
}
