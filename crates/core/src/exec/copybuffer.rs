//! A *copying* buffer operator — the design §5 argues against.
//!
//! "An important aspect of a buffer operator is that it does not copy tuples
//! from the child operator … The overhead of copying would reduce the
//! benefit of buffering instructions." This variant materializes tuple
//! copies into its own region instead of storing pointers, so the ablation
//! benches can quantify exactly how much that costs (extra instructions and
//! extra data-cache traffic per tuple) while delivering the same instruction
//! locality.

use crate::arena::TupleSlot;
use crate::context::ExecContext;
use crate::exec::{schema_slot_bytes, Operator};
use crate::footprint::{FootprintModel, OpKind};
use bufferdb_cachesim::CodeRegion;
use bufferdb_types::{Datum, DbError, Result, SchemaRef};

/// Instructions charged per tuple copy (field-by-field datum copy).
const COPY_INSTR_PER_BYTE: u64 = 1;

/// Copying buffer operator (ablation baseline).
pub struct CopyBufferOp {
    child: Box<dyn Operator>,
    size: usize,
    schema: SchemaRef,
    code: CodeRegion,
    slots: Vec<TupleSlot>,
    pos: usize,
    end_of_tuples: bool,
    own_region: u32,
}

impl CopyBufferOp {
    /// Wrap `child` with a copying buffer of `size` tuples.
    pub fn new(fm: &mut FootprintModel, child: Box<dyn Operator>, size: usize) -> Result<Self> {
        if size == 0 {
            return Err(DbError::InvalidPlan("buffer size must be > 0".into()));
        }
        let schema = child.schema();
        let code = fm.region_for(&OpKind::Buffer);
        Ok(CopyBufferOp {
            child,
            size,
            schema,
            code,
            slots: Vec::with_capacity(size),
            pos: 0,
            end_of_tuples: false,
            own_region: u32::MAX,
        })
    }
}

impl Operator for CopyBufferOp {
    fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<()> {
        // No batch hint for the child: copies live in our own region, which
        // is the point (and the cost) of this variant.
        self.child.open(ctx)?;
        self.own_region = ctx
            .arena
            .alloc_region(self.size as u32 + 1, schema_slot_bytes(&self.schema));
        self.slots.clear();
        self.pos = 0;
        self.end_of_tuples = false;
        Ok(())
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<TupleSlot>> {
        if self.pos >= self.slots.len() && !self.end_of_tuples {
            ctx.machine.exec_region(&mut self.code);
            self.slots.clear();
            self.pos = 0;
            while self.slots.len() < self.size {
                match self.child.next(ctx)? {
                    Some(slot) => {
                        // The copy: read the child's tuple, write our own.
                        let t = ctx.arena.read(slot, &mut ctx.machine).clone();
                        ctx.machine.add_instructions(
                            t.simulated_width() as u64 * COPY_INSTR_PER_BYTE + 16,
                        );
                        let own = ctx.arena.store(self.own_region, t, &mut ctx.machine);
                        self.slots.push(own);
                    }
                    None => {
                        self.end_of_tuples = true;
                        break;
                    }
                }
            }
        }
        if self.pos < self.slots.len() {
            let slot = self.slots[self.pos];
            self.pos += 1;
            ctx.arena.read(slot, &mut ctx.machine);
            Ok(Some(slot))
        } else {
            Ok(None)
        }
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.slots.clear();
        self.child.close(ctx)
    }

    fn rescan(&mut self, ctx: &mut ExecContext, param: Option<&Datum>) -> Result<()> {
        self.child.rescan(ctx, param)?;
        self.slots.clear();
        self.pos = 0;
        self.end_of_tuples = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::buffer::BufferOp;
    use crate::exec::seqscan::SeqScanOp;
    use bufferdb_cachesim::MachineConfig;
    use bufferdb_storage::{Catalog, TableBuilder};
    use bufferdb_types::{DataType, Field, Schema, Tuple};

    fn setup(n: i64) -> (Catalog, FootprintModel, ExecContext) {
        let c = Catalog::new();
        let mut b = TableBuilder::new(
            "t",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("s", DataType::Str),
            ]),
        );
        for i in 0..n {
            b.push(Tuple::new(vec![
                Datum::Int(i),
                Datum::str(format!("payload {i}")),
            ]));
        }
        c.add_table(b);
        (
            c,
            FootprintModel::new(),
            ExecContext::new(MachineConfig::pentium4_like()),
        )
    }

    #[test]
    fn copy_buffer_is_transparent() {
        let (c, mut fm, mut ctx) = setup(237);
        let child = Box::new(SeqScanOp::new(&c, &mut fm, "t", None, None).unwrap());
        let mut op = CopyBufferOp::new(&mut fm, child, 100).unwrap();
        op.open(&mut ctx).unwrap();
        let mut got = Vec::new();
        while let Some(s) = op.next(&mut ctx).unwrap() {
            got.push(ctx.arena.tuple(s).get(0).as_int().unwrap());
        }
        assert_eq!(got, (0..237).collect::<Vec<_>>());
    }

    #[test]
    fn copying_costs_more_than_pointers() {
        // Same workload, pointer buffer vs copy buffer: the copy variant
        // must execute more instructions and touch more data (§5).
        let run_ptr = {
            let (c, mut fm, mut ctx) = setup(2000);
            let child = Box::new(SeqScanOp::new(&c, &mut fm, "t", None, None).unwrap());
            let mut op = BufferOp::new(&mut fm, child, 100).unwrap();
            op.open(&mut ctx).unwrap();
            while op.next(&mut ctx).unwrap().is_some() {}
            ctx.machine.snapshot()
        };
        let run_copy = {
            let (c, mut fm, mut ctx) = setup(2000);
            let child = Box::new(SeqScanOp::new(&c, &mut fm, "t", None, None).unwrap());
            let mut op = CopyBufferOp::new(&mut fm, child, 100).unwrap();
            op.open(&mut ctx).unwrap();
            while op.next(&mut ctx).unwrap().is_some() {}
            ctx.machine.snapshot()
        };
        assert!(run_copy.instructions > run_ptr.instructions);
        assert!(run_copy.l1d_accesses > run_ptr.l1d_accesses);
    }

    #[test]
    fn rescan_and_empty_input() {
        let (c, mut fm, mut ctx) = setup(0);
        let child = Box::new(SeqScanOp::new(&c, &mut fm, "t", None, None).unwrap());
        let mut op = CopyBufferOp::new(&mut fm, child, 10).unwrap();
        op.open(&mut ctx).unwrap();
        assert!(op.next(&mut ctx).unwrap().is_none());
        op.rescan(&mut ctx, None).unwrap();
        assert!(op.next(&mut ctx).unwrap().is_none());
    }
}
