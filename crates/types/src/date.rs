//! Calendar dates as days since the Unix epoch.
//!
//! TPC-H predicates (`l_shipdate <= date '1998-09-02'`) only need ordering,
//! parsing, formatting and day arithmetic, so a compact `i32` day count is
//! used. Conversions use Howard Hinnant's civil-days algorithms, valid over
//! the full proleptic Gregorian calendar.

use crate::error::{DbError, Result};
use std::fmt;

/// A calendar date, stored as days since 1970-01-01.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date(i32);

impl Date {
    /// Construct from a raw day count since the epoch.
    pub fn from_days(days: i32) -> Self {
        Date(days)
    }

    /// Days since 1970-01-01 (may be negative).
    pub fn days(&self) -> i32 {
        self.0
    }

    /// Construct from a civil year/month/day. Returns an error if the
    /// combination is not a real calendar date.
    pub fn from_ymd(y: i32, m: u32, d: u32) -> Result<Self> {
        if !(1..=12).contains(&m) || d < 1 || d > days_in_month(y, m) {
            return Err(DbError::Parse(format!("invalid date {y:04}-{m:02}-{d:02}")));
        }
        Ok(Date(days_from_civil(y, m, d)))
    }

    /// Decompose into (year, month, day).
    pub fn to_ymd(&self) -> (i32, u32, u32) {
        civil_from_days(self.0)
    }

    /// Parse an ISO-8601 date of the form `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Result<Self> {
        let parts: Vec<&str> = s.trim().split('-').collect();
        if parts.len() != 3 {
            return Err(DbError::Parse(format!("bad date literal {s:?}")));
        }
        let y: i32 = parts[0]
            .parse()
            .map_err(|_| DbError::Parse(format!("bad year in {s:?}")))?;
        let m: u32 = parts[1]
            .parse()
            .map_err(|_| DbError::Parse(format!("bad month in {s:?}")))?;
        let d: u32 = parts[2]
            .parse()
            .map_err(|_| DbError::Parse(format!("bad day in {s:?}")))?;
        Date::from_ymd(y, m, d)
    }

    /// The date `n` days later (negative moves backwards).
    pub fn add_days(&self, n: i32) -> Date {
        Date(self.0 + n)
    }

    /// The year component; convenient for EXTRACT-style grouping.
    pub fn year(&self) -> i32 {
        self.to_ymd().0
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

fn is_leap(y: i32) -> bool {
    y % 4 == 0 && (y % 100 != 0 || y % 400 == 0)
}

fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap(y) => 29,
        2 => 28,
        _ => 0,
    }
}

/// Days since 1970-01-01 for a civil date (Hinnant, `days_from_civil`).
fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32; // [0, 399]
    let mp = (m + 9) % 12; // March = 0
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe as i32 - 719468
}

/// Civil date for days since 1970-01-01 (Hinnant, `civil_from_days`).
fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u32; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe as i32 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Date::from_ymd(1970, 1, 1).unwrap().days(), 0);
        assert_eq!(Date::from_days(0).to_string(), "1970-01-01");
    }

    #[test]
    fn parse_and_display() {
        let d = Date::parse("1998-09-02").unwrap();
        assert_eq!(d.to_string(), "1998-09-02");
        assert_eq!(d.to_ymd(), (1998, 9, 2));
    }

    #[test]
    fn parse_rejects_invalid() {
        assert!(Date::parse("1998-13-01").is_err());
        assert!(Date::parse("1998-02-30").is_err());
        assert!(Date::parse("1998/01/01").is_err());
        assert!(Date::parse("not-a-date").is_err());
        assert!(Date::parse("1998-09").is_err());
    }

    #[test]
    fn leap_years() {
        assert!(Date::parse("2000-02-29").is_ok()); // 400-rule
        assert!(Date::parse("1900-02-29").is_err()); // 100-rule
        assert!(Date::parse("1996-02-29").is_ok());
        assert!(Date::parse("1997-02-29").is_err());
    }

    #[test]
    fn ordering_follows_calendar() {
        let a = Date::parse("1995-12-31").unwrap();
        let b = Date::parse("1996-01-01").unwrap();
        assert!(a < b);
        assert_eq!(b.days() - a.days(), 1);
    }

    #[test]
    fn add_days_crosses_month_and_year() {
        let d = Date::parse("1998-12-31").unwrap();
        assert_eq!(d.add_days(1).to_string(), "1999-01-01");
        assert_eq!(d.add_days(-365).to_string(), "1997-12-31");
    }

    #[test]
    fn tpch_date_range_round_trips() {
        // TPC-H dates span 1992-01-01 .. 1998-12-31.
        let start = Date::parse("1992-01-01").unwrap();
        let end = Date::parse("1998-12-31").unwrap();
        assert_eq!(end.days() - start.days(), 2556);
    }

    /// Striding the whole ±200k-day window (plus both endpoints) covers every
    /// month length, leap rule and era boundary the Hinnant algorithms handle.
    #[test]
    fn ymd_round_trip_across_eras() {
        for days in (-200_000i32..200_000)
            .step_by(37)
            .chain([-200_000, 199_999])
        {
            let d = Date::from_days(days);
            let (y, m, dd) = d.to_ymd();
            assert_eq!(Date::from_ymd(y, m, dd).unwrap(), d, "days {days}");
        }
    }

    #[test]
    fn display_parse_round_trip() {
        for days in (-100_000i32..100_000).step_by(41) {
            let d = Date::from_days(days);
            assert_eq!(Date::parse(&d.to_string()).unwrap(), d, "days {days}");
        }
    }

    #[test]
    fn add_days_is_consistent() {
        let mut rng = crate::Rng::seed_from_u64(0xDA7E);
        for _ in 0..512 {
            let days = rng.gen_range(-50_000i32..50_000);
            let n = rng.gen_range(-1000i32..1000);
            assert_eq!(Date::from_days(days).add_days(n).days(), days + n);
        }
    }
}
