//! A small cost-based physical optimizer for two-table equi-joins.
//!
//! The paper operates downstream of an optimizer ("Our plan refinement
//! algorithm accepts a query plan tree from the optimizer as input"); this
//! module provides that upstream piece for the common case its experiments
//! force by hand: choosing among index nested-loop, hash and merge join for
//! a foreign-key equi-join, using table statistics. The cost model counts
//! the dominant per-tuple work of each method — the same quantities the
//! executor simulates — so its choices align with the simulated outcomes.

use crate::expr::Expr;
use crate::footprint::OpKind;
use crate::plan::estimate::{estimate_rows, predicate_selectivity};
use crate::plan::{push_member_kinds, IndexMode, PlanNode};
use crate::refine::RefineConfig;
use bufferdb_storage::Catalog;
use bufferdb_types::{DbError, Result};

/// Which executor backend prepared plans run under — the "execution model"
/// half of a physical plan, kept separate from the plan shape so the same
/// logical plan can be compared across backends.
///
/// * `Pull` — plain Volcano iterators, no buffer operators (refinement is
///   skipped): the paper's baseline.
/// * `BufferedPull` — Volcano iterators plus refiner-placed buffer
///   operators (the paper's contribution; the default, and the behaviour
///   of every release before this policy existed).
/// * `Push` — every eligible pipeline is fused into a
///   [`PlanNode::PushPipeline`] group executing batch-at-a-time over one
///   combined code region; the refiner still buffers what stays pull.
/// * `Auto` — per-pipeline choice: fuse a pipeline exactly when its
///   combined footprint (group members + push driver) fits the configured
///   L1i capacity, otherwise leave it to the refiner's buffered pull.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecModePolicy {
    /// Volcano pull, no buffers.
    Pull,
    /// Volcano pull with refiner-placed buffers (default).
    #[default]
    BufferedPull,
    /// Fuse every eligible pipeline into a push group.
    Push,
    /// Fuse per pipeline when the fused footprint fits L1i.
    Auto,
}

impl ExecModePolicy {
    /// Stable label used in fingerprints, JSON schemas and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            ExecModePolicy::Pull => "pull",
            ExecModePolicy::BufferedPull => "buffered-pull",
            ExecModePolicy::Push => "push",
            ExecModePolicy::Auto => "auto",
        }
    }

    /// Parse a [`ExecModePolicy::label`] back into a policy.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "pull" => ExecModePolicy::Pull,
            "buffered-pull" => ExecModePolicy::BufferedPull,
            "push" => ExecModePolicy::Push,
            "auto" => ExecModePolicy::Auto,
            _ => return None,
        })
    }

    /// Whether the refiner runs over the mode-marked plan (buffers are a
    /// pull-side tool; plain pull is the unbuffered baseline).
    pub(crate) fn refines(self) -> bool {
        !matches!(self, ExecModePolicy::Pull)
    }

    /// Whether profiled feedback may re-refine the cached plan. Buffer
    /// placement is what adaptation moves, so only the modes that asked
    /// for refiner-placed buffers adapt; `Pull` and `Push` plans are
    /// pinned to what the policy chose.
    pub(crate) fn adapts(self) -> bool {
        matches!(self, ExecModePolicy::BufferedPull | ExecModePolicy::Auto)
    }
}

/// Can `n` be the probe-side chain of a fused hash join (filters and
/// projections over one sequential scan)?
fn probe_chain_ok(n: &PlanNode) -> bool {
    match n {
        PlanNode::Filter { input, .. } | PlanNode::Project { input, .. } => probe_chain_ok(input),
        PlanNode::SeqScan { .. } => true,
        _ => false,
    }
}

/// Can `n` be fused below a push group root: `[Filter|Project]*` over a
/// sequential scan, or over a hash join whose probe side is such a chain
/// (the blocking build side stays a pull subtree either way)?
fn chain_ok(n: &PlanNode) -> bool {
    match n {
        PlanNode::Filter { input, .. } | PlanNode::Project { input, .. } => chain_ok(input),
        PlanNode::SeqScan { .. } => true,
        PlanNode::HashJoin { probe, .. } => probe_chain_ok(probe),
        _ => false,
    }
}

/// Is `n` the root of a push-eligible pipeline? An aggregate may cap the
/// group (it is the terminal sink); everything below must be a fuseable
/// chain. Nested-loop inners, index scans, sorts, merges and exchanges are
/// never fused.
fn push_eligible(n: &PlanNode) -> bool {
    match n {
        PlanNode::Aggregate { input, .. } => chain_ok(input),
        other => chain_ok(other),
    }
}

/// Does `policy` want this eligible pipeline fused? `Push` always fuses;
/// `Auto` fuses when the group is non-trivial (≥ 2 members) and its
/// combined footprint fits the refiner's L1i budget — the same capacity
/// the buffered alternative is judged against.
fn fuse_wanted(n: &PlanNode, cfg: &RefineConfig, policy: ExecModePolicy) -> bool {
    match policy {
        ExecModePolicy::Pull | ExecModePolicy::BufferedPull => false,
        ExecModePolicy::Push => true,
        ExecModePolicy::Auto => {
            let members = push_member_kinds(n);
            members.len() >= 2 && OpKind::PushGroup(members).footprint_bytes() <= cfg.l1i_capacity
        }
    }
}

/// Clone the fused chain, recursing mode selection into hash-join build
/// sides (they stay pull subtrees and may contain their own pipelines).
fn recurse_build_sides(n: &PlanNode, cfg: &RefineConfig, policy: ExecModePolicy) -> PlanNode {
    match n {
        PlanNode::Aggregate {
            input,
            group_by,
            aggs,
        } => PlanNode::Aggregate {
            input: Box::new(recurse_build_sides(input, cfg, policy)),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        PlanNode::Filter { input, predicate } => PlanNode::Filter {
            input: Box::new(recurse_build_sides(input, cfg, policy)),
            predicate: predicate.clone(),
        },
        PlanNode::Project { input, exprs } => PlanNode::Project {
            input: Box::new(recurse_build_sides(input, cfg, policy)),
            exprs: exprs.clone(),
        },
        PlanNode::HashJoin {
            probe,
            build,
            probe_key,
            build_key,
        } => PlanNode::HashJoin {
            // The probe chain is part of the group (no joins inside it, by
            // eligibility); only the build subtree re-enters selection.
            probe: probe.clone(),
            build: Box::new(mode_rec(build, cfg, policy)),
            probe_key: *probe_key,
            build_key: *build_key,
        },
        other => other.clone(),
    }
}

fn mode_rec(plan: &PlanNode, cfg: &RefineConfig, policy: ExecModePolicy) -> PlanNode {
    if push_eligible(plan) && fuse_wanted(plan, cfg, policy) {
        return PlanNode::PushPipeline {
            input: Box::new(recurse_build_sides(plan, cfg, policy)),
        };
    }
    match plan {
        PlanNode::NestLoopJoin {
            outer,
            inner,
            param_outer_col,
            qual,
            fk_inner,
        } => PlanNode::NestLoopJoin {
            outer: Box::new(mode_rec(outer, cfg, policy)),
            // The inner side is rescanned per outer row; push pipelines do
            // not rescan, so it stays pull.
            inner: inner.clone(),
            param_outer_col: *param_outer_col,
            qual: qual.clone(),
            fk_inner: *fk_inner,
        },
        PlanNode::HashJoin {
            probe,
            build,
            probe_key,
            build_key,
        } => PlanNode::HashJoin {
            probe: Box::new(mode_rec(probe, cfg, policy)),
            build: Box::new(mode_rec(build, cfg, policy)),
            probe_key: *probe_key,
            build_key: *build_key,
        },
        PlanNode::MergeJoin {
            left,
            right,
            left_key,
            right_key,
        } => PlanNode::MergeJoin {
            left: Box::new(mode_rec(left, cfg, policy)),
            right: Box::new(mode_rec(right, cfg, policy)),
            left_key: *left_key,
            right_key: *right_key,
        },
        PlanNode::Sort { input, keys } => PlanNode::Sort {
            input: Box::new(mode_rec(input, cfg, policy)),
            keys: keys.clone(),
        },
        PlanNode::Aggregate {
            input,
            group_by,
            aggs,
        } => PlanNode::Aggregate {
            input: Box::new(mode_rec(input, cfg, policy)),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        PlanNode::Project { input, exprs } => PlanNode::Project {
            input: Box::new(mode_rec(input, cfg, policy)),
            exprs: exprs.clone(),
        },
        PlanNode::Filter { input, predicate } => PlanNode::Filter {
            input: Box::new(mode_rec(input, cfg, policy)),
            predicate: predicate.clone(),
        },
        PlanNode::Limit { input, limit } => PlanNode::Limit {
            input: Box::new(mode_rec(input, cfg, policy)),
            limit: *limit,
        },
        PlanNode::Buffer { input, size } => PlanNode::Buffer {
            input: Box::new(mode_rec(input, cfg, policy)),
            size: *size,
        },
        PlanNode::Materialize { input } => PlanNode::Materialize {
            input: Box::new(mode_rec(input, cfg, policy)),
        },
        PlanNode::Exchange { input, workers } => PlanNode::Exchange {
            // Fusion happens per worker pipeline, under the exchange.
            input: Box::new(mode_rec(input, cfg, policy)),
            workers: *workers,
        },
        PlanNode::PushPipeline { .. }
        | PlanNode::SeqScan { .. }
        | PlanNode::IndexScan { .. }
        | PlanNode::ReusedScan { .. }
        | PlanNode::SysScan { .. } => plan.clone(),
    }
}

/// Mark every pipeline of `plan` with its execution model under `policy`:
/// eligible pipelines are wrapped in [`PlanNode::PushPipeline`] when the
/// policy wants them fused, everything else is left for the pull executor
/// (and, after this pass, the refiner). Runs between parallelization and
/// refinement — see `crate::prepare::prepare_plan_parts_with_mode`.
///
/// Output is bit-identical across policies by construction: the marker
/// changes *how* a pipeline executes, never what it produces.
pub fn choose_pipeline_modes(
    plan: &PlanNode,
    refine_cfg: &RefineConfig,
    policy: ExecModePolicy,
) -> PlanNode {
    match policy {
        ExecModePolicy::Pull | ExecModePolicy::BufferedPull => plan.clone(),
        ExecModePolicy::Push | ExecModePolicy::Auto => mode_rec(plan, refine_cfg, policy),
    }
}

/// A two-table foreign-key equi-join to be planned: every `outer` row joins
/// at most one `inner` row via `inner`'s unique key.
#[derive(Debug, Clone)]
pub struct JoinQuery {
    /// Outer (probe / fact) table.
    pub outer_table: String,
    /// Optional filter on the outer table.
    pub outer_predicate: Option<Expr>,
    /// Join key column in the outer table.
    pub outer_key: usize,
    /// Inner (dimension) table with a unique key.
    pub inner_table: String,
    /// Join key column in the inner table (unique).
    pub inner_key: usize,
    /// Name of a B+-tree index on the inner key, if one exists.
    pub inner_index: Option<String>,
}

/// Relative per-unit costs used by [`choose_join_plan`]. Derived from the
/// operators' simulated work per call; exposed for tests and tuning.
#[derive(Debug, Clone)]
pub struct JoinCostModel {
    /// Cost of scanning one heap row.
    pub scan_row: f64,
    /// Cost of one B+-tree probe (per outer row, index nested-loop).
    pub index_probe: f64,
    /// Cost of hashing + inserting one build row.
    pub hash_build_row: f64,
    /// Cost of probing the hash table once.
    pub hash_probe_row: f64,
    /// Per-row cost of sorting (multiplied by log2 n).
    pub sort_row_log: f64,
    /// Per-row cost of the merge itself.
    pub merge_row: f64,
}

impl Default for JoinCostModel {
    fn default() -> Self {
        JoinCostModel {
            scan_row: 1.0,
            index_probe: 2.4,
            hash_build_row: 1.4,
            hash_probe_row: 0.9,
            sort_row_log: 0.25,
            merge_row: 0.6,
        }
    }
}

/// The physical choice made by the optimizer, with its estimated cost.
#[derive(Debug, Clone)]
pub struct JoinChoice {
    /// The physical plan (without buffer operators; run the refiner next).
    pub plan: PlanNode,
    /// Method name ("nestloop" | "hashjoin" | "mergejoin").
    pub method: &'static str,
    /// Estimated cost in scan-row units.
    pub cost: f64,
}

/// Estimate costs of the three join methods and return the cheapest plan.
///
/// Mirrors a System-R-style enumeration restricted to one join: index
/// nested-loop wins for selective outer filters (few probes), hash join for
/// bulk joins, merge join when its sort is amortized (rarely here, matching
/// PostgreSQL's preferences for FK joins on unsorted heaps).
pub fn choose_join_plan(
    query: &JoinQuery,
    catalog: &Catalog,
    cost: &JoinCostModel,
) -> Result<JoinChoice> {
    let outer = catalog.table(&query.outer_table)?;
    let inner = catalog.table(&query.inner_table)?;
    let outer_rows = outer.stats().row_count as f64;
    let inner_rows = inner.stats().row_count as f64;
    let sel = query
        .outer_predicate
        .as_ref()
        .map(|p| predicate_selectivity(p, &query.outer_table, catalog))
        .unwrap_or(1.0);
    let outer_out = outer_rows * sel;

    let outer_scan = PlanNode::SeqScan {
        table: query.outer_table.clone(),
        predicate: query.outer_predicate.clone(),
        projection: None,
    };

    let mut candidates: Vec<JoinChoice> = Vec::new();

    // Index nested-loop join: scan outer + one probe per surviving row.
    if let Some(index) = &query.inner_index {
        catalog.index(index)?;
        let nl_cost = outer_rows * cost.scan_row + outer_out * cost.index_probe;
        candidates.push(JoinChoice {
            plan: PlanNode::NestLoopJoin {
                outer: Box::new(outer_scan.clone()),
                inner: Box::new(PlanNode::IndexScan {
                    index: index.clone(),
                    mode: IndexMode::LookupParam,
                }),
                param_outer_col: Some(query.outer_key),
                qual: None,
                fk_inner: true,
            },
            method: "nestloop",
            cost: nl_cost,
        });
    }

    // Hash join: build the inner, probe with the outer.
    let hj_cost = inner_rows * (cost.scan_row + cost.hash_build_row)
        + outer_rows * cost.scan_row
        + outer_out * cost.hash_probe_row;
    candidates.push(JoinChoice {
        plan: PlanNode::HashJoin {
            probe: Box::new(outer_scan.clone()),
            build: Box::new(PlanNode::SeqScan {
                table: query.inner_table.clone(),
                predicate: None,
                projection: None,
            }),
            probe_key: query.outer_key,
            build_key: query.inner_key,
        },
        method: "hashjoin",
        cost: hj_cost,
    });

    // Merge join: sort the outer, read the inner in key order (index order
    // when available, else sort it too).
    let sort_outer = outer_out.max(2.0);
    let mut mj_cost = outer_rows * cost.scan_row
        + sort_outer * sort_outer.log2() * cost.sort_row_log
        + (outer_out + inner_rows) * cost.merge_row;
    let right: PlanNode = match &query.inner_index {
        Some(index) => {
            mj_cost += inner_rows * cost.scan_row;
            PlanNode::IndexScan {
                index: index.clone(),
                mode: IndexMode::Range { lo: None, hi: None },
            }
        }
        None => {
            let n = inner_rows.max(2.0);
            mj_cost += inner_rows * cost.scan_row + n * n.log2() * cost.sort_row_log;
            PlanNode::Sort {
                input: Box::new(PlanNode::SeqScan {
                    table: query.inner_table.clone(),
                    predicate: None,
                    projection: None,
                }),
                keys: vec![(query.inner_key, true)],
            }
        }
    };
    candidates.push(JoinChoice {
        plan: PlanNode::MergeJoin {
            left: Box::new(PlanNode::Sort {
                input: Box::new(outer_scan),
                keys: vec![(query.outer_key, true)],
            }),
            right: Box::new(right),
            left_key: query.outer_key,
            right_key: query.inner_key,
        },
        method: "mergejoin",
        cost: mj_cost,
    });

    candidates
        .into_iter()
        .min_by(|a, b| a.cost.total_cmp(&b.cost))
        .ok_or_else(|| DbError::InvalidPlan("no join candidates".into()))
}

/// Validate that a chosen plan produces the expected estimated cardinality
/// (diagnostic helper used by tests and EXPLAIN output).
pub fn estimated_output_rows(choice: &JoinChoice, catalog: &Catalog) -> f64 {
    estimate_rows(&choice.plan, catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bufferdb_index::BTreeIndex;
    use bufferdb_storage::{IndexDef, TableBuilder};
    use bufferdb_types::{DataType, Datum, Field, Schema, Tuple};

    fn catalog(fact_rows: i64, dim_rows: i64) -> Catalog {
        let c = Catalog::new();
        let mut fact = TableBuilder::new(
            "fact",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
            ]),
        );
        for i in 0..fact_rows {
            fact.push(Tuple::new(vec![Datum::Int(i % dim_rows), Datum::Int(i)]));
        }
        c.add_table(fact);
        let mut dim = TableBuilder::new("dim", Schema::new(vec![Field::new("d", DataType::Int)]));
        let mut btree = BTreeIndex::new();
        for i in 0..dim_rows {
            dim.push(Tuple::new(vec![Datum::Int(i)]));
            btree.insert(i, i as u32);
        }
        c.add_table(dim);
        c.add_index(IndexDef {
            name: "dim_pkey".into(),
            table: "dim".into(),
            key_column: 0,
            btree,
        });
        c
    }

    fn query(pred: Option<Expr>, index: bool) -> JoinQuery {
        JoinQuery {
            outer_table: "fact".into(),
            outer_predicate: pred,
            outer_key: 0,
            inner_table: "dim".into(),
            inner_key: 0,
            inner_index: index.then(|| "dim_pkey".to_string()),
        }
    }

    #[test]
    fn bulk_join_prefers_hash() {
        let c = catalog(100_000, 10_000);
        let choice = choose_join_plan(&query(None, true), &c, &JoinCostModel::default()).unwrap();
        assert_eq!(choice.method, "hashjoin", "cost {}", choice.cost);
    }

    #[test]
    fn selective_outer_prefers_index_nestloop() {
        let c = catalog(100_000, 10_000);
        // v < 100: ~0.1% of the outer survives; probing 100 times beats
        // building a 10k-row hash table.
        let pred = Expr::col(1).lt(Expr::lit(100));
        let choice =
            choose_join_plan(&query(Some(pred), true), &c, &JoinCostModel::default()).unwrap();
        assert_eq!(choice.method, "nestloop", "cost {}", choice.cost);
        assert!(matches!(choice.plan, PlanNode::NestLoopJoin { .. }));
    }

    #[test]
    fn no_index_excludes_nestloop() {
        let c = catalog(1000, 100);
        let pred = Expr::col(1).lt(Expr::lit(5));
        let choice =
            choose_join_plan(&query(Some(pred), false), &c, &JoinCostModel::default()).unwrap();
        assert_ne!(choice.method, "nestloop");
    }

    #[test]
    fn chosen_plans_execute_and_agree() {
        use crate::exec::execute_query;
        use crate::session::QueryOpts;
        use bufferdb_cachesim::MachineConfig;
        let c = catalog(2000, 100);
        let machine = MachineConfig::pentium4_like();
        let mut counts = Vec::new();
        // Force each method by manipulating the candidate set indirectly:
        // run the chosen plan and the always-available hash plan.
        for pred in [None, Some(Expr::col(1).lt(Expr::lit(50)))] {
            let choice =
                choose_join_plan(&query(pred.clone(), true), &c, &JoinCostModel::default())
                    .unwrap();
            let rows = execute_query(&choice.plan, &c, &machine, &QueryOpts::new())
                .into_result()
                .map(|(rows, _, _)| rows)
                .unwrap();
            counts.push((pred.is_some(), rows.len()));
        }
        assert_eq!(
            counts[0].1, 2000,
            "unfiltered FK join returns every fact row"
        );
        assert_eq!(counts[1].1, 50);
    }

    #[test]
    fn unknown_tables_error() {
        let c = catalog(10, 10);
        let mut q = query(None, false);
        q.outer_table = "nope".into();
        assert!(choose_join_plan(&q, &c, &JoinCostModel::default()).is_err());
    }

    #[test]
    fn cost_estimates_are_positive_and_ordered() {
        let c = catalog(50_000, 5_000);
        let choice = choose_join_plan(&query(None, true), &c, &JoinCostModel::default()).unwrap();
        assert!(choice.cost > 0.0);
        assert!(estimated_output_rows(&choice, &c) > 0.0);
    }

    fn agg_over_scan() -> PlanNode {
        PlanNode::Aggregate {
            input: Box::new(PlanNode::SeqScan {
                table: "fact".into(),
                predicate: Some(Expr::col(1).lt(Expr::lit(100))),
                projection: None,
            }),
            group_by: vec![],
            aggs: vec![crate::plan::AggSpec::count_star("n")],
        }
    }

    fn push_count(p: &PlanNode) -> usize {
        let own = usize::from(matches!(p, PlanNode::PushPipeline { .. }));
        own + p.children().iter().map(|c| push_count(c)).sum::<usize>()
    }

    #[test]
    fn push_policy_fuses_whole_eligible_pipeline() {
        let cfg = RefineConfig::default();
        let plan = agg_over_scan();
        let marked = choose_pipeline_modes(&plan, &cfg, ExecModePolicy::Push);
        assert!(
            matches!(&marked, PlanNode::PushPipeline { input } if matches!(**input, PlanNode::Aggregate { .. })),
            "aggregate caps the group: {marked:?}"
        );
        assert_eq!(push_count(&marked), 1);
    }

    #[test]
    fn pull_policies_leave_the_plan_untouched() {
        let cfg = RefineConfig::default();
        let plan = agg_over_scan();
        for policy in [ExecModePolicy::Pull, ExecModePolicy::BufferedPull] {
            assert_eq!(choose_pipeline_modes(&plan, &cfg, policy), plan);
        }
    }

    #[test]
    fn auto_fuses_only_when_the_group_fits_l1i() {
        // With shared segments counted once, COUNT(*) over a filtered scan
        // plus the push driver unions to ~15.6K: inside the default 16K
        // budget, but well over a 12K one.
        let plan = agg_over_scan();
        let tight = RefineConfig {
            l1i_capacity: 12 * 1024,
            ..RefineConfig::default()
        };
        assert_eq!(
            push_count(&choose_pipeline_modes(&plan, &tight, ExecModePolicy::Auto)),
            0,
            "over-budget group must stay buffered pull"
        );
        let roomy = RefineConfig::default();
        assert_eq!(
            push_count(&choose_pipeline_modes(&plan, &roomy, ExecModePolicy::Auto)),
            1
        );
        // A bare scan is a trivial group: auto never fuses it.
        let scan = PlanNode::SeqScan {
            table: "fact".into(),
            predicate: None,
            projection: None,
        };
        assert_eq!(
            push_count(&choose_pipeline_modes(&scan, &roomy, ExecModePolicy::Auto)),
            0
        );
    }

    #[test]
    fn nestloop_inner_is_never_fused() {
        let cfg = RefineConfig::default();
        let scan = PlanNode::SeqScan {
            table: "fact".into(),
            predicate: None,
            projection: None,
        };
        let plan = PlanNode::NestLoopJoin {
            outer: Box::new(scan.clone()),
            inner: Box::new(scan),
            param_outer_col: None,
            qual: None,
            fk_inner: false,
        };
        let marked = choose_pipeline_modes(&plan, &cfg, ExecModePolicy::Push);
        let PlanNode::NestLoopJoin { outer, inner, .. } = &marked else {
            panic!("root must stay a nestloop: {marked:?}");
        };
        assert!(matches!(**outer, PlanNode::PushPipeline { .. }));
        assert!(
            matches!(**inner, PlanNode::SeqScan { .. }),
            "rescanned inner must stay pull"
        );
    }

    #[test]
    fn push_fuses_under_exchange_and_into_build_sides() {
        let cfg = RefineConfig::default();
        let scan = PlanNode::SeqScan {
            table: "fact".into(),
            predicate: Some(Expr::col(1).lt(Expr::lit(10))),
            projection: None,
        };
        let plan = PlanNode::Aggregate {
            input: Box::new(PlanNode::Exchange {
                input: Box::new(PlanNode::HashJoin {
                    probe: Box::new(scan.clone()),
                    build: Box::new(scan),
                    probe_key: 0,
                    build_key: 0,
                }),
                workers: 2,
            }),
            group_by: vec![],
            aggs: vec![crate::plan::AggSpec::count_star("n")],
        };
        let marked = choose_pipeline_modes(&plan, &cfg, ExecModePolicy::Push);
        // The exchange blocks fusion of the aggregate; below it the join
        // pipeline fuses, and the build side becomes its own group.
        assert_eq!(push_count(&marked), 2, "{marked:?}");
        let PlanNode::Aggregate { input, .. } = &marked else {
            panic!()
        };
        let PlanNode::Exchange { input, .. } = &**input else {
            panic!("exchange preserved: {marked:?}")
        };
        let PlanNode::PushPipeline { input } = &**input else {
            panic!("join pipeline fused: {marked:?}")
        };
        let PlanNode::HashJoin { build, .. } = &**input else {
            panic!()
        };
        assert!(matches!(**build, PlanNode::PushPipeline { .. }));
    }
}
