//! Service-level objectives over the windowed time series.
//!
//! An [`SloConfig`] states two objectives: a latency ceiling (p95 of one
//! latency series must stay at or below `p95_ns`) and an error-rate
//! ceiling (`errors / (ok + errors)` per window must stay at or below
//! `max_error_rate`). An [`SloTracker`] grades each sealed
//! [`WindowSnapshot`] into an [`SloWindow`] verdict — a window passes only
//! if both objectives hold; a window with no traffic passes vacuously —
//! and keeps **burn** accounting: the run is granted a budget of failing
//! windows (`window_budget`, a fraction of all windows), and
//! [`SloTracker::burn`] reports how much of it the run consumed (1.0 =
//! budget exactly exhausted, above 1.0 = SLO violated overall).
//!
//! Everything is computed from virtual-time windows, so verdicts are
//! deterministic for a given seed and can be asserted in tests and CI.

use super::timeseries::WindowSnapshot;
use bufferdb_storage::{FnSysTable, SysTableRef};
use bufferdb_types::{DataType, Datum, Field, Schema, Tuple};
use std::sync::{Arc, Mutex};

/// Objectives an [`SloTracker`] grades windows against.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Latency series the p95 objective applies to (e.g. `"all"`).
    pub latency_series: String,
    /// Per-window p95 latency ceiling in virtual nanoseconds.
    pub p95_ns: u64,
    /// Counter holding per-window successful completions.
    pub ok_counter: String,
    /// Counter holding per-window failed completions.
    pub error_counter: String,
    /// Per-window error-rate ceiling, `errors / (ok + errors)` in `[0, 1]`.
    pub max_error_rate: f64,
    /// Fraction of windows allowed to fail before the run-level SLO is
    /// considered violated (the error budget).
    pub window_budget: f64,
}

impl Default for SloConfig {
    /// p95 of `"all"` ≤ 1 virtual second, ≤ 1% errors, 10% of windows
    /// may fail.
    fn default() -> Self {
        SloConfig {
            latency_series: "all".to_string(),
            p95_ns: 1_000_000_000,
            ok_counter: "queries_ok".to_string(),
            error_counter: "queries_error".to_string(),
            max_error_rate: 0.01,
            window_budget: 0.1,
        }
    }
}

/// Verdict for one window.
#[derive(Debug, Clone, PartialEq)]
pub struct SloWindow {
    /// Index of the graded window.
    pub index: u64,
    /// Completions observed in the window (ok + errors).
    pub completions: u64,
    /// Failed completions observed in the window.
    pub errors: u64,
    /// Measured p95 of the configured latency series (0 when no samples).
    pub p95_ns: u64,
    /// Measured error rate (0 when no completions).
    pub error_rate: f64,
    /// Latency objective held (vacuously true without samples).
    pub latency_ok: bool,
    /// Error objective held (vacuously true without completions).
    pub errors_ok: bool,
}

impl SloWindow {
    /// Whether the window passed both objectives.
    pub fn ok(&self) -> bool {
        self.latency_ok && self.errors_ok
    }
}

/// Grades windows against an [`SloConfig`] and accounts budget burn.
#[derive(Debug)]
pub struct SloTracker {
    cfg: SloConfig,
    windows: Vec<SloWindow>,
}

impl SloTracker {
    /// A tracker with no windows observed yet.
    pub fn new(cfg: SloConfig) -> Self {
        SloTracker {
            cfg,
            windows: Vec::new(),
        }
    }

    /// The objectives this tracker grades against.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Grade one sealed window and record its verdict.
    pub fn observe(&mut self, w: &WindowSnapshot) -> &SloWindow {
        let ok = w.counter(&self.cfg.ok_counter);
        let errors = w.counter(&self.cfg.error_counter);
        let completions = ok + errors;
        let (samples, p95_ns) = w
            .latency_for(&self.cfg.latency_series)
            .map(|s| (s.count, s.p95))
            .unwrap_or((0, 0));
        let error_rate = if completions == 0 {
            0.0
        } else {
            errors as f64 / completions as f64
        };
        self.windows.push(SloWindow {
            index: w.index,
            completions,
            errors,
            p95_ns,
            error_rate,
            latency_ok: samples == 0 || p95_ns <= self.cfg.p95_ns,
            errors_ok: completions == 0 || error_rate <= self.cfg.max_error_rate,
        });
        self.windows.last().expect("just pushed")
    }

    /// All verdicts in observation order.
    pub fn windows(&self) -> &[SloWindow] {
        &self.windows
    }

    /// Number of windows that passed both objectives.
    pub fn passed(&self) -> u64 {
        self.windows.iter().filter(|w| w.ok()).count() as u64
    }

    /// Number of windows that failed at least one objective.
    pub fn failed(&self) -> u64 {
        self.windows.len() as u64 - self.passed()
    }

    /// Budget burn: the failing-window fraction divided by the budget.
    /// 0.0 with no windows; `INFINITY` when windows failed against a zero
    /// budget. Values above 1.0 mean the run-level SLO is violated.
    pub fn burn(&self) -> f64 {
        if self.windows.is_empty() {
            return 0.0;
        }
        let failed_frac = self.failed() as f64 / self.windows.len() as f64;
        if self.cfg.window_budget <= 0.0 {
            if failed_frac > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            failed_frac / self.cfg.window_budget
        }
    }
}

/// Build the `sys.slo_windows` provider over a shared tracker: one row per
/// graded window (index, completions, errors, measured p95 and error rate,
/// and the three verdict booleans). Register it under `"sys.slo_windows"`
/// with [`bufferdb_storage::Catalog::register_sys_table`]; the workload
/// driver keeps observing windows through the same `Arc<Mutex<…>>` and the
/// table always reflects the latest verdicts.
pub fn slo_windows_table(tracker: Arc<Mutex<SloTracker>>) -> SysTableRef {
    let schema = Schema::new(vec![
        Field::new("index", DataType::Int),
        Field::new("completions", DataType::Int),
        Field::new("errors", DataType::Int),
        Field::new("p95_ns", DataType::Int),
        Field::new("error_rate", DataType::Float),
        Field::new("latency_ok", DataType::Bool),
        Field::new("errors_ok", DataType::Bool),
        Field::new("ok", DataType::Bool),
    ])
    .into_ref();
    Arc::new(FnSysTable::new(schema, move || {
        let t = tracker.lock().unwrap_or_else(|p| p.into_inner());
        t.windows()
            .iter()
            .map(|w| {
                Tuple::new(vec![
                    Datum::Int(w.index as i64),
                    Datum::Int(w.completions as i64),
                    Datum::Int(w.errors as i64),
                    Datum::Int(w.p95_ns as i64),
                    Datum::Float(w.error_rate),
                    Datum::Bool(w.latency_ok),
                    Datum::Bool(w.errors_ok),
                    Datum::Bool(w.ok()),
                ])
            })
            .collect()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::timeseries::TimeSeriesRegistry;

    fn cfg() -> SloConfig {
        SloConfig {
            p95_ns: 100,
            max_error_rate: 0.2,
            window_budget: 0.5,
            ..SloConfig::default()
        }
    }

    #[test]
    fn grades_latency_and_error_objectives_per_window() {
        let mut ts = TimeSeriesRegistry::new(1000);
        // Window 0: fast and clean → pass.
        ts.record_latency("all", 10, 50);
        ts.counter_add("queries_ok", 10, 1);
        // Window 1: latency blown.
        ts.record_latency("all", 1010, 5000);
        ts.counter_add("queries_ok", 1010, 1);
        // Window 2: error rate blown (1 of 2 = 50% > 20%).
        ts.record_latency("all", 2010, 50);
        ts.counter_add("queries_ok", 2010, 1);
        ts.counter_add("queries_error", 2020, 1);
        // Window 3: idle → vacuous pass.
        let done = ts.finish(4000);
        let mut slo = SloTracker::new(cfg());
        for w in &done.windows {
            slo.observe(w);
        }
        let ok: Vec<bool> = slo.windows().iter().map(|w| w.ok()).collect();
        assert_eq!(ok, vec![true, false, false, true]);
        assert!(!slo.windows()[1].latency_ok && slo.windows()[1].errors_ok);
        assert!(slo.windows()[2].latency_ok && !slo.windows()[2].errors_ok);
        assert_eq!((slo.passed(), slo.failed()), (2, 2));
        // 2/4 windows failed against a 0.5 budget → burn exactly 1.0.
        assert_eq!(slo.burn(), 1.0);
    }

    #[test]
    fn zero_budget_burns_infinite_on_any_failure() {
        let mut ts = TimeSeriesRegistry::new(100);
        ts.record_latency("all", 1, 5000);
        ts.counter_add("queries_ok", 1, 1);
        let done = ts.finish(100);
        let mut slo = SloTracker::new(SloConfig {
            window_budget: 0.0,
            p95_ns: 100,
            ..SloConfig::default()
        });
        slo.observe(&done.windows[0]);
        assert!(slo.burn().is_infinite());
        assert_eq!(SloTracker::new(cfg()).burn(), 0.0, "no windows, no burn");
    }
}
