//! A set-associative cache with true-LRU replacement.
//!
//! Used for L1i (trace-cache stand-in), L1d and L2. Only tags are modeled —
//! the simulator cares about hit/miss behaviour, not contents.

use crate::config::CacheConfig;
use crate::heat::HeatCell;
use std::collections::HashMap;

/// Opt-in cross-owner eviction attribution (see [`Cache::set_owner`]).
///
/// Only the *evictor* of each currently-absent line is remembered: when a
/// miss refills a line whose last eviction was performed by a different
/// owner tag, the miss counts as a cross-owner miss. Lines never evicted
/// (compulsory misses) and lines the same owner pushed out both stay in the
/// ordinary miss count only.
#[derive(Debug, Clone)]
struct OwnerTrack {
    /// Tag charged for evictions performed from now on.
    owner: u32,
    /// line -> owner tag that evicted it (entries removed on refill).
    evicted_by: HashMap<u64, u32>,
    cross_misses: u64,
}

/// Opt-in per-segment heat attribution (see [`Cache::enable_heat`]).
///
/// Kept boxed and separate from [`OwnerTrack`] so the plain and
/// owner-tracked hot paths stay untouched when heat is off. Segment ids are
/// small integers interned by the machine layer; id 0 means "no segment
/// announced" ([`crate::heat::UNTRACKED_SEGMENT`]).
#[derive(Debug, Clone, Default)]
struct HeatTrack {
    /// Segment charged for misses and evictions from now on.
    cur_seg: u16,
    /// `(segment, owner)` → accumulated cell.
    cells: HashMap<(u16, u32), HeatCell>,
    /// line → `(segment, owner)` that evicted it (removed on refill).
    evicted: HashMap<u64, (u16, u32)>,
    /// line → segment that fetched it (for residency snapshots).
    line_seg: HashMap<u64, u16>,
}

impl HeatTrack {
    fn cell(&mut self, seg: u16, owner: u32) -> &mut HeatCell {
        self.cells.entry((seg, owner)).or_default()
    }
}

/// One cache level. Addresses are byte addresses; the cache maps them to
/// lines internally.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    line_shift: u32,
    set_mask: u64,
    /// `tags[set * assoc + way]`; `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`; larger = more recent.
    stamps: Vec<u64>,
    tick: u64,
    accesses: u64,
    misses: u64,
    /// `None` (the default) keeps the hot path free of attribution work.
    track: Option<OwnerTrack>,
    /// `None` (the default) keeps the miss path free of heat-ledger work.
    heat: Option<Box<HeatTrack>>,
}

impl Cache {
    /// Build an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        debug_assert!(cfg.validate().is_ok(), "invalid cache config: {cfg:?}");
        let sets = cfg.sets();
        Cache {
            cfg,
            line_shift: cfg.line_size.trailing_zeros(),
            set_mask: (sets - 1) as u64,
            tags: vec![u64::MAX; sets * cfg.associativity],
            stamps: vec![0; sets * cfg.associativity],
            tick: 0,
            accesses: 0,
            misses: 0,
            track: None,
            heat: None,
        }
    }

    /// Enable cross-owner eviction attribution (if not already on) and set
    /// the owner tag charged for evictions from this point forward.
    ///
    /// Misses on lines whose most recent eviction was performed under a
    /// *different* tag accumulate in [`Cache::cross_misses`]. Tracking is
    /// off by default and costs nothing until the first call.
    pub fn set_owner(&mut self, tag: u32) {
        match &mut self.track {
            Some(t) => t.owner = tag,
            None => {
                self.track = Some(OwnerTrack {
                    owner: tag,
                    evicted_by: HashMap::new(),
                    cross_misses: 0,
                })
            }
        }
    }

    /// Misses on lines last evicted by a different owner tag (a subset of
    /// [`Cache::misses`]); 0 when tracking was never enabled.
    pub fn cross_misses(&self) -> u64 {
        self.track.as_ref().map_or(0, |t| t.cross_misses)
    }

    /// Enable the per-(segment, owner) heat ledger. Idempotent; off by
    /// default, and until enabled the miss path pays nothing for it. Enable
    /// on a *cold* cache for exact `Σ misses == Cache::misses` conservation
    /// (misses taken before enabling are in no cell).
    pub fn enable_heat(&mut self) {
        if self.heat.is_none() {
            self.heat = Some(Box::default());
        }
    }

    /// Whether the heat ledger is on.
    pub fn heat_enabled(&self) -> bool {
        self.heat.is_some()
    }

    /// Announce the code segment charged for misses and evictions from this
    /// point forward (no-op while heat is disabled). Id 0 is reserved for
    /// "no segment announced".
    pub fn set_heat_segment(&mut self, seg: u16) {
        if let Some(h) = &mut self.heat {
            h.cur_seg = seg;
        }
    }

    /// The accumulated heat ledger as `((segment id, owner), cell)` rows;
    /// empty when heat was never enabled.
    pub fn heat_cells(&self) -> Vec<((u16, u32), HeatCell)> {
        self.heat
            .as_ref()
            .map(|h| h.cells.iter().map(|(&k, &v)| (k, v)).collect())
            .unwrap_or_default()
    }

    /// Point-in-time residency: `(set index, segment id, resident lines)`
    /// for every (set, segment) pair with at least one resident line. Lines
    /// fetched before heat was enabled count under segment 0.
    pub fn heat_residency(&self) -> Vec<(usize, u16, u32)> {
        let Some(h) = &self.heat else {
            return Vec::new();
        };
        let mut acc: HashMap<(usize, u16), u32> = HashMap::new();
        for (i, &tag) in self.tags.iter().enumerate() {
            if tag == u64::MAX {
                continue;
            }
            let set = i / self.cfg.associativity;
            let seg = h.line_seg.get(&tag).copied().unwrap_or(0);
            *acc.entry((set, seg)).or_insert(0) += 1;
        }
        acc.into_iter().map(|((s, g), n)| (s, g, n)).collect()
    }

    /// Number of sets in this cache.
    pub fn sets(&self) -> usize {
        self.set_mask as usize + 1
    }

    /// Geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Access the line containing `addr`. Returns `true` on hit. A miss
    /// fills the line, evicting the LRU way of its set.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.tick += 1;
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let assoc = self.cfg.associativity;
        let base = set * assoc;
        let ways = &mut self.tags[base..base + assoc];

        // Hit path: scan the ways.
        for (w, tag) in ways.iter().enumerate() {
            if *tag == line {
                self.stamps[base + w] = self.tick;
                return true;
            }
        }

        // Miss: evict LRU way.
        self.misses += 1;
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..assoc {
            let s = self.stamps[base + w];
            if self.tags[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if s < oldest {
                oldest = s;
                victim = w;
            }
        }
        let old = self.tags[base + victim];
        let mut cross = false;
        if let Some(t) = &mut self.track {
            if t.evicted_by.remove(&line).is_some_and(|tag| tag != t.owner) {
                t.cross_misses += 1;
                cross = true;
            }
            if old != u64::MAX {
                t.evicted_by.insert(old, t.owner);
            }
        }
        if let Some(h) = &mut self.heat {
            // The cross verdict comes from the owner track above — the heat
            // ledger never re-derives it, so the two can never disagree and
            // Σ cell.cross_misses == cross_misses() holds unconditionally.
            let owner = self.track.as_ref().map_or(0, |t| t.owner);
            let seg = h.cur_seg;
            let evictor = h.evicted.remove(&line);
            if cross {
                // Attribute the cross miss to whoever evicted the line; a
                // missing record (heat enabled after the eviction) lands on
                // the untracked segment instead of breaking conservation.
                let (ev_seg, ev_owner) = evictor.unwrap_or((0, u32::MAX));
                h.cell(ev_seg, ev_owner).cross_caused += 1;
            }
            let cell = h.cell(seg, owner);
            cell.misses += 1;
            if cross {
                cell.cross_misses += 1;
            }
            if old != u64::MAX {
                h.cell(seg, owner).evictions += 1;
                h.evicted.insert(old, (seg, owner));
                h.line_seg.remove(&old);
            }
            h.line_seg.insert(line, seg);
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.tick;
        false
    }

    /// Probe without filling: is the line resident?
    pub fn contains(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let base = set * self.cfg.associativity;
        self.tags[base..base + self.cfg.associativity].contains(&line)
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio in [0, 1]; 0 when never accessed.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Empty the cache (counters are preserved). A flush is not an
    /// eviction *by* anyone, so pending cross-owner attributions clear too.
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        if let Some(t) = &mut self.track {
            t.evicted_by.clear();
        }
        if let Some(h) = &mut self.heat {
            h.evicted.clear();
            h.line_seg.clear();
        }
    }

    /// Number of resident lines (for invariants/tests).
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != u64::MAX).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny local SplitMix64 so the simulator crate stays dependency-free.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn small() -> Cache {
        // 4 sets * 2 ways * 64 B = 512 B
        Cache::new(CacheConfig {
            capacity: 512,
            line_size: 64,
            associativity: 2,
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = small();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1001)); // same line
        assert_eq!(c.misses(), 1);
        assert_eq!(c.accesses(), 3);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Three lines mapping to the same set (set stride = 4 lines = 256 B).
        let (a, b, d) = (0x0, 0x100, 0x200);
        c.access(a);
        c.access(b);
        c.access(a); // a is now MRU
        c.access(d); // evicts b (LRU)
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn capacity_thrash_when_working_set_exceeds_ways() {
        let mut c = small();
        // 3 lines in one 2-way set, accessed round-robin: always miss after warmup.
        let lines = [0x0u64, 0x100, 0x200];
        for l in lines {
            c.access(l);
        }
        let misses_before = c.misses();
        for _ in 0..10 {
            for l in lines {
                c.access(l);
            }
        }
        // LRU + cyclic access over assoc+1 lines misses every time.
        assert_eq!(c.misses() - misses_before, 30);
    }

    #[test]
    fn working_set_within_capacity_stops_missing() {
        let mut c = small();
        let lines = [0x0u64, 0x100]; // 2 lines, 2 ways
        for _ in 0..10 {
            for l in lines {
                c.access(l);
            }
        }
        assert_eq!(c.misses(), 2); // only compulsory misses
    }

    #[test]
    fn flush_empties_but_keeps_counters() {
        let mut c = small();
        c.access(0x40);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.accesses(), 1);
        assert!(!c.access(0x40)); // compulsory miss again
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = small();
        for set in 0..4u64 {
            c.access(set * 64);
        }
        for set in 0..4u64 {
            assert!(c.access(set * 64), "set {set} should hit");
        }
    }

    #[test]
    fn cross_owner_misses_attributed_to_evictor() {
        let mut c = small();
        c.set_owner(1);
        // Owner 1 fills a 2-way set with lines a and b.
        let (a, b, d) = (0x0u64, 0x100, 0x200);
        c.access(a);
        c.access(b);
        assert_eq!(c.cross_misses(), 0, "compulsory misses are not cross");
        // Owner 2 evicts a (LRU) with its own line d.
        c.set_owner(2);
        c.access(d);
        assert_eq!(c.cross_misses(), 0, "owner 2's compulsory miss");
        // Owner 1 re-misses on a: evicted by owner 2 => cross miss.
        c.set_owner(1);
        assert!(!c.access(a));
        assert_eq!(c.cross_misses(), 1);
        // Owner 1 now evicted d; owner 1 re-missing on its own victim b
        // (evicted by owner 1's refill of a) is NOT a cross miss.
        assert!(!c.access(b));
        assert_eq!(c.cross_misses(), 1);
    }

    #[test]
    fn flush_clears_pending_attributions() {
        let mut c = small();
        c.set_owner(1);
        let (a, b, d) = (0x0u64, 0x100, 0x200);
        c.access(a);
        c.access(b);
        c.set_owner(2);
        c.access(d); // evicts a under owner 2
        c.flush();
        c.set_owner(1);
        c.access(a); // would be cross without the flush
        assert_eq!(c.cross_misses(), 0);
    }

    #[test]
    fn untracked_cache_reports_zero_cross() {
        let mut c = small();
        for l in [0x0u64, 0x100, 0x200, 0x0, 0x100] {
            c.access(l);
        }
        assert_eq!(c.cross_misses(), 0);
    }

    /// Against a reference model: a cache never holds more lines than its
    /// capacity, over many random address streams.
    #[test]
    fn resident_never_exceeds_capacity() {
        for seed in 0..64u64 {
            let mut state = seed;
            let mut c = small();
            let len = 1 + (splitmix(&mut state) % 200) as usize;
            for _ in 0..len {
                c.access(splitmix(&mut state) % 0x10000);
            }
            assert!(c.resident_lines() <= 8); // 4 sets * 2 ways
        }
    }

    #[test]
    fn heat_cells_conserve_misses_and_cross() {
        let mut c = small();
        c.enable_heat();
        c.set_owner(1);
        c.set_heat_segment(10);
        let (a, b, d) = (0x0u64, 0x100, 0x200);
        c.access(a);
        c.access(b);
        c.set_owner(2);
        c.set_heat_segment(20);
        c.access(d); // evicts a under (seg 20, owner 2)
        c.set_owner(1);
        c.set_heat_segment(10);
        c.access(a); // cross miss, caused by (20, 2)
        let cells = c.heat_cells();
        let sum_miss: u64 = cells.iter().map(|(_, v)| v.misses).sum();
        let sum_cross: u64 = cells.iter().map(|(_, v)| v.cross_misses).sum();
        let sum_caused: u64 = cells.iter().map(|(_, v)| v.cross_caused).sum();
        assert_eq!(sum_miss, c.misses());
        assert_eq!(sum_cross, c.cross_misses());
        assert_eq!(sum_caused, c.cross_misses());
        let victim = cells.iter().find(|(k, _)| *k == (10, 1)).unwrap().1;
        assert_eq!(victim.cross_misses, 1, "victim side charged");
        let evictor = cells.iter().find(|(k, _)| *k == (20, 2)).unwrap().1;
        assert_eq!(evictor.cross_caused, 1, "evictor side charged");
        assert_eq!(evictor.evictions, 1);
    }

    #[test]
    fn heat_conservation_under_random_streams() {
        for seed in 0..32u64 {
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) + 1;
            let mut c = small();
            c.enable_heat();
            let len = 50 + (splitmix(&mut state) % 400) as usize;
            for _ in 0..len {
                let owner = 1 + (splitmix(&mut state) % 3) as u32;
                let seg = (splitmix(&mut state) % 4) as u16;
                c.set_owner(owner);
                c.set_heat_segment(seg);
                c.access(splitmix(&mut state) % 0x1000);
            }
            let cells = c.heat_cells();
            let sum_miss: u64 = cells.iter().map(|(_, v)| v.misses).sum();
            let sum_cross: u64 = cells.iter().map(|(_, v)| v.cross_misses).sum();
            let sum_caused: u64 = cells.iter().map(|(_, v)| v.cross_caused).sum();
            assert_eq!(sum_miss, c.misses(), "seed {seed}");
            assert_eq!(sum_cross, c.cross_misses(), "seed {seed}");
            assert_eq!(sum_caused, c.cross_misses(), "seed {seed}");
            let resident: u32 = c.heat_residency().iter().map(|&(_, _, n)| n).sum();
            assert_eq!(resident as usize, c.resident_lines(), "seed {seed}");
        }
    }

    #[test]
    fn heat_off_reports_empty_and_counts_match_enabled() {
        // The ledger must be observationally free: the same access stream
        // produces identical hit/miss results with heat on and off.
        let stream: Vec<u64> = (0..200).map(|i| (i * 37) % 0x800).collect();
        let mut plain = small();
        let mut hot = small();
        hot.enable_heat();
        hot.set_heat_segment(3);
        for &a in &stream {
            assert_eq!(plain.access(a), hot.access(a));
        }
        assert_eq!(plain.misses(), hot.misses());
        assert!(plain.heat_cells().is_empty());
        assert!(plain.heat_residency().is_empty());
    }

    #[test]
    fn heat_flush_clears_pending_attribution_state() {
        let mut c = small();
        c.enable_heat();
        c.set_owner(1);
        c.set_heat_segment(1);
        let (a, b, d) = (0x0u64, 0x100, 0x200);
        c.access(a);
        c.access(b);
        c.set_owner(2);
        c.set_heat_segment(2);
        c.access(d);
        c.flush();
        c.set_owner(1);
        c.set_heat_segment(1);
        c.access(a);
        let cells = c.heat_cells();
        let sum_caused: u64 = cells.iter().map(|(_, v)| v.cross_caused).sum();
        assert_eq!(sum_caused, 0, "flush must clear eviction attributions");
        assert_eq!(c.heat_residency().len(), 1, "only line a resident");
    }

    /// Hit/miss agrees with an exact reference LRU simulation across many
    /// random address streams.
    #[test]
    fn matches_reference_lru() {
        for seed in 0..64u64 {
            let mut state = seed.wrapping_mul(0x5851_F42D_4C95_7F2D);
            let cfg = CacheConfig {
                capacity: 512,
                line_size: 64,
                associativity: 2,
            };
            let mut c = Cache::new(cfg);
            // Reference: per-set Vec of lines ordered MRU-first.
            let mut sets: Vec<Vec<u64>> = vec![Vec::new(); 4];
            let len = 1 + (splitmix(&mut state) % 300) as usize;
            for _ in 0..len {
                let a = splitmix(&mut state) % 0x2000;
                let line = a >> 6;
                let set = (line & 3) as usize;
                let expect_hit = sets[set].contains(&line);
                if expect_hit {
                    sets[set].retain(|&l| l != line);
                } else if sets[set].len() == 2 {
                    sets[set].pop();
                }
                sets[set].insert(0, line);
                assert_eq!(c.access(a), expect_hit, "seed {seed} addr {a:#x}");
            }
        }
    }
}
