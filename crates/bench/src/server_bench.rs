//! `repro server`: the cross-query instruction-cache interference sweep.
//!
//! Every cell executes the same fixed job list — `TOTAL_JOBS` (24) queries
//! cycling an 8-plan pool of distinct operator mixes — on one
//! [`bufferdb_core::server::virt::VirtualServer`]; the only variable is
//! how many closed-loop client streams drain the list concurrently.
//! Admission slots equal the stream count, so S jobs' drives time-share
//! the session core (and their phases the morsel pool); misses a query
//! takes on lines evicted by another query's code land in its
//! `l1i_cross_misses` bucket. With one stream the queries run back to
//! back — the footprint is displaced once per *query*; with S streams it
//! is displaced once per *quantum*. The sweep crosses stream count with
//! buffer policy:
//!
//! - `none`     — parallelized plans, no buffer operators;
//! - `static`   — plans refined once by the paper's §6 algorithm;
//! - `adaptive` — per-plan feedback loop (the plan-cache model: clients
//!   running the same query share one plan and its feedback state): each
//!   completion's profile runs one [`adapt_plan`] pass, so the refiner
//!   *observes the concurrency* — interference inflates observed group
//!   miss rates, which tightens the effective L1i budget and splits
//!   groups the static pass kept whole.
//!
//! The virtual scheduler is deterministic, so the committed
//! `BENCH_server.json` is bit-stable for a (scale, seed) and CI can gate on
//! the adapted interference level directly.

use crate::json::{Json, SCHEMA_VERSION};
use bufferdb_cachesim::MachineConfig;
use bufferdb_core::parallel::parallelize_plan;
use bufferdb_core::plan::PlanNode;
use bufferdb_core::prepare::{adapt_plan, AdaptConfig, AdaptState};
use bufferdb_core::refine::{refine_plan, RefineConfig};
use bufferdb_core::server::virt::VirtualServer;
use bufferdb_core::server::{ServerConfig, SubmitSpec};
use bufferdb_core::session::QueryOpts;
use bufferdb_storage::Catalog;
use bufferdb_tpch::queries::{self, JoinMethod};
use std::fmt::Write as _;

/// Stream counts the sweep crosses with each buffer policy.
pub const STREAM_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Pool workers. Wider than the largest stream count so admitted queries
/// always share free workers (that sharing is the interference channel).
const WORKERS: usize = 10;

/// Exchange lanes per query plan.
const LANES: usize = 2;

/// Total queries per sweep cell, split evenly across the streams (24 is
/// divisible by every entry of [`STREAM_COUNTS`]).
const TOTAL_JOBS: usize = 24;

/// Buffer policy of one sweep cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Parallelized plans with no buffer operators.
    None,
    /// Statically refined plans (§6, one pass at prepare time).
    Static,
    /// Static start plus a per-stream profile-feedback adaptation loop.
    Adaptive,
}

impl Policy {
    /// All policies, in report order.
    pub const ALL: [Policy; 3] = [Policy::None, Policy::Static, Policy::Adaptive];

    /// Stable name used in the report and CI gates.
    pub fn name(self) -> &'static str {
        match self {
            Policy::None => "none",
            Policy::Static => "static",
            Policy::Adaptive => "adaptive",
        }
    }
}

/// One (stream count × policy) cell of the sweep.
#[derive(Debug, Clone)]
pub struct ServerSweepEntry {
    /// Concurrent closed-loop streams (= admission slots).
    pub streams: u64,
    /// Buffer policy name.
    pub policy: String,
    /// Queries completed.
    pub queries: u64,
    /// Queries that failed (must be 0; kept for the analyzer).
    pub failed: u64,
    /// Morsel units executed through the shared scheduler.
    pub units: u64,
    /// Units claimed outside the claimant's preferred shard.
    pub steals: u64,
    /// Total simulated instructions over all queries.
    pub instructions: u64,
    /// Total simulated L1i misses over all queries.
    pub l1i_misses: u64,
    /// Misses on lines another query's code evicted (⊆ `l1i_misses`).
    pub l1i_cross_misses: u64,
    /// Conserved modeled CPU seconds over all queries.
    pub modeled_cpu_seconds: f64,
    /// Mean per-query latency (arrival → completion) in virtual ms.
    pub mean_latency_ms: f64,
    /// Virtual time at which the last query completed, ms.
    pub makespan_ms: f64,
}

impl ServerSweepEntry {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("streams".into(), Json::U64(self.streams)),
            ("policy".into(), Json::str(&self.policy)),
            ("queries".into(), Json::U64(self.queries)),
            ("failed".into(), Json::U64(self.failed)),
            ("units".into(), Json::U64(self.units)),
            ("steals".into(), Json::U64(self.steals)),
            ("instructions".into(), Json::U64(self.instructions)),
            ("l1i_misses".into(), Json::U64(self.l1i_misses)),
            ("l1i_cross_misses".into(), Json::U64(self.l1i_cross_misses)),
            (
                "modeled_cpu_seconds".into(),
                Json::F64(self.modeled_cpu_seconds),
            ),
            ("mean_latency_ms".into(), Json::F64(self.mean_latency_ms)),
            ("makespan_ms".into(), Json::F64(self.makespan_ms)),
        ])
    }
}

/// The machine-readable interference-sweep report (`BENCH_server.json`).
#[derive(Debug, Clone, Default)]
pub struct ServerReport {
    /// TPC-H scale factor.
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Pool workers every cell ran with.
    pub workers: u64,
    /// Exchange lanes per query plan.
    pub lanes: u64,
    /// Total queries per cell.
    pub jobs: u64,
    /// One entry per (stream count × policy).
    pub entries: Vec<ServerSweepEntry>,
}

impl ServerReport {
    /// Render the report as a pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("schema".into(), Json::str("bufferdb-server/v1")),
            ("schema_version".into(), Json::U64(SCHEMA_VERSION)),
            ("scale_factor".into(), Json::F64(self.scale)),
            ("seed".into(), Json::U64(self.seed)),
            ("workers".into(), Json::U64(self.workers)),
            ("lanes".into(), Json::U64(self.lanes)),
            ("jobs".into(), Json::U64(self.jobs)),
            (
                "entries".into(),
                Json::Arr(self.entries.iter().map(|e| e.to_json()).collect()),
            ),
        ])
        .pretty()
    }

    /// The entry for a (streams, policy) cell, if present.
    pub fn cell(&self, streams: u64, policy: &str) -> Option<&ServerSweepEntry> {
        self.entries
            .iter()
            .find(|e| e.streams == streams && e.policy == policy)
    }
}

/// Shared per-plan state within one sweep cell: the sweep models a plan
/// cache, so all clients running the same query share one physical plan
/// and one adaptive-feedback state.
struct PlanState {
    /// Parallelized, pre-refinement plan adaptation re-refines from.
    base: PlanNode,
    /// The plan the next submission of this query will run.
    physical: PlanNode,
    adapt: AdaptState,
}

/// The 8 distinct workload queries, cycled round-robin through the shared
/// job list; every added client stream picks up a *different* code
/// footprint mix.
fn stream_plans(catalog: &Catalog) -> Vec<PlanNode> {
    // Ordered for operator-mix diversity: interference is displacement of
    // *distinct* code, so each added stream should bring a different
    // operator family (aggregate → hash join → sort/merge → semi-join …)
    // rather than re-warming the shared text the earlier streams already
    // keep resident.
    vec![
        queries::paper_query1(catalog).expect("paper q1"),
        queries::paper_query3(catalog, JoinMethod::HashJoin).expect("paper q3 hj"),
        queries::paper_query3(catalog, JoinMethod::MergeJoin).expect("paper q3 mj"),
        queries::tpch_q12(catalog).expect("q12"),
        queries::tpch_q6(catalog).expect("q6"),
        queries::tpch_q14(catalog).expect("q14"),
        queries::paper_query2(catalog).expect("paper q2"),
        queries::tpch_q1(catalog).expect("q1"),
    ]
}

fn run_cell(
    catalog: &Catalog,
    machine: &MachineConfig,
    refine_cfg: &RefineConfig,
    streams: usize,
    policy: Policy,
) -> ServerSweepEntry {
    let adapt_cfg = AdaptConfig::default();
    let pool = stream_plans(catalog);
    let n_plans = pool.len();
    let mut plans: Vec<PlanState> = pool
        .iter()
        .map(|p| {
            let base = parallelize_plan(p, catalog, LANES).expect("parallelize stream plan");
            let physical = match policy {
                Policy::None => base.clone(),
                Policy::Static | Policy::Adaptive => refine_plan(&base, catalog, refine_cfg),
            };
            PlanState {
                base,
                physical,
                adapt: AdaptState::default(),
            }
        })
        .collect();

    // Every cell executes the *same* job list — `TOTAL_JOBS` queries
    // cycling the plan pool — so the only variable across cells is how
    // many clients drain it concurrently. Client `i` runs jobs
    // `i, i + S, i + 2S, …` as a closed loop: comparable total work,
    // varying interleaving depth.
    let mut vs = VirtualServer::new(ServerConfig::new(WORKERS, streams, machine.clone()));
    let opts = QueryOpts::new().profile(true);
    // Per-submission bookkeeping, indexed by submission id.
    let mut job_of: Vec<usize> = Vec::new();
    let mut executed_of: Vec<PlanNode> = Vec::new();
    for job in 0..streams.min(TOTAL_JOBS) {
        let st = &plans[job % n_plans];
        vs.submit(SubmitSpec::new(&st.physical, catalog).opts(opts.clone()))
            .expect("submit round 0");
        job_of.push(job);
        executed_of.push(st.physical.clone());
    }

    let mut entry = ServerSweepEntry {
        streams: streams as u64,
        policy: policy.name().to_string(),
        queries: 0,
        failed: 0,
        units: 0,
        steals: 0,
        instructions: 0,
        l1i_misses: 0,
        l1i_cross_misses: 0,
        modeled_cpu_seconds: 0.0,
        mean_latency_ms: 0.0,
        makespan_ms: 0.0,
    };
    let mut latency_ns_sum = 0u128;
    loop {
        // Closed loop: each completion immediately arms the stream's next
        // submission at its completion instant (nondecreasing arrivals,
        // because drain returns completions in virtual-time order).
        let done = vs.drain();
        if done.is_empty() {
            break;
        }
        for c in done {
            let job = job_of[c.id as usize];
            let plan_idx = job % n_plans;
            let counters = c.outcome.stats().counters;
            if let Some(e) = c.outcome.error() {
                panic!("job {job} (submission {}): {e}", c.id);
            }
            let profile = c.outcome.profile().expect("profiled run");
            assert_eq!(
                profile.sum_op_counters(),
                counters,
                "job {job} (submission {}): per-operator counters must conserve",
                c.id
            );
            if policy == Policy::Adaptive {
                let st = &mut plans[plan_idx];
                let decision = adapt_plan(
                    &st.base,
                    &executed_of[c.id as usize],
                    profile,
                    catalog,
                    refine_cfg,
                    &adapt_cfg,
                    &mut st.adapt,
                );
                if let Some(plan) = decision.new_plan {
                    st.physical = plan;
                }
            }
            entry.queries += 1;
            entry.instructions += counters.instructions;
            entry.l1i_misses += counters.l1i_misses;
            entry.l1i_cross_misses += counters.l1i_cross_misses;
            entry.modeled_cpu_seconds += c.outcome.stats().breakdown.seconds();
            latency_ns_sum += (c.done_ns - c.arrival_ns) as u128;
            entry.makespan_ms = entry.makespan_ms.max(c.done_ns as f64 / 1e6);
            let next = job + streams;
            if next < TOTAL_JOBS {
                let st = &plans[next % n_plans];
                vs.submit(
                    SubmitSpec::new(&st.physical, catalog)
                        .at(c.done_ns)
                        .opts(opts.clone()),
                )
                .expect("submit next round");
                job_of.push(next);
                executed_of.push(st.physical.clone());
            }
        }
    }
    let stats = vs.stats();
    entry.failed = stats.failed;
    entry.units = stats.units;
    entry.steals = stats.steals;
    entry.mean_latency_ms = if entry.queries > 0 {
        latency_ns_sum as f64 / entry.queries as f64 / 1e6
    } else {
        0.0
    };
    entry
}

/// Run the full sweep: `streams` × {none, static, adaptive}.
pub fn server_metrics(scale: f64, seed: u64, streams: &[usize]) -> ServerReport {
    let catalog = bufferdb_tpch::generate_catalog(scale, seed);
    let machine = MachineConfig::pentium4_like();
    let refine_cfg = RefineConfig::default();
    let mut report = ServerReport {
        scale,
        seed,
        workers: WORKERS as u64,
        lanes: LANES as u64,
        jobs: TOTAL_JOBS as u64,
        entries: Vec::new(),
    };
    for &s in streams {
        for policy in Policy::ALL {
            report
                .entries
                .push(run_cell(&catalog, &machine, &refine_cfg, s, policy));
        }
    }
    report
}

/// Plain-text rendering of the sweep (the `repro server` report).
pub fn server_table(report: &ServerReport) -> String {
    let mut s = format!(
        "== Server: cross-query L1i interference, {} workers, {} jobs/cell ==\n\
         streams | policy   | cross L1i | total L1i | cross% | cpu (s) | latency (ms) | units | steals\n",
        report.workers, report.jobs
    );
    for e in &report.entries {
        let pct = if e.l1i_misses > 0 {
            100.0 * e.l1i_cross_misses as f64 / e.l1i_misses as f64
        } else {
            0.0
        };
        let _ = writeln!(
            s,
            "{:>7} | {:<8} | {:>9} | {:>9} | {:>5.1}% | {:>7.3} | {:>12.3} | {:>5} | {}",
            e.streams,
            e.policy,
            e.l1i_cross_misses,
            e.l1i_misses,
            pct,
            e.modeled_cpu_seconds,
            e.mean_latency_ms,
            e.units,
            e.steals,
        );
    }
    // The two headline claims, computed the same way the CI gate does.
    for &streams in STREAM_COUNTS.iter().filter(|&&n| n >= 4) {
        if let (Some(none), Some(adapt)) = (
            report.cell(streams as u64, "none"),
            report.cell(streams as u64, "adaptive"),
        ) {
            if none.l1i_cross_misses > 0 {
                let recovered = 100.0
                    * (none.l1i_cross_misses.saturating_sub(adapt.l1i_cross_misses)) as f64
                    / none.l1i_cross_misses as f64;
                let _ = writeln!(
                    s,
                    "adaptive recovery at {streams} streams: {recovered:.1}% of the \
                     no-buffer interference"
                );
            }
        }
    }
    s
}
