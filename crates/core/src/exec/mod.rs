//! The demand-pull executor: Volcano iterators over the simulated machine.
//!
//! Every operator implements the open/next/close (+ rescan) interface of §4.
//! `next` produces **one tuple per call** — the paper's PCPCPC interleaving —
//! and executes the operator's synthetic code region through the machine
//! simulator on every call, so instruction-cache behaviour emerges from the
//! execution pattern rather than being assumed.

pub mod agg;
pub mod buffer;
pub mod copybuffer;
pub mod exchange;
pub mod filter;
pub mod hashjoin;
pub mod indexscan;
pub mod limit;
pub mod materialize;
pub mod mergejoin;
pub mod nestloop;
pub mod project;
pub mod push;
pub mod reused;
pub mod seqscan;
pub mod sort;
pub mod sysscan;

use crate::arena::TupleSlot;
use crate::context::ExecContext;
use crate::fault;
use crate::footprint::FootprintModel;
use crate::obs::trace::{TraceEvent, TraceReport, Tracer};
use crate::obs::{ProfiledOp, QueryProfile, QueryProfiler};
use crate::plan::PlanNode;
use crate::session::QueryOpts;
use crate::stats::ExecStats;
use bufferdb_cachesim::{HeatSnapshot, MachineConfig};
use bufferdb_storage::Catalog;
use bufferdb_types::{DataType, Datum, DbError, Result, SchemaRef, Tuple};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Default live-slot window for an operator's output region when no buffer
/// operator raised it: the consumer holds at most the current tuple while the
/// producer writes the next one.
pub const DEFAULT_BATCH: usize = 2;

/// The iterator interface every operator supports (§4).
///
/// `Send` because exchange operators move per-worker subtree copies into
/// scoped threads.
pub trait Operator: Send {
    /// Output schema.
    fn schema(&self) -> SchemaRef;

    /// Initialize state; called once before any `next`.
    fn open(&mut self, ctx: &mut ExecContext) -> Result<()>;

    /// Produce the next tuple, or `None` when exhausted.
    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<TupleSlot>>;

    /// Release state; called once after the last `next`.
    fn close(&mut self, ctx: &mut ExecContext) -> Result<()>;

    /// Restart the iterator, optionally with a new parameter (the inner side
    /// of a nested-loop join). Operators that cannot restart return an error.
    fn rescan(&mut self, _ctx: &mut ExecContext, _param: Option<&Datum>) -> Result<()> {
        Err(DbError::ExecProtocol(format!(
            "operator over {} does not support rescan",
            self.schema()
        )))
    }

    /// A parent buffer operator announces it will keep up to `n` output
    /// tuples of this operator alive (§5: the buffer stores pointers; the
    /// tuples stay in the child's memory space). Called before `open`.
    fn set_batch_hint(&mut self, _n: usize) {}
}

/// Estimated simulated slot width in bytes for tuples of `schema`.
pub fn schema_slot_bytes(schema: &SchemaRef) -> u32 {
    let payload: usize = schema
        .fields()
        .iter()
        .map(|f| match f.ty {
            DataType::Bool => 1,
            DataType::Int | DataType::Float => 8,
            DataType::Decimal => 16,
            DataType::Date => 4,
            DataType::Str => 48,
        })
        .sum();
    ((16 + payload).next_multiple_of(16)) as u32
}

/// Build an executable operator tree for `plan`.
///
/// `fm` owns the simulated code layout; passing the same model for several
/// plans makes them share operator code, as compiled binaries do.
pub fn build_executor(
    plan: &PlanNode,
    catalog: &Catalog,
    fm: &mut FootprintModel,
) -> Result<Box<dyn Operator>> {
    // Validate the whole tree up front (schemas, column indices).
    plan.output_schema(catalog)?;
    build_rec(plan, catalog, fm, &FootprintModel::new)
}

/// [`build_executor`] with an explicit factory for the fresh per-core
/// footprint models exchange worker subtrees are built against. The server
/// passes a factory that clones one pre-linked master layout, so every query
/// (and every lane) maps each operator to the *same* simulated text
/// addresses — the precondition for modeling cross-query i-cache reuse and
/// interference on shared pool workers.
pub(crate) fn build_executor_with(
    plan: &PlanNode,
    catalog: &Catalog,
    fm: &mut FootprintModel,
    worker_fm: &dyn Fn() -> FootprintModel,
) -> Result<Box<dyn Operator>> {
    plan.output_schema(catalog)?;
    build_rec(plan, catalog, fm, worker_fm)
}

/// Short operator label for profiling output.
fn obs_label(plan: &PlanNode) -> String {
    match plan {
        PlanNode::SeqScan { table, .. } => format!("SeqScan({table})"),
        PlanNode::IndexScan { index, .. } => format!("IndexScan({index})"),
        PlanNode::ReusedScan { handle } => format!("ReusedScan({} rows)", handle.row_count()),
        PlanNode::SysScan { table } => format!("SysScan({table})"),
        PlanNode::NestLoopJoin { .. } => "NestLoopJoin".to_string(),
        PlanNode::HashJoin { .. } => "HashJoin".to_string(),
        PlanNode::MergeJoin { .. } => "MergeJoin".to_string(),
        PlanNode::Sort { .. } => "Sort".to_string(),
        PlanNode::Aggregate { .. } => "Aggregate".to_string(),
        PlanNode::Project { .. } => "Project".to_string(),
        PlanNode::Buffer { size, .. } => format!("Buffer({size})"),
        PlanNode::Filter { .. } => "Filter".to_string(),
        PlanNode::Limit { .. } => "Limit".to_string(),
        PlanNode::Materialize { .. } => "Materialize".to_string(),
        PlanNode::Exchange { workers, .. } => format!("Exchange({workers})"),
        PlanNode::PushPipeline { .. } => "PushPipeline".to_string(),
    }
}

/// Register every node of `plan` (pre-order) without building operators.
/// The exchange registers its subtree this way so the coordinating profiler
/// has slots for the merged per-worker stats at the same pre-order ids
/// `explain_analyze` derives from the plan walk.
fn register_labels_rec(plan: &PlanNode, fm: &mut FootprintModel) {
    fm.obs_register(obs_label(plan));
    for c in plan.children() {
        register_labels_rec(c, fm);
    }
}

fn build_rec(
    plan: &PlanNode,
    catalog: &Catalog,
    fm: &mut FootprintModel,
    worker_fm: &dyn Fn() -> FootprintModel,
) -> Result<Box<dyn Operator>> {
    // Register this node *before* recursing so ids follow plan pre-order —
    // the contract `explain_analyze` relies on to map nodes to stats.
    let obs = if fm.obs_enabled() {
        Some(fm.obs_register(obs_label(plan)))
    } else {
        None
    };
    let op: Box<dyn Operator> = match plan {
        PlanNode::SeqScan {
            table,
            predicate,
            projection,
        } => Box::new(seqscan::SeqScanOp::new(
            catalog,
            fm,
            table,
            predicate.clone(),
            projection.clone(),
        )?),
        PlanNode::IndexScan { index, mode } => Box::new(indexscan::IndexScanOp::new(
            catalog,
            fm,
            index,
            mode.clone(),
        )?),
        PlanNode::ReusedScan { handle } => Box::new(reused::ReusedScanOp::new(fm, handle.clone())),
        PlanNode::SysScan { table } => Box::new(sysscan::SysScanOp::new(
            table.clone(),
            catalog.sys_table(table)?,
        )),
        PlanNode::NestLoopJoin {
            outer,
            inner,
            param_outer_col,
            qual,
            ..
        } => {
            let o = build_rec(outer, catalog, fm, worker_fm)?;
            let i = build_rec(inner, catalog, fm, worker_fm)?;
            Box::new(nestloop::NestLoopOp::new(
                fm,
                o,
                i,
                *param_outer_col,
                qual.clone(),
            ))
        }
        PlanNode::HashJoin {
            probe,
            build,
            probe_key,
            build_key,
        } => {
            let p = build_rec(probe, catalog, fm, worker_fm)?;
            let b = build_rec(build, catalog, fm, worker_fm)?;
            Box::new(hashjoin::HashJoinOp::new(fm, p, b, *probe_key, *build_key))
        }
        PlanNode::MergeJoin {
            left,
            right,
            left_key,
            right_key,
        } => {
            let l = build_rec(left, catalog, fm, worker_fm)?;
            let r = build_rec(right, catalog, fm, worker_fm)?;
            Box::new(mergejoin::MergeJoinOp::new(fm, l, r, *left_key, *right_key))
        }
        PlanNode::Sort { input, keys } => {
            let c = build_rec(input, catalog, fm, worker_fm)?;
            Box::new(sort::SortOp::new(fm, c, keys.clone()))
        }
        PlanNode::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let c = build_rec(input, catalog, fm, worker_fm)?;
            Box::new(agg::AggregateOp::new(
                fm,
                c,
                group_by.clone(),
                aggs.clone(),
            )?)
        }
        PlanNode::Project { input, exprs } => {
            let c = build_rec(input, catalog, fm, worker_fm)?;
            Box::new(project::ProjectOp::new(fm, c, exprs.clone())?)
        }
        PlanNode::Buffer { input, size } => {
            let c = build_rec(input, catalog, fm, worker_fm)?;
            let mut b = buffer::BufferOp::new(fm, c, *size)?;
            // Fill/drain gauges are internal to the refill loop, so the
            // buffer reports them itself rather than via the decorator.
            b.set_obs(obs);
            Box::new(b)
        }
        PlanNode::Filter { input, predicate } => {
            let c = build_rec(input, catalog, fm, worker_fm)?;
            Box::new(filter::FilterOp::new(fm, c, predicate.clone())?)
        }
        PlanNode::Limit { input, limit } => {
            let c = build_rec(input, catalog, fm, worker_fm)?;
            Box::new(limit::LimitOp::new(fm, c, *limit))
        }
        PlanNode::Materialize { input } => {
            let c = build_rec(input, catalog, fm, worker_fm)?;
            Box::new(materialize::MaterializeOp::new(fm, c))
        }
        PlanNode::Exchange { input, workers } => {
            // The subtree's profiler slots live in the coordinating model at
            // the ids right after the exchange; the worker copies are built
            // against fresh models (separate per-core code mappings) whose
            // registration follows the same pre-order, so worker op `i`
            // merges into `child_base + i`.
            let child_base = fm.obs_labels().len();
            if fm.obs_enabled() {
                register_labels_rec(input, fm);
            }
            let schema = input.output_schema(catalog)?;
            let domain = exchange::driving_leaf_rows(input, catalog)?;
            let n = (*workers).max(1);
            let mut worker_trees = Vec::with_capacity(n);
            let mut worker_labels = Vec::new();
            for w in 0..n {
                let mut wfm = worker_fm();
                if fm.obs_enabled() {
                    wfm.enable_obs();
                }
                let tree = build_rec(input, catalog, &mut wfm, worker_fm)?;
                if w == 0 {
                    worker_labels = wfm.obs_labels().to_vec();
                }
                worker_trees.push(tree);
            }
            Box::new(exchange::ExchangeOp::new(
                fm,
                schema,
                *workers,
                domain,
                obs,
                child_base,
                worker_trees,
                worker_labels,
            ))
        }
        PlanNode::PushPipeline { input } => {
            // The compile walk registers the fused nodes' labels in plan
            // pre-order (hash-join build subtrees are built through this
            // function and register + bracket themselves); the fused work
            // itself lands on this node's bracket.
            Box::new(push::PushPipelineOp::compile(
                input, catalog, fm, worker_fm,
            )?)
        }
    };
    Ok(match obs {
        Some(id) => Box::new(ProfiledOp::new(id, op)),
        None => op,
    })
}

/// What one query execution produced — even when it failed.
///
/// A clean run has [`QueryOutcome::error`] `None`; otherwise
/// [`QueryOutcome::rows`] holds whatever was produced before the failure and
/// [`QueryOutcome::stats`] the simulated work actually done (cancelled or
/// fault-injected runs still conserve counters exactly).
/// [`QueryOutcome::profile`] is present when profiling was requested and the
/// run ended with balanced profiler brackets — every clean run and every
/// typed-error run; it is dropped only after a contained panic, whose unwind
/// skips the profiler's exit records.
///
/// Fields are accessor-based so the struct can grow (plan-cache provenance,
/// adaptive-refinement decisions, …) without breaking downstream matches.
#[derive(Debug)]
pub struct QueryOutcome {
    rows: Vec<Tuple>,
    stats: ExecStats,
    profile: Option<QueryProfile>,
    error: Option<DbError>,
    trace: Option<TraceReport>,
    heat: Option<HeatSnapshot>,
}

impl QueryOutcome {
    /// Assemble an outcome (executor-internal; downstream code only reads).
    pub(crate) fn new(
        rows: Vec<Tuple>,
        stats: ExecStats,
        profile: Option<QueryProfile>,
        error: Option<DbError>,
        trace: Option<TraceReport>,
    ) -> Self {
        QueryOutcome {
            rows,
            stats,
            profile,
            error,
            trace,
            heat: None,
        }
    }

    /// Attach the per-segment L1i heatmap (executor-internal).
    pub(crate) fn set_heat(&mut self, heat: HeatSnapshot) {
        self.heat = Some(heat);
    }

    /// The per-segment L1i heatmap (when requested via
    /// [`crate::session::QueryOpts::heatmap`]). Conservation holds exactly:
    /// the snapshot's total misses equal [`ExecStats::counters`]'
    /// `l1i_misses` for a serial run (worker cores' heat stays on their
    /// machines).
    pub fn heat(&self) -> Option<&HeatSnapshot> {
        self.heat.as_ref()
    }

    /// Rows produced before completion or failure.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Whole-query simulated counters, breakdown and wall-clock time.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Per-operator attribution (when requested and brackets balanced).
    pub fn profile(&self) -> Option<&QueryProfile> {
        self.profile.as_ref()
    }

    /// The first failure, if any.
    pub fn error(&self) -> Option<&DbError> {
        self.error.as_ref()
    }

    /// The merged flight-recorder trace (when requested). Unlike the
    /// profile, the trace survives contained panics — whatever the rings
    /// held at the moment of failure is exactly what a flight recorder is
    /// for.
    pub fn trace(&self) -> Option<&TraceReport> {
        self.trace.as_ref()
    }

    /// Mutable access to the trace, used by the prepared-query layer to
    /// stamp post-execution adaptivity instants onto the same clock.
    pub(crate) fn trace_mut(&mut self) -> Option<&mut TraceReport> {
        self.trace.as_mut()
    }

    /// Detach the trace, leaving the outcome otherwise intact.
    pub fn take_trace(&mut self) -> Option<TraceReport> {
        self.trace.take()
    }

    /// Whether the query ran to completion without failure.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }

    /// Decompose into owned parts: `(rows, stats, profile, error)`.
    pub fn into_parts(self) -> (Vec<Tuple>, ExecStats, Option<QueryProfile>, Option<DbError>) {
        (self.rows, self.stats, self.profile, self.error)
    }

    /// Convert to the classic `Result` shape, discarding partial output on
    /// failure.
    pub fn into_result(self) -> Result<(Vec<Tuple>, ExecStats, Option<QueryProfile>)> {
        match self.error {
            Some(e) => Err(e),
            None => Ok((self.rows, self.stats, self.profile)),
        }
    }
}

/// Execute `plan` end to end under `opts`, never panicking: executor errors
/// (including cancellation and injected faults) land in
/// [`QueryOutcome::error`], and a panic anywhere in the serial driving path
/// is contained and converted to [`DbError::WorkerFailed`] — the same
/// containment exchange and hash-build workers apply on their own threads.
pub fn execute_query(
    plan: &PlanNode,
    catalog: &Catalog,
    cfg: &MachineConfig,
    opts: &QueryOpts,
) -> QueryOutcome {
    let mut fm = FootprintModel::new();
    if opts.wants_profile() {
        fm.enable_obs();
    }
    let wall_start = std::time::Instant::now();
    let built = build_executor(plan, catalog, &mut fm);
    let mut ctx = ExecContext::new(cfg.clone());
    ctx.build_threads = opts.thread_override().unwrap_or(1).max(1);
    ctx.cancel = opts.resolve_cancel();
    ctx.faults = opts.resolve_faults();
    if opts.wants_profile() {
        ctx.profiler = Some(QueryProfiler::new(fm.obs_labels()));
    }
    if opts.wants_trace() {
        ctx.tracer = Some(Tracer::new("coordinator"));
    }
    if opts.wants_heatmap() {
        ctx.machine.enable_heatmap();
    }
    let mut rows = Vec::new();
    let mut panicked = false;
    let error = match built {
        Err(e) => Some(e),
        Ok(mut root) => {
            let caught = catch_unwind(AssertUnwindSafe(|| -> Result<()> {
                root.open(&mut ctx)?;
                while let Some(slot) = root.next(&mut ctx)? {
                    // Root drive loop is the universal cancellation granule:
                    // plans with no buffer, exchange, or blocking operator
                    // still stop within one output row.
                    ctx.check_cancel()?;
                    rows.push(ctx.arena.tuple(slot).clone());
                }
                root.close(&mut ctx)
            }));
            match caught {
                Ok(Ok(())) => None,
                Ok(Err(e)) => Some(e),
                Err(payload) => {
                    panicked = true;
                    Some(DbError::WorkerFailed(format!(
                        "executor panicked: {}",
                        fault::panic_message(&*payload)
                    )))
                }
            }
        }
    };
    if panicked {
        ctx.trace(TraceEvent::WorkerPanic);
    }
    let wall = wall_start.elapsed();
    let counters = ctx.machine.snapshot();
    let breakdown = ctx.machine.breakdown_for(&counters);
    // Typed errors unwind through `ProfiledOp`, which closes its bracket on
    // the way out, so the profile still conserves exactly. A panic skips
    // those exits and leaves the enter-stack unbalanced: drop the profile
    // (the whole-query counters above remain valid either way).
    let profile = match ctx.profiler.take() {
        Some(p) if !panicked => Some(p.finish(counters)),
        _ => None,
    };
    // The trace, by contrast, is kept even after a panic: rings are plain
    // already-written memory, and the events leading up to the failure are
    // the recorder's whole point.
    let trace = ctx.tracer.take().map(Tracer::finish);
    let row_count = rows.len() as u64;
    let mut out = QueryOutcome::new(
        rows,
        ExecStats {
            rows: row_count,
            counters,
            breakdown,
            wall,
        },
        profile,
        error,
        trace,
    );
    if opts.wants_heatmap() {
        out.set_heat(ctx.machine.heat_snapshot());
    }
    out
}
