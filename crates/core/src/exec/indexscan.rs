//! B+-tree index scan: range scans and parameterized lookups.

use crate::arena::TupleSlot;
use crate::context::ExecContext;
use crate::exec::{schema_slot_bytes, Operator, DEFAULT_BATCH};
use crate::fault;
use crate::footprint::{FootprintModel, OpKind};
use crate::plan::IndexMode;
use bufferdb_cachesim::CodeRegion;
use bufferdb_storage::{Catalog, IndexDef, Table};
use bufferdb_types::{Datum, DbError, Result, SchemaRef};
use std::sync::Arc;

/// Simulated address region for index node storage.
const INDEX_SPACE: u64 = 0x4_0000_0000;

/// Index scan operator producing heap rows in key order.
pub struct IndexScanOp {
    index: Arc<IndexDef>,
    table: Arc<Table>,
    mode: IndexMode,
    schema: SchemaRef,
    code: CodeRegion,
    key_site: u64,
    matches: Vec<u32>,
    pos: usize,
    out_region: u32,
    batch_hint: usize,
    index_base: u64,
}

impl IndexScanOp {
    /// Build an index scan.
    pub fn new(
        catalog: &Catalog,
        fm: &mut FootprintModel,
        index: &str,
        mode: IndexMode,
    ) -> Result<Self> {
        let index = catalog.index(index)?;
        let table = catalog.table(&index.table)?;
        let schema = table.schema().clone();
        let code = fm.region_for(&OpKind::IndexScan);
        let key_site = fm.predicate_site();
        // Each index gets a stable simulated address region for its nodes.
        let index_base = INDEX_SPACE + (fxhash(index.name.as_bytes()) & 0xFFFF) * (1 << 24);
        Ok(IndexScanOp {
            index,
            table,
            mode,
            schema,
            code,
            key_site,
            matches: Vec::new(),
            pos: 0,
            out_region: u32::MAX,
            batch_hint: DEFAULT_BATCH,
            index_base,
        })
    }

    /// Simulate a root-to-leaf descent: one cache-line-sized node read per
    /// level at key-dependent addresses (index probes are random accesses —
    /// the data structure that "competes with a large buffer for cache
    /// memory", §7.4).
    fn simulate_descent(&self, ctx: &mut ExecContext, key: i64) {
        let height = self.index.btree.height() as u64;
        let entries = self.index.btree.len().max(1) as u64;
        for level in 0..height {
            // Higher levels are smaller (fan-out 64): scale the address range.
            let level_nodes = (entries >> (6 * (height - level))).max(1);
            let node = mix(key as u64 ^ (level << 56)) % level_nodes;
            ctx.machine.data_read(self.index_base + node * 64, 64);
        }
        ctx.machine
            .add_instructions(self.index.btree.probe_cost() as u64 * 6);
    }

    fn fill_range(&mut self, lo: Option<i64>, hi: Option<i64>) {
        self.matches = self
            .index
            .btree
            .range(lo.unwrap_or(i64::MIN), hi.unwrap_or(i64::MAX))
            .map(|(_, r)| r)
            .collect();
        self.pos = 0;
    }
}

fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 31)
}

fn fxhash(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0u64, |h, &b| {
        (h.rotate_left(5) ^ b as u64).wrapping_mul(0x51_7C_C1_B7_27_22_0A_95)
    })
}

impl Operator for IndexScanOp {
    fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn set_batch_hint(&mut self, n: usize) {
        self.batch_hint = self.batch_hint.max(n);
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.out_region = ctx
            .arena
            .alloc_region(self.batch_hint as u32 + 1, schema_slot_bytes(&self.schema));
        match self.mode {
            IndexMode::Range { lo, hi } => {
                self.simulate_descent(ctx, lo.unwrap_or(0));
                self.fill_range(lo, hi);
                // An exchange worker hands us a morsel of the heap row-id
                // domain: keep only matches inside it.
                if let Some((mlo, mhi)) = ctx.morsel.take() {
                    self.matches.retain(|&r| r >= mlo && r < mhi);
                }
            }
            IndexMode::LookupParam => {
                // Waits for the first rescan with a parameter. Morsels never
                // apply here (lookups are driven by the outer row), but a
                // stray one must not leak to a sibling scan.
                ctx.morsel.take();
                self.matches.clear();
                self.pos = 0;
            }
        }
        Ok(())
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<TupleSlot>> {
        ctx.machine.exec_region(&mut self.code);
        if self.pos >= self.matches.len() {
            return Ok(None);
        }
        ctx.fault(fault::INDEXSCAN_NEXT)?;
        let row_id = self.matches[self.pos];
        self.pos += 1;
        ctx.machine
            .data_read(self.table.row_addr(row_id), self.table.row_width(row_id));
        let out = self.table.row(row_id).clone();
        Ok(Some(ctx.arena.store(
            self.out_region,
            out,
            &mut ctx.machine,
        )))
    }

    fn close(&mut self, _ctx: &mut ExecContext) -> Result<()> {
        self.matches.clear();
        Ok(())
    }

    fn rescan(&mut self, ctx: &mut ExecContext, param: Option<&Datum>) -> Result<()> {
        match (&self.mode, param) {
            (IndexMode::Range { lo, hi }, None) => {
                let (lo, hi) = (*lo, *hi);
                self.fill_range(lo, hi);
                Ok(())
            }
            (IndexMode::LookupParam, Some(d)) => {
                let found = match d.as_int() {
                    Some(key) => {
                        self.simulate_descent(ctx, key);
                        self.matches = self.index.btree.lookup(key);
                        !self.matches.is_empty()
                    }
                    None => {
                        // NULL key joins nothing.
                        self.matches.clear();
                        false
                    }
                };
                ctx.machine.branch(self.key_site, found);
                self.pos = 0;
                Ok(())
            }
            (IndexMode::LookupParam, None) => Err(DbError::ExecProtocol(
                "parameterized index scan rescanned without a key".into(),
            )),
            (IndexMode::Range { .. }, Some(_)) => Err(DbError::ExecProtocol(
                "range index scan does not take a parameter".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bufferdb_cachesim::MachineConfig;
    use bufferdb_index::BTreeIndex;
    use bufferdb_storage::TableBuilder;
    use bufferdb_types::{DataType, Field, Schema, Tuple};

    fn setup(n: i64) -> (Catalog, FootprintModel, ExecContext) {
        let c = Catalog::new();
        let mut b = TableBuilder::new(
            "orders",
            Schema::new(vec![
                Field::new("o_orderkey", DataType::Int),
                Field::new("x", DataType::Int),
            ]),
        );
        for i in 0..n {
            b.push(Tuple::new(vec![Datum::Int(i), Datum::Int(i * 2)]));
        }
        c.add_table(b);
        let mut btree = BTreeIndex::new();
        for i in 0..n {
            btree.insert(i, i as u32);
        }
        c.add_index(IndexDef {
            name: "orders_pkey".into(),
            table: "orders".into(),
            key_column: 0,
            btree,
        });
        (
            c,
            FootprintModel::new(),
            ExecContext::new(MachineConfig::pentium4_like()),
        )
    }

    #[test]
    fn range_scan_in_key_order() {
        let (c, mut fm, mut ctx) = setup(100);
        let mut op = IndexScanOp::new(
            &c,
            &mut fm,
            "orders_pkey",
            IndexMode::Range {
                lo: Some(10),
                hi: Some(14),
            },
        )
        .unwrap();
        op.open(&mut ctx).unwrap();
        let mut keys = Vec::new();
        while let Some(s) = op.next(&mut ctx).unwrap() {
            keys.push(ctx.arena.tuple(s).get(0).as_int().unwrap());
        }
        assert_eq!(keys, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn param_lookup_per_rescan() {
        let (c, mut fm, mut ctx) = setup(100);
        let mut op = IndexScanOp::new(&c, &mut fm, "orders_pkey", IndexMode::LookupParam).unwrap();
        op.open(&mut ctx).unwrap();
        assert!(op.next(&mut ctx).unwrap().is_none(), "no key yet");
        op.rescan(&mut ctx, Some(&Datum::Int(42))).unwrap();
        let s = op.next(&mut ctx).unwrap().unwrap();
        assert_eq!(ctx.arena.tuple(s).get(1).as_int(), Some(84));
        assert!(op.next(&mut ctx).unwrap().is_none());
        // Missing key.
        op.rescan(&mut ctx, Some(&Datum::Int(1000))).unwrap();
        assert!(op.next(&mut ctx).unwrap().is_none());
        // NULL key joins nothing.
        op.rescan(&mut ctx, Some(&Datum::Null)).unwrap();
        assert!(op.next(&mut ctx).unwrap().is_none());
    }

    #[test]
    fn protocol_violations_error() {
        let (c, mut fm, mut ctx) = setup(10);
        let mut op = IndexScanOp::new(&c, &mut fm, "orders_pkey", IndexMode::LookupParam).unwrap();
        op.open(&mut ctx).unwrap();
        assert!(op.rescan(&mut ctx, None).is_err());
        let mut range = IndexScanOp::new(
            &c,
            &mut fm,
            "orders_pkey",
            IndexMode::Range { lo: None, hi: None },
        )
        .unwrap();
        range.open(&mut ctx).unwrap();
        assert!(range.rescan(&mut ctx, Some(&Datum::Int(1))).is_err());
    }

    #[test]
    fn descent_touches_index_memory() {
        let (c, mut fm, mut ctx) = setup(1000);
        let mut op = IndexScanOp::new(&c, &mut fm, "orders_pkey", IndexMode::LookupParam).unwrap();
        op.open(&mut ctx).unwrap();
        let before = ctx.machine.snapshot();
        op.rescan(&mut ctx, Some(&Datum::Int(7))).unwrap();
        let delta = ctx.machine.snapshot() - before;
        assert!(delta.l1d_accesses >= 2, "index node reads expected");
        assert!(delta.instructions > 0);
    }

    #[test]
    fn unknown_index_is_error() {
        let (c, mut fm, _) = setup(1);
        assert!(IndexScanOp::new(&c, &mut fm, "nope", IndexMode::LookupParam).is_err());
    }
}
