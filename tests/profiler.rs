//! Profiler correctness: per-operator attribution must conserve the
//! whole-query counters, and turning the profiler on must not distort the
//! simulation it measures.

use bufferdb::prelude::*;
use bufferdb::tpch::{self, queries, queries::JoinMethod};

fn profiled(
    plan: &PlanNode,
    catalog: &Catalog,
    cfg: &MachineConfig,
) -> (Vec<Tuple>, ExecStats, QueryProfile) {
    let opts = QueryOpts::new().profile(true);
    let (rows, stats, profile) = execute_query(plan, catalog, cfg, &opts)
        .into_result()
        .unwrap();
    (rows, stats, profile.expect("profiling was requested"))
}

fn all_queries(catalog: &bufferdb::storage::Catalog) -> Vec<(&'static str, PlanNode)> {
    vec![
        ("paper q1", queries::paper_query1(catalog).unwrap()),
        ("paper q2", queries::paper_query2(catalog).unwrap()),
        (
            "paper q3 nl",
            queries::paper_query3(catalog, JoinMethod::NestLoop).unwrap(),
        ),
        (
            "paper q3 hj",
            queries::paper_query3(catalog, JoinMethod::HashJoin).unwrap(),
        ),
        (
            "paper q3 mj",
            queries::paper_query3(catalog, JoinMethod::MergeJoin).unwrap(),
        ),
        ("tpch q1", queries::tpch_q1(catalog).unwrap()),
        ("tpch q6", queries::tpch_q6(catalog).unwrap()),
        ("tpch q12", queries::tpch_q12(catalog).unwrap()),
        ("tpch q14", queries::tpch_q14(catalog).unwrap()),
    ]
}

/// The exclusive per-operator deltas must sum exactly to the whole-query
/// snapshot: attribution is a partition of the run, not an estimate.
#[test]
fn per_operator_deltas_sum_to_query_totals() {
    let catalog = tpch::generate_catalog(0.002, 7);
    let machine = MachineConfig::pentium4_like();
    let cfg = RefineConfig::default();
    for (name, plan) in all_queries(&catalog) {
        for (variant, p) in [
            ("original", plan.clone()),
            ("refined", refine_plan(&plan, &catalog, &cfg)),
        ] {
            let (_, stats, profile) = profiled(&p, &catalog, &machine);
            let summed = profile.sum_op_counters();
            assert_eq!(
                summed, stats.counters,
                "{name} ({variant}): per-operator sum != query snapshot"
            );
            assert_eq!(
                summed, profile.total,
                "{name} ({variant}): profile total mismatch"
            );
        }
    }
}

/// Enabling the profiler must not change the answer, and may not perturb the
/// modeled instruction stream by more than 5%. (Hash-based operators iterate
/// HashMaps whose order varies between processes, so instruction counts can
/// differ slightly across runs even without the profiler — exact equality is
/// the wrong bar.)
#[test]
fn profiler_overhead_is_under_five_percent() {
    let catalog = tpch::generate_catalog(0.002, 7);
    let machine = MachineConfig::pentium4_like();
    for (name, plan) in all_queries(&catalog) {
        let (rows_plain, stats_plain, _) =
            execute_query(&plan, &catalog, &machine, &QueryOpts::new())
                .into_result()
                .unwrap();
        let (rows_prof, stats_prof, profile) = profiled(&plan, &catalog, &machine);
        assert_eq!(
            rows_plain.len(),
            rows_prof.len(),
            "{name}: row count changed"
        );
        assert_eq!(
            stats_plain.rows, stats_prof.rows,
            "{name}: reported cardinality changed"
        );
        let base = stats_plain.counters.instructions as f64;
        let prof = stats_prof.counters.instructions as f64;
        let drift = (prof - base).abs() / base;
        assert!(
            drift < 0.05,
            "{name}: profiled run drifted {:.2}% in instructions ({} vs {})",
            drift * 100.0,
            stats_prof.counters.instructions,
            stats_plain.counters.instructions
        );
        // Every operator was actually opened and closed once.
        for op in &profile.ops {
            assert_eq!(op.opens, 1, "{name}: {} opens", op.label);
            assert_eq!(op.closes, 1, "{name}: {} closes", op.label);
        }
    }
}

/// A child error surfacing mid-fill unwinds through the buffer as a typed
/// error; a `rescan` on the *same* operator tree clears the partial fill and
/// replays the complete result; and the fill gauges stay consistent across
/// the failure (an aborted fill is never gauged, so lifetime
/// `tuples_buffered` still equals lifetime tuples produced).
#[test]
fn buffer_recovers_after_child_error_mid_fill() {
    use bufferdb::core::exec::build_executor;
    use bufferdb::core::fault::{self, FaultMode, Trigger};
    use bufferdb::core::{ExecContext, FootprintModel, QueryProfiler};
    use bufferdb::storage::{Catalog, TableBuilder};
    use bufferdb_types::{DataType, Datum, DbError, Field, Schema, Tuple};

    let catalog = Catalog::new();
    let mut b = TableBuilder::new("t", Schema::new(vec![Field::new("k", DataType::Int)]));
    for i in 0..200 {
        b.push(Tuple::new(vec![Datum::Int(i)]));
    }
    catalog.add_table(b);
    let plan = PlanNode::Buffer {
        input: Box::new(PlanNode::SeqScan {
            table: "t".into(),
            predicate: None,
            projection: None,
        }),
        size: 64,
    };
    let mut fm = FootprintModel::new();
    fm.enable_obs();
    let mut op = build_executor(&plan, &catalog, &mut fm).unwrap();
    let mut ctx = ExecContext::new(MachineConfig::pentium4_like());
    ctx.profiler = Some(QueryProfiler::new(fm.obs_labels()));
    // Row 150 lands inside the third 64-slot fill pass.
    ctx.faults
        .arm(fault::SEQSCAN_NEXT, Trigger::at_row(150), FaultMode::Error);

    op.open(&mut ctx).unwrap();
    let mut produced = 0u64;
    let err = loop {
        match op.next(&mut ctx) {
            Ok(Some(_)) => produced += 1,
            Ok(None) => panic!("fault must fire before exhaustion"),
            Err(e) => break e,
        }
    };
    assert!(matches!(err, DbError::FaultInjected(_)), "{err}");
    assert_eq!(
        produced, 128,
        "exactly the two completed fills drain before the faulting one"
    );

    ctx.faults.clear();
    op.rescan(&mut ctx, None).unwrap();
    let mut values = Vec::new();
    while let Some(s) = op.next(&mut ctx).unwrap() {
        values.push(ctx.arena.tuple(s).get(0).as_int().unwrap());
        produced += 1;
    }
    assert_eq!(values, (0..200).collect::<Vec<_>>());
    op.close(&mut ctx).unwrap();

    let profile = ctx.profiler.take().unwrap().finish(ctx.machine.snapshot());
    let buf = profile
        .ops
        .iter()
        .find(|o| o.buffer.is_some())
        .expect("buffer gauges present");
    let g = buf.buffer.as_ref().unwrap();
    assert_eq!(
        g.tuples_buffered, produced,
        "gauge vs tuples produced across error + rescan"
    );
}

/// Buffer gauges line up with what the operator actually moved: every tuple
/// the buffer produced was buffered exactly once.
#[test]
fn buffer_gauges_match_rows_through_buffer() {
    let catalog = tpch::generate_catalog(0.002, 7);
    let machine = MachineConfig::pentium4_like();
    let cfg = RefineConfig::default();
    let plan = queries::paper_query1(&catalog).unwrap();
    let refined = refine_plan(&plan, &catalog, &cfg);
    let (_, _, profile) = profiled(&refined, &catalog, &machine);
    let buffers: Vec<_> = profile
        .ops
        .iter()
        .filter(|op| op.buffer.is_some())
        .collect();
    assert!(
        !buffers.is_empty(),
        "refined Q1 should contain a buffer operator"
    );
    for op in buffers {
        let g = op.buffer.as_ref().unwrap();
        assert_eq!(
            g.tuples_buffered, op.rows,
            "{}: gauge vs produced rows",
            op.label
        );
        assert!(
            g.fills > 0 && g.drains > 0,
            "{}: no fill/drain activity",
            op.label
        );
        assert!(g.avg_occupancy() > 0.0, "{}: empty fills", op.label);
    }
}
