//! Merge join over inputs sorted by the join keys.
//!
//! Duplicate keys on the right side are materialized into a small group (as
//! PostgreSQL does with a mark/restore-capable or materialized inner), so
//! arbitrary many-to-many joins work. Inputs are checked at runtime to be
//! non-decreasing in key; a violation reports an invalid plan.

use crate::arena::TupleSlot;
use crate::context::ExecContext;
use crate::exec::{schema_slot_bytes, Operator, DEFAULT_BATCH};
use crate::footprint::{FootprintModel, OpKind};
use bufferdb_cachesim::CodeRegion;
use bufferdb_types::{DbError, Result, SchemaRef, Tuple};

/// Merge join operator.
pub struct MergeJoinOp {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    left_key: usize,
    right_key: usize,
    schema: SchemaRef,
    code: CodeRegion,
    cmp_site: u64,
    current_left: Option<(TupleSlot, i64)>,
    /// Materialized right-side tuples for the current key group.
    group: Vec<Tuple>,
    group_key: Option<i64>,
    group_pos: usize,
    /// One-tuple lookahead on the right input.
    pending_right: Option<(Tuple, i64)>,
    right_exhausted: bool,
    last_left_key: Option<i64>,
    last_right_key: Option<i64>,
    out_region: u32,
    batch_hint: usize,
}

impl MergeJoinOp {
    /// Build a merge join; both children must deliver rows sorted ascending
    /// by their key columns (NULL keys are skipped).
    pub fn new(
        fm: &mut FootprintModel,
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        left_key: usize,
        right_key: usize,
    ) -> Self {
        let schema = left.schema().join(&right.schema()).into_ref();
        let code = fm.region_for(&OpKind::MergeJoin);
        let cmp_site = fm.predicate_site();
        MergeJoinOp {
            left,
            right,
            left_key,
            right_key,
            schema,
            code,
            cmp_site,
            current_left: None,
            group: Vec::new(),
            group_key: None,
            group_pos: 0,
            pending_right: None,
            right_exhausted: false,
            last_left_key: None,
            last_right_key: None,
            out_region: u32::MAX,
            batch_hint: DEFAULT_BATCH,
        }
    }

    /// Pull the next non-NULL-key right tuple into the lookahead slot.
    fn advance_right(&mut self, ctx: &mut ExecContext) -> Result<()> {
        loop {
            match self.right.next(ctx)? {
                None => {
                    self.pending_right = None;
                    self.right_exhausted = true;
                    return Ok(());
                }
                Some(slot) => {
                    let t = ctx.arena.tuple(slot).clone();
                    match t.get(self.right_key).as_int() {
                        None => continue, // NULL join keys match nothing
                        Some(k) => {
                            if let Some(prev) = self.last_right_key {
                                if k < prev {
                                    return Err(DbError::InvalidPlan(format!(
                                        "merge join right input not sorted: {k} after {prev}"
                                    )));
                                }
                            }
                            self.last_right_key = Some(k);
                            self.pending_right = Some((t, k));
                            return Ok(());
                        }
                    }
                }
            }
        }
    }

    /// Pull the next non-NULL-key left tuple.
    fn advance_left(&mut self, ctx: &mut ExecContext) -> Result<bool> {
        loop {
            match self.left.next(ctx)? {
                None => {
                    self.current_left = None;
                    return Ok(false);
                }
                Some(slot) => {
                    let k = ctx.arena.tuple(slot).get(self.left_key).as_int();
                    match k {
                        None => continue,
                        Some(k) => {
                            if let Some(prev) = self.last_left_key {
                                if k < prev {
                                    return Err(DbError::InvalidPlan(format!(
                                        "merge join left input not sorted: {k} after {prev}"
                                    )));
                                }
                            }
                            self.last_left_key = Some(k);
                            self.current_left = Some((slot, k));
                            self.group_pos = 0;
                            return Ok(true);
                        }
                    }
                }
            }
        }
    }

    /// Load the right group for `key`, assuming `pending_right` holds its
    /// first member.
    fn load_group(&mut self, ctx: &mut ExecContext, key: i64) -> Result<()> {
        self.group.clear();
        self.group_key = Some(key);
        while let Some((t, k)) = self.pending_right.take() {
            if k == key {
                // Materialize the group member (small copy, as Postgres's
                // inner tuplestore does for duplicate inner keys).
                ctx.machine.add_instructions(40);
                self.group.push(t);
                self.advance_right(ctx)?;
            } else {
                self.pending_right = Some((t, k));
                break;
            }
        }
        self.group_pos = 0;
        Ok(())
    }
}

impl Operator for MergeJoinOp {
    fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn set_batch_hint(&mut self, n: usize) {
        self.batch_hint = self.batch_hint.max(n);
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.left.open(ctx)?;
        self.right.open(ctx)?;
        self.out_region = ctx
            .arena
            .alloc_region(self.batch_hint as u32 + 1, schema_slot_bytes(&self.schema));
        self.current_left = None;
        self.group.clear();
        self.group_key = None;
        self.pending_right = None;
        self.right_exhausted = false;
        self.last_left_key = None;
        self.last_right_key = None;
        self.advance_right(ctx)?;
        Ok(())
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<TupleSlot>> {
        ctx.machine.exec_region(&mut self.code);
        loop {
            if self.current_left.is_none() {
                // One cancel check per left-tuple advance: key-skewed inputs
                // can spin the alignment loop for a while between returns.
                ctx.check_cancel()?;
                if !self.advance_left(ctx)? {
                    return Ok(None);
                }
            }
            let Some((left_slot, lk)) = self.current_left else {
                return Ok(None);
            };

            // Emit from the loaded group when it matches the current left key.
            if self.group_key == Some(lk) {
                if self.group_pos < self.group.len() {
                    let joined = ctx.arena.tuple(left_slot).join(&self.group[self.group_pos]);
                    self.group_pos += 1;
                    let slot = ctx.arena.store(self.out_region, joined, &mut ctx.machine);
                    return Ok(Some(slot));
                }
                // Group exhausted for this left tuple; move to the next left
                // (which may share the key and re-scan the same group).
                self.current_left = None;
                continue;
            }

            // Align the right side with the current left key.
            match &self.pending_right {
                None => {
                    debug_assert!(self.right_exhausted);
                    // Right side is done and the loaded group (if any) is for
                    // a smaller key: no further matches are possible.
                    return Ok(None);
                }
                Some((_, rk)) => {
                    let rk = *rk;
                    ctx.machine.branch(self.cmp_site, rk < lk);
                    ctx.machine.add_instructions(24);
                    if rk < lk {
                        self.advance_right(ctx)?; // discard unmatched right
                    } else if rk == lk {
                        self.load_group(ctx, lk)?;
                    } else {
                        // rk > lk: this left tuple has no match.
                        self.current_left = None;
                    }
                }
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.group.clear();
        self.left.close(ctx)?;
        self.right.close(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::seqscan::SeqScanOp;
    use bufferdb_cachesim::MachineConfig;
    use bufferdb_storage::{Catalog, TableBuilder};
    use bufferdb_types::{DataType, Datum, Field, Schema};

    fn table(c: &Catalog, name: &str, keys: &[Option<i64>]) {
        let mut b = TableBuilder::new(
            name,
            Schema::new(vec![
                Field::nullable("k", DataType::Int),
                Field::new("tag", DataType::Int),
            ]),
        );
        for (i, k) in keys.iter().enumerate() {
            let d = k.map(Datum::Int).unwrap_or(Datum::Null);
            b.push(Tuple::new(vec![d, Datum::Int(i as i64)]));
        }
        c.add_table(b);
    }

    fn join_counts(left: &[Option<i64>], right: &[Option<i64>]) -> usize {
        let c = Catalog::new();
        table(&c, "l", left);
        table(&c, "r", right);
        let mut fm = FootprintModel::new();
        let mut ctx = ExecContext::new(MachineConfig::pentium4_like());
        let l = Box::new(SeqScanOp::new(&c, &mut fm, "l", None, None).unwrap());
        let r = Box::new(SeqScanOp::new(&c, &mut fm, "r", None, None).unwrap());
        let mut op = MergeJoinOp::new(&mut fm, l, r, 0, 0);
        op.open(&mut ctx).unwrap();
        let mut n = 0;
        while op.next(&mut ctx).unwrap().is_some() {
            n += 1;
        }
        n
    }

    #[test]
    fn one_to_one_join() {
        let keys: Vec<Option<i64>> = (0..10).map(Some).collect();
        assert_eq!(join_counts(&keys, &keys), 10);
    }

    #[test]
    fn many_to_many_duplicates() {
        // left: 1,1,2; right: 1,2,2 -> (1×2? no: left has two 1s, right one 1) = 2, plus 1 left 2 × 2 right 2s = 2.
        assert_eq!(
            join_counts(&[Some(1), Some(1), Some(2)], &[Some(1), Some(2), Some(2)]),
            4
        );
    }

    #[test]
    fn disjoint_keys_join_empty() {
        assert_eq!(join_counts(&[Some(1), Some(3)], &[Some(2), Some(4)]), 0);
    }

    #[test]
    fn null_keys_never_match() {
        assert_eq!(join_counts(&[None, Some(1)], &[Some(1), None]), 1);
        assert_eq!(join_counts(&[None, None], &[None, None]), 0);
    }

    #[test]
    fn gaps_on_both_sides() {
        assert_eq!(
            join_counts(&[Some(1), Some(5), Some(9)], &[Some(0), Some(5), Some(10)]),
            1
        );
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(join_counts(&[], &[Some(1)]), 0);
        assert_eq!(join_counts(&[Some(1)], &[]), 0);
        assert_eq!(join_counts(&[], &[]), 0);
    }

    #[test]
    fn unsorted_input_is_reported() {
        let c = Catalog::new();
        table(&c, "l", &[Some(5), Some(1)]);
        table(&c, "r", &[Some(1), Some(5)]);
        let mut fm = FootprintModel::new();
        let mut ctx = ExecContext::new(MachineConfig::pentium4_like());
        let l = Box::new(SeqScanOp::new(&c, &mut fm, "l", None, None).unwrap());
        let r = Box::new(SeqScanOp::new(&c, &mut fm, "r", None, None).unwrap());
        let mut op = MergeJoinOp::new(&mut fm, l, r, 0, 0);
        op.open(&mut ctx).unwrap();
        let mut err = None;
        loop {
            match op.next(&mut ctx) {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(DbError::InvalidPlan(_))), "got {err:?}");
    }

    #[test]
    fn matches_nested_loop_semantics() {
        // Cross-check against a brute-force join on a mixed workload.
        let left = [Some(1), Some(1), Some(2), Some(4), Some(4), Some(4), None];
        let right = [Some(0), Some(1), Some(2), Some(2), Some(4), None];
        let brute: usize = left
            .iter()
            .flatten()
            .map(|lk| right.iter().flatten().filter(|rk| *rk == lk).count())
            .sum();
        assert_eq!(join_counts(&left, &right), brute);
    }
}
