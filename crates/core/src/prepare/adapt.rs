//! Feedback-driven adaptive re-refinement.
//!
//! The paper's refinement algorithm (§6) places buffers from *calibrated*
//! footprints and *estimated* cardinalities. Both can be wrong at runtime:
//!
//! * the footprint model deliberately excludes the executor's shared
//!   dispatch code and cannot see conflict misses, so a group that
//!   statically "fits" L1i can still thrash (the paper's Query 2 sits at
//!   ~15.1 KB of a 16 KB budget and pays real misses once dispatch code and
//!   set conflicts are added);
//! * a cardinality estimate above the buffering threshold can overshoot,
//!   leaving a buffer whose per-batch overhead is never amortized.
//!
//! After each profiled execution this module compares the *observed*
//! per-execution-group L1i miss rates and the *observed* per-operator
//! cardinalities against those predictions and, on divergence, re-refines
//! the cached plan:
//!
//! * a **thrashing group** (miss rate above threshold) decays the effective
//!   L1i capacity the refiner budgets against, so the next refinement pass
//!   splits the group with a buffer — the paper's rule, driven by
//!   measurement instead of calibration;
//! * a **buffer over a below-threshold observed cardinality** is dropped,
//!   because re-refinement runs the §7.3 rule on measured rows
//!   (see [`crate::refine::refine_plan_observed`]).
//!
//! Every installed adaptation is **validated by its next profiled
//! execution**: the pass remembers the replaced plan and its observed L1i
//! misses, and if the new plan regresses past [`AdaptConfig::regret_factor`]
//! it is rolled back and the entry frozen — observation can propose, but a
//! worse measurement vetoes. (The two rules above can genuinely conflict:
//! dropping an underfed buffer merges groups, and if the merged group then
//! thrashes, the cardinality gate would keep re-refinement from ever
//! re-splitting it. The rollback breaks that deadlock in favour of the
//! measured-better plan.)
//!
//! Adaptation only ever runs on a *clean, profiled* outcome — the caller
//! ([`crate::prepare::PreparedQuery`]) gates on that, so a cancelled,
//! faulted, or panicked execution can never poison a cached plan.

use super::fingerprint::subtree_hash;
use crate::obs::QueryProfile;
use crate::plan::PlanNode;
use crate::refine::{refine_plan_observed, ObservedCards, RefineConfig};
use bufferdb_storage::Catalog;

/// Tuning knobs for the adaptive loop.
#[derive(Debug, Clone)]
pub struct AdaptConfig {
    /// Observed L1i miss rate (misses / accesses over one execution group)
    /// above which the group is considered thrashing.
    pub miss_rate_threshold: f64,
    /// Minimum L1i accesses a group must have executed before its miss rate
    /// is trusted (cold-start misses dominate tiny groups).
    pub min_group_accesses: u64,
    /// Multiplier applied to the effective refinement capacity when a group
    /// thrashes (`0 < decay < 1`).
    pub capacity_decay: f64,
    /// Floor for the decayed capacity: below this, splitting groups further
    /// cannot help and adaptation stops tightening.
    pub min_l1i_capacity: usize,
    /// Maximum number of plan replacements per cache entry; bounds how long
    /// the loop may chase noise.
    pub max_generations: u64,
    /// An installed adaptation whose next profiled execution shows more
    /// than `regret_factor ×` the L1i misses of the plan it replaced is
    /// rolled back (and the entry frozen against further adaptation).
    pub regret_factor: f64,
    /// Absolute miss floor below which the regret check never fires —
    /// tiny queries are all cold-start noise.
    pub min_regret_misses: u64,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            miss_rate_threshold: 0.003,
            min_group_accesses: 10_000,
            capacity_decay: 0.75,
            min_l1i_capacity: 4 * 1024,
            max_generations: 4,
            regret_factor: 1.5,
            min_regret_misses: 1_000,
        }
    }
}

/// The measurement an installed adaptation must beat: the plan it replaced
/// and that plan's observed L1i misses.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingValidation {
    /// The physical plan the adaptation replaced.
    pub prior_plan: PlanNode,
    /// Total observed L1i misses of the replaced plan's profiled run.
    pub prior_l1i_misses: u64,
}

/// Mutable per-entry adaptation state, persisted in the plan cache between
/// executions of the same prepared query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdaptState {
    /// Effective L1i budget the refiner currently plans against; `None`
    /// until the first thrash observation (meaning: use the configured
    /// [`RefineConfig::l1i_capacity`]).
    pub effective_l1i_capacity: Option<usize>,
    /// Plan replacements so far.
    pub generation: u64,
    /// Set when a plan replacement was installed: the next clean profiled
    /// execution compares against it and may roll back.
    pub pending_validation: Option<PendingValidation>,
    /// Set after a rollback: a regretted adaptation permanently stops the
    /// loop for this entry (until statistics change and re-key it).
    pub frozen: bool,
}

/// What one adaptation pass concluded (for logs, benches, and tests).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptDecision {
    /// Replacement physical plan, when observation diverged from prediction
    /// enough to move a buffer. `None` = keep the current plan.
    pub new_plan: Option<PlanNode>,
    /// True when `new_plan` is a rollback of a regretted adaptation rather
    /// than a fresh refinement.
    pub rolled_back: bool,
    /// Execution groups whose observed miss rate crossed the threshold.
    pub thrashing_groups: usize,
    /// Worst observed group miss rate this execution.
    pub worst_group_miss_rate: f64,
    /// Buffers in the executed plan whose observed output cardinality fell
    /// below the refiner's threshold.
    pub underfed_buffers: usize,
    /// Effective capacity after this pass (for diagnostics).
    pub effective_l1i_capacity: usize,
}

/// Per-group observed counters.
#[derive(Debug, Clone, Copy, Default)]
struct GroupObs {
    accesses: u64,
    misses: u64,
}

impl GroupObs {
    fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Partition the executed plan's operators (pre-order indices, matching
/// [`crate::obs::ObsId`] assignment) into execution groups whose code
/// interleaves per tuple — mirroring the refiner's boundaries: a buffer
/// belongs to the group it drains (its fill phase interleaves with its
/// input), the edge *above* a buffer is a boundary, blocking operators and
/// exchange edges start fresh groups, and a hash join's build side is its
/// own group (the blocking build phase).
fn execution_groups(plan: &PlanNode) -> Vec<Vec<usize>> {
    fn assign(
        node: &PlanNode,
        current: Option<usize>,
        groups: &mut Vec<Vec<usize>>,
        idx: &mut usize,
    ) {
        let my_idx = *idx;
        *idx += 1;
        let g = match current {
            Some(g) => g,
            None => {
                groups.push(Vec::new());
                groups.len() - 1
            }
        };
        groups[g].push(my_idx);
        let child_group = |c: &PlanNode| -> Option<usize> {
            if matches!(c, PlanNode::Buffer { .. }) || c.is_blocking() {
                None
            } else {
                Some(g)
            }
        };
        match node {
            PlanNode::HashJoin { probe, build, .. } => {
                assign(probe, child_group(probe), groups, idx);
                // The build side runs in the blocking build phase: its code
                // never interleaves with the probe pipeline.
                assign(build, None, groups, idx);
            }
            _ => {
                for c in node.children() {
                    assign(c, child_group(c), groups, idx);
                }
            }
        }
    }
    let mut groups = Vec::new();
    let mut idx = 0;
    assign(plan, None, &mut groups, &mut idx);
    groups
}

/// Collect observed output cardinalities from a profiled execution, keyed by
/// structural subtree hash of both the *base* (pre-refinement) and the
/// *executed* subtree shapes — so a re-refinement pass finds measurements
/// whether it reproduces, moves, or removes a buffer.
///
/// `base` and `executed` are walked simultaneously: `executed` is `base`
/// with zero or more `Buffer` nodes inserted, and a buffer is a row-exact
/// passthrough, so skipping inserted buffers keeps the walks aligned.
fn collect_observed(
    base: &PlanNode,
    executed: &PlanNode,
    profile: &QueryProfile,
    idx: &mut usize,
    out: &mut ObservedCards,
) {
    let mut e = executed;
    // Skip buffers the refiner inserted (present in `executed`, absent in
    // `base`), spending their pre-order slots.
    while matches!(e, PlanNode::Buffer { .. }) && !matches!(base, PlanNode::Buffer { .. }) {
        if *idx < profile.ops.len() {
            out.insert(subtree_hash(e), profile.ops[*idx].rows as f64);
        }
        *idx += 1;
        let PlanNode::Buffer { input, .. } = e else {
            return;
        };
        e = input;
    }
    let my = *idx;
    *idx += 1;
    if my >= profile.ops.len() {
        return;
    }
    let rows = profile.ops[my].rows as f64;
    out.insert(subtree_hash(base), rows);
    out.insert(subtree_hash(e), rows);
    let bc = base.children();
    let ec = e.children();
    if bc.len() == ec.len() {
        for (b, c) in bc.iter().zip(ec.iter()) {
            collect_observed(b, c, profile, idx, out);
        }
    }
}

/// Count buffers in the executed plan whose observed output cardinality fell
/// below the refiner's threshold — candidates for dropping.
fn underfed_buffers(executed: &PlanNode, profile: &QueryProfile, threshold: f64) -> usize {
    fn walk(node: &PlanNode, profile: &QueryProfile, threshold: f64, idx: &mut usize) -> usize {
        let my = *idx;
        *idx += 1;
        let mut n = 0;
        if matches!(node, PlanNode::Buffer { .. })
            && my < profile.ops.len()
            && (profile.ops[my].rows as f64) < threshold
        {
            n += 1;
        }
        for c in node.children() {
            n += walk(c, profile, threshold, idx);
        }
        n
    }
    let mut idx = 0;
    walk(executed, profile, threshold, &mut idx)
}

/// One adaptation pass over a clean, profiled execution of `executed`
/// (which must be the refinement of `base`). Updates `state` and returns
/// the decision; the caller installs `new_plan` into the cache entry if
/// present.
pub fn adapt_plan(
    base: &PlanNode,
    executed: &PlanNode,
    profile: &QueryProfile,
    catalog: &Catalog,
    refine_cfg: &RefineConfig,
    adapt_cfg: &AdaptConfig,
    state: &mut AdaptState,
) -> AdaptDecision {
    let mut effective = state
        .effective_l1i_capacity
        .unwrap_or(refine_cfg.l1i_capacity);
    let total_misses: u64 = profile.ops.iter().map(|op| op.counters.l1i_misses).sum();

    // Per-group observed miss rates over the executed plan.
    let groups = execution_groups(executed);
    let mut worst = 0.0_f64;
    let mut thrashing = 0usize;
    for group in &groups {
        let mut obs = GroupObs::default();
        for &i in group {
            if let Some(op) = profile.ops.get(i) {
                obs.accesses += op.counters.l1i_accesses;
                obs.misses += op.counters.l1i_misses;
            }
        }
        let rate = obs.miss_rate();
        worst = worst.max(rate);
        if obs.accesses >= adapt_cfg.min_group_accesses && rate > adapt_cfg.miss_rate_threshold {
            thrashing += 1;
        }
    }

    let underfed = underfed_buffers(executed, profile, refine_cfg.cardinality_threshold);

    let done = |effective| AdaptDecision {
        new_plan: None,
        rolled_back: false,
        thrashing_groups: thrashing,
        worst_group_miss_rate: worst,
        underfed_buffers: underfed,
        effective_l1i_capacity: effective,
    };

    if state.frozen {
        return done(effective);
    }

    // Validate the previously installed adaptation: this execution is the
    // first clean measurement of it. A regression past the regret factor
    // rolls it back and freezes the entry — checked *before* the generation
    // cap, so a bad final-generation install can still be undone.
    if let Some(pending) = state.pending_validation.take() {
        if total_misses > adapt_cfg.min_regret_misses
            && total_misses as f64 > pending.prior_l1i_misses as f64 * adapt_cfg.regret_factor
        {
            state.frozen = true;
            state.generation += 1;
            return AdaptDecision {
                new_plan: Some(pending.prior_plan),
                rolled_back: true,
                thrashing_groups: thrashing,
                worst_group_miss_rate: worst,
                underfed_buffers: underfed,
                effective_l1i_capacity: effective,
            };
        }
    }

    if state.generation >= adapt_cfg.max_generations {
        return done(effective);
    }

    let can_tighten = thrashing > 0 && effective > adapt_cfg.min_l1i_capacity;
    if !can_tighten && underfed == 0 {
        return done(effective);
    }
    if can_tighten {
        effective = ((effective as f64 * adapt_cfg.capacity_decay) as usize)
            .max(adapt_cfg.min_l1i_capacity);
    }

    // Re-refine the base plan against the observed world: decayed capacity
    // splits thrashing groups, measured cardinalities drop underfed buffers.
    let mut observed = ObservedCards::new();
    let mut idx = 0;
    collect_observed(base, executed, profile, &mut idx, &mut observed);
    let cfg = RefineConfig {
        l1i_capacity: effective,
        ..refine_cfg.clone()
    };
    let new_plan = refine_plan_observed(base, catalog, &cfg, Some(&observed));

    state.effective_l1i_capacity = Some(effective);
    if new_plan == *executed {
        // Divergence observed but refinement reached the same placement;
        // keep the tightened budget for the next pass.
        return done(effective);
    }
    state.generation += 1;
    state.pending_validation = Some(PendingValidation {
        prior_plan: executed.clone(),
        prior_l1i_misses: total_misses,
    });
    AdaptDecision {
        new_plan: Some(new_plan),
        rolled_back: false,
        thrashing_groups: thrashing,
        worst_group_miss_rate: worst,
        underfed_buffers: underfed,
        effective_l1i_capacity: effective,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan() -> PlanNode {
        PlanNode::SeqScan {
            table: "t".into(),
            predicate: None,
            projection: None,
        }
    }

    fn buffer(input: PlanNode) -> PlanNode {
        PlanNode::Buffer {
            input: Box::new(input),
            size: 100,
        }
    }

    fn agg(input: PlanNode) -> PlanNode {
        PlanNode::Aggregate {
            input: Box::new(input),
            group_by: vec![],
            aggs: vec![crate::plan::AggSpec::count_star("n")],
        }
    }

    #[test]
    fn groups_split_at_buffer_and_blocking_edges() {
        // Agg -> Buffer -> Scan: boundary above the buffer, so two groups:
        // {Agg} and {Buffer, Scan}.
        let plan = agg(buffer(scan()));
        let groups = execution_groups(&plan);
        assert_eq!(groups, vec![vec![0], vec![1, 2]]);

        // Agg -> Sort -> Scan: sort is blocking, joins its input's group.
        let plan = agg(PlanNode::Sort {
            input: Box::new(scan()),
            keys: vec![(0, true)],
        });
        let groups = execution_groups(&plan);
        assert_eq!(groups, vec![vec![0], vec![1, 2]]);
    }

    #[test]
    fn hash_join_build_side_is_its_own_group() {
        let plan = PlanNode::HashJoin {
            probe: Box::new(scan()),
            build: Box::new(scan()),
            probe_key: 0,
            build_key: 0,
        };
        let groups = execution_groups(&plan);
        assert_eq!(groups, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn pipelined_plan_is_one_group() {
        let plan = agg(PlanNode::Filter {
            input: Box::new(scan()),
            predicate: crate::expr::Expr::lit(1).le(crate::expr::Expr::lit(2)),
        });
        assert_eq!(execution_groups(&plan), vec![vec![0, 1, 2]]);
    }

    fn catalog() -> Catalog {
        use bufferdb_types::{DataType, Datum, Field, Schema, Tuple};
        let c = Catalog::new();
        let mut b = bufferdb_storage::TableBuilder::new(
            "t",
            Schema::new(vec![Field::new("k", DataType::Int)]),
        );
        for i in 0..100 {
            b.push(Tuple::new(vec![Datum::Int(i)]));
        }
        c.add_table(b);
        c
    }

    fn profile_with_misses(ops: usize, misses: u64, accesses: u64) -> QueryProfile {
        let op = crate::obs::OpStats {
            counters: bufferdb_cachesim::PerfCounters {
                l1i_misses: misses,
                l1i_accesses: accesses,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut total = bufferdb_cachesim::PerfCounters::default();
        for _ in 0..ops {
            total = total + op.counters;
        }
        QueryProfile {
            ops: vec![op; ops],
            total,
        }
    }

    #[test]
    fn regressed_adaptation_rolls_back_and_freezes() {
        let c = catalog();
        let cfg = RefineConfig::default();
        let adapt_cfg = AdaptConfig::default();
        let executed = scan();
        let prior = buffer(scan());
        let mut state = AdaptState {
            generation: 1,
            pending_validation: Some(PendingValidation {
                prior_plan: prior.clone(),
                prior_l1i_misses: 1_000,
            }),
            ..Default::default()
        };
        // The installed plan's first measurement is 100× worse than what it
        // replaced: the pass must hand back the prior plan and freeze.
        let profile = profile_with_misses(1, 100_000, 1_000_000);
        let d = adapt_plan(
            &executed, &executed, &profile, &c, &cfg, &adapt_cfg, &mut state,
        );
        assert_eq!(d.new_plan, Some(prior));
        assert!(d.rolled_back);
        assert!(state.frozen);
        assert_eq!(state.generation, 2);

        // Frozen: even a blatantly thrashing measurement changes nothing.
        let thrash = profile_with_misses(1, 500_000, 1_000_000);
        let d = adapt_plan(
            &executed, &executed, &thrash, &c, &cfg, &adapt_cfg, &mut state,
        );
        assert_eq!(d.new_plan, None);
        assert_eq!(state.generation, 2);
    }

    #[test]
    fn validated_adaptation_is_kept() {
        let c = catalog();
        let cfg = RefineConfig::default();
        let adapt_cfg = AdaptConfig::default();
        let executed = scan();
        let mut state = AdaptState {
            generation: 1,
            pending_validation: Some(PendingValidation {
                prior_plan: buffer(scan()),
                prior_l1i_misses: 10_000,
            }),
            ..Default::default()
        };
        // Better than the replaced plan: validation passes, no rollback,
        // and the one-shot pending slot is consumed.
        let profile = profile_with_misses(1, 2_000, 1_000_000);
        let d = adapt_plan(
            &executed, &executed, &profile, &c, &cfg, &adapt_cfg, &mut state,
        );
        assert_eq!(d.new_plan, None);
        assert!(!d.rolled_back);
        assert!(!state.frozen);
        assert_eq!(state.pending_validation, None);
    }
}
