//! Tiny self-contained timing harness for the `[[bench]]` targets.
//!
//! The benches were originally Criterion-based; the harness below keeps the
//! same shape (warmup, auto-calibrated iteration count, ns/iter report) with
//! nothing but `std::time::Instant`, so the workspace builds without any
//! external crates.

use std::time::Instant;

/// Minimum measured wall-clock per benchmark before we trust the numbers.
const TARGET_MS: u128 = 20;

/// Iteration-count ceiling so pathological fast closures terminate.
const MAX_ITERS: u64 = 1 << 26;

/// Run `f` repeatedly and print a `name  ...  ns/iter` line.
///
/// Doubles the iteration count until the batch takes at least
/// `TARGET_MS` milliseconds, then reports the per-iteration mean of the
/// final batch. The closure's result is passed through
/// [`std::hint::black_box`] so the optimizer cannot delete the work.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    for _ in 0..8 {
        std::hint::black_box(f());
    }
    let mut iters: u64 = 8;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= TARGET_MS || iters >= MAX_ITERS {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            println!("{name:<34} {ns:>14.1} ns/iter   ({iters} iters)");
            return;
        }
        iters = iters.saturating_mul(2);
    }
}

/// Run `f` a fixed `iters` times and report ns/iter — for expensive bodies
/// (whole-query executions) where auto-calibration would take minutes.
pub fn bench_n<T>(name: &str, iters: u64, mut f: impl FnMut() -> T) {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let ns = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:<34} {:>14.3} ms/iter   ({iters} iters)", ns / 1e6);
}
