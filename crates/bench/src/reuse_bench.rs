//! `repro reuse`: the subplan reuse-cache sweep.
//!
//! Every cell replays the same zipfian workload — `QUERIES_PER_STREAM`
//! queries per client stream, each stream drawing independently from an
//! 8-class query pool with zipfian skew — against one
//! [`Database`] whose [`ReuseCache`] is bounded to the cell's byte budget.
//! The grid crosses stream count with cache budget; budget 0 is the
//! reuse-off baseline (installation is refused outright, so every query
//! recomputes from base tables).
//!
//! The flow per query is the API the cache was designed around:
//! [`Database::prepare_opts`] (which splices
//! [`bufferdb_core::plan::PlanNode::ReusedScan`] leaves over cached
//! subtrees), execute, then
//! [`bufferdb_core::prepare::PreparedQuery::harvest_reuse`] to offer the
//! query's materialization points to the cache. Hot classes therefore pay
//! one producing run and replay afterwards; cold classes keep recomputing.
//!
//! Result rows are asserted bit-identical across every cell (same
//! scale/seed ⇒ same catalog), so the sweep itself proves reuse never
//! changes answers before any physics are reported. The simulator is
//! deterministic, so the committed `BENCH_reuse.json` is bit-stable for a
//! (scale, seed) and CI drift-gates hit rate and modeled cycles saved.

use crate::json::{Json, SCHEMA_VERSION};
use bufferdb_cachesim::MachineConfig;
use bufferdb_core::plan::PlanNode;
use bufferdb_core::prepare::{Database, ReuseCache, DEFAULT_REUSE_BUDGET_BYTES};
use bufferdb_storage::Catalog;
use bufferdb_tpch::queries::{self, JoinMethod};
use bufferdb_types::Tuple;
use std::fmt::Write as _;
use std::sync::Arc;

/// Client stream counts the sweep crosses with each cache budget.
pub const STREAM_COUNTS: [usize; 3] = [1, 2, 4];

/// Cache byte budgets: reuse-off baseline, a deliberately tight budget
/// (the workload's aggregate outputs are ~100 bytes each, so 256 bytes
/// holds only the two best entries and forces benefit-per-byte eviction),
/// and the default.
pub const BUDGETS: [u64; 3] = [0, 256, DEFAULT_REUSE_BUDGET_BYTES];

/// Queries each stream issues per cell.
const QUERIES_PER_STREAM: usize = 12;

/// Zipf exponent for class popularity (1.0 = classic harmonic skew).
const ZIPF_EXPONENT: f64 = 1.1;

/// One (streams × budget) cell of the sweep.
#[derive(Debug, Clone)]
pub struct ReuseSweepEntry {
    /// Concurrent client streams (interleaved round-robin).
    pub streams: u64,
    /// Reuse-cache byte budget (0 = reuse off).
    pub budget_bytes: u64,
    /// Queries executed.
    pub queries: u64,
    /// Subplan lookups at splice time.
    pub lookups: u64,
    /// Lookups that spliced a cached subtree.
    pub hits: u64,
    /// hits / lookups (0 when no lookups).
    pub hit_rate: f64,
    /// Entries installed by harvesting.
    pub installs: u64,
    /// Install attempts refused (over budget, not beneficial, failed run).
    pub install_failures: u64,
    /// Entries evicted in benefit-per-byte order.
    pub evictions: u64,
    /// Entries swept by stats-epoch bumps.
    pub invalidations: u64,
    /// Live entries at end of cell.
    pub entries: u64,
    /// Exact bytes of live materialized rows at end of cell.
    pub resident_bytes: u64,
    /// Modeled cycles saved: hits × (recompute − replay), incl. retired.
    pub cycles_saved: u64,
    /// Total modeled cycles over all queries in the cell.
    pub total_cycles: u64,
    /// Total simulated instructions over all queries.
    pub instructions: u64,
    /// Total simulated L1i misses over all queries.
    pub l1i_misses: u64,
    /// `total_cycles` of the budget-0 cell at the same stream count minus
    /// this cell's (saturating; 0 for the baseline itself).
    pub cycles_saved_vs_off: u64,
    /// Same delta for L1i misses.
    pub l1i_saved_vs_off: u64,
}

impl ReuseSweepEntry {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("streams".into(), Json::U64(self.streams)),
            ("budget_bytes".into(), Json::U64(self.budget_bytes)),
            ("queries".into(), Json::U64(self.queries)),
            ("lookups".into(), Json::U64(self.lookups)),
            ("hits".into(), Json::U64(self.hits)),
            ("hit_rate".into(), Json::F64(self.hit_rate)),
            ("installs".into(), Json::U64(self.installs)),
            ("install_failures".into(), Json::U64(self.install_failures)),
            ("evictions".into(), Json::U64(self.evictions)),
            ("invalidations".into(), Json::U64(self.invalidations)),
            ("entries".into(), Json::U64(self.entries)),
            ("resident_bytes".into(), Json::U64(self.resident_bytes)),
            ("cycles_saved".into(), Json::U64(self.cycles_saved)),
            ("total_cycles".into(), Json::U64(self.total_cycles)),
            ("instructions".into(), Json::U64(self.instructions)),
            ("l1i_misses".into(), Json::U64(self.l1i_misses)),
            (
                "cycles_saved_vs_off".into(),
                Json::U64(self.cycles_saved_vs_off),
            ),
            ("l1i_saved_vs_off".into(), Json::U64(self.l1i_saved_vs_off)),
        ])
    }
}

/// The machine-readable reuse-sweep report (`BENCH_reuse.json`).
#[derive(Debug, Clone, Default)]
pub struct ReuseReport {
    /// TPC-H scale factor.
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Query classes in the zipfian pool.
    pub classes: u64,
    /// Queries per stream per cell.
    pub queries_per_stream: u64,
    /// One entry per (streams × budget) cell.
    pub entries: Vec<ReuseSweepEntry>,
}

impl ReuseReport {
    /// Render the report as a pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("schema".into(), Json::str("bufferdb-reuse/v1")),
            ("schema_version".into(), Json::U64(SCHEMA_VERSION)),
            ("scale_factor".into(), Json::F64(self.scale)),
            ("seed".into(), Json::U64(self.seed)),
            ("classes".into(), Json::U64(self.classes)),
            (
                "queries_per_stream".into(),
                Json::U64(self.queries_per_stream),
            ),
            (
                "entries".into(),
                Json::Arr(self.entries.iter().map(|e| e.to_json()).collect()),
            ),
        ])
        .pretty()
    }

    /// The entry for a (streams, budget) cell, if present.
    pub fn cell(&self, streams: u64, budget_bytes: u64) -> Option<&ReuseSweepEntry> {
        self.entries
            .iter()
            .find(|e| e.streams == streams && e.budget_bytes == budget_bytes)
    }
}

/// The 8 workload classes. Aggregation-heavy on purpose: aggregate roots
/// and hash-join builds are the cache's install points, so each class is a
/// realistic reuse candidate with a distinct instruction footprint.
fn class_plans(catalog: &Catalog) -> Vec<(&'static str, PlanNode)> {
    vec![
        ("paperQ1", queries::paper_query1(catalog).expect("paper q1")),
        (
            "paperQ3hj",
            queries::paper_query3(catalog, JoinMethod::HashJoin).expect("paper q3 hj"),
        ),
        (
            "paperQ3mj",
            queries::paper_query3(catalog, JoinMethod::MergeJoin).expect("paper q3 mj"),
        ),
        ("Q12", queries::tpch_q12(catalog).expect("q12")),
        ("Q6", queries::tpch_q6(catalog).expect("q6")),
        ("Q14", queries::tpch_q14(catalog).expect("q14")),
        ("paperQ2", queries::paper_query2(catalog).expect("paper q2")),
        ("Q1", queries::tpch_q1(catalog).expect("q1")),
    ]
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Zipfian class pick: CDF over `1/(rank+1)^s`, sampled with a per-stream
/// splitmix64 counter so every cell replays identical sequences.
fn zipf_pick(state: &mut u64, cdf: &[f64]) -> usize {
    *state = state.wrapping_add(1);
    let u = (splitmix(*state) >> 11) as f64 / (1u64 << 53) as f64;
    cdf.iter().position(|&c| u < c).unwrap_or(cdf.len() - 1)
}

fn zipf_cdf(classes: usize) -> Vec<f64> {
    let weights: Vec<f64> = (0..classes)
        .map(|i| 1.0 / ((i + 1) as f64).powf(ZIPF_EXPONENT))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

/// Order-normalized row fingerprints (multiset compare, bit-exact per row).
fn normalized(rows: &[Tuple]) -> Vec<String> {
    let mut v: Vec<String> = rows.iter().map(|t| format!("{t}")).collect();
    v.sort();
    v
}

fn run_cell(
    scale: f64,
    seed: u64,
    streams: usize,
    budget: u64,
    expected: &mut [Option<Vec<String>>],
) -> ReuseSweepEntry {
    // `Database` owns its catalog; regenerate identically from the seed so
    // every cell queries bit-identical tables.
    let mut db = Database::open(
        bufferdb_tpch::generate_catalog(scale, seed),
        MachineConfig::pentium4_like(),
    )
    .with_reuse_cache(Arc::new(ReuseCache::new(budget)));
    // Serial execution: the committed artifact must be host-independent.
    db.set_threads(1);
    let pool = class_plans(db.catalog());
    let cdf = zipf_cdf(pool.len());
    // The shared runner wiring: carries the process-wide `--timeout-ms`
    // and `BUFFERDB_FAULT` registry (a hand-rolled `QueryOpts::new()`
    // here would silently drop both knobs).
    let opts = crate::runner::profiled_exec_options(1);
    let mut rng: Vec<u64> = (0..streams)
        .map(|s| splitmix(seed ^ (s as u64).wrapping_mul(0xA076_1D64_78BD_642F)))
        .collect();

    let mut entry = ReuseSweepEntry {
        streams: streams as u64,
        budget_bytes: budget,
        queries: 0,
        lookups: 0,
        hits: 0,
        hit_rate: 0.0,
        installs: 0,
        install_failures: 0,
        evictions: 0,
        invalidations: 0,
        entries: 0,
        resident_bytes: 0,
        cycles_saved: 0,
        total_cycles: 0,
        instructions: 0,
        l1i_misses: 0,
        cycles_saved_vs_off: 0,
        l1i_saved_vs_off: 0,
    };
    // Streams interleave round-robin: stream s issues its i-th query in
    // global round i, so hot-class installs from one stream are visible to
    // the others mid-run — the sharing the cache exists for.
    for _round in 0..QUERIES_PER_STREAM {
        for stream_rng in rng.iter_mut().take(streams) {
            let class = zipf_pick(stream_rng, &cdf);
            let (name, plan) = &pool[class];
            let q = db
                .prepare_opts(plan, &opts)
                .unwrap_or_else(|e| panic!("{name}: prepare: {e}"));
            let label = format!("{name} (streams {streams}, budget {budget})");
            let (rows, stats, _profile, error) = q.execute_opts(&opts).into_parts();
            if let Some(err) = error {
                crate::runner::fail_query(&label, &stats, rows.len(), err);
            }
            let rows = normalized(&rows);
            match &expected[class] {
                Some(want) => assert_eq!(&rows, want, "{label}: reuse changed the answer"),
                None => expected[class] = Some(rows),
            }
            entry.queries += 1;
            entry.total_cycles += stats.breakdown.total_cycles;
            entry.instructions += stats.counters.instructions;
            entry.l1i_misses += stats.counters.l1i_misses;
            q.harvest_reuse(&opts);
        }
    }
    let s = db.reuse_cache().stats();
    entry.lookups = s.lookups;
    entry.hits = s.hits;
    entry.hit_rate = s.hit_rate();
    entry.installs = s.installs;
    entry.install_failures = s.install_failures;
    entry.evictions = s.evictions;
    entry.invalidations = s.invalidations;
    entry.entries = s.entries;
    entry.resident_bytes = s.bytes;
    entry.cycles_saved = s.cycles_saved;
    entry
}

/// Run the full sweep: [`STREAM_COUNTS`] × [`BUDGETS`].
pub fn reuse_metrics(scale: f64, seed: u64) -> ReuseReport {
    let mut report = ReuseReport {
        scale,
        seed,
        classes: 8,
        queries_per_stream: QUERIES_PER_STREAM as u64,
        entries: Vec::new(),
    };
    // Expected result rows per class, filled by the first cell that runs
    // each class and asserted against by every later cell.
    let mut expected: Vec<Option<Vec<String>>> = vec![None; 8];
    for &streams in &STREAM_COUNTS {
        for &budget in &BUDGETS {
            report
                .entries
                .push(run_cell(scale, seed, streams, budget, &mut expected));
        }
    }
    // Deltas against the reuse-off baseline at the same stream count.
    for i in 0..report.entries.len() {
        let (streams, cycles, l1i) = {
            let e = &report.entries[i];
            (e.streams, e.total_cycles, e.l1i_misses)
        };
        if let Some(off) = report.cell(streams, 0) {
            let (off_cycles, off_l1i) = (off.total_cycles, off.l1i_misses);
            let e = &mut report.entries[i];
            e.cycles_saved_vs_off = off_cycles.saturating_sub(cycles);
            e.l1i_saved_vs_off = off_l1i.saturating_sub(l1i);
        }
    }
    report
}

fn human_bytes(b: u64) -> String {
    match b {
        0 => "off".to_string(),
        b if b % (1024 * 1024) == 0 => format!("{}M", b / (1024 * 1024)),
        b if b % 1024 == 0 => format!("{}K", b / 1024),
        b => format!("{b}B"),
    }
}

/// Plain-text rendering of the sweep (the `repro reuse` report).
pub fn reuse_table(report: &ReuseReport) -> String {
    let mut s = format!(
        "== Subplan reuse: zipfian workload, {} classes, {} queries/stream ==\n\
         streams | budget | hit rate | installs | evict | inval | cycles saved | total cycles | L1i misses\n",
        report.classes, report.queries_per_stream
    );
    for e in &report.entries {
        let _ = writeln!(
            s,
            "{:>7} | {:>6} | {:>7.1}% | {:>8} | {:>5} | {:>5} | {:>12} | {:>12} | {}",
            e.streams,
            human_bytes(e.budget_bytes),
            100.0 * e.hit_rate,
            e.installs,
            e.evictions,
            e.invalidations,
            e.cycles_saved,
            e.total_cycles,
            e.l1i_misses,
        );
    }
    // The headline claim, computed the same way the CI gate does.
    let max_streams = *STREAM_COUNTS.iter().max().unwrap() as u64;
    if let (Some(on), Some(off)) = (
        report.cell(max_streams, DEFAULT_REUSE_BUDGET_BYTES),
        report.cell(max_streams, 0),
    ) {
        if off.total_cycles > 0 {
            let _ = writeln!(
                s,
                "default budget at {max_streams} streams: {:.1}% subplan hit rate, \
                 {:.1}% of modeled cycles eliminated vs reuse-off",
                100.0 * on.hit_rate,
                100.0 * on.cycles_saved_vs_off as f64 / off.total_cycles as f64,
            );
        }
    }
    s
}
