//! Failpoint-style fault injection for the executor (no external deps).
//!
//! A [`FaultRegistry`] is an `Arc`-shared table of named *sites*. Operators
//! call [`crate::context::ExecContext::fault`] with their site name at the
//! natural failure boundary of their data-transfer loop; when a site is
//! armed, the registry's trigger decides per hit whether to fire, and the
//! configured [`FaultMode`] decides *how*: a typed
//! [`DbError::FaultInjected`] that unwinds like any real executor error, or
//! a controlled panic that exercises the worker-containment paths
//! (`catch_unwind` in the exchange and the parallel hash-join build).
//!
//! The registry travels inside [`crate::context::ExecContext`] and is cloned
//! into every exchange/build worker context, so hit counts are global across
//! the worker pool — `at_row(n)` means "the n-th time *any* thread passes
//! this site", which makes chaos runs deterministic at any worker count when
//! the trigger fires during a serial phase, and pool-wide (first claimant
//! wins) during parallel phases.
//!
//! The `repro` binary arms sites from the `BUFFERDB_FAULT` environment knob:
//!
//! ```text
//! BUFFERDB_FAULT="seqscan.next:error:at_row(100),buffer.fill:panic:every(3)"
//! ```

use bufferdb_types::{DbError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Injection site: each sequential-scan candidate row.
pub const SEQSCAN_NEXT: &str = "seqscan.next";
/// Injection site: each index-scan row produced.
pub const INDEXSCAN_NEXT: &str = "indexscan.next";
/// Injection site: each morsel claimed off the exchange queue.
pub const EXCHANGE_MORSEL: &str = "exchange.morsel";
/// Injection site: each row inserted during the hash-join build.
pub const HASHJOIN_BUILD: &str = "hashjoin.build";
/// Injection site: each buffer-operator refill pass.
pub const BUFFER_FILL: &str = "buffer.fill";

/// Every named site, for sweeps.
pub const ALL_SITES: [&str; 5] = [
    SEQSCAN_NEXT,
    INDEXSCAN_NEXT,
    EXCHANGE_MORSEL,
    HASHJOIN_BUILD,
    BUFFER_FILL,
];

/// What an armed site does when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Return [`DbError::FaultInjected`] from the faulting call.
    Error,
    /// Panic (contained by the worker-fault machinery under test).
    Panic,
}

/// When an armed site fires, as a function of its global hit count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire on exactly the n-th hit (1-based; 0 behaves as 1).
    AtRow(u64),
    /// Fire on every n-th hit (n == 0 behaves as 1: every hit).
    Every(u64),
    /// Fire on each hit independently with probability `p`, derived
    /// deterministically from `seed` and the hit index.
    Prob {
        /// Stream seed: same seed + hit sequence → same decisions.
        seed: u64,
        /// Firing probability in [0, 1].
        p: f64,
    },
}

impl Trigger {
    /// Fire exactly on the n-th hit.
    pub fn at_row(n: u64) -> Self {
        Trigger::AtRow(n)
    }

    /// Fire on every n-th hit.
    pub fn every(n: u64) -> Self {
        Trigger::Every(n)
    }

    /// Fire per hit with probability `p`, deterministically from `seed`.
    pub fn prob(seed: u64, p: f64) -> Self {
        Trigger::Prob { seed, p }
    }

    fn fires(&self, hit: u64) -> bool {
        match *self {
            Trigger::AtRow(n) => hit == n.max(1),
            Trigger::Every(n) => hit.is_multiple_of(n.max(1)),
            Trigger::Prob { seed, p } => {
                let x = splitmix(seed ^ hit.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                // 53-bit uniform in [0, 1): p = 0 never fires, p = 1 always.
                ((x >> 11) as f64 / (1u64 << 53) as f64) < p
            }
        }
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[derive(Debug)]
struct ArmedSite {
    trigger: Trigger,
    mode: FaultMode,
    hits: AtomicU64,
}

/// Registry of armed fault sites, shared across all worker threads of a
/// query via `Arc`. An empty registry costs one relaxed atomic load per
/// [`FaultRegistry::hit`], so production paths are effectively free.
#[derive(Debug, Default)]
pub struct FaultRegistry {
    any_armed: AtomicBool,
    sites: Mutex<HashMap<String, Arc<ArmedSite>>>,
}

/// Marker prefix for controlled panics so the chaos suite's panic hook can
/// distinguish injected panics from genuine bugs.
pub const INJECTED_PANIC_PREFIX: &str = "bufferdb injected panic";

impl FaultRegistry {
    /// An empty registry: nothing armed, every `hit` is a no-op.
    pub fn new() -> Self {
        FaultRegistry::default()
    }

    /// Arm `site` with the given trigger and mode, resetting its hit count.
    pub fn arm(&self, site: &str, trigger: Trigger, mode: FaultMode) {
        self.lock().insert(
            site.to_string(),
            Arc::new(ArmedSite {
                trigger,
                mode,
                hits: AtomicU64::new(0),
            }),
        );
        self.any_armed.store(true, Ordering::Release);
    }

    /// Disarm `site` (no-op when not armed).
    pub fn disarm(&self, site: &str) {
        let mut sites = self.lock();
        sites.remove(site);
        let empty = sites.is_empty();
        drop(sites);
        if empty {
            self.any_armed.store(false, Ordering::Release);
        }
    }

    /// Disarm every site.
    pub fn clear(&self) {
        self.lock().clear();
        self.any_armed.store(false, Ordering::Release);
    }

    /// Are any sites armed?
    pub fn is_armed(&self) -> bool {
        self.any_armed.load(Ordering::Acquire)
    }

    // A panicking thread can only poison the map mutex while holding it,
    // and the critical sections below cannot panic — but one failed worker
    // must never cascade, so recover the map from poison regardless.
    fn lock(&self) -> MutexGuard<'_, HashMap<String, Arc<ArmedSite>>> {
        self.sites.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Record one pass through `site`; fire if armed and triggered.
    pub fn hit(&self, site: &str) -> Result<()> {
        if !self.is_armed() {
            return Ok(());
        }
        let armed = match self.lock().get(site) {
            Some(a) => Arc::clone(a),
            None => return Ok(()),
        };
        let hit = armed.hits.fetch_add(1, Ordering::Relaxed) + 1;
        if !armed.trigger.fires(hit) {
            return Ok(());
        }
        match armed.mode {
            FaultMode::Error => Err(DbError::FaultInjected(format!(
                "site {site} fired on hit {hit}"
            ))),
            FaultMode::Panic => panic!("{INJECTED_PANIC_PREFIX}: site {site} fired on hit {hit}"),
        }
    }

    /// Build a registry from the `BUFFERDB_FAULT` environment variable
    /// (empty when the variable is unset). See [`parse_fault_spec`] for the
    /// format; a malformed spec is an error so typos never silently disable
    /// a chaos run.
    pub fn from_env() -> std::result::Result<Arc<Self>, String> {
        let reg = Arc::new(FaultRegistry::new());
        if let Ok(spec) = std::env::var("BUFFERDB_FAULT") {
            if !spec.trim().is_empty() {
                for (site, trigger, mode) in parse_fault_spec(&spec)? {
                    reg.arm(&site, trigger, mode);
                }
            }
        }
        Ok(reg)
    }
}

/// Parse a fault spec: comma-separated `site:mode:trigger` entries where
/// `mode` is `error` | `panic` and `trigger` is `at_row(N)` | `every(N)` |
/// `prob(SEED,P)`.
pub fn parse_fault_spec(
    spec: &str,
) -> std::result::Result<Vec<(String, Trigger, FaultMode)>, String> {
    // Split entries on commas *outside* parentheses, so `prob(SEED,P)`
    // triggers survive intact.
    let mut entries = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in spec.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                entries.push(&spec[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    entries.push(&spec[start..]);
    let mut out = Vec::new();
    for entry in entries.into_iter().map(str::trim).filter(|e| !e.is_empty()) {
        let parts: Vec<&str> = entry.splitn(3, ':').collect();
        let [site, mode, trig] = parts[..] else {
            return Err(format!(
                "fault entry {entry:?} is not site:mode:trigger (e.g. seqscan.next:error:at_row(5))"
            ));
        };
        let mode = match mode {
            "error" => FaultMode::Error,
            "panic" => FaultMode::Panic,
            other => return Err(format!("unknown fault mode {other:?} (error | panic)")),
        };
        let trigger = parse_trigger(trig)?;
        out.push((site.to_string(), trigger, mode));
    }
    if out.is_empty() {
        return Err(format!("fault spec {spec:?} contains no entries"));
    }
    Ok(out)
}

fn parse_trigger(s: &str) -> std::result::Result<Trigger, String> {
    let (name, args) = s
        .strip_suffix(')')
        .and_then(|t| t.split_once('('))
        .ok_or_else(|| format!("trigger {s:?} is not at_row(N) | every(N) | prob(SEED,P)"))?;
    let parse_u64 = |v: &str| -> std::result::Result<u64, String> {
        v.trim()
            .parse()
            .map_err(|e| format!("bad integer {v:?} in trigger {s:?}: {e}"))
    };
    match name {
        "at_row" => Ok(Trigger::AtRow(parse_u64(args)?)),
        "every" => Ok(Trigger::Every(parse_u64(args)?)),
        "prob" => {
            let (seed, p) = args
                .split_once(',')
                .ok_or_else(|| format!("prob trigger {s:?} needs (SEED,P)"))?;
            let p: f64 = p
                .trim()
                .parse()
                .map_err(|e| format!("bad probability in {s:?}: {e}"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("probability {p} out of [0,1] in {s:?}"));
            }
            Ok(Trigger::Prob {
                seed: parse_u64(seed)?,
                p,
            })
        }
        other => Err(format!("unknown trigger {other:?} in {s:?}")),
    }
}

/// Render a caught panic payload as a human-readable message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_registry_is_a_noop() {
        let r = FaultRegistry::new();
        for _ in 0..100 {
            assert!(r.hit(SEQSCAN_NEXT).is_ok());
        }
        assert!(!r.is_armed());
    }

    #[test]
    fn at_row_fires_exactly_once() {
        let r = FaultRegistry::new();
        r.arm(SEQSCAN_NEXT, Trigger::at_row(3), FaultMode::Error);
        assert!(r.hit(SEQSCAN_NEXT).is_ok());
        assert!(r.hit(SEQSCAN_NEXT).is_ok());
        assert!(matches!(
            r.hit(SEQSCAN_NEXT),
            Err(DbError::FaultInjected(_))
        ));
        assert!(r.hit(SEQSCAN_NEXT).is_ok(), "fires only on the n-th hit");
        // Other sites are unaffected.
        assert!(r.hit(BUFFER_FILL).is_ok());
    }

    #[test]
    fn every_fires_periodically() {
        let r = FaultRegistry::new();
        r.arm(BUFFER_FILL, Trigger::every(2), FaultMode::Error);
        let fired: Vec<bool> = (0..6).map(|_| r.hit(BUFFER_FILL).is_err()).collect();
        assert_eq!(fired, [false, true, false, true, false, true]);
    }

    #[test]
    fn prob_is_deterministic_and_roughly_calibrated() {
        let decisions = |seed| -> Vec<bool> {
            let t = Trigger::prob(seed, 0.25);
            (1..=1000).map(|h| t.fires(h)).collect()
        };
        assert_eq!(decisions(7), decisions(7), "same seed, same stream");
        let fired = decisions(7).iter().filter(|&&f| f).count();
        assert!((150..350).contains(&fired), "p=0.25 fired {fired}/1000");
        assert!(!Trigger::prob(1, 0.0).fires(42));
        assert!(Trigger::prob(1, 1.0).fires(42));
    }

    #[test]
    fn disarm_and_clear_reset() {
        let r = FaultRegistry::new();
        r.arm(SEQSCAN_NEXT, Trigger::every(1), FaultMode::Error);
        assert!(r.hit(SEQSCAN_NEXT).is_err());
        r.disarm(SEQSCAN_NEXT);
        assert!(r.hit(SEQSCAN_NEXT).is_ok());
        assert!(!r.is_armed());
        r.arm(SEQSCAN_NEXT, Trigger::every(1), FaultMode::Error);
        r.clear();
        assert!(r.hit(SEQSCAN_NEXT).is_ok());
    }

    #[test]
    fn spec_parsing_round_trips() {
        let parsed =
            parse_fault_spec("seqscan.next:error:at_row(100), buffer.fill:panic:every(3)").unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "seqscan.next");
        assert_eq!(parsed[0].1, Trigger::AtRow(100));
        assert_eq!(parsed[0].2, FaultMode::Error);
        assert_eq!(parsed[1].2, FaultMode::Panic);
        let prob = parse_fault_spec("hashjoin.build:error:prob(42,0.5)").unwrap();
        assert_eq!(prob[0].1, Trigger::Prob { seed: 42, p: 0.5 });
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            "",
            "seqscan.next",
            "seqscan.next:error",
            "seqscan.next:maybe:at_row(1)",
            "seqscan.next:error:at_row",
            "seqscan.next:error:sometimes(1)",
            "seqscan.next:error:prob(1,1.5)",
        ] {
            assert!(parse_fault_spec(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn panic_mode_panics_with_marker() {
        let r = FaultRegistry::new();
        r.arm(SEQSCAN_NEXT, Trigger::at_row(1), FaultMode::Panic);
        let caught = std::panic::catch_unwind(|| r.hit(SEQSCAN_NEXT)).unwrap_err();
        assert!(panic_message(&*caught).starts_with(INJECTED_PANIC_PREFIX));
    }
}
