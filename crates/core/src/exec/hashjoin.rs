//! Hash join: a blocking build phase and a pipelined probe phase.
//!
//! Following the paper (§7.5, Figure 16), build and probe are separate
//! *modules* with their own 12 K instruction footprints: the build loop
//! interleaves build code with the build child's code per row, and the probe
//! side interleaves probe code with the probe child — each pairing is a
//! candidate for a buffer operator. The build phase is blocking and never
//! joins an execution group.

use crate::arena::TupleSlot;
use crate::context::ExecContext;
use crate::exec::{schema_slot_bytes, Operator, DEFAULT_BATCH};
use crate::fault;
use crate::footprint::{FootprintModel, OpKind};
use crate::obs::trace::{TraceEvent, Tracer};
use bufferdb_cachesim::{CodeRegion, Machine, PerfCounters};
use bufferdb_types::{DbError, Result, SchemaRef, Tuple};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};

/// Below this many build rows a partitioned build cannot amortize thread
/// start-up: insert on the coordinating core instead.
const PARALLEL_BUILD_MIN_ROWS: usize = 256;

pub(crate) fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash join operator.
pub struct HashJoinOp {
    probe: Box<dyn Operator>,
    build: Box<dyn Operator>,
    probe_key: usize,
    build_key: usize,
    schema: SchemaRef,
    probe_code: CodeRegion,
    build_code: CodeRegion,
    match_site: u64,
    /// key -> indices into `build_rows`.
    table: HashMap<i64, Vec<u32>>,
    /// Materialized build tuples (the hash table owns copies, as
    /// PostgreSQL's hash node does).
    build_rows: Vec<Tuple>,
    /// Simulated base address of the bucket array.
    ht_base: u64,
    bucket_mask: u64,
    /// In-flight probe state: matches for the current probe tuple.
    pending: Option<(TupleSlot, Vec<u32>, usize)>,
    out_region: u32,
    batch_hint: usize,
}

impl HashJoinOp {
    /// Build a hash join; `build` is consumed entirely at `open`.
    pub fn new(
        fm: &mut FootprintModel,
        probe: Box<dyn Operator>,
        build: Box<dyn Operator>,
        probe_key: usize,
        build_key: usize,
    ) -> Self {
        let schema = probe.schema().join(&build.schema()).into_ref();
        let probe_code = fm.region_for(&OpKind::HashProbe);
        let build_code = fm.region_for(&OpKind::HashBuild);
        let match_site = fm.predicate_site();
        HashJoinOp {
            probe,
            build,
            probe_key,
            build_key,
            schema,
            probe_code,
            build_code,
            match_site,
            table: HashMap::new(),
            build_rows: Vec::new(),
            ht_base: 0,
            bucket_mask: 0,
            pending: None,
            out_region: u32::MAX,
            batch_hint: DEFAULT_BATCH,
        }
    }

    fn bucket_addr(&self, key: i64) -> u64 {
        self.ht_base + (mix(key as u64) & self.bucket_mask) * 16
    }

    /// Partitioned hash-table insertion over already-drained build rows.
    ///
    /// Rows are partitioned by `mix(key) % workers`, so partitions are
    /// key-disjoint: the merged table is a conflict-free union whose per-key
    /// match lists keep the same (row-index) order as a serial build — the
    /// join output is bit-identical. Each worker simulates its inserts on
    /// its own [`Machine`] (a private core running a clone of the build code
    /// region); the worker counters are absorbed into the coordinating
    /// machine, which keeps profiler conservation exact (the jump lands on
    /// this operator's bracket).
    ///
    /// Failure semantics mirror the exchange: a worker panic is contained by
    /// `catch_unwind` and surfaces as [`DbError::WorkerFailed`]; the first
    /// failure of any kind raises a stop flag so sibling workers quit at
    /// their next row; the serial fallback is panic-free and propagates
    /// typed errors only.
    fn parallel_insert(&mut self, ctx: &mut ExecContext) -> Result<()> {
        let workers = ctx.build_threads;
        if self.build_rows.len() < PARALLEL_BUILD_MIN_ROWS {
            for (idx, row) in self.build_rows.iter().enumerate() {
                ctx.check_cancel()?;
                ctx.fault(fault::HASHJOIN_BUILD)?;
                ctx.machine.exec_region(&mut self.build_code);
                if let Some(k) = row.get(self.build_key).as_int() {
                    ctx.machine
                        .data_write(self.ht_base + (mix(k as u64) & self.bucket_mask) * 16, 16);
                    self.table.entry(k).or_default().push(idx as u32);
                }
            }
            return Ok(());
        }
        let cfg = ctx.machine.config().clone();
        let rows = &self.build_rows;
        let build_key = self.build_key;
        let ht_base = self.ht_base;
        let mask = self.bucket_mask;
        let code = &self.build_code;
        let stop = AtomicBool::new(false);
        let cancel = ctx.cancel.clone();
        let faults = std::sync::Arc::clone(&ctx.faults);
        // Per-worker flight-recorder rings (on the query clock); each build
        // partition comes back as its own `build-N` track.
        let tracers: Vec<Option<Tracer>> = (0..workers)
            .map(|w| {
                ctx.tracer
                    .as_ref()
                    .map(|t| t.for_worker(format!("build-{w}")))
            })
            .collect();
        type BuildPart = (PerfCounters, Result<HashMap<i64, Vec<u32>>>, Option<Tracer>);
        let parts: Vec<BuildPart> = std::thread::scope(|s| {
            let handles: Vec<_> = tracers
                .into_iter()
                .enumerate()
                .map(|(w, tracer)| {
                    let cfg = cfg.clone();
                    let mut code = code.clone();
                    let stop = &stop;
                    let cancel = &cancel;
                    let faults = &faults;
                    s.spawn(move || {
                        // The machine and tracer live outside the unwind
                        // boundary so a panicked worker still reports its
                        // counters and its ring.
                        let mut m = Machine::new(cfg);
                        let mut tracer = tracer;
                        let start_ns = tracer.as_ref().map_or(0, Tracer::now_ns);
                        let mut inserted = 0u64;
                        let caught =
                            catch_unwind(AssertUnwindSafe(|| -> Result<HashMap<i64, Vec<u32>>> {
                                let mut part: HashMap<i64, Vec<u32>> = HashMap::new();
                                for (idx, row) in rows.iter().enumerate() {
                                    // NULL keys go to worker 0: they run build
                                    // code but insert nothing (never matched).
                                    let key = row.get(build_key).as_int();
                                    let owner = match key {
                                        Some(k) => (mix(k as u64) % workers as u64) as usize,
                                        None => 0,
                                    };
                                    if owner != w {
                                        continue;
                                    }
                                    if stop.load(Ordering::Relaxed) {
                                        break;
                                    }
                                    if let Err(e) = cancel.check() {
                                        if let Some(t) = tracer.as_mut() {
                                            t.record(TraceEvent::CancelObserved);
                                        }
                                        return Err(e);
                                    }
                                    if let Err(e) = faults.hit(fault::HASHJOIN_BUILD) {
                                        if let Some(t) = tracer.as_mut() {
                                            t.record(TraceEvent::FaultTrip {
                                                site: fault::HASHJOIN_BUILD.into(),
                                            });
                                        }
                                        return Err(e);
                                    }
                                    m.exec_region(&mut code);
                                    if let Some(k) = key {
                                        m.data_write(ht_base + (mix(k as u64) & mask) * 16, 16);
                                        part.entry(k).or_default().push(idx as u32);
                                        inserted += 1;
                                    }
                                }
                                Ok(part)
                            }));
                        let result = match caught {
                            Ok(r) => r,
                            Err(payload) => {
                                if let Some(t) = tracer.as_mut() {
                                    t.record(TraceEvent::WorkerPanic);
                                }
                                Err(DbError::WorkerFailed(format!(
                                    "hash build worker {w} panicked: {}",
                                    fault::panic_message(&*payload)
                                )))
                            }
                        };
                        if result.is_err() {
                            stop.store(true, Ordering::Relaxed);
                        }
                        if let Some(t) = tracer.as_mut() {
                            t.record(TraceEvent::BuildPartition {
                                worker: w as u32,
                                rows: inserted,
                                start_ns,
                            });
                        }
                        (m.snapshot(), result, tracer)
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(w, h)| {
                    h.join().unwrap_or_else(|payload| {
                        (
                            PerfCounters::default(),
                            Err(DbError::WorkerFailed(format!(
                                "hash build worker {w} panicked: {}",
                                fault::panic_message(&*payload)
                            ))),
                            None,
                        )
                    })
                })
                .collect()
        });
        let mut first_err = None;
        for (counters, result, trace) in parts {
            // Absorb every lane's counters — even failed ones — so the
            // simulated work that did happen stays conserved.
            ctx.machine.absorb(&counters);
            ctx.absorb_trace(trace);
            match result {
                Ok(part) => self.table.extend(part),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => {
                self.table.clear();
                Err(e)
            }
            None => Ok(()),
        }
    }
}

impl Operator for HashJoinOp {
    fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn set_batch_hint(&mut self, n: usize) {
        self.batch_hint = self.batch_hint.max(n);
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.probe.open(ctx)?;
        self.build.open(ctx)?;
        self.out_region = ctx
            .arena
            .alloc_region(self.batch_hint as u32 + 1, schema_slot_bytes(&self.schema));

        self.table.clear();
        self.build_rows.clear();
        if ctx.build_threads > 1 {
            // Parallel build: the child is one iterator, so the drain itself
            // stays on this core — but build-code execution and hash
            // insertion move to a key-partitioned worker pool.
            while let Some(slot) = self.build.next(ctx)? {
                ctx.check_cancel()?;
                ctx.tuple_yield();
                let row = ctx.arena.tuple(slot).clone();
                self.build_rows.push(row);
            }
            let buckets = (self.build_rows.len().max(1) * 2).next_power_of_two() as u64;
            self.bucket_mask = buckets - 1;
            self.ht_base = ctx.arena.sim_alloc(buckets * 16);
            self.parallel_insert(ctx)?;
        } else {
            // Serial blocking build: drain the build child, interleaving
            // build code with the child's code per row (the PCPC pattern the
            // refiner may break with a buffer below us).
            while let Some(slot) = self.build.next(ctx)? {
                ctx.check_cancel()?;
                ctx.tuple_yield();
                ctx.fault(fault::HASHJOIN_BUILD)?;
                ctx.machine.exec_region(&mut self.build_code);
                let row = ctx.arena.tuple(slot).clone();
                let key = row.get(self.build_key).as_int();
                let idx = self.build_rows.len() as u32;
                self.build_rows.push(row);
                if let Some(k) = key {
                    self.table.entry(k).or_default().push(idx);
                }
                // NULL build keys never match; they are stored but unreachable.
            }

            // Size the simulated bucket array now that the count is known,
            // then account one write per insert.
            let buckets = (self.build_rows.len().max(1) * 2).next_power_of_two() as u64;
            self.bucket_mask = buckets - 1;
            self.ht_base = ctx.arena.sim_alloc(buckets * 16);
            // Writes are modeled in build-row order — the order the inserts
            // actually happened — not by iterating `table`, whose randomized
            // hash order would make the simulated miss counts nondeterministic.
            for row in &self.build_rows {
                if let Some(k) = row.get(self.build_key).as_int() {
                    ctx.machine
                        .data_write(self.ht_base + (mix(k as u64) & self.bucket_mask) * 16, 16);
                }
            }
        }
        self.pending = None;
        Ok(())
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<TupleSlot>> {
        ctx.machine.exec_region(&mut self.probe_code);
        loop {
            if let Some((probe_slot, matches, pos)) = &mut self.pending {
                if *pos < matches.len() {
                    let build_row = &self.build_rows[matches[*pos] as usize];
                    *pos += 1;
                    let joined = ctx.arena.tuple(*probe_slot).join(build_row);
                    let slot = ctx.arena.store(self.out_region, joined, &mut ctx.machine);
                    return Ok(Some(slot));
                }
                self.pending = None;
            }
            match self.probe.next(ctx)? {
                None => return Ok(None),
                Some(slot) => {
                    let key = ctx.arena.tuple(slot).get(self.probe_key).as_int();
                    let matches = match key {
                        None => Vec::new(), // NULL probe key matches nothing
                        Some(k) => {
                            // Random bucket access: the working set that
                            // competes with large buffers for cache (§7.4).
                            ctx.machine.data_read(self.bucket_addr(k), 16);
                            self.table.get(&k).cloned().unwrap_or_default()
                        }
                    };
                    ctx.machine.branch(self.match_site, !matches.is_empty());
                    if !matches.is_empty() {
                        self.pending = Some((slot, matches, 0));
                    }
                }
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.table.clear();
        self.build_rows.clear();
        self.probe.close(ctx)?;
        self.build.close(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::seqscan::SeqScanOp;
    use crate::expr::Expr;
    use bufferdb_cachesim::MachineConfig;
    use bufferdb_storage::{Catalog, TableBuilder};
    use bufferdb_types::{DataType, Datum, Field, Schema};

    fn setup() -> (Catalog, FootprintModel, ExecContext) {
        let c = Catalog::new();
        let mut li = TableBuilder::new(
            "lineitem",
            Schema::new(vec![
                Field::new("l_orderkey", DataType::Int),
                Field::new("l_qty", DataType::Int),
            ]),
        );
        for i in 0..30 {
            li.push(Tuple::new(vec![Datum::Int(i / 3), Datum::Int(i)]));
        }
        c.add_table(li);
        let mut orders = TableBuilder::new(
            "orders",
            Schema::new(vec![
                Field::new("o_orderkey", DataType::Int),
                Field::nullable("o_flag", DataType::Int),
            ]),
        );
        for i in 0..10 {
            orders.push(Tuple::new(vec![Datum::Int(i), Datum::Int(i % 2)]));
        }
        // A row with NULL flag and an unmatched key.
        orders.push(Tuple::new(vec![Datum::Int(99), Datum::Null]));
        c.add_table(orders);
        (
            c,
            FootprintModel::new(),
            ExecContext::new(MachineConfig::pentium4_like()),
        )
    }

    fn scan(c: &Catalog, fm: &mut FootprintModel, t: &str) -> Box<dyn Operator> {
        Box::new(SeqScanOp::new(c, fm, t, None, None).unwrap())
    }

    #[test]
    fn equi_join_produces_all_matches() {
        let (c, mut fm, mut ctx) = setup();
        let probe = scan(&c, &mut fm, "lineitem");
        let build = scan(&c, &mut fm, "orders");
        let mut op = HashJoinOp::new(&mut fm, probe, build, 0, 0);
        op.open(&mut ctx).unwrap();
        let mut rows = Vec::new();
        while let Some(s) = op.next(&mut ctx).unwrap() {
            rows.push(ctx.arena.tuple(s).clone());
        }
        assert_eq!(rows.len(), 30, "30 lineitems each match one order");
        for r in &rows {
            assert_eq!(r.get(0).as_int(), r.get(2).as_int(), "keys must agree");
        }
        op.close(&mut ctx).unwrap();
    }

    #[test]
    fn duplicate_build_keys_fan_out() {
        let (c, mut fm, mut ctx) = setup();
        // Join orders (probe) against lineitem (build): each order has 3 items.
        let probe = scan(&c, &mut fm, "orders");
        let build = scan(&c, &mut fm, "lineitem");
        let mut op = HashJoinOp::new(&mut fm, probe, build, 0, 0);
        op.open(&mut ctx).unwrap();
        let mut n = 0;
        while op.next(&mut ctx).unwrap().is_some() {
            n += 1;
        }
        assert_eq!(
            n, 30,
            "10 matching orders × 3 items (order 99 matches none)"
        );
    }

    #[test]
    fn probe_with_predicate_filtered_child() {
        let (c, mut fm, mut ctx) = setup();
        let pred = Expr::col(0).lt(Expr::lit(2));
        let probe = Box::new(SeqScanOp::new(&c, &mut fm, "lineitem", Some(pred), None).unwrap());
        let build = scan(&c, &mut fm, "orders");
        let mut op = HashJoinOp::new(&mut fm, probe, build, 0, 0);
        op.open(&mut ctx).unwrap();
        let mut n = 0;
        while op.next(&mut ctx).unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 6, "orders 0 and 1, 3 items each");
    }

    #[test]
    fn empty_build_side_yields_nothing() {
        let (c, mut fm, mut ctx) = setup();
        let pred = Expr::col(0).lt(Expr::lit(0));
        let build = Box::new(SeqScanOp::new(&c, &mut fm, "orders", Some(pred), None).unwrap());
        let probe = scan(&c, &mut fm, "lineitem");
        let mut op = HashJoinOp::new(&mut fm, probe, build, 0, 0);
        op.open(&mut ctx).unwrap();
        assert!(op.next(&mut ctx).unwrap().is_none());
    }

    #[test]
    fn build_phase_executes_build_code_per_row() {
        let (c, mut fm, mut ctx) = setup();
        let probe = scan(&c, &mut fm, "lineitem");
        let build = scan(&c, &mut fm, "orders");
        let mut op = HashJoinOp::new(&mut fm, probe, build, 0, 0);
        let before = ctx.machine.snapshot();
        op.open(&mut ctx).unwrap();
        let delta = ctx.machine.snapshot() - before;
        // 11 build rows × (12 K build code / 4 + 9 K scan code / 4) ≥ 55 K instructions.
        assert!(delta.instructions > 50_000, "got {}", delta.instructions);
    }
}
