//! `repro heatmap` and `repro trace --server`: the server observatory's
//! committed artifacts.
//!
//! The heatmap run drives the same 8-plan TPC-H mix as `repro server`
//! through one deterministic [`VirtualServer`] with the per-segment L1i
//! heat ledger enabled, then reports eviction attribution per code
//! segment. Conservation is checked *in the artifact itself*: the report
//! carries both the machine-counter totals and the ledger sums, and
//! refuses to serialize if they differ — per-segment misses sum exactly
//! to `l1i_misses`, cross-attributed misses to `l1i_cross_misses`.
//!
//! The server trace run enables the always-on flight recorder instead:
//! admission waits, per-query runs, and session-core quantum turns (with
//! their cross-miss charge) land on two server-scoped Perfetto tracks
//! covering the whole run.

use crate::json::{Json, SCHEMA_VERSION};
use bufferdb_cachesim::MachineConfig;
use bufferdb_core::parallel::parallelize_plan;
use bufferdb_core::plan::PlanNode;
use bufferdb_core::refine::{refine_plan, RefineConfig};
use bufferdb_core::server::virt::VirtualServer;
use bufferdb_core::server::{ServerConfig, SubmitSpec};
use bufferdb_storage::Catalog;
use bufferdb_tpch::queries::{self, JoinMethod};
use std::fmt::Write as _;

/// Pool workers for the observatory runs (matches `repro server`).
const WORKERS: usize = 10;

/// Concurrent closed-loop streams. High enough that quantum time-sharing
/// (the cross-eviction channel) is exercised on every turn.
const STREAMS: usize = 4;

/// Exchange lanes per plan.
const LANES: usize = 2;

/// Total queries per run (divisible by [`STREAMS`]).
const TOTAL_JOBS: usize = 16;

/// One per-segment row of the heatmap report.
#[derive(Debug, Clone)]
pub struct SegmentEntry {
    /// Code-segment name (operator footprint label).
    pub segment: String,
    /// L1i misses taken while fetching this segment.
    pub misses: u64,
    /// Subset of `misses` on lines another query's code evicted.
    pub cross_misses: u64,
    /// Lines this segment pushed out of the cache.
    pub evictions: u64,
    /// Cross-owner misses this segment *caused* elsewhere.
    pub cross_caused: u64,
    /// `misses / machine_l1i_misses` in [0, 1].
    pub miss_share: f64,
    /// `cross_misses / machine_l1i_cross_misses` in [0, 1].
    pub cross_share: f64,
}

impl SegmentEntry {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("segment".into(), Json::str(&self.segment)),
            ("misses".into(), Json::U64(self.misses)),
            ("cross_misses".into(), Json::U64(self.cross_misses)),
            ("evictions".into(), Json::U64(self.evictions)),
            ("cross_caused".into(), Json::U64(self.cross_caused)),
            ("miss_share".into(), Json::F64(self.miss_share)),
            ("cross_share".into(), Json::F64(self.cross_share)),
        ])
    }
}

/// The machine-readable heatmap report (`BENCH_heatmap.json`).
#[derive(Debug, Clone, Default)]
pub struct HeatmapReport {
    /// TPC-H scale factor.
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Pool workers the run used.
    pub workers: u64,
    /// Concurrent client streams.
    pub streams: u64,
    /// Total queries executed.
    pub jobs: u64,
    /// Machine-total L1i misses summed over every core.
    pub machine_l1i_misses: u64,
    /// Machine-total cross-query L1i misses.
    pub machine_l1i_cross_misses: u64,
    /// One row per code segment, sorted by misses descending.
    pub segments: Vec<SegmentEntry>,
}

impl HeatmapReport {
    /// Sum of per-segment misses — equals `machine_l1i_misses` exactly.
    pub fn heat_misses(&self) -> u64 {
        self.segments.iter().map(|s| s.misses).sum()
    }

    /// Sum of per-segment cross misses — equals
    /// `machine_l1i_cross_misses` exactly.
    pub fn heat_cross_misses(&self) -> u64 {
        self.segments.iter().map(|s| s.cross_misses).sum()
    }

    /// The segment carrying the largest cross-miss share (the headline the
    /// CI drift gate watches), if any cross misses were attributed.
    pub fn headline(&self) -> Option<&SegmentEntry> {
        self.segments
            .iter()
            .filter(|s| s.cross_misses > 0)
            .max_by(|a, b| {
                a.cross_misses
                    .cmp(&b.cross_misses)
                    .then_with(|| b.segment.cmp(&a.segment))
            })
    }

    /// Render the report as a pretty-printed JSON document. Panics if the
    /// ledger does not conserve against the machine totals — a
    /// non-conserving artifact must never be committed.
    pub fn to_json(&self) -> String {
        assert_eq!(
            self.heat_misses(),
            self.machine_l1i_misses,
            "heatmap misses must sum exactly to machine L1i misses"
        );
        assert_eq!(
            self.heat_cross_misses(),
            self.machine_l1i_cross_misses,
            "heatmap cross misses must sum exactly to machine cross misses"
        );
        Json::Obj(vec![
            ("schema".into(), Json::str("bufferdb-heatmap/v1")),
            ("schema_version".into(), Json::U64(SCHEMA_VERSION)),
            ("scale_factor".into(), Json::F64(self.scale)),
            ("seed".into(), Json::U64(self.seed)),
            ("workers".into(), Json::U64(self.workers)),
            ("streams".into(), Json::U64(self.streams)),
            ("jobs".into(), Json::U64(self.jobs)),
            (
                "machine_l1i_misses".into(),
                Json::U64(self.machine_l1i_misses),
            ),
            (
                "machine_l1i_cross_misses".into(),
                Json::U64(self.machine_l1i_cross_misses),
            ),
            ("heat_misses".into(), Json::U64(self.heat_misses())),
            (
                "heat_cross_misses".into(),
                Json::U64(self.heat_cross_misses()),
            ),
            (
                "segments".into(),
                Json::Arr(self.segments.iter().map(|s| s.to_json()).collect()),
            ),
        ])
        .pretty()
    }
}

/// The workload mix (same 8 plans as `repro server`), refined so buffer
/// operators appear as their own heat segments.
fn workload(catalog: &Catalog, refine_cfg: &RefineConfig) -> Vec<PlanNode> {
    [
        queries::paper_query1(catalog).expect("paper q1"),
        queries::paper_query3(catalog, JoinMethod::HashJoin).expect("paper q3 hj"),
        queries::paper_query3(catalog, JoinMethod::MergeJoin).expect("paper q3 mj"),
        queries::tpch_q12(catalog).expect("q12"),
        queries::tpch_q6(catalog).expect("q6"),
        queries::tpch_q14(catalog).expect("q14"),
        queries::paper_query2(catalog).expect("paper q2"),
        queries::tpch_q1(catalog).expect("q1"),
    ]
    .iter()
    .map(|p| {
        let base = parallelize_plan(p, catalog, LANES).expect("parallelize");
        refine_plan(&base, catalog, refine_cfg)
    })
    .collect()
}

/// Drive the closed-loop job list to completion on `vs`.
fn drive(vs: &mut VirtualServer, plans: &[PlanNode], catalog: &Catalog) -> (u64, u64) {
    let mut job_of: Vec<usize> = Vec::new();
    for job in 0..STREAMS.min(TOTAL_JOBS) {
        vs.submit(SubmitSpec::new(&plans[job % plans.len()], catalog))
            .expect("submit round 0");
        job_of.push(job);
    }
    let (mut completed, mut failed) = (0u64, 0u64);
    loop {
        let done = vs.drain();
        if done.is_empty() {
            break;
        }
        for c in done {
            completed += 1;
            failed += u64::from(!c.outcome.is_ok());
            let next = job_of[c.id as usize] + STREAMS;
            if next < TOTAL_JOBS {
                vs.submit(SubmitSpec::new(&plans[next % plans.len()], catalog).at(c.done_ns))
                    .expect("submit next round");
                job_of.push(next);
            }
        }
    }
    (completed, failed)
}

/// Run the observatory workload with the heat ledger on and report
/// per-segment eviction attribution. Deterministic for a (scale, seed).
pub fn heatmap_metrics(scale: f64, seed: u64) -> HeatmapReport {
    let catalog = bufferdb_tpch::generate_catalog(scale, seed);
    let machine = MachineConfig::pentium4_like();
    let refine_cfg = RefineConfig::default();
    let plans = workload(&catalog, &refine_cfg);
    let mut vs = VirtualServer::new(ServerConfig::new(WORKERS, STREAMS, machine));
    vs.enable_heatmap();
    let (completed, failed) = drive(&mut vs, &plans, &catalog);
    assert_eq!(failed, 0, "observatory workload must run clean");
    let totals = vs.machine_counters();
    let snap = vs.heatmap();
    let mut segments: Vec<SegmentEntry> = snap
        .by_segment()
        .into_iter()
        .map(|(segment, cell)| SegmentEntry {
            segment,
            misses: cell.misses,
            cross_misses: cell.cross_misses,
            evictions: cell.evictions,
            cross_caused: cell.cross_caused,
            miss_share: if totals.l1i_misses == 0 {
                0.0
            } else {
                cell.misses as f64 / totals.l1i_misses as f64
            },
            cross_share: if totals.l1i_cross_misses == 0 {
                0.0
            } else {
                cell.cross_misses as f64 / totals.l1i_cross_misses as f64
            },
        })
        .collect();
    segments.sort_by(|a, b| {
        b.misses
            .cmp(&a.misses)
            .then_with(|| a.segment.cmp(&b.segment))
    });
    HeatmapReport {
        scale,
        seed,
        workers: WORKERS as u64,
        streams: STREAMS as u64,
        jobs: completed,
        machine_l1i_misses: totals.l1i_misses,
        machine_l1i_cross_misses: totals.l1i_cross_misses,
        segments,
    }
}

/// Plain-text rendering of the heatmap run (the `repro heatmap` report).
pub fn heatmap_table(report: &HeatmapReport) -> String {
    let mut s = format!(
        "== Heatmap: per-segment L1i eviction attribution, {} streams, {} jobs ==\n\
         segment                    |    misses |  cross | cross% | evictions | caused\n",
        report.streams, report.jobs
    );
    for e in &report.segments {
        let pct = if e.misses > 0 {
            100.0 * e.cross_misses as f64 / e.misses as f64
        } else {
            0.0
        };
        let _ = writeln!(
            s,
            "{:<26} | {:>9} | {:>6} | {:>5.1}% | {:>9} | {}",
            e.segment, e.misses, e.cross_misses, pct, e.evictions, e.cross_caused,
        );
    }
    let _ = writeln!(
        s,
        "conservation: Σ misses {} == machine {} | Σ cross {} == machine {}",
        report.heat_misses(),
        report.machine_l1i_misses,
        report.heat_cross_misses(),
        report.machine_l1i_cross_misses,
    );
    if let Some(h) = report.headline() {
        let _ = writeln!(
            s,
            "headline: {} carries {:.1}% of cross-query misses",
            h.segment,
            100.0 * h.cross_share,
        );
    }
    s
}

/// Run the observatory workload under the always-on server flight recorder
/// and return `(perfetto_json, summary)`: one timeline covering every
/// query's wait/run spans and the session core's quantum turns.
pub fn server_trace(scale: f64, seed: u64) -> (String, String) {
    let catalog = bufferdb_tpch::generate_catalog(scale, seed);
    let machine = MachineConfig::pentium4_like();
    let plans = workload(&catalog, &RefineConfig::default());
    let mut vs = VirtualServer::new(ServerConfig::new(WORKERS, STREAMS, machine));
    vs.enable_flight_recorder();
    let (_, failed) = drive(&mut vs, &plans, &catalog);
    assert_eq!(failed, 0, "observatory workload must run clean");
    let report = vs.finish_recorder().expect("recorder was enabled");
    (report.perfetto_json(), report.summary())
}

/// Install every `sys.*` table (server, database caches, SLO windows),
/// run a short workload, then query each table through an ordinary plan.
/// Returns one line per table with its row count, and asserts that every
/// sys scan executed **zero** modeled work (the observer-effect contract).
pub fn sys_tables_demo(scale: f64, seed: u64) -> String {
    use bufferdb_cachesim::PerfCounters;
    use bufferdb_core::exec::execute_query;
    use bufferdb_core::obs::slo::{slo_windows_table, SloConfig, SloTracker};
    use bufferdb_core::obs::timeseries::TimeSeriesRegistry;
    use bufferdb_core::prepare::Database;
    use bufferdb_core::session::QueryOpts;
    use std::sync::{Arc, Mutex};

    let machine = MachineConfig::pentium4_like();
    let db = Database::open(
        bufferdb_tpch::generate_catalog(scale, seed),
        machine.clone(),
    );
    let catalog = db.catalog();
    db.install_sys_tables();

    let mut vs = VirtualServer::new(ServerConfig::new(WORKERS, STREAMS, machine.clone()));
    vs.enable_heatmap();
    vs.install_sys_tables(catalog);
    let plans = workload(catalog, &RefineConfig::default());
    let (completed, failed) = drive(&mut vs, &plans, catalog);
    assert_eq!(failed, 0, "observatory workload must run clean");

    // Populate the database-side tables and an SLO tracker with real state.
    let q = db.prepare(&plans[0]).expect("prepare");
    assert!(q.execute().is_ok());
    assert!(db.prepare(&plans[0]).is_ok()); // second prepare: a cache hit
    let mut ts = TimeSeriesRegistry::new(1_000_000);
    ts.record_latency("all", 1, 500);
    let done = ts.finish(1_000_000);
    let mut slo = SloTracker::new(SloConfig::default());
    for w in &done.windows {
        slo.observe(w);
    }
    catalog.register_sys_table(
        "sys.slo_windows",
        slo_windows_table(Arc::new(Mutex::new(slo))),
    );

    let mut s = format!("== sys.* tables after {completed} queries ==\n");
    for name in catalog.sys_table_names() {
        let plan = PlanNode::SysScan {
            table: name.clone(),
        };
        let out = execute_query(&plan, catalog, &machine, &QueryOpts::new());
        assert!(out.is_ok(), "{name}: {:?}", out.error());
        assert_eq!(
            out.stats().counters,
            PerfCounters::default(),
            "{name}: sys scans must execute zero modeled work"
        );
        let _ = writeln!(
            s,
            "{:<22} {:>5} rows, 0 modeled cycles",
            name,
            out.rows().len()
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_report_conserves_and_serializes() {
        let report = heatmap_metrics(0.003, 7);
        assert!(report.jobs > 0);
        assert_eq!(report.heat_misses(), report.machine_l1i_misses);
        assert_eq!(report.heat_cross_misses(), report.machine_l1i_cross_misses);
        assert!(
            report.machine_l1i_cross_misses > 0,
            "streams must interfere"
        );
        let json = report.to_json();
        assert!(json.contains("bufferdb-heatmap/v1"));
        let doc = Json::parse(&json).expect("self-parse");
        assert!(doc.get("segments").and_then(Json::as_arr).is_some());
        let table = heatmap_table(&report);
        assert!(table.contains("conservation"), "{table}");
    }

    #[test]
    fn server_trace_exports_both_tracks() {
        let (json, summary) = server_trace(0.003, 7);
        assert!(json.contains("server.queries"), "{summary}");
        assert!(json.contains("server.core"));
        assert!(json.contains("query.run"));
        assert!(json.contains("core.turn"));
    }
}
