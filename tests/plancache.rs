//! Plan-cache correctness suite: fingerprint hits and misses, LRU eviction,
//! invalidation on stats-epoch / machine / thread-count changes, result
//! equivalence cached vs. uncached (serial and parallel), and the
//! no-poisoning guarantee — a faulted or cancelled execution must never
//! modify a cached plan.

use bufferdb::core::fault::{self, FaultMode, Trigger};
use bufferdb::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Rows in the test table: big enough that the refiner sees a
/// buffering-worthy cardinality and the parallelizer sees a morsel-worthy
/// scan (512-row floor).
const ROWS: i64 = 10_000;

fn test_catalog() -> Catalog {
    let c = Catalog::new();
    let mut b = TableBuilder::new(
        "lineitem",
        Schema::new(vec![
            Field::new("l_orderkey", DataType::Int),
            Field::new("l_quantity", DataType::Int),
        ]),
    );
    for i in 0..ROWS {
        b.push(Tuple::new(vec![Datum::Int(i / 4), Datum::Int(i % 50)]));
    }
    c.add_table(b);
    c
}

fn scan() -> PlanNode {
    PlanNode::SeqScan {
        table: "lineitem".into(),
        predicate: Some(Expr::col(1).le(Expr::lit(45))),
        projection: None,
    }
}

/// The refine-suite Query 1 shape: scan + 3 aggregates overflows the 16 KB
/// budget, so static refinement places a buffer — giving the `buffer.fill`
/// fault site something to hit.
fn agg_plan() -> PlanNode {
    PlanNode::Aggregate {
        input: Box::new(scan()),
        group_by: vec![],
        aggs: vec![
            AggSpec::new(AggFunc::Sum, Expr::col(1), "s"),
            AggSpec::new(AggFunc::Avg, Expr::col(1), "a"),
            AggSpec::count_star("n"),
        ],
    }
}

fn db() -> Database {
    Database::open(test_catalog(), MachineConfig::pentium4_like())
}

fn rendered(rows: &[Tuple]) -> Vec<String> {
    let mut v: Vec<String> = rows.iter().map(|t| format!("{t}")).collect();
    v.sort();
    v
}

#[test]
fn same_plan_hits_different_plan_misses() {
    let db = db();
    db.prepare(&agg_plan()).unwrap();
    db.prepare(&agg_plan()).unwrap();
    db.prepare(&scan()).unwrap();
    let s = db.plan_cache().stats();
    assert_eq!(s.hits, 1, "second prepare of the same plan must hit");
    assert_eq!(s.misses, 2, "distinct fingerprints must miss");
    assert_eq!(s.entries, 2);
}

#[test]
fn eviction_at_capacity_is_lru() {
    let db = db().with_plan_cache(Arc::new(PlanCache::new(2)));
    let limit = |n: u64| PlanNode::Limit {
        input: Box::new(scan()),
        limit: n,
    };
    db.prepare(&limit(1)).unwrap();
    db.prepare(&limit(2)).unwrap();
    db.prepare(&limit(1)).unwrap(); // refresh 1 → victim is 2
    db.prepare(&limit(3)).unwrap(); // evicts 2
    assert_eq!(db.plan_cache().stats().evictions, 1);
    db.prepare(&limit(1)).unwrap();
    assert_eq!(db.plan_cache().stats().hits, 2, "limit(1) stayed resident");
    db.prepare(&limit(2)).unwrap();
    assert_eq!(db.plan_cache().stats().hits, 2, "limit(2) was evicted");
}

#[test]
fn stats_epoch_bump_invalidates_cached_plans() {
    let db = db();
    let before = db.prepare(&agg_plan()).unwrap();
    db.catalog().bump_stats_epoch();
    let after = db.prepare(&agg_plan()).unwrap();
    assert_ne!(before.fingerprint(), after.fingerprint());
    assert!(
        !Arc::ptr_eq(before.entry(), after.entry()),
        "post-bump prepare must re-optimize, not reuse the stale entry"
    );
    let s = db.plan_cache().stats();
    assert_eq!(s.invalidations, 1, "stale entry swept");
    assert_eq!(s.hits, 0);
}

#[test]
fn machine_config_change_re_keys() {
    let a = Database::open(test_catalog(), MachineConfig::pentium4_like());
    let b = Database::open(test_catalog(), MachineConfig::large_l1i());
    let fa = a.prepare(&agg_plan()).unwrap().fingerprint();
    let fb = b.prepare(&agg_plan()).unwrap().fingerprint();
    assert_ne!(fa, fb, "a different machine must not share cached plans");
}

#[test]
fn thread_count_change_re_keys() {
    let mut db = db();
    let f1 = db.prepare(&agg_plan()).unwrap().fingerprint();
    db.set_threads(4);
    let f4 = db.prepare(&agg_plan()).unwrap().fingerprint();
    assert_ne!(f1, f4);
    assert_eq!(db.plan_cache().stats().hits, 0);
    // And back: the 1-thread entry is still resident and hits.
    db.set_threads(1);
    db.prepare(&agg_plan()).unwrap();
    assert_eq!(db.plan_cache().stats().hits, 1);
}

#[test]
fn cached_results_match_uncached_at_1_2_7_workers() {
    for workers in [1usize, 2, 7] {
        let mut db = db();
        db.set_threads(workers);
        for plan in [agg_plan(), scan()] {
            let direct = prepare_physical_plan(&plan, db.catalog(), db.refine_config(), workers)
                .unwrap_or_else(|e| panic!("{workers} workers: prepare: {e}"));
            let opts = QueryOpts::new().threads(workers);
            let (rows, _, _) = execute_query(&direct, db.catalog(), db.session().machine(), &opts)
                .into_result()
                .unwrap_or_else(|e| panic!("{workers} workers: uncached run: {e}"));
            let prepared = db.prepare(&plan).unwrap();
            for round in 0..2 {
                let out = prepared.execute();
                assert!(
                    out.is_ok(),
                    "{workers} workers round {round}: {:?}",
                    out.error()
                );
                assert_eq!(
                    rendered(out.rows()),
                    rendered(&rows),
                    "{workers} workers round {round}: cached result differs"
                );
            }
        }
        assert!(db.plan_cache().stats().misses >= 2);
    }
}

#[test]
fn buffer_fill_fault_does_not_poison_the_cache() {
    let db = db();
    let q = db.prepare(&agg_plan()).unwrap();
    let static_plan = q.plan();
    assert!(
        static_plan.buffer_count() >= 1,
        "precondition: refined plan must contain a buffer: {static_plan:?}"
    );
    db.session()
        .faults()
        .arm(fault::BUFFER_FILL, Trigger::at_row(2), FaultMode::Error);
    let out = q.execute_adaptive();
    assert!(
        matches!(out.error(), Some(DbError::FaultInjected(_))),
        "{:?}",
        out.error()
    );
    assert_eq!(q.generation(), 0, "failed run must not adapt the plan");
    assert_eq!(q.plan(), static_plan, "failed run must not modify the plan");
    db.session().faults().clear();
    let clean = q.execute();
    assert!(clean.is_ok(), "{:?}", clean.error());
    assert_eq!(clean.rows().len(), 1, "single aggregate row");
}

#[test]
fn mid_query_cancel_does_not_poison_the_cache() {
    let db = db();
    let q = db.prepare(&agg_plan()).unwrap();
    let static_plan = q.plan();
    let out = q.execute_adaptive_opts(&QueryOpts::new().timeout(Duration::ZERO));
    assert!(
        matches!(out.error(), Some(DbError::Cancelled(_))),
        "{:?}",
        out.error()
    );
    assert_eq!(q.generation(), 0, "cancelled run must not adapt the plan");
    assert_eq!(
        q.plan(),
        static_plan,
        "cancelled run must not modify the plan"
    );
    let clean = q.execute();
    assert!(clean.is_ok(), "{:?}", clean.error());
}

#[test]
fn adaptation_preserves_results() {
    // Whatever the adaptive loop decides, the answer must not change.
    let db = db();
    let q = db.prepare(&agg_plan()).unwrap();
    let baseline = q.execute();
    assert!(baseline.is_ok());
    for _ in 0..4 {
        let out = q.execute_adaptive();
        assert!(out.is_ok(), "{:?}", out.error());
        assert_eq!(rendered(out.rows()), rendered(baseline.rows()));
    }
    let after = q.execute();
    assert_eq!(rendered(after.rows()), rendered(baseline.rows()));
}

#[test]
fn evicted_entry_handle_stays_usable() {
    let db = db().with_plan_cache(Arc::new(PlanCache::new(1)));
    let q = db.prepare(&agg_plan()).unwrap();
    db.prepare(&scan()).unwrap(); // evicts the agg entry
    assert_eq!(db.plan_cache().stats().evictions, 1);
    let out = q.execute();
    assert!(out.is_ok(), "handle must outlive eviction");
}
