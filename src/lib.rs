//! # BufferDB
//!
//! A reproduction of *"Buffering Database Operations for Enhanced Instruction
//! Cache Performance"* (Zhou & Ross, SIGMOD 2004): a demand-pull pipelined
//! query engine, a machine simulator that stands in for the paper's Pentium 4
//! hardware counters, the light-weight **buffer operator**, and the
//! instruction-footprint-driven **plan refinement algorithm**.
//!
//! This facade crate re-exports every workspace crate under one roof:
//!
//! ```
//! use bufferdb::prelude::*;
//!
//! // Build a tiny catalog and run COUNT(*) over a filtered scan.
//! let catalog = bufferdb::tpch::generate_catalog(0.001, 42);
//! let plan = bufferdb::tpch::queries::paper_query2(&catalog).unwrap();
//! let machine = MachineConfig::pentium4_like();
//! let out = execute_query(&plan, &catalog, &machine, &QueryOpts::new());
//! assert_eq!(out.rows().len(), 1); // single aggregate row
//! ```
//!
//! See `examples/` for end-to-end walkthroughs and `crates/bench` for the
//! harness that regenerates every table and figure in the paper.

#![warn(missing_docs)]

pub use bufferdb_cachesim as cachesim;
pub use bufferdb_core as core;
pub use bufferdb_index as index;
pub use bufferdb_storage as storage;
pub use bufferdb_tpch as tpch;
pub use bufferdb_types as types;

/// Commonly used items in one import.
///
/// Covers the full redesigned surface: the
/// [`Database`](bufferdb_core::prepare::Database)/[`PreparedQuery`](bufferdb_core::prepare::PreparedQuery)
/// facade with its plan cache, the
/// [`Session`](bufferdb_core::session::Session)/[`QueryOpts`](bufferdb_core::session::QueryOpts)
/// entry point,
/// execution helpers, plan building, refinement, parallelization, fault
/// injection, and the storage/type vocabulary — everything the examples,
/// integration tests, and bench harness need without deep `crates/...`
/// paths.
pub mod prelude {
    pub use bufferdb_cachesim::{
        BreakdownReport, CacheConfig, HeatCell, HeatSnapshot, MachineConfig, PerfCounters,
    };
    pub use bufferdb_core::cancel::CancelToken;
    pub use bufferdb_core::exec::{execute_query, QueryOutcome};
    pub use bufferdb_core::expr::Expr;
    pub use bufferdb_core::fault::{FaultMode, FaultRegistry, Trigger};
    pub use bufferdb_core::footprint::{FootprintModel, OpKind};
    pub use bufferdb_core::obs::slo::slo_windows_table;
    pub use bufferdb_core::obs::{
        BufferGauges, ExchangeLane, HistSummary, Histogram, MetricsRegistry, ObsId, OpStats,
        PromText, QueryProfile, SloConfig, SloTracker, SloWindow, TimeSeries, TimeSeriesRegistry,
        TraceEvent, TraceReport, Tracer, WindowSnapshot,
    };
    pub use bufferdb_core::optimizer::{choose_pipeline_modes, ExecModePolicy};
    pub use bufferdb_core::parallel::parallelize_plan;
    pub use bufferdb_core::plan::analyze::explain_analyze;
    pub use bufferdb_core::plan::explain::explain;
    pub use bufferdb_core::plan::{AggFunc, AggSpec, IndexMode, PlanNode};
    pub use bufferdb_core::prepare::{
        fingerprint_plan, fingerprint_plan_with_mode, prepare_physical_plan,
        prepare_plan_parts_with_mode, AdaptConfig, AdaptStats, CacheEntry, CacheStats, Database,
        PlanCache, PlanFingerprint, PreparedQuery, ReuseCache, ReuseStats,
    };
    pub use bufferdb_core::refine::{
        refine_plan, refine_plan_observed, ObservedCards, RefineConfig,
    };
    pub use bufferdb_core::server::virt::{CompletedQuery, VirtualServer};
    pub use bufferdb_core::server::{
        QueryTicket, Server, ServerConfig, ServerRecorder, ServerStats, SubmitSpec,
    };
    pub use bufferdb_core::session::{QueryOpts, ReusePolicy, Session};
    pub use bufferdb_core::stats::ExecStats;
    pub use bufferdb_index::BTreeIndex;
    pub use bufferdb_storage::{
        Catalog, FnSysTable, IndexDef, SysTableProvider, SysTableRef, Table, TableBuilder,
    };
    pub use bufferdb_types::{
        DataType, Date, Datum, DbError, Decimal, Field, Result, Schema, Tuple,
    };
}
