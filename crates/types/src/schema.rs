//! Schemas: ordered, named, typed, nullable fields.

use crate::error::{DbError, Result};
use std::fmt;
use std::sync::Arc;

/// The static type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// Fixed-point decimal.
    Decimal,
    /// Calendar date.
    Date,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Decimal => "decimal",
            DataType::Date => "date",
            DataType::Str => "str",
        };
        f.write_str(s)
    }
}

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name, e.g. `l_shipdate`.
    pub name: String,
    /// Column type.
    pub ty: DataType,
    /// Whether NULLs may appear.
    pub nullable: bool,
}

impl Field {
    /// A non-nullable field.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Field {
            name: name.into(),
            ty,
            nullable: false,
        }
    }

    /// A nullable field.
    pub fn nullable(name: impl Into<String>, ty: DataType) -> Self {
        Field {
            name: name.into(),
            ty,
            nullable: true,
        }
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

/// Shared schema handle; operators hand these out without copying.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Wrap in an `Arc`.
    pub fn into_ref(self) -> SchemaRef {
        Arc::new(self)
    }

    /// The fields, in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The field at `idx`. Panics when out of range (schema indices are
    /// produced by plan validation, not user input).
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Position of the column named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| DbError::UnknownColumn(name.to_string()))
    }

    /// Concatenate two schemas (join output: left columns then right columns).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    /// A schema containing the given columns, in the given order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            fields: indices.iter().map(|&i| self.fields[i].clone()).collect(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name, field.ty)?;
            if field.nullable {
                write!(f, "?")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::nullable("b", DataType::Str),
            Field::new("c", DataType::Date),
        ])
    }

    #[test]
    fn index_of_finds_and_errors() {
        let s = sample();
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert_eq!(
            s.index_of("missing"),
            Err(DbError::UnknownColumn("missing".into()))
        );
    }

    #[test]
    fn join_concatenates() {
        let s = sample();
        let t = Schema::new(vec![Field::new("x", DataType::Float)]);
        let j = s.join(&t);
        assert_eq!(j.len(), 4);
        assert_eq!(j.field(3).name, "x");
        assert_eq!(j.field(0).name, "a");
    }

    #[test]
    fn project_reorders() {
        let s = sample();
        let p = s.project(&[2, 0]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.field(0).name, "c");
        assert_eq!(p.field(1).name, "a");
    }

    #[test]
    fn display_marks_nullable() {
        assert_eq!(sample().to_string(), "(a: int, b: str?, c: date)");
    }

    #[test]
    fn empty_schema() {
        let s = Schema::default();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
