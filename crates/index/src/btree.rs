//! The B+-tree itself.
//!
//! A textbook main-memory B+-tree: fixed fan-out internal nodes, leaf nodes
//! linked left-to-right for range scans. Built bottom-up via bulk load or
//! incrementally via inserts; lookups return all row ids for a key, range
//! scans iterate `[lo, hi]` in key order.

use bufferdb_types::{DbError, Result};

/// Heap row identifier stored in index leaves.
pub type RowId = u32;

/// Maximum keys per node (fan-out - 1 for internal nodes).
const MAX_KEYS: usize = 64;
/// Minimum keys per node after a split.
const MIN_KEYS: usize = MAX_KEYS / 2;

#[derive(Debug)]
struct Leaf {
    keys: Vec<i64>,
    rows: Vec<RowId>,
    next: Option<usize>,
}

#[derive(Debug)]
struct Internal {
    /// `keys[i]` is the smallest key reachable via `children[i + 1]`.
    keys: Vec<i64>,
    children: Vec<usize>,
}

#[derive(Debug)]
enum Node {
    Leaf(Leaf),
    Internal(Internal),
}

/// A B+-tree mapping `i64` keys to heap row ids. Duplicates allowed.
#[derive(Debug)]
pub struct BTreeIndex {
    nodes: Vec<Node>,
    root: usize,
    len: usize,
    height: usize,
}

impl Default for BTreeIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl BTreeIndex {
    /// An empty tree.
    pub fn new() -> Self {
        let leaf = Node::Leaf(Leaf {
            keys: Vec::new(),
            rows: Vec::new(),
            next: None,
        });
        BTreeIndex {
            nodes: vec![leaf],
            root: 0,
            len: 0,
            height: 1,
        }
    }

    /// Bulk-load from `(key, row)` pairs; pairs need not be sorted.
    pub fn bulk_load(mut pairs: Vec<(i64, RowId)>) -> Self {
        pairs.sort_unstable();
        let mut tree = BTreeIndex {
            nodes: Vec::new(),
            root: 0,
            len: pairs.len(),
            height: 1,
        };

        // Build the leaf level: chunks of MAX_KEYS, linked in order.
        let mut level: Vec<(i64, usize)> = Vec::new(); // (min key, node id)
        if pairs.is_empty() {
            tree.nodes.push(Node::Leaf(Leaf {
                keys: Vec::new(),
                rows: Vec::new(),
                next: None,
            }));
            tree.root = 0;
            return tree;
        }
        let mut leaf_ids = Vec::new();
        for chunk in pairs.chunks(MAX_KEYS) {
            let id = tree.nodes.len();
            tree.nodes.push(Node::Leaf(Leaf {
                keys: chunk.iter().map(|&(k, _)| k).collect(),
                rows: chunk.iter().map(|&(_, r)| r).collect(),
                next: None,
            }));
            level.push((chunk[0].0, id));
            leaf_ids.push(id);
        }
        for w in leaf_ids.windows(2) {
            if let Node::Leaf(l) = &mut tree.nodes[w[0]] {
                l.next = Some(w[1]);
            }
        }

        // Build internal levels until a single root remains.
        while level.len() > 1 {
            tree.height += 1;
            let mut next_level = Vec::new();
            for chunk in level.chunks(MAX_KEYS + 1) {
                let id = tree.nodes.len();
                tree.nodes.push(Node::Internal(Internal {
                    keys: chunk[1..].iter().map(|&(k, _)| k).collect(),
                    children: chunk.iter().map(|&(_, c)| c).collect(),
                }));
                next_level.push((chunk[0].0, id));
            }
            level = next_level;
        }
        tree.root = level[0].1;
        tree
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (levels, leaves inclusive).
    pub fn height(&self) -> usize {
        self.height
    }

    fn leftmost_leaf(&self) -> usize {
        let mut id = self.root;
        loop {
            match &self.nodes[id] {
                Node::Leaf(_) => return id,
                Node::Internal(n) => id = n.children[0],
            }
        }
    }

    /// Descend to the *leftmost* leaf that may contain `key`. Because a leaf
    /// split can leave keys equal to the separator in the left sibling,
    /// reads must branch left on equality; inserts branch right (appending
    /// after existing duplicates).
    fn find_leaf(&self, key: i64) -> usize {
        let mut id = self.root;
        loop {
            match &self.nodes[id] {
                Node::Leaf(_) => return id,
                Node::Internal(n) => {
                    let slot = n.keys.partition_point(|&k| k < key);
                    id = n.children[slot];
                }
            }
        }
    }

    /// Insert one `(key, row)` entry.
    pub fn insert(&mut self, key: i64, row: RowId) {
        self.len += 1;
        if let Some((mid_key, new_id)) = self.insert_rec(self.root, key, row) {
            // Root split: grow the tree by one level.
            let new_root = Node::Internal(Internal {
                keys: vec![mid_key],
                children: vec![self.root, new_id],
            });
            self.nodes.push(new_root);
            self.root = self.nodes.len() - 1;
            self.height += 1;
        }
    }

    /// Returns `Some((separator key, new right node id))` when `node` split.
    fn insert_rec(&mut self, node: usize, key: i64, row: RowId) -> Option<(i64, usize)> {
        match &mut self.nodes[node] {
            Node::Leaf(leaf) => {
                let pos = leaf.keys.partition_point(|&k| k <= key);
                leaf.keys.insert(pos, key);
                leaf.rows.insert(pos, row);
                if leaf.keys.len() <= MAX_KEYS {
                    return None;
                }
                // Split at the midpoint.
                let right_keys = leaf.keys.split_off(MIN_KEYS);
                let right_rows = leaf.rows.split_off(MIN_KEYS);
                let sep = right_keys[0];
                let old_next = leaf.next;
                let new_id = self.nodes.len();
                if let Node::Leaf(l) = &mut self.nodes[node] {
                    l.next = Some(new_id);
                }
                self.nodes.push(Node::Leaf(Leaf {
                    keys: right_keys,
                    rows: right_rows,
                    next: old_next,
                }));
                Some((sep, new_id))
            }
            Node::Internal(n) => {
                let slot = n.keys.partition_point(|&k| k <= key);
                let child = n.children[slot];
                let split = self.insert_rec(child, key, row)?;
                let (sep, new_child) = split;
                if let Node::Internal(n) = &mut self.nodes[node] {
                    let pos = n.keys.partition_point(|&k| k <= sep);
                    n.keys.insert(pos, sep);
                    n.children.insert(pos + 1, new_child);
                    if n.keys.len() <= MAX_KEYS {
                        return None;
                    }
                    // Split internal node; middle key moves up.
                    let mid = n.keys.len() / 2;
                    let up_key = n.keys[mid];
                    let right_keys = n.keys.split_off(mid + 1);
                    n.keys.pop(); // remove up_key
                    let right_children = n.children.split_off(mid + 1);
                    let new_id = self.nodes.len();
                    self.nodes.push(Node::Internal(Internal {
                        keys: right_keys,
                        children: right_children,
                    }));
                    return Some((up_key, new_id));
                }
                unreachable!("node kind changed during insert");
            }
        }
    }

    /// All row ids for `key`, in insertion-independent (key, position) order.
    pub fn lookup(&self, key: i64) -> Vec<RowId> {
        let mut out = Vec::new();
        let mut leaf_id = self.find_leaf(key);
        loop {
            let Node::Leaf(leaf) = &self.nodes[leaf_id] else {
                unreachable!()
            };
            let start = leaf.keys.partition_point(|&k| k < key);
            for i in start..leaf.keys.len() {
                if leaf.keys[i] != key {
                    return out;
                }
                out.push(leaf.rows[i]);
            }
            match leaf.next {
                Some(next) => leaf_id = next,
                None => return out,
            }
        }
    }

    /// Iterate `(key, row)` pairs with `lo <= key <= hi`, in key order.
    pub fn range(&self, lo: i64, hi: i64) -> RangeIter<'_> {
        if lo > hi || self.is_empty() {
            return RangeIter {
                tree: self,
                leaf: None,
                pos: 0,
                hi,
            };
        }
        let leaf = self.find_leaf(lo);
        let Node::Leaf(l) = &self.nodes[leaf] else {
            unreachable!()
        };
        let pos = l.keys.partition_point(|&k| k < lo);
        RangeIter {
            tree: self,
            leaf: Some(leaf),
            pos,
            hi,
        }
    }

    /// Iterate every `(key, row)` pair in key order.
    pub fn scan_all(&self) -> RangeIter<'_> {
        RangeIter {
            tree: self,
            leaf: Some(self.leftmost_leaf()),
            pos: 0,
            hi: i64::MAX,
        }
    }

    /// The number of comparisons a lookup performs (≈ height × log fan-out);
    /// exposed so the executor can charge instruction work per probe.
    pub fn probe_cost(&self) -> usize {
        self.height * (MAX_KEYS.ilog2() as usize + 1)
    }

    /// Validate structural invariants; returns a description of the first
    /// violation. Used by property tests.
    pub fn check_invariants(&self) -> Result<()> {
        // Keys within each leaf are sorted; leaf chain is globally sorted;
        // entry count matches len.
        let mut count = 0;
        let mut last: Option<i64> = None;
        let mut leaf_id = Some(self.leftmost_leaf());
        while let Some(id) = leaf_id {
            let Node::Leaf(leaf) = &self.nodes[id] else {
                return Err(DbError::ExecProtocol(
                    "leaf chain hits internal node".into(),
                ));
            };
            if leaf.keys.len() != leaf.rows.len() {
                return Err(DbError::ExecProtocol(
                    "leaf keys/rows length mismatch".into(),
                ));
            }
            for &k in &leaf.keys {
                if let Some(prev) = last {
                    if prev > k {
                        return Err(DbError::ExecProtocol(format!(
                            "keys out of order: {prev} > {k}"
                        )));
                    }
                }
                last = Some(k);
                count += 1;
            }
            leaf_id = leaf.next;
        }
        if count != self.len {
            return Err(DbError::ExecProtocol(format!(
                "len {} but {} entries reachable",
                self.len, count
            )));
        }
        Ok(())
    }
}

/// Iterator over a key range of the tree.
pub struct RangeIter<'a> {
    tree: &'a BTreeIndex,
    leaf: Option<usize>,
    pos: usize,
    hi: i64,
}

impl Iterator for RangeIter<'_> {
    type Item = (i64, RowId);

    fn next(&mut self) -> Option<(i64, RowId)> {
        loop {
            let leaf_id = self.leaf?;
            let Node::Leaf(leaf) = &self.tree.nodes[leaf_id] else {
                unreachable!()
            };
            if self.pos < leaf.keys.len() {
                let k = leaf.keys[self.pos];
                if k > self.hi {
                    self.leaf = None;
                    return None;
                }
                let r = leaf.rows[self.pos];
                self.pos += 1;
                return Some((k, r));
            }
            self.leaf = leaf.next;
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bufferdb_types::Rng;

    #[test]
    fn empty_tree() {
        let t = BTreeIndex::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup(42), Vec::<RowId>::new());
        assert_eq!(t.range(0, 100).count(), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = BTreeIndex::new();
        for i in 0..500i64 {
            t.insert(i * 2, i as RowId);
        }
        assert_eq!(t.len(), 500);
        assert_eq!(t.lookup(10), vec![5]);
        assert_eq!(t.lookup(11), Vec::<RowId>::new());
        t.check_invariants().unwrap();
    }

    #[test]
    fn duplicates_are_kept() {
        let mut t = BTreeIndex::new();
        for i in 0..10u32 {
            t.insert(7, i);
        }
        let mut rows = t.lookup(7);
        rows.sort_unstable();
        assert_eq!(rows, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn duplicates_across_leaf_boundaries() {
        let mut t = BTreeIndex::new();
        // Enough duplicates to span several leaves.
        for i in 0..300u32 {
            t.insert(5, i);
        }
        t.insert(4, 999);
        t.insert(6, 998);
        assert_eq!(t.lookup(5).len(), 300);
        assert_eq!(t.lookup(4), vec![999]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn range_scan_inclusive() {
        let mut t = BTreeIndex::new();
        for i in 0..1000i64 {
            t.insert(i, i as RowId);
        }
        let got: Vec<i64> = t.range(100, 110).map(|(k, _)| k).collect();
        assert_eq!(got, (100..=110).collect::<Vec<_>>());
        assert_eq!(t.range(500, 400).count(), 0);
        assert_eq!(t.range(-10, -1).count(), 0);
        assert_eq!(t.range(999, 5000).count(), 1);
    }

    #[test]
    fn scan_all_is_sorted_and_complete() {
        let mut rng = Rng::seed_from_u64(7);
        let mut t = BTreeIndex::new();
        let mut keys: Vec<i64> = (0..5000).map(|_| rng.gen_range(-1000i64..1000)).collect();
        for (i, &k) in keys.iter().enumerate() {
            t.insert(k, i as RowId);
        }
        let scanned: Vec<i64> = t.scan_all().map(|(k, _)| k).collect();
        keys.sort_unstable();
        assert_eq!(scanned, keys);
        t.check_invariants().unwrap();
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let mut rng = Rng::seed_from_u64(99);
        let pairs: Vec<(i64, RowId)> = (0..3000)
            .map(|i| (rng.gen_range(0i64..500), i as RowId))
            .collect();
        let bulk = BTreeIndex::bulk_load(pairs.clone());
        let mut incr = BTreeIndex::new();
        for &(k, r) in &pairs {
            incr.insert(k, r);
        }
        bulk.check_invariants().unwrap();
        for key in 0..500i64 {
            let mut a = bulk.lookup(key);
            let mut b = incr.lookup(key);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "key {key}");
        }
        assert_eq!(bulk.len(), incr.len());
    }

    #[test]
    fn bulk_load_empty() {
        let t = BTreeIndex::bulk_load(Vec::new());
        assert!(t.is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn height_grows_logarithmically() {
        let pairs: Vec<(i64, RowId)> = (0..100_000).map(|i| (i, i as RowId)).collect();
        let t = BTreeIndex::bulk_load(pairs);
        assert!(t.height() <= 4, "height {}", t.height());
        assert!(t.probe_cost() > 0);
    }

    /// The tree agrees with a reference BTreeMap<i64, Vec<RowId>> on
    /// lookups and ranges, and invariants hold after arbitrary inserts.
    #[test]
    fn matches_reference_over_random_inserts() {
        use std::collections::BTreeMap;
        for seed in 0..64u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let n = rng.gen_range(1usize..400);
            let mut t = BTreeIndex::new();
            let mut reference: BTreeMap<i64, Vec<RowId>> = BTreeMap::new();
            for _ in 0..n {
                let k = rng.gen_range(-50i64..50);
                let r = rng.gen_range(0u32..1000);
                t.insert(k, r);
                reference.entry(k).or_default().push(r);
            }
            t.check_invariants().unwrap();
            for k in -50..50i64 {
                let mut got = t.lookup(k);
                got.sort_unstable();
                let mut want = reference.get(&k).cloned().unwrap_or_default();
                want.sort_unstable();
                assert_eq!(got, want, "seed {seed} key {k}");
            }
            // A range scan agrees too.
            let (lo, hi) = (-20i64, 20i64);
            let got: Vec<i64> = t.range(lo, hi).map(|(k, _)| k).collect();
            let want: Vec<i64> = reference
                .range(lo..=hi)
                .flat_map(|(&k, rs)| std::iter::repeat_n(k, rs.len()))
                .collect();
            assert_eq!(got, want, "seed {seed}");
        }
    }

    /// Bulk load over random pairs preserves every entry.
    #[test]
    fn bulk_load_complete_over_random_pairs() {
        for seed in 0..64u64 {
            let mut rng = Rng::seed_from_u64(seed ^ 0xB17E);
            let n = rng.gen_range(0usize..500);
            let pairs: Vec<(i64, RowId)> = (0..n)
                .map(|_| (rng.gen_range(-100i64..100), rng.gen_range(0u32..10_000)))
                .collect();
            let t = BTreeIndex::bulk_load(pairs.clone());
            t.check_invariants().unwrap();
            assert_eq!(t.len(), pairs.len());
            let mut scanned: Vec<(i64, RowId)> = t.scan_all().collect();
            let mut want = pairs;
            want.sort_unstable();
            scanned.sort_unstable();
            assert_eq!(scanned, want, "seed {seed}");
        }
    }
}
