//! Execution context threaded through every operator call.

use crate::arena::TupleArena;
use bufferdb_cachesim::{Machine, MachineConfig};

/// Per-query execution state: the simulated machine and the tuple arena.
///
/// Operators receive `&mut ExecContext` on every `open`/`next`/`close` call,
/// mirroring PostgreSQL's `EState`.
pub struct ExecContext {
    /// The simulated CPU (caches, predictor, counters).
    pub machine: Machine,
    /// Intermediate tuple storage.
    pub arena: TupleArena,
}

impl ExecContext {
    /// Fresh context for one query under the given machine configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        ExecContext { machine: Machine::new(cfg), arena: TupleArena::new() }
    }
}

impl std::fmt::Debug for ExecContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecContext")
            .field("counters", &self.machine.snapshot())
            .field("regions", &self.arena.region_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_context_has_clean_counters() {
        let ctx = ExecContext::new(MachineConfig::pentium4_like());
        let c = ctx.machine.snapshot();
        assert_eq!(c.instructions, 0);
        assert_eq!(ctx.arena.region_count(), 0);
    }
}
