//! EXPLAIN-style plan rendering with footprints and cardinality estimates.

use crate::plan::estimate::estimate_rows;
use crate::plan::PlanNode;
use bufferdb_storage::Catalog;
use std::fmt::Write as _;

/// Render a plan tree, one node per line, annotated with the operator's
/// instruction footprint (Table 2 values) and estimated rows.
pub fn explain(plan: &PlanNode, catalog: &Catalog) -> String {
    let mut out = String::new();
    render(plan, catalog, 0, &mut out);
    out
}

/// The one-line description of a plan node, shared between `explain` and
/// `explain_analyze` so both render identical tree labels.
pub fn node_label(node: &PlanNode) -> String {
    match node {
        PlanNode::SeqScan {
            table, predicate, ..
        } => match predicate {
            Some(p) => format!("SeqScan on {table} filter {p}"),
            None => format!("SeqScan on {table}"),
        },
        PlanNode::IndexScan { index, mode } => match mode {
            crate::plan::IndexMode::LookupParam => {
                format!("IndexScan using {index} (param lookup)")
            }
            crate::plan::IndexMode::Range { lo, hi } => {
                format!("IndexScan using {index} range [{lo:?}, {hi:?}]")
            }
        },
        PlanNode::ReusedScan { handle } => {
            format!("ReusedScan ({} cached rows)", handle.row_count())
        }
        PlanNode::SysScan { table } => format!("SysScan on {table} (zero modeled cost)"),
        PlanNode::NestLoopJoin { fk_inner, qual, .. } => {
            let fk = if *fk_inner { " (fk inner)" } else { "" };
            match qual {
                Some(q) => format!("NestLoopJoin{fk} qual {q}"),
                None => format!("NestLoopJoin{fk}"),
            }
        }
        PlanNode::HashJoin {
            probe_key,
            build_key,
            ..
        } => {
            format!("HashJoin probe.${probe_key} = build.${build_key} (build is blocking)")
        }
        PlanNode::MergeJoin {
            left_key,
            right_key,
            ..
        } => {
            format!("MergeJoin left.${left_key} = right.${right_key}")
        }
        PlanNode::Sort { keys, .. } => format!("Sort by {keys:?} (blocking)"),
        PlanNode::Aggregate { group_by, aggs, .. } => {
            let names: Vec<&str> = aggs.iter().map(|a| a.name.as_str()).collect();
            if group_by.is_empty() {
                format!("Aggregate [{}]", names.join(", "))
            } else {
                format!("HashAggregate group by {group_by:?} [{}]", names.join(", "))
            }
        }
        PlanNode::Project { exprs, .. } => {
            let names: Vec<&str> = exprs.iter().map(|(_, n)| n.as_str()).collect();
            format!("Project [{}]", names.join(", "))
        }
        PlanNode::Buffer { size, .. } => format!("*Buffer* (size {size})"),
        PlanNode::Filter { predicate, .. } => format!("Filter {predicate}"),
        PlanNode::Limit { limit, .. } => format!("Limit {limit}"),
        PlanNode::Materialize { .. } => "Materialize (blocking)".to_string(),
        PlanNode::Exchange { workers, .. } => format!("Exchange ({workers} workers)"),
        PlanNode::PushPipeline { input } => {
            let fused = crate::plan::push_member_kinds(input).len();
            format!("PushPipeline ({fused} fused operators)")
        }
    }
}

fn render(node: &PlanNode, catalog: &Catalog, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    let fp = node.op_kind().footprint_bytes();
    let est = estimate_rows(node, catalog);
    let label = node_label(node);
    let _ = writeln!(
        out,
        "{pad}{label}  [footprint {:.1}K, est_rows {est:.0}]",
        fp as f64 / 1000.0
    );
    for c in node.children() {
        render(c, catalog, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::AggSpec;
    use bufferdb_storage::TableBuilder;
    use bufferdb_types::{DataType, Datum, Field, Schema, Tuple};

    #[test]
    fn explain_renders_buffered_plan() {
        let c = Catalog::new();
        let mut b = TableBuilder::new("t", Schema::new(vec![Field::new("k", DataType::Int)]));
        for i in 0..10 {
            b.push(Tuple::new(vec![Datum::Int(i)]));
        }
        c.add_table(b);
        let plan = PlanNode::Aggregate {
            input: Box::new(PlanNode::Buffer {
                input: Box::new(PlanNode::SeqScan {
                    table: "t".into(),
                    predicate: Some(Expr::col(0).le(Expr::lit(5))),
                    projection: None,
                }),
                size: 100,
            }),
            group_by: vec![],
            aggs: vec![AggSpec::count_star("n")],
        };
        let text = explain(&plan, &c);
        assert!(text.contains("Aggregate [n]"));
        assert!(text.contains("*Buffer* (size 100)"));
        assert!(text.contains("SeqScan on t filter"));
        assert!(text.contains("footprint 13.2K"));
        // Child lines are indented below parents.
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].starts_with("  "));
        assert!(lines[2].starts_with("    "));
    }
}
