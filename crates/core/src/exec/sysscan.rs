//! Scan of a virtual `sys.*` introspection table.
//!
//! A [`SysScanOp`] is the executor leaf behind
//! [`crate::plan::PlanNode::SysScan`]: it snapshots the provider's rows at
//! `open` and hands them out one slot per `next` with **zero modeled cost**.
//! Unlike every other leaf it executes no code region and models no memory
//! reads — the rows are preloaded into the arena (free by construction, the
//! same path reuse-cache replay uses) and yielded straight from the slot
//! table. Introspection therefore cannot evict anyone's cached code or
//! data: a query over `sys.queries` observes the server without perturbing
//! the very counters it reports (the observer-effect-zero guarantee).
//!
//! The op still honors the cooperative protocol — cancellation checks and
//! tuple-yield ticks — so sys scans stay preemptible under the server's
//! quantum slicer.

use crate::arena::TupleSlot;
use crate::context::ExecContext;
use crate::exec::{schema_slot_bytes, Operator};
use bufferdb_storage::SysTableRef;
use bufferdb_types::{Datum, DbError, Result, SchemaRef};

/// Leaf operator over a virtual table provider.
pub struct SysScanOp {
    name: String,
    provider: SysTableRef,
    schema: SchemaRef,
    slots: Vec<TupleSlot>,
    pos: usize,
}

impl SysScanOp {
    /// A scan leaf over `provider`, registered under `name`.
    pub fn new(name: impl Into<String>, provider: SysTableRef) -> Self {
        let schema = provider.schema();
        SysScanOp {
            name: name.into(),
            provider,
            schema,
            slots: Vec::new(),
            pos: 0,
        }
    }
}

impl Operator for SysScanOp {
    fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<()> {
        // Snapshot once: the scan sees a consistent point-in-time state even
        // if the engine keeps moving while downstream operators pull.
        let rows = self.provider.snapshot();
        let region = ctx
            .arena
            .alloc_unbounded_region(schema_slot_bytes(&self.schema));
        self.slots.clear();
        self.slots.reserve(rows.len());
        for (i, t) in rows.into_iter().enumerate() {
            if t.arity() != self.schema.len() {
                return Err(DbError::ExecProtocol(format!(
                    "sys table {} row {i} has {} columns, schema has {}",
                    self.name,
                    t.arity(),
                    self.schema.len()
                )));
            }
            self.slots.push(ctx.arena.preload(region, t));
        }
        self.pos = 0;
        Ok(())
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<TupleSlot>> {
        ctx.check_cancel()?;
        if self.pos >= self.slots.len() {
            return Ok(None);
        }
        let slot = self.slots[self.pos];
        self.pos += 1;
        // Yield-tick only: no exec_region, no arena read — the modeled
        // machine never sees this scan.
        ctx.tuple_yield();
        Ok(Some(slot))
    }

    fn close(&mut self, _ctx: &mut ExecContext) -> Result<()> {
        self.slots.clear();
        Ok(())
    }

    fn rescan(&mut self, _ctx: &mut ExecContext, param: Option<&Datum>) -> Result<()> {
        if param.is_some() {
            return Err(DbError::ExecProtocol("sys scan takes no parameter".into()));
        }
        // Replay the snapshot taken at open — a rescan inside one query must
        // see the same rows every pass.
        self.pos = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bufferdb_cachesim::MachineConfig;
    use bufferdb_storage::FnSysTable;
    use bufferdb_types::{DataType, Field, Schema, Tuple};
    use std::sync::Arc;

    fn provider(n: i64) -> SysTableRef {
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]).into_ref();
        Arc::new(FnSysTable::new(schema, move || {
            (0..n).map(|i| Tuple::new(vec![Datum::Int(i)])).collect()
        }))
    }

    fn drain(op: &mut SysScanOp, ctx: &mut ExecContext) -> Vec<i64> {
        let mut out = Vec::new();
        while let Some(s) = op.next(ctx).unwrap() {
            out.push(ctx.arena.tuple(s).get(0).as_int().unwrap());
        }
        out
    }

    #[test]
    fn yields_snapshot_rows_in_order() {
        let mut op = SysScanOp::new("sys.test", provider(5));
        let mut ctx = ExecContext::new(MachineConfig::pentium4_like());
        op.open(&mut ctx).unwrap();
        assert_eq!(drain(&mut op, &mut ctx), vec![0, 1, 2, 3, 4]);
        op.rescan(&mut ctx, None).unwrap();
        assert_eq!(drain(&mut op, &mut ctx), vec![0, 1, 2, 3, 4]);
        op.close(&mut ctx).unwrap();
    }

    #[test]
    fn scan_is_invisible_to_the_modeled_machine() {
        let mut op = SysScanOp::new("sys.test", provider(1000));
        let mut ctx = ExecContext::new(MachineConfig::pentium4_like());
        let before = ctx.machine.snapshot();
        op.open(&mut ctx).unwrap();
        drain(&mut op, &mut ctx);
        op.close(&mut ctx).unwrap();
        let after = ctx.machine.snapshot();
        assert_eq!(before, after, "sys scan must model zero cost");
    }

    #[test]
    fn parameterized_rescan_is_a_protocol_error() {
        let mut op = SysScanOp::new("sys.test", provider(1));
        let mut ctx = ExecContext::new(MachineConfig::pentium4_like());
        op.open(&mut ctx).unwrap();
        let err = op.rescan(&mut ctx, Some(&Datum::Int(3))).unwrap_err();
        assert!(matches!(err, DbError::ExecProtocol(_)));
    }
}
