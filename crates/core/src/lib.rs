//! BufferDB core: a demand-pull pipelined query executor with the paper's
//! **buffer operator** and **plan refinement algorithm**.
//!
//! The executor follows the classic Volcano `open`/`next`/`close` iterator
//! contract (§4 of the paper): every operator produces one tuple per `next`
//! call, recursively pulling from its children. Each operator carries a
//! synthetic instruction footprint (Table 2) that it executes through the
//! simulated machine on every call — so the PCPCPC interleaving of parent
//! and child code, and the instruction-cache thrashing it causes, appear in
//! the simulated counters exactly as they do on the paper's Pentium 4.
//!
//! The [`exec::buffer::BufferOp`] operator implements §5: it batches child
//! tuples by *pointer* (arena slot), turning the execution sequence into
//! PCCCCC…PPPPP and restoring instruction locality. [`refine::refine_plan`]
//! implements §6: bottom-up execution-group formation from calibrated
//! footprints, with blocking operators and low-cardinality operators
//! excluded, and a buffer operator placed above each completed group.

#![warn(missing_docs)]

pub mod arena;
pub mod block;
pub mod cancel;
pub mod context;
// The executor must stay panic-free outside tests: worker containment and
// the chaos suite rely on every failure being a typed `DbError`. The gate
// only covers non-test builds, so `cfg(test)` unit tests may still unwrap.
#[cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
pub mod exec;
pub mod expr;
pub mod expr_fold;
pub mod fault;
pub mod footprint;
pub mod obs;
pub mod optimizer;
pub mod parallel;
pub mod plan;
pub mod prepare;
pub mod refine;
// Same containment contract as `exec`: the server pool must never unwrap
// its way into a poisoned panic while holding shared scheduler state.
#[cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
pub mod server;
pub mod session;
pub mod stats;

pub use arena::{TupleArena, TupleSlot};
pub use cancel::CancelToken;
pub use context::ExecContext;
pub use exec::{build_executor, execute_query, Operator, QueryOutcome};
pub use expr::Expr;
pub use fault::{FaultMode, FaultRegistry, Trigger};
pub use footprint::{FootprintModel, OpKind};
pub use obs::{
    BufferGauges, ExchangeLane, HistSummary, Histogram, MetricsRegistry, ObsId, OpStats,
    QueryProfile, QueryProfiler, SloConfig, SloTracker, SloWindow, TimeSeries, TimeSeriesRegistry,
    TraceEvent, TraceReport, Tracer, WindowSnapshot,
};
pub use optimizer::{choose_pipeline_modes, ExecModePolicy};
pub use parallel::parallelize_plan;
pub use plan::analyze::explain_analyze;
pub use plan::{AggFunc, AggSpec, IndexMode, PlanNode};
pub use prepare::{
    prepare_physical_plan, AdaptConfig, AdaptStats, CacheStats, Database, PlanCache,
    PlanFingerprint, PreparedQuery, ReuseCache, ReuseStats,
};
pub use refine::{refine_plan, refine_plan_observed, ObservedCards, RefineConfig};
pub use server::virt::{CompletedQuery, VirtualServer};
pub use server::{QueryTicket, Server, ServerConfig, ServerStats, SubmitSpec};
pub use session::{QueryOpts, ReusePolicy, Session};
pub use stats::ExecStats;
