//! Failure injection: malformed plans and data must produce typed errors,
//! never panics or wrong answers.

use bufferdb::prelude::*;

fn collect(plan: &PlanNode, catalog: &Catalog, cfg: &MachineConfig) -> Result<Vec<Tuple>> {
    execute_query(plan, catalog, cfg, &QueryOpts::new())
        .into_result()
        .map(|(rows, _, _)| rows)
}

fn catalog() -> Catalog {
    let c = Catalog::new();
    let mut b = TableBuilder::new(
        "t",
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("s", DataType::Str),
        ]),
    );
    for i in 0..10 {
        b.push(Tuple::new(vec![Datum::Int(i), Datum::str(format!("v{i}"))]));
    }
    c.add_table(b);
    c
}

fn machine() -> MachineConfig {
    MachineConfig::pentium4_like()
}

#[test]
fn unknown_table_and_index() {
    let c = catalog();
    let plan = PlanNode::SeqScan {
        table: "missing".into(),
        predicate: None,
        projection: None,
    };
    assert!(matches!(
        collect(&plan, &c, &machine()),
        Err(DbError::UnknownRelation(_))
    ));
    let ix = PlanNode::IndexScan {
        index: "missing".into(),
        mode: IndexMode::LookupParam,
    };
    assert!(matches!(
        collect(&ix, &c, &machine()),
        Err(DbError::UnknownRelation(_))
    ));
}

#[test]
fn out_of_range_columns_are_rejected_at_build() {
    let c = catalog();
    let plan = PlanNode::SeqScan {
        table: "t".into(),
        predicate: Some(Expr::col(9).is_null()),
        projection: None,
    };
    assert!(matches!(
        collect(&plan, &c, &machine()),
        Err(DbError::UnknownColumn(_))
    ));
    let agg = PlanNode::Aggregate {
        input: Box::new(PlanNode::SeqScan {
            table: "t".into(),
            predicate: None,
            projection: None,
        }),
        group_by: vec![7],
        aggs: vec![],
    };
    assert!(collect(&agg, &c, &machine()).is_err());
}

#[test]
fn type_errors_surface_not_panic() {
    let c = catalog();
    // Predicate comparing int to string.
    let plan = PlanNode::SeqScan {
        table: "t".into(),
        predicate: Some(Expr::col(0).eq(Expr::col(1))),
        projection: None,
    };
    assert!(matches!(
        collect(&plan, &c, &machine()),
        Err(DbError::TypeMismatch(_))
    ));
    // Non-boolean predicate.
    let plan2 = PlanNode::SeqScan {
        table: "t".into(),
        predicate: Some(Expr::col(0).add(Expr::lit(1))),
        projection: None,
    };
    assert!(collect(&plan2, &c, &machine()).is_err());
}

#[test]
fn division_by_zero_in_projection() {
    let c = catalog();
    let plan = PlanNode::Project {
        input: Box::new(PlanNode::SeqScan {
            table: "t".into(),
            predicate: None,
            projection: None,
        }),
        exprs: vec![(
            Expr::lit(1).div(Expr::col(0).mul(Expr::lit(0))),
            "boom".into(),
        )],
    };
    assert_eq!(collect(&plan, &c, &machine()), Err(DbError::DivideByZero));
}

#[test]
fn grouping_by_float_is_rejected() {
    let c = Catalog::new();
    let mut b = TableBuilder::new("f", Schema::new(vec![Field::new("x", DataType::Float)]));
    b.push(Tuple::new(vec![Datum::Float(1.5)]));
    c.add_table(b);
    let plan = PlanNode::Aggregate {
        input: Box::new(PlanNode::SeqScan {
            table: "f".into(),
            predicate: None,
            projection: None,
        }),
        group_by: vec![0],
        aggs: vec![AggSpec::count_star("n")],
    };
    assert!(matches!(
        collect(&plan, &c, &machine()),
        Err(DbError::InvalidPlan(_))
    ));
}

#[test]
fn merge_join_over_unsorted_inputs_reports_invalid_plan() {
    let c = Catalog::new();
    let mut b = TableBuilder::new("u", Schema::new(vec![Field::new("k", DataType::Int)]));
    for k in [5i64, 1, 9, 2] {
        b.push(Tuple::new(vec![Datum::Int(k)]));
    }
    c.add_table(b);
    let scan = || PlanNode::SeqScan {
        table: "u".into(),
        predicate: None,
        projection: None,
    };
    let plan = PlanNode::MergeJoin {
        left: Box::new(scan()),
        right: Box::new(scan()),
        left_key: 0,
        right_key: 0,
    };
    assert!(matches!(
        collect(&plan, &c, &machine()),
        Err(DbError::InvalidPlan(_))
    ));
}

#[test]
fn aggregate_without_argument_is_rejected() {
    let c = catalog();
    let plan = PlanNode::Aggregate {
        input: Box::new(PlanNode::SeqScan {
            table: "t".into(),
            predicate: None,
            projection: None,
        }),
        group_by: vec![],
        aggs: vec![AggSpec {
            func: AggFunc::Avg,
            input: None,
            name: "a".into(),
        }],
    };
    assert!(collect(&plan, &c, &machine()).is_err());
}

#[test]
fn errors_do_not_corrupt_later_runs() {
    let c = catalog();
    let bad = PlanNode::SeqScan {
        table: "t".into(),
        predicate: Some(Expr::col(0).eq(Expr::col(1))),
        projection: None,
    };
    let _ = collect(&bad, &c, &machine());
    // A fresh, valid execution still works (no shared poisoned state).
    let good = PlanNode::SeqScan {
        table: "t".into(),
        predicate: None,
        projection: None,
    };
    let (rows, stats, _) = execute_query(&good, &c, &machine(), &QueryOpts::new())
        .into_result()
        .unwrap();
    assert_eq!(rows.len(), 10);
    assert!(stats.counters.instructions > 0);
}
