//! Cooperative query cancellation.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between the thread
//! driving a query and anything that may want to stop it: another thread
//! holding [`crate::session::Session::cancel`], a deadline armed by
//! `--timeout-ms`, or an exchange coordinator telling its workers that a
//! sibling already failed. Operators never poll it on their per-tuple fast
//! path; it is checked at *granule* boundaries — morsel claim, buffer refill,
//! and each iteration of a blocking operator's drain loop — so a query stops
//! within one granule of the cancel request while the hot loops stay free of
//! cancellation overhead.
//!
//! Cancellation surfaces as [`DbError::Cancelled`] and unwinds through the
//! iterator tree like any other executor error, which keeps profiler
//! brackets balanced: a cancelled profiled query still conserves its
//! per-operator counters exactly.

use bufferdb_types::{DbError, Result};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Absolute deadline; once passed, the token reads as cancelled.
    deadline: Option<Instant>,
    /// Original timeout, kept only for the error message.
    timeout: Option<Duration>,
}

/// Shared cancellation flag with an optional deadline.
///
/// Cloning is cheap (one `Arc`); all clones observe the same state. The
/// default token never cancels, so unconfigured executions pay one relaxed
/// atomic load per check.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                timeout: None,
            }),
        }
    }

    /// A token that additionally cancels once `timeout` has elapsed
    /// (measured from this call).
    pub fn with_timeout(timeout: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
                timeout: Some(timeout),
            }),
        }
    }

    /// Request cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Has the token been cancelled (explicitly or by deadline)?
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                // Latch, so later checks skip the clock read.
                self.inner.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Return `Err(DbError::Cancelled)` if the token is cancelled.
    pub fn check(&self) -> Result<()> {
        if !self.is_cancelled() {
            return Ok(());
        }
        let reason = match (self.inner.timeout, self.inner.deadline) {
            (Some(t), Some(d)) if Instant::now() >= d => {
                format!("timeout of {} ms exceeded", t.as_millis())
            }
            _ => "cancel requested".to_string(),
        };
        Err(DbError::Cancelled(reason))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_token_never_cancels() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
    }

    #[test]
    fn explicit_cancel_is_visible_to_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        t.cancel();
        assert!(clone.is_cancelled());
        assert!(matches!(clone.check(), Err(DbError::Cancelled(_))));
    }

    #[test]
    fn zero_timeout_cancels_immediately() {
        let t = CancelToken::with_timeout(Duration::ZERO);
        match t.check() {
            Err(DbError::Cancelled(msg)) => assert!(msg.contains("timeout"), "{msg}"),
            other => panic!("expected timeout cancellation, got {other:?}"),
        }
    }

    #[test]
    fn generous_deadline_does_not_cancel() {
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(t.check().is_ok());
    }
}
