//! Property-based correctness: on randomly generated tables, every plan
//! transformation the paper introduces (buffer insertion at any size, plan
//! refinement) and every join method must leave query answers unchanged,
//! and operators must agree with straightforward reference computations.

use bufferdb::prelude::*;
use bufferdb::types::Rng;

fn collect(plan: &PlanNode, catalog: &Catalog, cfg: &MachineConfig) -> Result<Vec<Tuple>> {
    execute_query(plan, catalog, cfg, &QueryOpts::new())
        .into_result()
        .map(|(rows, _, _)| rows)
}

/// Build a catalog with a fact table of `(k, v)` rows (nullable v) and a
/// dimension table keyed 0..dim_n with an index.
fn catalog_from(rows: &[(i64, Option<i64>)], dim_n: i64) -> Catalog {
    let c = Catalog::new();
    let mut fact = TableBuilder::new(
        "fact",
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::nullable("v", DataType::Int),
        ]),
    );
    for (k, v) in rows {
        fact.push(Tuple::new(vec![
            Datum::Int(*k),
            v.map(Datum::Int).unwrap_or(Datum::Null),
        ]));
    }
    c.add_table(fact);
    let mut dim = TableBuilder::new(
        "dim",
        Schema::new(vec![
            Field::new("d_k", DataType::Int),
            Field::new("d_tag", DataType::Int),
        ]),
    );
    let mut btree = BTreeIndex::new();
    for i in 0..dim_n {
        dim.push(Tuple::new(vec![Datum::Int(i), Datum::Int(i * 3)]));
        btree.insert(i, i as u32);
    }
    c.add_table(dim);
    c.add_index(IndexDef {
        name: "dim_pkey".into(),
        table: "dim".into(),
        key_column: 0,
        btree,
    });
    c
}

fn machine() -> MachineConfig {
    MachineConfig::pentium4_like()
}

fn rows_sig(rows: &[Tuple]) -> Vec<String> {
    rows.iter().map(|t| t.to_string()).collect()
}

/// Random `(k, v)` fact rows with ~50% NULL `v`, mirroring the proptest
/// strategies this file used before going dependency-free.
fn gen_rows(
    rng: &mut Rng,
    max_len: usize,
    k_max: i64,
    v_lo: i64,
    v_hi: i64,
) -> Vec<(i64, Option<i64>)> {
    let n = rng.gen_range(0..=max_len);
    (0..n)
        .map(|_| {
            let k = rng.gen_range(0..k_max);
            let v = if rng.gen_bool(0.5) {
                Some(rng.gen_range(v_lo..v_hi))
            } else {
                None
            };
            (k, v)
        })
        .collect()
}

/// Buffering at ANY size is transparent: same rows, same order.
#[test]
fn buffer_is_transparent_at_any_size() {
    for seed in 0..24u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let rows = gen_rows(&mut rng, 120, 40, -100, 100);
        let size = rng.gen_range(1usize..300);
        let bound = rng.gen_range(-100i64..100);
        let c = catalog_from(&rows, 40);
        let scan = PlanNode::SeqScan {
            table: "fact".into(),
            predicate: Some(Expr::col(1).le(Expr::lit(bound))),
            projection: None,
        };
        let buffered = PlanNode::Buffer {
            input: Box::new(scan.clone()),
            size,
        };
        let a = collect(&scan, &c, &machine()).unwrap();
        let b = collect(&buffered, &c, &machine()).unwrap();
        assert_eq!(rows_sig(&a), rows_sig(&b), "seed {seed} size {size}");
    }
}

/// Aggregation over a filtered scan matches a direct fold, with or
/// without refinement.
#[test]
fn aggregate_matches_reference() {
    for seed in 0..24u64 {
        let mut rng = Rng::seed_from_u64(seed ^ 0xA6);
        let rows = gen_rows(&mut rng, 150, 40, -50, 50);
        let bound = rng.gen_range(-50i64..50);
        let c = catalog_from(&rows, 40);
        let plan = PlanNode::Aggregate {
            input: Box::new(PlanNode::SeqScan {
                table: "fact".into(),
                predicate: Some(Expr::col(1).lt(Expr::lit(bound))),
                projection: None,
            }),
            group_by: vec![],
            aggs: vec![
                AggSpec::count_star("n"),
                AggSpec::new(AggFunc::Sum, Expr::col(1), "s"),
                AggSpec::new(AggFunc::Min, Expr::col(1), "mn"),
                AggSpec::new(AggFunc::Max, Expr::col(1), "mx"),
            ],
        };
        let refined = refine_plan(&plan, &c, &RefineConfig::default());
        let got = collect(&refined, &c, &machine()).unwrap();

        let selected: Vec<i64> = rows
            .iter()
            .filter_map(|(_, v)| *v)
            .filter(|v| *v < bound)
            .collect();
        assert_eq!(
            got[0].get(0).as_int().unwrap(),
            selected.len() as i64,
            "seed {seed}"
        );
        if selected.is_empty() {
            assert!(got[0].get(1).is_null());
            assert!(got[0].get(2).is_null());
        } else {
            assert_eq!(
                got[0].get(1).as_int().unwrap(),
                selected.iter().sum::<i64>()
            );
            assert_eq!(
                got[0].get(2).as_int().unwrap(),
                *selected.iter().min().unwrap()
            );
            assert_eq!(
                got[0].get(3).as_int().unwrap(),
                *selected.iter().max().unwrap()
            );
        }
    }
}

/// All three join methods compute the same join, equal to a brute-force
/// reference (counts per key).
#[test]
fn join_methods_agree_with_brute_force() {
    for seed in 0..24u64 {
        let mut rng = Rng::seed_from_u64(seed ^ 0x10);
        let rows = gen_rows(&mut rng, 100, 30, -10, 10);
        let dim_n = rng.gen_range(1i64..30);
        let c = catalog_from(&rows, dim_n);
        let agg = |input: PlanNode| PlanNode::Aggregate {
            input: Box::new(input),
            group_by: vec![],
            aggs: vec![
                AggSpec::count_star("n"),
                AggSpec::new(AggFunc::Sum, Expr::col(3), "tag_sum"),
            ],
        };
        let scan = PlanNode::SeqScan {
            table: "fact".into(),
            predicate: None,
            projection: None,
        };
        let nl = agg(PlanNode::NestLoopJoin {
            outer: Box::new(scan.clone()),
            inner: Box::new(PlanNode::IndexScan {
                index: "dim_pkey".into(),
                mode: bufferdb::core::plan::IndexMode::LookupParam,
            }),
            param_outer_col: Some(0),
            qual: None,
            fk_inner: true,
        });
        let hj = agg(PlanNode::HashJoin {
            probe: Box::new(scan.clone()),
            build: Box::new(PlanNode::SeqScan {
                table: "dim".into(),
                predicate: None,
                projection: None,
            }),
            probe_key: 0,
            build_key: 0,
        });
        let mj = agg(PlanNode::MergeJoin {
            left: Box::new(PlanNode::Sort {
                input: Box::new(scan),
                keys: vec![(0, true)],
            }),
            right: Box::new(PlanNode::IndexScan {
                index: "dim_pkey".into(),
                mode: bufferdb::core::plan::IndexMode::Range { lo: None, hi: None },
            }),
            left_key: 0,
            right_key: 0,
        });
        let m = machine();
        let a = collect(&nl, &c, &m).unwrap();
        let b = collect(&hj, &c, &m).unwrap();
        let d = collect(&mj, &c, &m).unwrap();
        assert_eq!(rows_sig(&a), rows_sig(&b), "seed {seed}");
        assert_eq!(rows_sig(&b), rows_sig(&d), "seed {seed}");
        // Brute force: every fact row with k < dim_n matches exactly once.
        let expect_n = rows.iter().filter(|(k, _)| *k < dim_n).count() as i64;
        assert_eq!(a[0].get(0).as_int().unwrap(), expect_n, "seed {seed}");
        let expect_sum: i64 = rows
            .iter()
            .filter(|(k, _)| *k < dim_n)
            .map(|(k, _)| k * 3)
            .sum();
        if expect_n > 0 {
            assert_eq!(a[0].get(1).as_int().unwrap(), expect_sum, "seed {seed}");
        }
    }
}

/// Sort output equals std sort; buffering below the sort changes nothing.
#[test]
fn sort_matches_std() {
    for seed in 0..24u64 {
        let mut rng = Rng::seed_from_u64(seed ^ 0x50);
        let rows = gen_rows(&mut rng, 200, 1000, -50, 50);
        let size = rng.gen_range(1usize..64);
        let c = catalog_from(&rows, 1);
        let sort = PlanNode::Sort {
            input: Box::new(PlanNode::SeqScan {
                table: "fact".into(),
                predicate: None,
                projection: None,
            }),
            keys: vec![(0, true)],
        };
        let sort_buf = PlanNode::Sort {
            input: Box::new(PlanNode::Buffer {
                input: Box::new(PlanNode::SeqScan {
                    table: "fact".into(),
                    predicate: None,
                    projection: None,
                }),
                size,
            }),
            keys: vec![(0, true)],
        };
        let m = machine();
        let a = collect(&sort, &c, &m).unwrap();
        let b = collect(&sort_buf, &c, &m).unwrap();
        let got: Vec<i64> = a.iter().map(|t| t.get(0).as_int().unwrap()).collect();
        let mut want: Vec<i64> = rows.iter().map(|(k, _)| *k).collect();
        want.sort();
        assert_eq!(&got, &want, "seed {seed}");
        let got_b: Vec<i64> = b.iter().map(|t| t.get(0).as_int().unwrap()).collect();
        assert_eq!(&got_b, &want, "seed {seed}");
    }
}

/// Group-by aggregation matches a HashMap reference.
#[test]
fn group_by_matches_reference() {
    for seed in 0..24u64 {
        use std::collections::HashMap;
        let mut rng = Rng::seed_from_u64(seed ^ 0x6B);
        let rows = gen_rows(&mut rng, 150, 8, 0, 100);
        let c = catalog_from(&rows, 1);
        let plan = PlanNode::Aggregate {
            input: Box::new(PlanNode::SeqScan {
                table: "fact".into(),
                predicate: None,
                projection: None,
            }),
            group_by: vec![0],
            aggs: vec![
                AggSpec::count_star("n"),
                AggSpec::new(AggFunc::Sum, Expr::col(1), "s"),
            ],
        };
        let got = collect(&plan, &c, &machine()).unwrap();
        let mut reference: HashMap<i64, (i64, Option<i64>)> = HashMap::new();
        for (k, v) in &rows {
            let e = reference.entry(*k).or_insert((0, None));
            e.0 += 1;
            if let Some(v) = v {
                e.1 = Some(e.1.unwrap_or(0) + v);
            }
        }
        assert_eq!(got.len(), reference.len(), "seed {seed}");
        for row in &got {
            let k = row.get(0).as_int().unwrap();
            let (n, s) = reference[&k];
            assert_eq!(row.get(1).as_int().unwrap(), n, "seed {seed} key {k}");
            match s {
                None => assert!(row.get(2).is_null(), "seed {seed} key {k}"),
                Some(s) => assert_eq!(row.get(2).as_int().unwrap(), s, "seed {seed} key {k}"),
            }
        }
    }
}
