//! Prepared queries: the [`Database`] facade, the shared [`PlanCache`], and
//! feedback-driven adaptive refinement.
//!
//! ```ignore
//! let db = Database::open(catalog, MachineConfig::pentium4_like());
//! let q = db.prepare(&plan)?;       // parallelize + refine once, cached
//! let out = q.execute();           // repeated executions skip optimization
//! let out = q.execute_adaptive();  // profiled; re-refines on divergence
//! ```
//!
//! [`prepare_physical_plan`] is the *single* logical→physical path —
//! parallelization (when the worker budget warrants it) strictly before
//! refinement, so exchange boundaries are in place when execution groups
//! form. Every caller (the facade, the bench harness, examples) routes
//! through it; ad-hoc `parallelize_plan` + `refine_plan` glue is gone.

pub mod adapt;
pub mod fingerprint;
pub mod plancache;

pub use adapt::{adapt_plan, AdaptConfig, AdaptDecision, AdaptState, PendingValidation};
pub use fingerprint::{
    fingerprint_plan, fingerprint_plan_with_mode, subtree_hash, PlanFingerprint,
};
pub use plancache::{
    AdaptStats, CacheEntry, CacheStats, PlanCache, DEFAULT_CACHE_CAPACITY, DEFAULT_CACHE_SHARDS,
};

use crate::exec::QueryOutcome;
use crate::obs::trace::TraceEvent;
use crate::optimizer::{choose_pipeline_modes, ExecModePolicy};
use crate::parallel::parallelize_plan;
use crate::plan::PlanNode;
use crate::refine::{refine_plan, RefineConfig};
use crate::session::{QueryOpts, Session};
use bufferdb_cachesim::MachineConfig;
use bufferdb_storage::Catalog;
use bufferdb_types::Result;
use std::sync::Arc;
use std::time::Duration;

/// A prepared physical plan: the parallelized base kept for adaptive
/// re-refinement, plus the refined plan executions actually run.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedPlan {
    /// Parallelized, pre-refinement plan.
    pub base: PlanNode,
    /// Refined physical plan.
    pub physical: PlanNode,
}

/// The canonical logical→physical pipeline: parallelize (only when
/// `workers > 1` — the exchange rewrite is not free at one worker), then
/// refine under the default [`ExecModePolicy::BufferedPull`]. Returns both
/// stages; use [`prepare_physical_plan`] when only the executable plan is
/// needed, or [`prepare_plan_parts_with_mode`] to pick the executor
/// backend per pipeline.
pub fn prepare_plan_parts(
    plan: &PlanNode,
    catalog: &Catalog,
    refine_cfg: &RefineConfig,
    workers: usize,
) -> Result<PreparedPlan> {
    prepare_plan_parts_with_mode(
        plan,
        catalog,
        refine_cfg,
        workers,
        ExecModePolicy::BufferedPull,
    )
}

/// [`prepare_plan_parts`] with an explicit executor-mode policy:
/// parallelize, then mark pipelines for push execution per `mode`
/// ([`choose_pipeline_modes`]), then refine — except under
/// [`ExecModePolicy::Pull`], whose whole point is the unbuffered baseline,
/// so refinement is skipped. Mode selection runs *before* refinement so
/// the refiner sees fused groups as opaque single-footprint operators and
/// never buffers inside them.
pub fn prepare_plan_parts_with_mode(
    plan: &PlanNode,
    catalog: &Catalog,
    refine_cfg: &RefineConfig,
    workers: usize,
    mode: ExecModePolicy,
) -> Result<PreparedPlan> {
    let base = if workers > 1 {
        parallelize_plan(plan, catalog, workers)?
    } else {
        plan.clone()
    };
    let base = choose_pipeline_modes(&base, refine_cfg, mode);
    let physical = if mode.refines() {
        refine_plan(&base, catalog, refine_cfg)
    } else {
        base.clone()
    };
    Ok(PreparedPlan { base, physical })
}

/// [`prepare_plan_parts`], returning just the executable physical plan.
pub fn prepare_physical_plan(
    plan: &PlanNode,
    catalog: &Catalog,
    refine_cfg: &RefineConfig,
    workers: usize,
) -> Result<PlanNode> {
    Ok(prepare_plan_parts(plan, catalog, refine_cfg, workers)?.physical)
}

/// The top-level facade: a [`Session`] plus a shared [`PlanCache`] and the
/// adaptive-refinement configuration.
///
/// `Database` wraps rather than replaces `Session`: cancellation, fault
/// injection, and default thread/timeout settings all live on the session
/// and apply to prepared executions unchanged.
pub struct Database {
    session: Session,
    cache: Arc<PlanCache>,
    refine_cfg: RefineConfig,
    adapt_cfg: AdaptConfig,
    mode: ExecModePolicy,
}

impl Database {
    /// Open a database over `catalog` simulating `cfg`, with a
    /// default-capacity plan cache and default refinement/adaptation
    /// configuration.
    pub fn open(catalog: Catalog, cfg: MachineConfig) -> Self {
        Database {
            session: Session::new(catalog, cfg),
            cache: Arc::new(PlanCache::default()),
            refine_cfg: RefineConfig::default(),
            adapt_cfg: AdaptConfig::default(),
            mode: ExecModePolicy::default(),
        }
    }

    /// Replace the executor-mode policy used by [`Database::prepare`].
    /// The mode is part of the plan fingerprint, so databases sharing one
    /// cache never serve each other plans prepared for another backend.
    pub fn with_exec_mode(mut self, mode: ExecModePolicy) -> Self {
        self.mode = mode;
        self
    }

    /// The executor-mode policy prepares run under.
    pub fn exec_mode(&self) -> ExecModePolicy {
        self.mode
    }

    /// Replace the plan cache (e.g. a smaller capacity for tests, or a
    /// cache shared with another database over the same catalog semantics).
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Replace the refinement configuration used by [`Database::prepare`].
    pub fn with_refine_config(mut self, cfg: RefineConfig) -> Self {
        self.refine_cfg = cfg;
        self
    }

    /// Replace the adaptive-refinement configuration.
    pub fn with_adapt_config(mut self, cfg: AdaptConfig) -> Self {
        self.adapt_cfg = cfg;
        self
    }

    /// The underlying session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The catalog queries run against.
    pub fn catalog(&self) -> &Catalog {
        self.session.catalog()
    }

    /// The shared plan cache (inspect [`PlanCache::stats`] for hit rates).
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The refinement configuration prepares run under.
    pub fn refine_config(&self) -> &RefineConfig {
        &self.refine_cfg
    }

    /// Set the default worker budget for subsequent prepares/executions.
    /// Changing it re-keys future fingerprints (a plan parallelized for 2
    /// workers is not the plan for 8).
    pub fn set_threads(&mut self, threads: usize) {
        self.session.set_threads(threads);
    }

    /// Set (or clear) the session's default per-query timeout.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.session.set_timeout(timeout);
    }

    /// Feed one profiled outcome back into `entry`'s adaptive loop: the
    /// deferred half of [`PreparedQuery::execute_adaptive_opts`], for
    /// callers that execute the cached plan elsewhere (the server admission
    /// path runs `executed` on a [`crate::server::virt::VirtualServer`] and only
    /// sees the profile at completion time). Gated on a **clean** profiled
    /// outcome — a failed, cancelled, or panicked execution never modifies
    /// the cached plan. Adaptivity instants are appended to `out`'s trace
    /// when one was recorded.
    pub fn absorb_feedback(
        &self,
        entry: &Arc<CacheEntry>,
        executed: &PlanNode,
        out: &mut QueryOutcome,
    ) {
        // Adaptation moves buffer operators; under a policy that did not
        // ask for refiner-placed buffers the cached plan is pinned.
        if !self.mode.adapts() {
            return;
        }
        // Instants for the flight recorder: collected while the profile
        // borrow is live, recorded onto the trace afterwards.
        let mut instants: Vec<TraceEvent> = Vec::new();
        if let (true, Some(profile)) = (out.is_ok(), out.profile()) {
            let mut state = entry.adapt_state();
            let had_pending = state.pending_validation.is_some();
            let decision = adapt_plan(
                entry.base_plan(),
                executed,
                profile,
                self.catalog(),
                &self.refine_cfg,
                &self.adapt_cfg,
                &mut state,
            );
            if had_pending {
                self.cache.note_adapt_validate();
                instants.push(TraceEvent::AdaptValidate {
                    regressed: decision.rolled_back,
                });
            }
            if decision.rolled_back {
                self.cache.note_adapt_rollback();
                instants.push(TraceEvent::AdaptRollback);
                if state.frozen {
                    self.cache.note_adapt_freeze();
                    instants.push(TraceEvent::AdaptFreeze);
                }
            }
            match decision.new_plan {
                Some(new_plan) => {
                    self.cache.note_adapt_install();
                    instants.push(TraceEvent::AdaptInstall {
                        generation: state.generation,
                        buffers: new_plan.buffer_count() as u64,
                    });
                    entry.install(new_plan, state);
                }
                None => entry.store_adapt_state(state),
            }
        }
        if let Some(trace) = out.trace_mut() {
            for ev in instants {
                trace.record_instant(ev);
            }
        }
    }

    /// Prepare `plan`: on a cache hit the stored physical plan is reused
    /// outright; on a miss the plan is parallelized + refined and cached.
    /// Also sweeps entries whose stats epoch went stale (they are already
    /// unreachable — the epoch is part of the key — this reclaims them).
    pub fn prepare(&self, plan: &PlanNode) -> Result<PreparedQuery<'_>> {
        let epoch = self.catalog().stats_epoch();
        self.cache.evict_stale(epoch);
        let threads = self.session.threads();
        let fp = fingerprint::fingerprint_plan_with_mode(
            plan,
            self.session.machine(),
            threads,
            epoch,
            &self.refine_cfg,
            self.mode,
        );
        let entry = match self.cache.lookup(fp) {
            Some(entry) => entry,
            None => {
                let parts = prepare_plan_parts_with_mode(
                    plan,
                    self.catalog(),
                    &self.refine_cfg,
                    threads,
                    self.mode,
                )?;
                self.cache.insert(fp, epoch, parts.base, parts.physical)
            }
        };
        Ok(PreparedQuery { db: self, entry })
    }
}

/// A handle on one cached prepared plan, ready for repeated execution.
///
/// The handle stays valid even if the cache evicts the entry (it holds the
/// entry `Arc`); adaptation performed through any handle is visible to all
/// handles sharing the entry.
pub struct PreparedQuery<'db> {
    db: &'db Database,
    entry: Arc<CacheEntry>,
}

impl PreparedQuery<'_> {
    /// Execute the cached physical plan with session defaults, no
    /// profiling, no adaptation.
    pub fn execute(&self) -> QueryOutcome {
        self.execute_opts(&QueryOpts::new())
    }

    /// Execute the cached physical plan under explicit [`QueryOpts`].
    pub fn execute_opts(&self, opts: &QueryOpts) -> QueryOutcome {
        let plan = self.entry.physical_plan();
        self.db.session.query(&plan, opts)
    }

    /// Execute with profiling and feed the measurements back: when observed
    /// group miss rates or cardinalities diverge from the refiner's
    /// predictions, the cached plan is re-refined in place (visible to
    /// every holder of this prepared query; see [`adapt_plan`]).
    ///
    /// Adaptation is gated on a **clean** profiled outcome — a failed,
    /// cancelled, or panicked execution returns its outcome untouched and
    /// never modifies the cached plan.
    pub fn execute_adaptive(&self) -> QueryOutcome {
        self.execute_adaptive_opts(&QueryOpts::new())
    }

    /// [`PreparedQuery::execute_adaptive`] with explicit options
    /// (profiling is forced on — the feedback needs the measurements).
    pub fn execute_adaptive_opts(&self, opts: &QueryOpts) -> QueryOutcome {
        let plan = self.entry.physical_plan();
        let mut out = self.db.session.query(&plan, &opts.clone().profile(true));
        self.db.absorb_feedback(&self.entry, &plan, &mut out);
        out
    }

    /// Snapshot of the physical plan the next execution will run.
    pub fn plan(&self) -> PlanNode {
        self.entry.physical_plan()
    }

    /// How many times adaptation has replaced this entry's plan.
    pub fn generation(&self) -> u64 {
        self.entry.generation()
    }

    /// The cache entry backing this handle.
    pub fn entry(&self) -> &Arc<CacheEntry> {
        &self.entry
    }

    /// The fingerprint this query is cached under.
    pub fn fingerprint(&self) -> PlanFingerprint {
        self.entry.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bufferdb_storage::TableBuilder;
    use bufferdb_types::{DataType, Datum, Field, Schema, Tuple};

    fn catalog(rows: i64) -> Catalog {
        let c = Catalog::new();
        let mut b = TableBuilder::new("t", Schema::new(vec![Field::new("k", DataType::Int)]));
        for i in 0..rows {
            b.push(Tuple::new(vec![Datum::Int(i)]));
        }
        c.add_table(b);
        c
    }

    fn scan() -> PlanNode {
        PlanNode::SeqScan {
            table: "t".into(),
            predicate: None,
            projection: None,
        }
    }

    #[test]
    fn prepare_twice_hits_the_cache() {
        let db = Database::open(catalog(100), MachineConfig::pentium4_like());
        let a = db.prepare(&scan()).unwrap();
        let b = db.prepare(&scan()).unwrap();
        assert!(Arc::ptr_eq(a.entry(), b.entry()));
        let s = db.plan_cache().stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn prepared_execution_returns_rows() {
        let db = Database::open(catalog(100), MachineConfig::pentium4_like());
        let q = db.prepare(&scan()).unwrap();
        let out = q.execute();
        assert!(out.is_ok());
        assert_eq!(out.rows().len(), 100);
    }

    #[test]
    fn stats_epoch_bump_invalidates() {
        let db = Database::open(catalog(100), MachineConfig::pentium4_like());
        let a = db.prepare(&scan()).unwrap();
        db.catalog().bump_stats_epoch();
        let b = db.prepare(&scan()).unwrap();
        assert!(!Arc::ptr_eq(a.entry(), b.entry()), "stale entry not reused");
        assert_eq!(db.plan_cache().stats().invalidations, 1);
    }

    #[test]
    fn thread_count_re_keys_the_cache() {
        let mut db = Database::open(catalog(100), MachineConfig::pentium4_like());
        let a = db.prepare(&scan()).unwrap().fingerprint();
        db.set_threads(4);
        let b = db.prepare(&scan()).unwrap().fingerprint();
        assert_ne!(a, b);
    }

    #[test]
    fn prepare_physical_plan_skips_exchange_at_one_worker() {
        let c = catalog(5000);
        let p = prepare_physical_plan(&scan(), &c, &RefineConfig::default(), 1).unwrap();
        assert!(!format!("{p:?}").contains("Exchange"));
        let p = prepare_physical_plan(&scan(), &c, &RefineConfig::default(), 4).unwrap();
        assert!(format!("{p:?}").contains("Exchange"));
    }
}
