//! Scalar expressions: columns, literals, comparisons, arithmetic, logic.
//!
//! Expressions are evaluated per tuple by scans (predicates, projections),
//! joins (quals) and aggregates (arguments) — the per-record "nullability,
//! datatypes, comparison, overflow" checks of §4. Data-dependent predicate
//! outcomes are reported to the simulated branch predictor by the operators
//! that own them.

use bufferdb_types::{ops, DataType, Datum, DbError, Result, SchemaRef, Tuple};
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A scalar expression tree over one input tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Input column by position.
    Column(usize),
    /// Constant.
    Literal(Datum),
    /// Comparison producing a (three-valued) boolean.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Arithmetic.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Three-valued AND.
    And(Box<Expr>, Box<Expr>),
    /// Three-valued OR.
    Or(Box<Expr>, Box<Expr>),
    /// Three-valued NOT.
    Not(Box<Expr>),
    /// `IS NULL` (never NULL itself).
    IsNull(Box<Expr>),
    /// `CASE WHEN cond THEN then ELSE otherwise END`; a NULL condition
    /// selects the ELSE branch, as in SQL.
    Case {
        /// Condition.
        cond: Box<Expr>,
        /// Value when the condition is true.
        then: Box<Expr>,
        /// Value otherwise (including NULL condition).
        otherwise: Box<Expr>,
    },
    /// String prefix test (`col LIKE 'PROMO%'`); NULL input yields NULL.
    StartsWith {
        /// String-valued input.
        input: Box<Expr>,
        /// Literal prefix.
        prefix: String,
    },
}

impl Expr {
    /// Column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Column(i)
    }

    /// Literal.
    pub fn lit(d: impl Into<Datum>) -> Expr {
        Expr::Literal(d.into())
    }

    fn cmp(op: CmpOp, l: Expr, r: Expr) -> Expr {
        Expr::Cmp {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    /// `self = other`
    pub fn eq(self, other: Expr) -> Expr {
        Expr::cmp(CmpOp::Eq, self, other)
    }

    /// `self <> other`
    pub fn ne(self, other: Expr) -> Expr {
        Expr::cmp(CmpOp::Ne, self, other)
    }

    /// `self < other`
    pub fn lt(self, other: Expr) -> Expr {
        Expr::cmp(CmpOp::Lt, self, other)
    }

    /// `self <= other`
    pub fn le(self, other: Expr) -> Expr {
        Expr::cmp(CmpOp::Le, self, other)
    }

    /// `self > other`
    pub fn gt(self, other: Expr) -> Expr {
        Expr::cmp(CmpOp::Gt, self, other)
    }

    /// `self >= other`
    pub fn ge(self, other: Expr) -> Expr {
        Expr::cmp(CmpOp::Ge, self, other)
    }

    /// `self AND other`
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self IS NULL`
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }

    /// `CASE WHEN self THEN then ELSE otherwise END`
    pub fn case(self, then: Expr, otherwise: Expr) -> Expr {
        Expr::Case {
            cond: Box::new(self),
            then: Box::new(then),
            otherwise: Box::new(otherwise),
        }
    }

    /// `self LIKE 'prefix%'`
    pub fn starts_with(self, prefix: impl Into<String>) -> Expr {
        Expr::StartsWith {
            input: Box::new(self),
            prefix: prefix.into(),
        }
    }

    /// `self + other`
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        Expr::Arith {
            op: ArithOp::Add,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self - other`
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Arith {
            op: ArithOp::Sub,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self * other`
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Arith {
            op: ArithOp::Mul,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self / other`
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Expr) -> Expr {
        Expr::Arith {
            op: ArithOp::Div,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Evaluate against one tuple.
    pub fn eval(&self, row: &Tuple) -> Result<Datum> {
        match self {
            Expr::Column(i) => {
                if *i >= row.arity() {
                    return Err(DbError::UnknownColumn(format!(
                        "column #{i} of {}-ary row",
                        row.arity()
                    )));
                }
                Ok(row.get(*i).clone())
            }
            Expr::Literal(d) => Ok(d.clone()),
            Expr::Cmp { op, left, right } => {
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                let v = match op {
                    CmpOp::Eq => ops::eq(&l, &r)?,
                    CmpOp::Ne => ops::ne(&l, &r)?,
                    CmpOp::Lt => ops::lt(&l, &r)?,
                    CmpOp::Le => ops::le(&l, &r)?,
                    CmpOp::Gt => ops::gt(&l, &r)?,
                    CmpOp::Ge => ops::ge(&l, &r)?,
                };
                Ok(v.map(Datum::Bool).unwrap_or(Datum::Null))
            }
            Expr::Arith { op, left, right } => {
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                match op {
                    ArithOp::Add => ops::add(&l, &r),
                    ArithOp::Sub => ops::sub(&l, &r),
                    ArithOp::Mul => ops::mul(&l, &r),
                    ArithOp::Div => ops::div(&l, &r),
                }
            }
            Expr::And(a, b) => {
                let x = a.eval(row)?;
                let y = b.eval(row)?;
                Ok(bool3_to_datum(ops::and3(
                    datum_to_bool3(&x)?,
                    datum_to_bool3(&y)?,
                )))
            }
            Expr::Or(a, b) => {
                let x = a.eval(row)?;
                let y = b.eval(row)?;
                Ok(bool3_to_datum(ops::or3(
                    datum_to_bool3(&x)?,
                    datum_to_bool3(&y)?,
                )))
            }
            Expr::Not(a) => {
                let x = a.eval(row)?;
                Ok(bool3_to_datum(ops::not3(datum_to_bool3(&x)?)))
            }
            Expr::IsNull(a) => Ok(Datum::Bool(a.eval(row)?.is_null())),
            Expr::Case {
                cond,
                then,
                otherwise,
            } => match datum_to_bool3(&cond.eval(row)?)? {
                Some(true) => then.eval(row),
                _ => otherwise.eval(row),
            },
            Expr::StartsWith { input, prefix } => match input.eval(row)? {
                Datum::Null => Ok(Datum::Null),
                Datum::Str(s) => Ok(Datum::Bool(s.starts_with(prefix.as_str()))),
                other => Err(DbError::TypeMismatch(format!(
                    "LIKE applied to non-string {other}"
                ))),
            },
        }
    }

    /// Evaluate as a predicate: NULL counts as not-satisfied (SQL WHERE).
    pub fn eval_predicate(&self, row: &Tuple) -> Result<bool> {
        match self.eval(row)? {
            Datum::Bool(b) => Ok(b),
            Datum::Null => Ok(false),
            other => Err(DbError::TypeMismatch(format!("predicate produced {other}"))),
        }
    }

    /// Number of nodes — a proxy for per-evaluation instruction cost.
    pub fn node_count(&self) -> usize {
        1 + match self {
            Expr::Column(_) | Expr::Literal(_) => 0,
            Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
                left.node_count() + right.node_count()
            }
            Expr::And(a, b) | Expr::Or(a, b) => a.node_count() + b.node_count(),
            Expr::Not(a) | Expr::IsNull(a) => a.node_count(),
            Expr::Case {
                cond,
                then,
                otherwise,
            } => cond.node_count() + then.node_count() + otherwise.node_count(),
            Expr::StartsWith { input, .. } => input.node_count(),
        }
    }

    /// Simulated instructions per evaluation (≈ 24 per node: the paper's
    /// per-record checks are short but numerous).
    pub fn instruction_cost(&self) -> u64 {
        self.node_count() as u64 * 24
    }

    /// Infer the output type against `schema`, validating column indices.
    pub fn data_type(&self, schema: &SchemaRef) -> Result<DataType> {
        match self {
            Expr::Column(i) => {
                if *i >= schema.len() {
                    return Err(DbError::UnknownColumn(format!("column #{i} of {schema}")));
                }
                Ok(schema.field(*i).ty)
            }
            Expr::Literal(d) => d
                .data_type()
                .ok_or_else(|| DbError::TypeMismatch("untyped NULL literal".into())),
            Expr::Cmp { left, right, .. } => {
                left.data_type(schema)?;
                right.data_type(schema)?;
                Ok(DataType::Bool)
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.data_type(schema)?;
                b.data_type(schema)?;
                Ok(DataType::Bool)
            }
            Expr::Not(a) | Expr::IsNull(a) => {
                a.data_type(schema)?;
                Ok(DataType::Bool)
            }
            Expr::StartsWith { input, .. } => {
                input.data_type(schema)?;
                Ok(DataType::Bool)
            }
            Expr::Case {
                cond,
                then,
                otherwise,
            } => {
                cond.data_type(schema)?;
                otherwise.data_type(schema)?;
                then.data_type(schema)
            }
            Expr::Arith { left, right, .. } => {
                let l = left.data_type(schema)?;
                let r = right.data_type(schema)?;
                Ok(match (l, r) {
                    (DataType::Float, _) | (_, DataType::Float) => DataType::Float,
                    (DataType::Decimal, _) | (_, DataType::Decimal) => DataType::Decimal,
                    _ => l,
                })
            }
        }
    }
}

fn datum_to_bool3(d: &Datum) -> Result<Option<bool>> {
    match d {
        Datum::Null => Ok(None),
        Datum::Bool(b) => Ok(Some(*b)),
        other => Err(DbError::TypeMismatch(format!(
            "expected boolean, got {other}"
        ))),
    }
}

fn bool3_to_datum(v: Option<bool>) -> Datum {
    v.map(Datum::Bool).unwrap_or(Datum::Null)
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(i) => write!(f, "${i}"),
            Expr::Literal(d) => write!(f, "{d}"),
            Expr::Cmp { op, left, right } => {
                let s = match op {
                    CmpOp::Eq => "=",
                    CmpOp::Ne => "<>",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                write!(f, "({left} {s} {right})")
            }
            Expr::Arith { op, left, right } => {
                let s = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Div => "/",
                };
                write!(f, "({left} {s} {right})")
            }
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(a) => write!(f, "(NOT {a})"),
            Expr::IsNull(a) => write!(f, "({a} IS NULL)"),
            Expr::Case {
                cond,
                then,
                otherwise,
            } => {
                write!(f, "(CASE WHEN {cond} THEN {then} ELSE {otherwise} END)")
            }
            Expr::StartsWith { input, prefix } => write!(f, "({input} LIKE '{prefix}%')"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bufferdb_types::{Date, Decimal, Field, Schema};

    fn row() -> Tuple {
        Tuple::new(vec![
            Datum::Int(10),
            Datum::Decimal(Decimal::parse("2.50").unwrap()),
            Datum::Null,
            Datum::Date(Date::parse("1998-09-02").unwrap()),
        ])
    }

    #[test]
    fn column_and_literal() {
        assert_eq!(Expr::col(0).eval(&row()).unwrap().as_int(), Some(10));
        assert_eq!(Expr::lit(7).eval(&row()).unwrap().as_int(), Some(7));
        assert!(Expr::col(9).eval(&row()).is_err());
    }

    #[test]
    fn comparisons_three_valued() {
        let e = Expr::col(0).le(Expr::lit(10));
        assert_eq!(e.eval(&row()).unwrap(), Datum::Bool(true));
        let with_null = Expr::col(2).le(Expr::lit(10));
        assert!(with_null.eval(&row()).unwrap().is_null());
        assert!(!with_null.eval_predicate(&row()).unwrap()); // NULL => filtered
    }

    #[test]
    fn q1_charge_expression_evaluates() {
        // price * (1 - discount): col1 is 2.50, discount 0.2.
        let e = Expr::col(1).mul(
            Expr::lit(Datum::Decimal(Decimal::from_int(1)))
                .sub(Expr::lit(Datum::Decimal(Decimal::parse("0.2").unwrap()))),
        );
        let v = e.eval(&row()).unwrap();
        assert_eq!(v.as_decimal().unwrap(), Decimal::parse("2.0").unwrap());
    }

    #[test]
    fn logic_and_is_null() {
        let t = Expr::lit(Datum::Bool(true));
        let null_cmp = Expr::col(2).eq(Expr::lit(1));
        let e = t.clone().and(null_cmp.clone());
        assert!(e.eval(&row()).unwrap().is_null());
        let e2 = Expr::lit(Datum::Bool(false)).and(null_cmp.clone());
        assert_eq!(e2.eval(&row()).unwrap(), Datum::Bool(false));
        assert_eq!(
            null_cmp.clone().is_null().eval(&row()).unwrap(),
            Datum::Bool(true)
        );
        assert_eq!(null_cmp.not().eval(&row()).unwrap(), Datum::Null);
        let or = Expr::lit(Datum::Bool(true)).or(Expr::col(2).eq(Expr::lit(1)));
        assert_eq!(or.eval(&row()).unwrap(), Datum::Bool(true));
    }

    #[test]
    fn date_predicate_like_query1() {
        let e = Expr::col(3).le(Expr::lit(Datum::Date(Date::parse("1998-12-01").unwrap())));
        assert!(e.eval_predicate(&row()).unwrap());
        let e2 = Expr::col(3).le(Expr::lit(Datum::Date(Date::parse("1998-01-01").unwrap())));
        assert!(!e2.eval_predicate(&row()).unwrap());
    }

    #[test]
    fn predicate_type_error_is_reported() {
        let e = Expr::col(0).add(Expr::lit(1)); // Int, not Bool
        assert!(e.eval_predicate(&row()).is_err());
    }

    #[test]
    fn node_count_and_cost() {
        let e = Expr::col(0)
            .le(Expr::lit(10))
            .and(Expr::col(1).gt(Expr::lit(0)));
        assert_eq!(e.node_count(), 7);
        assert_eq!(e.instruction_cost(), 7 * 24);
    }

    #[test]
    fn type_inference() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Decimal),
        ])
        .into_ref();
        assert_eq!(Expr::col(0).data_type(&schema).unwrap(), DataType::Int);
        assert_eq!(
            Expr::col(0).mul(Expr::col(1)).data_type(&schema).unwrap(),
            DataType::Decimal
        );
        assert_eq!(
            Expr::col(0).le(Expr::col(1)).data_type(&schema).unwrap(),
            DataType::Bool
        );
        assert!(Expr::col(5).data_type(&schema).is_err());
    }

    #[test]
    fn case_when_selects_branches() {
        // CASE WHEN col0 <= 5 THEN 1 ELSE 0 END over col0 = 10.
        let e = Expr::col(0)
            .le(Expr::lit(5))
            .case(Expr::lit(1), Expr::lit(0));
        assert_eq!(e.eval(&row()).unwrap().as_int(), Some(0));
        let e2 = Expr::col(0)
            .le(Expr::lit(100))
            .case(Expr::lit(1), Expr::lit(0));
        assert_eq!(e2.eval(&row()).unwrap().as_int(), Some(1));
        // NULL condition takes the ELSE branch.
        let e3 = Expr::col(2)
            .le(Expr::lit(1))
            .case(Expr::lit(1), Expr::lit(0));
        assert_eq!(e3.eval(&row()).unwrap().as_int(), Some(0));
    }

    #[test]
    fn starts_with_prefix_test() {
        let t = Tuple::new(vec![
            Datum::str("PROMO BURNISHED"),
            Datum::Null,
            Datum::Int(3),
        ]);
        assert_eq!(
            Expr::col(0).starts_with("PROMO").eval(&t).unwrap(),
            Datum::Bool(true)
        );
        assert_eq!(
            Expr::col(0).starts_with("ECONOMY").eval(&t).unwrap(),
            Datum::Bool(false)
        );
        assert!(Expr::col(1).starts_with("X").eval(&t).unwrap().is_null());
        assert!(Expr::col(2).starts_with("X").eval(&t).is_err());
    }

    #[test]
    fn display_round_trips_visually() {
        let e = Expr::col(0).le(Expr::lit(10)).and(Expr::col(1).is_null());
        assert_eq!(e.to_string(), "(($0 <= 10) AND ($1 IS NULL))");
    }
}
