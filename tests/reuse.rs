//! Subplan reuse-cache correctness: spliced replays must be bit-identical
//! to recomputation at any worker count, profiles must conserve counters
//! with a `ReusedScan` in the plan, stats-epoch bumps must invalidate
//! without disturbing in-flight handles, and faulted or cancelled
//! producing runs must never poison the cache.

use bufferdb::core::fault;
use bufferdb::prelude::*;
use bufferdb::tpch::{self, queries, queries::JoinMethod};
use std::sync::Arc;
use std::time::Duration;

fn suite_plans(catalog: &bufferdb::storage::Catalog) -> Vec<(&'static str, PlanNode)> {
    vec![
        (
            "paper q3 hj",
            queries::paper_query3(catalog, JoinMethod::HashJoin).unwrap(),
        ),
        ("tpch q1", queries::tpch_q1(catalog).unwrap()),
        ("tpch q12", queries::tpch_q12(catalog).unwrap()),
        ("tpch q14", queries::tpch_q14(catalog).unwrap()),
    ]
}

/// Order-normalized row fingerprints: render each row and sort, so result
/// sets compare as multisets while staying bit-exact per row.
fn normalized(rows: &[Tuple]) -> Vec<String> {
    let mut v: Vec<String> = rows.iter().map(|t| format!("{t}")).collect();
    v.sort();
    v
}

fn reused_count(p: &PlanNode) -> usize {
    let own = usize::from(matches!(p, PlanNode::ReusedScan { .. }));
    own + p.children().iter().map(|c| reused_count(c)).sum::<usize>()
}

fn open_db() -> Database {
    let mut db = Database::open(
        tpch::generate_catalog(0.002, 7),
        MachineConfig::pentium4_like(),
    );
    db.set_threads(1);
    db
}

/// Every suite query, replayed from the reuse cache at 1, 2 and 7 workers,
/// must produce exactly the recomputed result set.
#[test]
fn reused_results_are_bit_identical_at_every_worker_count() {
    let mut db = open_db();
    let off = QueryOpts::new().reuse(ReusePolicy::Off);
    let on = QueryOpts::new();
    let plans = suite_plans(db.catalog());

    let recomputed: Vec<Vec<String>> = plans
        .iter()
        .map(|(name, plan)| {
            let q = db.prepare_opts(plan, &off).unwrap();
            let out = q.execute_opts(&off);
            assert!(out.is_ok(), "{name}: recompute baseline failed");
            normalized(out.rows())
        })
        .collect();

    let mut installed = 0;
    for (_, plan) in &plans {
        installed += db.harvest_reuse(plan, &on);
    }
    assert!(installed >= plans.len(), "every suite query must harvest");

    for workers in [1usize, 2, 7] {
        db.set_threads(workers);
        for ((name, plan), want) in plans.iter().zip(&recomputed) {
            let q = db.prepare_opts(plan, &on).unwrap();
            assert!(
                reused_count(&q.plan()) >= 1,
                "{name} at {workers} workers: no ReusedScan spliced"
            );
            let out = q.execute_opts(&on.clone().threads(workers));
            assert!(
                out.is_ok(),
                "{name} at {workers} workers: {:?}",
                out.error()
            );
            assert_eq!(
                normalized(out.rows()),
                *want,
                "{name} at {workers} workers: reused result differs from recomputed"
            );
        }
    }
}

/// Profiling a plan containing a spliced `ReusedScan` must conserve
/// counters exactly: per-operator sums equal the aggregate snapshot.
#[test]
fn profile_conserves_counters_when_reused_scan_replaces_a_subtree() {
    let db = open_db();
    let on = QueryOpts::new();
    for (name, plan) in suite_plans(db.catalog()) {
        db.harvest_reuse(&plan, &on);
        let q = db.prepare_opts(&plan, &on).unwrap();
        assert!(reused_count(&q.plan()) >= 1, "{name}: no splice");
        let out = q.execute_opts(&on.clone().profile(true));
        assert!(out.is_ok(), "{name}: {:?}", out.error());
        let profile = out.profile().expect("profiling was requested");
        assert_eq!(
            profile.sum_op_counters(),
            out.stats().counters,
            "{name}: per-operator sum != query snapshot with ReusedScan"
        );
        assert!(
            profile
                .ops
                .iter()
                .any(|op| op.label.starts_with("ReusedScan")),
            "{name}: profile must attribute work to the ReusedScan leaf"
        );
    }
}

/// A stats-epoch bump invalidates every cached subplan: queries prepared
/// before the bump finish consistently off their `Arc`'d handle, and the
/// next prepare recomputes instead of splicing.
#[test]
fn stats_epoch_bump_invalidates_without_disturbing_prepared_queries() {
    let db = open_db();
    let off = QueryOpts::new().reuse(ReusePolicy::Off);
    let on = QueryOpts::new();
    let plan = queries::tpch_q12(db.catalog()).unwrap();
    let want = {
        let q = db.prepare_opts(&plan, &off).unwrap();
        normalized(q.execute_opts(&off).rows())
    };

    assert!(db.harvest_reuse(&plan, &on) >= 1);
    let q = db.prepare_opts(&plan, &on).unwrap();
    assert_eq!(reused_count(&q.plan()), 1, "whole-plan aggregate splice");

    // The bump lands while `q` is still outstanding — mid-stream from the
    // cache's point of view.
    db.catalog().bump_stats_epoch();
    let out = q.execute_opts(&on);
    assert!(out.is_ok(), "in-flight replay survives the bump");
    assert_eq!(
        normalized(out.rows()),
        want,
        "replay after the bump still returns the rows it was prepared with"
    );

    // The next prepare sweeps the stale entry and recomputes.
    let q2 = db.prepare_opts(&plan, &on).unwrap();
    assert_eq!(reused_count(&q2.plan()), 0, "stale entry must not splice");
    assert!(db.reuse_cache().is_empty(), "sweep reclaims the entry");
    let s = db.reuse_cache().stats();
    assert!(s.invalidations >= 1, "sweep counts the invalidation");
    assert_eq!(normalized(q2.execute_opts(&on).rows()), want);

    // Re-harvesting under the new epoch fills the cache again.
    assert!(db.harvest_reuse(&plan, &on) >= 1);
    let q3 = db.prepare_opts(&plan, &on).unwrap();
    assert_eq!(reused_count(&q3.plan()), 1);
    assert_eq!(normalized(q3.execute_opts(&on).rows()), want);
}

/// A fault injected into the producing run must leave the cache empty —
/// a failed harvest never installs, and the failure is not memoized as a
/// merit refusal (a later clean harvest succeeds).
#[test]
fn fault_during_install_never_poisons_the_cache() {
    let db = open_db();
    let plan = queries::tpch_q12(db.catalog()).unwrap();

    let faults = Arc::new(FaultRegistry::new());
    faults.arm(fault::SEQSCAN_NEXT, Trigger::every(1), FaultMode::Error);
    let faulty = QueryOpts::new().faults(Arc::clone(&faults));
    assert_eq!(db.harvest_reuse(&plan, &faulty), 0);
    assert!(db.reuse_cache().is_empty(), "faulted run must not install");
    assert!(db.reuse_cache().stats().install_failures >= 1);

    // Prepares in between see nothing to splice.
    let on = QueryOpts::new();
    let q = db.prepare_opts(&plan, &on).unwrap();
    assert_eq!(reused_count(&q.plan()), 0);

    // A clean harvest afterwards installs normally: transient failures are
    // not remembered as refusals.
    assert!(db.harvest_reuse(&plan, &on) >= 1);
    assert_eq!(
        reused_count(&db.prepare_opts(&plan, &on).unwrap().plan()),
        1
    );
}

/// A cancelled (zero-timeout) producing run likewise installs nothing and
/// does not block a later clean harvest.
#[test]
fn cancel_during_install_installs_nothing() {
    let db = open_db();
    let plan = queries::tpch_q14(db.catalog()).unwrap();

    let cancelled = QueryOpts::new().timeout(Duration::ZERO);
    assert_eq!(db.harvest_reuse(&plan, &cancelled), 0);
    assert!(db.reuse_cache().is_empty());
    assert!(db.reuse_cache().stats().install_failures >= 1);

    let on = QueryOpts::new();
    assert!(db.harvest_reuse(&plan, &on) >= 1);
    let q = db.prepare_opts(&plan, &on).unwrap();
    assert!(reused_count(&q.plan()) >= 1);
}

/// `ReusePolicy` gates each side independently: `ReadOnly` splices but
/// never installs; `Off` neither splices nor installs even on a hot cache.
#[test]
fn reuse_policy_gates_splice_and_install_independently() {
    let db = open_db();
    let plan = queries::tpch_q12(db.catalog()).unwrap();
    let ro = QueryOpts::new().reuse(ReusePolicy::ReadOnly);
    let off = QueryOpts::new().reuse(ReusePolicy::Off);
    let on = QueryOpts::new();

    assert_eq!(db.harvest_reuse(&plan, &ro), 0, "ReadOnly must not install");
    assert_eq!(db.harvest_reuse(&plan, &off), 0, "Off must not install");
    assert!(db.reuse_cache().is_empty());

    assert!(db.harvest_reuse(&plan, &on) >= 1);
    assert_eq!(
        reused_count(&db.prepare_opts(&plan, &off).unwrap().plan()),
        0,
        "Off must not splice a hot cache"
    );
    assert_eq!(
        reused_count(&db.prepare_opts(&plan, &ro).unwrap().plan()),
        1,
        "ReadOnly splices"
    );
}

/// A byte budget too small for the working set forces benefit-per-byte
/// eviction; residency never exceeds the budget and the counters stay
/// consistent (installs − evictions − invalidations = live entries).
#[test]
fn tight_budget_evicts_by_benefit_per_byte_with_exact_accounting() {
    let catalog = tpch::generate_catalog(0.002, 7);
    // The suite's aggregate outputs run 48-400 bytes; 160 bytes admits
    // the small ones one-at-a-time, so later installs must evict.
    let mut db = Database::open(catalog, MachineConfig::pentium4_like())
        .with_reuse_cache(Arc::new(ReuseCache::new(160)));
    db.set_threads(1);
    let on = QueryOpts::new();
    let plans = suite_plans(db.catalog());
    for (_, plan) in &plans {
        db.harvest_reuse(plan, &on);
    }
    let s = db.reuse_cache().stats();
    assert!(s.installs >= 2, "multiple installs expected, got {s:?}");
    assert!(s.evictions >= 1, "the tight budget must evict, got {s:?}");
    assert!(s.bytes <= 160, "residency above budget: {s:?}");
    assert_eq!(
        s.installs - s.evictions - s.invalidations,
        s.entries,
        "entry accounting must balance: {s:?}"
    );
    // What remains still splices and replays correctly.
    let mut spliced = 0;
    for (name, plan) in &plans {
        let q = db.prepare_opts(plan, &on).unwrap();
        if reused_count(&q.plan()) >= 1 {
            spliced += 1;
            let off = QueryOpts::new().reuse(ReusePolicy::Off);
            let want = normalized(
                db.prepare_opts(plan, &off)
                    .unwrap()
                    .execute_opts(&off)
                    .rows(),
            );
            assert_eq!(normalized(q.execute_opts(&on).rows()), want, "{name}");
        }
    }
    assert!(spliced >= 1, "survivors must still replay");
}
