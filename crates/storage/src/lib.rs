//! In-memory row storage: heap tables, a catalog, and table statistics.
//!
//! The paper's experiments run against a memory-resident PostgreSQL with a
//! buffer pool large enough that no I/O occurs; we therefore model tables as
//! in-memory row heaps directly. Every row carries a *simulated address* so
//! that the data-cache model in `bufferdb-cachesim` sees realistic tuple
//! traffic (sequential heap layout ⇒ hardware prefetch hides scan latency,
//! exactly the effect §7.4 relies on).

#![warn(missing_docs)]

pub mod catalog;
pub mod stats;
pub mod systable;
pub mod table;

pub use catalog::{Catalog, IndexDef};
pub use stats::TableStats;
pub use systable::{FnSysTable, SysTableProvider, SysTableRef};
pub use table::{RowId, Table, TableBuilder};
