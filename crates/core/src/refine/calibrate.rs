//! Cardinality-threshold calibration (§6, §7.3).
//!
//! "The calibration experiment would consist of running a single query with
//! and without buffering at various cardinalities. Query 1 would be a good
//! choice … The cardinality at which the buffered plan begins to beat the
//! unbuffered plan would be the cardinality threshold for buffering."
//!
//! This runs once per target machine configuration, on a synthetic table.

use crate::exec::execute_query;
use crate::expr::Expr;
use crate::plan::{AggFunc, AggSpec, PlanNode};
use crate::session::QueryOpts;
use crate::stats::ExecStats;
use bufferdb_cachesim::MachineConfig;
use bufferdb_storage::{Catalog, TableBuilder};
use bufferdb_types::{DataType, Datum, Decimal, Field, Schema, Tuple};

/// Result of one calibration sweep.
#[derive(Debug, Clone)]
pub struct CalibrationReport {
    /// `(output cardinality, unbuffered seconds, buffered seconds)` rows.
    pub points: Vec<(u64, f64, f64)>,
    /// Smallest swept cardinality where the buffered plan wins.
    pub threshold: u64,
}

/// The Query-1-shaped calibration template over a synthetic table: the scan
/// (with predicate) and the computed aggregation each fit in L1i, while
/// their combination exceeds it.
fn template(limit: i64, buffered: bool, buffer_size: usize) -> PlanNode {
    let scan = PlanNode::SeqScan {
        table: "calib".into(),
        predicate: Some(Expr::col(0).lt(Expr::lit(limit))),
        projection: None,
    };
    let input = if buffered {
        PlanNode::Buffer {
            input: Box::new(scan),
            size: buffer_size,
        }
    } else {
        scan
    };
    PlanNode::Aggregate {
        input: Box::new(input),
        group_by: vec![],
        aggs: vec![
            AggSpec::new(AggFunc::Sum, Expr::col(1), "s"),
            AggSpec::new(AggFunc::Avg, Expr::col(1), "a"),
            AggSpec::count_star("n"),
        ],
    }
}

/// Build the synthetic calibration table: `rows` rows of (sequence, money).
pub fn calibration_catalog(rows: i64) -> Catalog {
    let catalog = Catalog::new();
    let mut b = TableBuilder::new(
        "calib",
        Schema::new(vec![
            Field::new("seq", DataType::Int),
            Field::new("price", DataType::Decimal),
        ]),
    );
    for i in 0..rows {
        b.push(Tuple::new(vec![
            Datum::Int(i),
            Datum::Decimal(Decimal::from_cents(100 + (i * 37) % 90_000)),
        ]));
    }
    catalog.add_table(b);
    catalog
}

/// Sweep output cardinalities and find the crossover where buffering starts
/// to win on the given machine. Returns the full sweep for reporting.
pub fn calibrate_cardinality_threshold(
    cfg: &MachineConfig,
    buffer_size: usize,
) -> CalibrationReport {
    // Fixed table; the scan predicate controls output cardinality (§7.3).
    let cardinalities: &[i64] = &[25, 50, 100, 200, 400, 800, 1600, 3200, 6400];
    let table_rows = 8000;
    let catalog = calibration_catalog(table_rows);
    let mut points = Vec::new();
    let mut threshold = None;
    for &n in cardinalities {
        let plain = measure(&template(n, false, buffer_size), &catalog, cfg);
        let buf = measure(&template(n, true, buffer_size), &catalog, cfg);
        let (ps, bs) = (plain.seconds(), buf.seconds());
        points.push((n as u64, ps, bs));
        if bs < ps && threshold.is_none() {
            threshold = Some(n as u64);
        }
        if bs >= ps {
            threshold = None; // require the win to persist for larger cards
        }
    }
    CalibrationReport {
        points,
        threshold: threshold.unwrap_or(table_rows as u64),
    }
}

/// Run one calibration query, discarding the rows and keeping the stats.
fn measure(plan: &PlanNode, catalog: &Catalog, cfg: &MachineConfig) -> ExecStats {
    let (_, stats, _) = execute_query(plan, catalog, cfg, &QueryOpts::new())
        .into_result()
        .expect("calibration query");
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffered_wins_at_high_cardinality() {
        let cfg = MachineConfig::pentium4_like();
        let catalog = calibration_catalog(8000);
        let plain = measure(&template(6400, false, 100), &catalog, &cfg);
        let buf = measure(&template(6400, true, 100), &catalog, &cfg);
        assert!(
            buf.seconds() < plain.seconds(),
            "buffered {} vs plain {}",
            buf.seconds(),
            plain.seconds()
        );
        // And the dominant saving is instruction-cache misses.
        assert!(buf.counters.l1i_misses * 2 < plain.counters.l1i_misses);
    }

    #[test]
    fn calibration_finds_a_finite_threshold() {
        let cfg = MachineConfig::pentium4_like();
        let report = calibrate_cardinality_threshold(&cfg, 100);
        assert_eq!(report.points.len(), 9);
        assert!(report.threshold >= 25);
        assert!(report.threshold < 8000, "threshold {}", report.threshold);
        // The sweep is monotone-ish: buffered relative advantage grows.
        let first_gain = report.points[0].1 - report.points[0].2;
        let last_gain = report.points[8].1 - report.points[8].2;
        assert!(last_gain > first_gain);
    }
}
