//! Execution context threaded through every operator call.

use crate::arena::TupleArena;
use crate::cancel::CancelToken;
use crate::exec::exchange::ExchangeDelegate;
use crate::fault::FaultRegistry;
use crate::obs::trace::{TraceEvent, Tracer};
use crate::obs::{ExchangeLane, ObsEvent, ObsId, QueryProfile, QueryProfiler};
use bufferdb_cachesim::{Machine, MachineConfig, PerfCounters};
use bufferdb_types::Result;
use std::sync::Arc;

/// Per-query execution state: the simulated machine and the tuple arena.
///
/// Operators receive `&mut ExecContext` on every `open`/`next`/`close` call,
/// mirroring PostgreSQL's `EState`.
pub struct ExecContext {
    /// The simulated CPU (caches, predictor, counters).
    pub machine: Machine,
    /// Intermediate tuple storage.
    pub arena: TupleArena,
    /// Per-operator stats sink; `None` (the default) makes every `obs_*`
    /// helper a no-op, so unprofiled runs pay nothing.
    pub profiler: Option<QueryProfiler>,
    /// Row-range morsel handed to a worker pipeline by an exchange operator;
    /// the driving leaf scan claims it (`take`) at `open` and restricts
    /// itself to rows in `[lo, hi)`.
    pub morsel: Option<(u32, u32)>,
    /// Worker budget for intra-operator parallelism (the hash-join build
    /// partitioning). 1 inside exchange workers so parallel phases never
    /// nest.
    pub build_threads: usize,
    /// Cooperative cancellation flag, checked at morsel-claim, buffer-fill
    /// and blocking-operator loop boundaries. Cloned into worker contexts so
    /// one token stops the whole pool.
    pub cancel: CancelToken,
    /// Fault-injection sites (empty and free in production; see
    /// [`crate::fault`]). Shared with worker contexts so hit counts are
    /// pool-global.
    pub faults: Arc<FaultRegistry>,
    /// Flight-recorder handle; `None` (the default) makes every `trace_*`
    /// helper a no-op, so untraced runs pay nothing (see
    /// [`crate::obs::trace`]).
    pub tracer: Option<Tracer>,
    /// Server-side phase scheduler. When installed (by
    /// [`crate::server`] drive runners), exchange operators hand their
    /// parallel phases to it instead of spawning per-query scoped threads.
    pub(crate) delegate: Option<Box<dyn ExchangeDelegate>>,
    /// Cooperative time-slicer for multi-query cores. When installed (by
    /// the virtual server's session core), drive-side blocking loops call
    /// [`ExecContext::tuple_yield`] once per tuple; the slicer decides when
    /// the quantum is up and parks this query so another resident query can
    /// run on the same simulated machine. `None` (the default) costs one
    /// branch per tuple.
    pub(crate) slicer: Option<Box<dyn CoreSlicer>>,
}

/// Cooperative time-slicing hook for queries sharing one simulated core.
///
/// Installed into the drive context by the virtual server. The single
/// method is called at tuple boundaries of every blocking drive-side loop;
/// the implementation tracks the cycle quantum and, when it expires, hands
/// the machine back to the scheduler and blocks until this query's next
/// turn. The machine handed back on resume is the same core with *other
/// queries'* L1i state layered on top — that displacement is the modeled
/// cross-query interference.
pub trait CoreSlicer: Send {
    /// Yield the core if the quantum expired. On resume the implementation
    /// must re-base `profiler` (if present) so counters retired by other
    /// queries during the gap are not charged to this query's operators.
    fn maybe_yield(&mut self, machine: &mut Machine, profiler: Option<&mut QueryProfiler>);
}

impl ExecContext {
    /// Fresh context for one query under the given machine configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        ExecContext {
            machine: Machine::new(cfg),
            arena: TupleArena::new(),
            profiler: None,
            morsel: None,
            build_threads: 1,
            cancel: CancelToken::new(),
            faults: Arc::new(FaultRegistry::new()),
            tracer: None,
            delegate: None,
            slicer: None,
        }
    }

    /// Fresh context for an exchange/build worker: same machine
    /// configuration, sharing the coordinator's cancel token and fault
    /// registry, with intra-operator parallelism disabled (parallel phases
    /// never nest).
    pub fn for_worker(
        cfg: MachineConfig,
        parent_cancel: &CancelToken,
        parent_faults: &Arc<FaultRegistry>,
    ) -> Self {
        let mut ctx = ExecContext::new(cfg);
        ctx.cancel = parent_cancel.clone();
        ctx.faults = Arc::clone(parent_faults);
        ctx
    }

    /// Fail with [`bufferdb_types::DbError::Cancelled`] if the query's
    /// cancel token fired. Called at granule boundaries, never per tuple.
    /// A fired cancellation is recorded on the flight recorder.
    pub fn check_cancel(&mut self) -> Result<()> {
        let r = self.cancel.check();
        if r.is_err() {
            self.trace(TraceEvent::CancelObserved);
        }
        r
    }

    /// Pass through the named fault-injection site (no-op unless armed).
    /// A tripped fault is recorded on the flight recorder.
    pub fn fault(&mut self, site: &str) -> Result<()> {
        let r = self.faults.hit(site);
        if r.is_err() && self.tracer.is_some() {
            self.trace(TraceEvent::FaultTrip { site: site.into() });
        }
        r
    }

    /// Whether a flight recorder is attached (gate for any tracing work
    /// that needs preparation, e.g. snapshotting counters before a span).
    pub fn trace_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Nanoseconds on the trace clock, or 0 when tracing is off.
    pub fn trace_now(&self) -> u64 {
        self.tracer.as_ref().map_or(0, Tracer::now_ns)
    }

    /// Record a flight-recorder event (no-op when tracing is off).
    pub fn trace(&mut self, event: TraceEvent) {
        if let Some(t) = self.tracer.as_mut() {
            t.record(event);
        }
    }

    /// Record a histogram sample (no-op when tracing is off; see
    /// [`crate::obs::hist`] for metric names).
    pub fn trace_metric(&mut self, name: &str, v: u64) {
        if let Some(t) = self.tracer.as_mut() {
            t.metric(name, v);
        }
    }

    /// Tuple-boundary yield point for drive-side blocking loops (aggregate
    /// consume, sort fill, hash build, exchange drain, buffer refill). A
    /// no-op — one branch — unless a [`CoreSlicer`] is installed by the
    /// virtual server's session core.
    #[inline]
    pub fn tuple_yield(&mut self) {
        let ExecContext {
            slicer,
            machine,
            profiler,
            ..
        } = self;
        if let Some(s) = slicer.as_mut() {
            s.maybe_yield(machine, profiler.as_mut());
        }
    }

    /// Fold a joined worker's tracer into this context's recorder
    /// (no-op when either side is untraced).
    pub fn absorb_trace(&mut self, worker: Option<Tracer>) {
        if let (Some(t), Some(w)) = (self.tracer.as_mut(), worker) {
            t.absorb(w);
        }
    }

    /// Merge one exchange worker's results into this context: the worker
    /// core's counters into the machine, and (when profiling) the worker's
    /// per-operator profile into the query profiler plus a lane record on
    /// the exchange operator. `child_base` is the profiler id of the
    /// exchange subtree's root.
    pub fn absorb_worker(
        &mut self,
        exchange: Option<ObsId>,
        child_base: usize,
        counters: PerfCounters,
        profile: Option<&QueryProfile>,
        lane: ExchangeLane,
    ) {
        self.machine.absorb(&counters);
        self.absorb_lane_profile(exchange, child_base, profile, lane);
    }

    /// The profiler half of [`ExecContext::absorb_worker`], without folding
    /// counters into this context's machine. Server lanes run on long-lived
    /// pool-worker machines whose counters stay where they accrued; only the
    /// per-query attribution migrates to the coordinating profiler.
    pub(crate) fn absorb_lane_profile(
        &mut self,
        exchange: Option<ObsId>,
        child_base: usize,
        profile: Option<&QueryProfile>,
        lane: ExchangeLane,
    ) {
        if let (Some(id), Some(p)) = (exchange, self.profiler.as_mut()) {
            if let Some(wp) = profile {
                p.absorb_worker(child_base, id, wp);
            }
            p.exchange_lane(id, lane);
        }
    }

    /// Record entry into operator `id` (called by the profiling decorator).
    pub fn obs_enter(&mut self, id: ObsId) {
        if let Some(p) = self.profiler.as_mut() {
            p.enter(id, self.machine.snapshot());
        }
    }

    /// Record exit from operator `id` with what the call did.
    pub fn obs_exit(&mut self, id: ObsId, event: ObsEvent) {
        if let Some(p) = self.profiler.as_mut() {
            p.exit(id, event, self.machine.snapshot());
        }
    }

    /// A buffer operator finished a refill pass that stored `stored` tuples.
    pub fn obs_buffer_fill(&mut self, id: Option<ObsId>, stored: u64) {
        if let (Some(id), Some(p)) = (id, self.profiler.as_mut()) {
            p.buffer_fill(id, stored);
        }
    }

    /// A buffer operator's batch was fully consumed.
    pub fn obs_buffer_drain(&mut self, id: Option<ObsId>) {
        if let (Some(id), Some(p)) = (id, self.profiler.as_mut()) {
            p.buffer_drain(id);
        }
    }
}

impl std::fmt::Debug for ExecContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecContext")
            .field("counters", &self.machine.snapshot())
            .field("regions", &self.arena.region_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_context_has_clean_counters() {
        let ctx = ExecContext::new(MachineConfig::pentium4_like());
        let c = ctx.machine.snapshot();
        assert_eq!(c.instructions, 0);
        assert_eq!(ctx.arena.region_count(), 0);
    }
}
