//! Datum comparison, arithmetic and SQL three-valued logic.
//!
//! These are the "nullability, datatype, comparison, overflow" checks the
//! paper notes every operator performs per record (§4); the executor routes
//! their data-dependent outcomes into the simulated branch predictor.

use crate::error::{DbError, Result};
use crate::value::Datum;
use std::cmp::Ordering;

/// Compare two datums. `Ok(None)` means SQL NULL (either side null).
///
/// Numeric types coerce (`Int` ↔ `Decimal`, `Int` ↔ `Float`); all other
/// cross-type comparisons are errors, surfacing plan bugs early.
pub fn compare(a: &Datum, b: &Datum) -> Result<Option<Ordering>> {
    use Datum::*;
    let ord = match (a, b) {
        (Null, _) | (_, Null) => return Ok(None),
        (Bool(x), Bool(y)) => x.cmp(y),
        (Int(x), Int(y)) => x.cmp(y),
        (Float(x), Float(y)) => x
            .partial_cmp(y)
            .ok_or_else(|| DbError::TypeMismatch("NaN comparison".into()))?,
        (Decimal(x), Decimal(y)) => x.cmp(y),
        (Int(x), Decimal(y)) => crate::Decimal::from_int(*x).cmp(y),
        (Decimal(x), Int(y)) => x.cmp(&crate::Decimal::from_int(*y)),
        (Int(x), Float(y)) => (*x as f64)
            .partial_cmp(y)
            .ok_or_else(|| DbError::TypeMismatch("NaN comparison".into()))?,
        (Float(x), Int(y)) => x
            .partial_cmp(&(*y as f64))
            .ok_or_else(|| DbError::TypeMismatch("NaN comparison".into()))?,
        (Date(x), Date(y)) => x.cmp(y),
        (Str(x), Str(y)) => x.cmp(y),
        _ => {
            return Err(DbError::TypeMismatch(format!(
                "cannot compare {a} with {b}"
            )))
        }
    };
    Ok(Some(ord))
}

/// `a = b` under three-valued logic.
pub fn eq(a: &Datum, b: &Datum) -> Result<Option<bool>> {
    Ok(compare(a, b)?.map(|o| o == Ordering::Equal))
}

/// `a < b` under three-valued logic.
pub fn lt(a: &Datum, b: &Datum) -> Result<Option<bool>> {
    Ok(compare(a, b)?.map(|o| o == Ordering::Less))
}

/// `a <= b` under three-valued logic.
pub fn le(a: &Datum, b: &Datum) -> Result<Option<bool>> {
    Ok(compare(a, b)?.map(|o| o != Ordering::Greater))
}

/// `a > b` under three-valued logic.
pub fn gt(a: &Datum, b: &Datum) -> Result<Option<bool>> {
    Ok(compare(a, b)?.map(|o| o == Ordering::Greater))
}

/// `a >= b` under three-valued logic.
pub fn ge(a: &Datum, b: &Datum) -> Result<Option<bool>> {
    Ok(compare(a, b)?.map(|o| o != Ordering::Less))
}

/// `a <> b` under three-valued logic.
pub fn ne(a: &Datum, b: &Datum) -> Result<Option<bool>> {
    Ok(compare(a, b)?.map(|o| o != Ordering::Equal))
}

/// Total order for sorting: NULLs sort last, after all non-null values.
///
/// Unlike [`compare`], this never fails on mixed types that a validated sort
/// key can produce (it cannot — sort keys are monomorphic — so the fallback
/// arm is unreachable in practice and orders by discriminant for safety).
pub fn sort_compare(a: &Datum, b: &Datum) -> Ordering {
    match (a.is_null(), b.is_null()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => compare(a, b).ok().flatten().unwrap_or(Ordering::Equal),
    }
}

fn numeric_pair(a: &Datum, b: &Datum, op: &str) -> Result<(Datum, Datum)> {
    use Datum::*;
    Ok(match (a, b) {
        (Int(x), Decimal(_)) => (Decimal(crate::Decimal::from_int(*x)), b.clone()),
        (Decimal(_), Int(y)) => (a.clone(), Decimal(crate::Decimal::from_int(*y))),
        (Int(x), Float(_)) => (Float(*x as f64), b.clone()),
        (Float(_), Int(y)) => (a.clone(), Float(*y as f64)),
        (Int(_), Int(_)) | (Float(_), Float(_)) | (Decimal(_), Decimal(_)) => {
            (a.clone(), b.clone())
        }
        _ => {
            return Err(DbError::TypeMismatch(format!(
                "cannot apply {op} to {a} and {b}"
            )))
        }
    })
}

/// `a + b`; NULL-propagating, overflow-checked.
pub fn add(a: &Datum, b: &Datum) -> Result<Datum> {
    use Datum::*;
    if a.is_null() || b.is_null() {
        return Ok(Null);
    }
    match numeric_pair(a, b, "+")? {
        (Int(x), Int(y)) => x
            .checked_add(y)
            .map(Int)
            .ok_or_else(|| DbError::Overflow(format!("{x} + {y}"))),
        (Float(x), Float(y)) => Ok(Float(x + y)),
        (Decimal(x), Decimal(y)) => Ok(Decimal(x.checked_add(&y)?)),
        _ => unreachable!("numeric_pair returns aligned numeric types"),
    }
}

/// `a - b`; NULL-propagating, overflow-checked.
pub fn sub(a: &Datum, b: &Datum) -> Result<Datum> {
    use Datum::*;
    if a.is_null() || b.is_null() {
        return Ok(Null);
    }
    match numeric_pair(a, b, "-")? {
        (Int(x), Int(y)) => x
            .checked_sub(y)
            .map(Int)
            .ok_or_else(|| DbError::Overflow(format!("{x} - {y}"))),
        (Float(x), Float(y)) => Ok(Float(x - y)),
        (Decimal(x), Decimal(y)) => Ok(Decimal(x.checked_sub(&y)?)),
        _ => unreachable!("numeric_pair returns aligned numeric types"),
    }
}

/// `a * b`; NULL-propagating, overflow-checked.
pub fn mul(a: &Datum, b: &Datum) -> Result<Datum> {
    use Datum::*;
    if a.is_null() || b.is_null() {
        return Ok(Null);
    }
    match numeric_pair(a, b, "*")? {
        (Int(x), Int(y)) => x
            .checked_mul(y)
            .map(Int)
            .ok_or_else(|| DbError::Overflow(format!("{x} * {y}"))),
        (Float(x), Float(y)) => Ok(Float(x * y)),
        (Decimal(x), Decimal(y)) => Ok(Decimal(x.checked_mul(&y)?)),
        _ => unreachable!("numeric_pair returns aligned numeric types"),
    }
}

/// `a / b`; NULL-propagating; integer division by zero is an error.
pub fn div(a: &Datum, b: &Datum) -> Result<Datum> {
    use Datum::*;
    if a.is_null() || b.is_null() {
        return Ok(Null);
    }
    match numeric_pair(a, b, "/")? {
        (Int(x), Int(y)) => {
            if y == 0 {
                Err(DbError::DivideByZero)
            } else {
                Ok(Int(x / y))
            }
        }
        (Float(x), Float(y)) => Ok(Float(x / y)),
        (Decimal(x), Decimal(y)) => Ok(Decimal(x.checked_div(&y)?)),
        _ => unreachable!("numeric_pair returns aligned numeric types"),
    }
}

/// Three-valued AND.
pub fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

/// Three-valued OR.
pub fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

/// Three-valued NOT.
pub fn not3(a: Option<bool>) -> Option<bool> {
    a.map(|v| !v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Date, Decimal};

    fn dec(s: &str) -> Datum {
        Datum::Decimal(Decimal::parse(s).unwrap())
    }

    #[test]
    fn null_propagates_through_comparison() {
        assert_eq!(eq(&Datum::Null, &Datum::Int(1)).unwrap(), None);
        assert_eq!(lt(&Datum::Int(1), &Datum::Null).unwrap(), None);
    }

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(eq(&Datum::Int(2), &dec("2.00")).unwrap(), Some(true));
        assert_eq!(lt(&dec("1.99"), &Datum::Int(2)).unwrap(), Some(true));
        assert_eq!(gt(&Datum::Int(3), &Datum::Float(2.5)).unwrap(), Some(true));
    }

    #[test]
    fn incompatible_comparison_errors() {
        assert!(compare(&Datum::Int(1), &Datum::str("1")).is_err());
        assert!(compare(&Datum::Bool(true), &Datum::Int(1)).is_err());
    }

    #[test]
    fn date_comparison() {
        let a = Datum::Date(Date::parse("1998-09-01").unwrap());
        let b = Datum::Date(Date::parse("1998-09-02").unwrap());
        assert_eq!(le(&a, &b).unwrap(), Some(true));
        assert_eq!(ge(&a, &b).unwrap(), Some(false));
    }

    #[test]
    fn arithmetic_null_propagation() {
        assert!(add(&Datum::Null, &Datum::Int(1)).unwrap().is_null());
        assert!(mul(&Datum::Int(1), &Datum::Null).unwrap().is_null());
    }

    #[test]
    fn arithmetic_coercion() {
        assert_eq!(
            add(&Datum::Int(1), &dec("0.50")).unwrap(),
            match dec("1.50") {
                Datum::Decimal(d) => Datum::Decimal(d),
                _ => unreachable!(),
            }
        );
        assert_eq!(
            mul(&Datum::Int(2), &Datum::Float(1.5)).unwrap().as_float(),
            Some(3.0)
        );
    }

    #[test]
    fn integer_overflow_is_reported() {
        assert!(add(&Datum::Int(i64::MAX), &Datum::Int(1)).is_err());
        assert!(mul(&Datum::Int(i64::MAX), &Datum::Int(2)).is_err());
    }

    #[test]
    fn integer_divide_by_zero() {
        assert_eq!(
            div(&Datum::Int(1), &Datum::Int(0)),
            Err(DbError::DivideByZero)
        );
    }

    #[test]
    fn three_valued_logic_tables() {
        let (t, f, u) = (Some(true), Some(false), None);
        // AND
        assert_eq!(and3(t, t), t);
        assert_eq!(and3(t, f), f);
        assert_eq!(and3(f, u), f);
        assert_eq!(and3(u, f), f);
        assert_eq!(and3(t, u), u);
        assert_eq!(and3(u, u), u);
        // OR
        assert_eq!(or3(f, f), f);
        assert_eq!(or3(t, u), t);
        assert_eq!(or3(u, t), t);
        assert_eq!(or3(f, u), u);
        // NOT
        assert_eq!(not3(t), f);
        assert_eq!(not3(u), u);
    }

    #[test]
    fn sort_compare_nulls_last() {
        use std::cmp::Ordering::*;
        assert_eq!(sort_compare(&Datum::Null, &Datum::Int(1)), Greater);
        assert_eq!(sort_compare(&Datum::Int(1), &Datum::Null), Less);
        assert_eq!(sort_compare(&Datum::Null, &Datum::Null), Equal);
        assert_eq!(sort_compare(&Datum::Int(1), &Datum::Int(2)), Less);
    }

    #[test]
    fn compare_is_antisymmetric() {
        let mut rng = crate::Rng::seed_from_u64(0xC0);
        for _ in 0..256 {
            let a = rng.gen_range(-1000i64..1000);
            let b = rng.gen_range(-1000i64..1000);
            let x = Datum::Int(a);
            let y = Datum::Int(b);
            let ab = compare(&x, &y).unwrap().unwrap();
            let ba = compare(&y, &x).unwrap().unwrap();
            assert_eq!(ab, ba.reverse(), "a={a} b={b}");
        }
    }

    /// The full 3×3 truth table: AND/OR commute and De Morgan holds.
    #[test]
    fn three_valued_logic_laws_exhaustive() {
        let vals = [Some(true), Some(false), None];
        for a in vals {
            for b in vals {
                assert_eq!(and3(a, b), and3(b, a), "AND commutes at ({a:?}, {b:?})");
                assert_eq!(or3(a, b), or3(b, a), "OR commutes at ({a:?}, {b:?})");
                assert_eq!(
                    not3(and3(a, b)),
                    or3(not3(a), not3(b)),
                    "De Morgan ∧ ({a:?}, {b:?})"
                );
                assert_eq!(
                    not3(or3(a, b)),
                    and3(not3(a), not3(b)),
                    "De Morgan ∨ ({a:?}, {b:?})"
                );
            }
        }
    }
}
