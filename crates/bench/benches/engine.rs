//! Engine-level benchmarks: per-tuple iterator costs, the buffer operator's
//! own overhead (the paper's "light-weight" claim, Table 4), plan
//! refinement latency (§7: "the overhead of this algorithm is very small"),
//! and B+-tree probes.

use bufferdb_bench::microbench::bench;
use bufferdb_cachesim::MachineConfig;
use bufferdb_core::context::ExecContext;
use bufferdb_core::exec::buffer::BufferOp;
use bufferdb_core::exec::seqscan::SeqScanOp;
use bufferdb_core::exec::Operator;
use bufferdb_core::footprint::FootprintModel;
use bufferdb_core::refine::{refine_plan, RefineConfig};
use bufferdb_index::BTreeIndex;
use bufferdb_storage::{Catalog, TableBuilder};
use bufferdb_tpch::queries;
use bufferdb_types::{DataType, Datum, Field, Schema, Tuple};
use std::hint::black_box;

fn int_catalog(rows: i64) -> Catalog {
    let c = Catalog::new();
    let mut b = TableBuilder::new("t", Schema::new(vec![Field::new("k", DataType::Int)]));
    for i in 0..rows {
        b.push(Tuple::new(vec![Datum::Int(i)]));
    }
    c.add_table(b);
    c
}

fn bench_scan_next() {
    let catalog = int_catalog(1_000_000);
    let mut fm = FootprintModel::new();
    let mut ctx = ExecContext::new(MachineConfig::pentium4_like());
    let mut scan = SeqScanOp::new(&catalog, &mut fm, "t", None, None).unwrap();
    scan.open(&mut ctx).unwrap();
    bench("engine/seqscan_next", || {
        if scan.next(&mut ctx).unwrap().is_none() {
            scan.rescan(&mut ctx, None).unwrap();
        }
    });
}

fn bench_buffered_scan_next() {
    let catalog = int_catalog(1_000_000);
    let mut fm = FootprintModel::new();
    let mut ctx = ExecContext::new(MachineConfig::pentium4_like());
    let child = Box::new(SeqScanOp::new(&catalog, &mut fm, "t", None, None).unwrap());
    let mut op = BufferOp::new(&mut fm, child, 100).unwrap();
    op.open(&mut ctx).unwrap();
    bench("engine/buffered_scan_next", || {
        if op.next(&mut ctx).unwrap().is_none() {
            op.rescan(&mut ctx, None).unwrap();
        }
    });
}

fn bench_refine() {
    let catalog = bufferdb_tpch::generate_catalog(0.001, 42);
    let plan =
        queries::paper_query3(&catalog, bufferdb_tpch::queries::JoinMethod::MergeJoin).unwrap();
    let cfg = RefineConfig::default();
    bench("refine/query3_mergejoin", || {
        black_box(refine_plan(black_box(&plan), &catalog, &cfg))
    });
}

fn bench_btree_probe() {
    let pairs: Vec<(i64, u32)> = (0..1_000_000).map(|i| (i, i as u32)).collect();
    let tree = BTreeIndex::bulk_load(pairs);
    let mut key = 0i64;
    bench("btree/lookup_1m", || {
        key = (key + 7919) % 1_000_000;
        black_box(tree.lookup(key))
    });
}

fn main() {
    bench_scan_next();
    bench_buffered_scan_next();
    bench_refine();
    bench_btree_probe();
}
