//! Per-segment i-cache heat attribution: who misses where, and who evicted
//! whom.
//!
//! The owner-tag machinery ([`crate::Cache::set_owner`]) answers *how many*
//! misses were caused by another query; the heat ledger answers *which code*
//! thrashed and *which code displaced it*. Every L1i miss is charged to a
//! ledger cell keyed by `(segment, owner tag)` — the segment being fetched
//! and the query fetching it — and, when the miss is a cross-owner miss,
//! the evicting `(segment, owner)` cell is charged one `cross_caused`.
//!
//! Conservation is exact by construction: the ledger increments in the same
//! branch of the miss path that increments the machine counters, so
//!
//! * Σ cell.misses      == L1i misses (when enabled from machine birth),
//! * Σ cell.cross_misses == Σ cell.cross_caused == `l1i_cross_misses`.
//!
//! Hits never touch the ledger — enabling heat changes no modeled counter.

use std::collections::HashMap;

/// Segment id for lines fetched before any segment was announced (or under
/// code outside the named vocabulary). Id 0 is reserved by the machine's
/// interner for this name.
pub const UNTRACKED_SEGMENT: &str = "(untracked)";

/// One cell of the heat ledger: all activity of `(segment, owner)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeatCell {
    /// L1i misses taken while fetching this segment under this owner.
    pub misses: u64,
    /// Subset of `misses` whose line was last evicted by a different owner.
    pub cross_misses: u64,
    /// Lines this (segment, owner) pushed out of the cache.
    pub evictions: u64,
    /// Cross-owner misses this (segment, owner) *caused* elsewhere: the
    /// victim re-missed on a line this cell had evicted.
    pub cross_caused: u64,
}

/// A resolved ledger: segment ids replaced by names, plus per-set residency.
///
/// Produced by `Machine::heat_snapshot`; mergeable across machines (a server
/// merges every pool worker's ledger into one server-wide heatmap).
#[derive(Debug, Clone, Default)]
pub struct HeatSnapshot {
    /// `(segment name, owner tag)` → accumulated cell.
    pub cells: HashMap<(String, u32), HeatCell>,
    /// `(set index, segment name)` → resident lines right now. Residency is
    /// a point-in-time gauge (unlike the monotonic cells) and is *not*
    /// summed on merge across time — merging machines adds disjoint caches.
    pub residency: HashMap<(usize, String), u32>,
    /// Number of L1i sets (per contributing machine; uniform by config).
    pub sets: usize,
}

impl HeatSnapshot {
    /// Fold another machine's snapshot into this one. Cells add; residency
    /// adds (disjoint physical caches); `sets` must agree.
    pub fn merge(&mut self, other: &HeatSnapshot) {
        if self.sets == 0 {
            self.sets = other.sets;
        }
        debug_assert!(
            other.sets == 0 || other.sets == self.sets,
            "merging heatmaps of different geometries"
        );
        for (k, v) in &other.cells {
            let c = self.cells.entry(k.clone()).or_default();
            c.misses += v.misses;
            c.cross_misses += v.cross_misses;
            c.evictions += v.evictions;
            c.cross_caused += v.cross_caused;
        }
        for (k, v) in &other.residency {
            *self.residency.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Total misses across all cells.
    pub fn total_misses(&self) -> u64 {
        self.cells.values().map(|c| c.misses).sum()
    }

    /// Total cross misses across all cells (victim side).
    pub fn total_cross_misses(&self) -> u64 {
        self.cells.values().map(|c| c.cross_misses).sum()
    }

    /// Total cross misses caused (evictor side); equals
    /// [`HeatSnapshot::total_cross_misses`] by conservation.
    pub fn total_cross_caused(&self) -> u64 {
        self.cells.values().map(|c| c.cross_caused).sum()
    }

    /// Per-segment rollup (owners summed), sorted by misses descending then
    /// name, as `(segment, cell)` rows.
    pub fn by_segment(&self) -> Vec<(String, HeatCell)> {
        let mut map: HashMap<&str, HeatCell> = HashMap::new();
        for ((seg, _), v) in &self.cells {
            let c = map.entry(seg).or_default();
            c.misses += v.misses;
            c.cross_misses += v.cross_misses;
            c.evictions += v.evictions;
            c.cross_caused += v.cross_caused;
        }
        let mut rows: Vec<(String, HeatCell)> =
            map.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        rows.sort_by(|a, b| b.1.misses.cmp(&a.1.misses).then_with(|| a.0.cmp(&b.0)));
        rows
    }

    /// Per-owner rollup (segments summed), sorted by owner tag.
    pub fn by_owner(&self) -> Vec<(u32, HeatCell)> {
        let mut map: HashMap<u32, HeatCell> = HashMap::new();
        for ((_, owner), v) in &self.cells {
            let c = map.entry(*owner).or_default();
            c.misses += v.misses;
            c.cross_misses += v.cross_misses;
            c.evictions += v.evictions;
            c.cross_caused += v.cross_caused;
        }
        let mut rows: Vec<(u32, HeatCell)> = map.into_iter().collect();
        rows.sort_by_key(|&(owner, _)| owner);
        rows
    }

    /// Render a terminal heatmap: one row per segment, one column per set
    /// bucket, shading by resident lines; miss totals on the right.
    /// `buckets` folds the sets down for narrow terminals (32 sets → 32
    /// columns at `buckets = 32`).
    pub fn render(&self, buckets: usize) -> String {
        use std::fmt::Write as _;
        const SHADES: [char; 5] = [' ', '░', '▒', '▓', '█'];
        let buckets = buckets.max(1).min(self.sets.max(1));
        let mut out = String::new();
        let rows = self.by_segment();
        // residency per (segment, bucket)
        let mut res: HashMap<(&str, usize), u32> = HashMap::new();
        let mut peak = 1u32;
        for ((set, seg), n) in &self.residency {
            let b = set * buckets / self.sets.max(1);
            let e = res.entry((seg.as_str(), b)).or_insert(0);
            *e += n;
            peak = peak.max(*e);
        }
        let name_w = rows
            .iter()
            .map(|(s, _)| s.len())
            .chain(["segment".len()])
            .max()
            .unwrap_or(7);
        let _ = writeln!(
            out,
            "{:name_w$}  {:buckets$}  {:>10} {:>10} {:>10}",
            "segment", "sets", "misses", "cross", "caused",
        );
        for (seg, cell) in &rows {
            let mut strip = String::with_capacity(buckets);
            for b in 0..buckets {
                let n = res.get(&(seg.as_str(), b)).copied().unwrap_or(0);
                let shade = if n == 0 {
                    0
                } else {
                    1 + (n as usize * (SHADES.len() - 2)) / peak as usize
                };
                strip.push(SHADES[shade.min(SHADES.len() - 1)]);
            }
            let _ = writeln!(
                out,
                "{seg:name_w$}  {strip}  {:>10} {:>10} {:>10}",
                cell.misses, cell.cross_misses, cell.cross_caused,
            );
        }
        let _ = writeln!(
            out,
            "{:name_w$}  {:buckets$}  {:>10} {:>10} {:>10}",
            "total",
            "",
            self.total_misses(),
            self.total_cross_misses(),
            self.total_cross_caused(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(m: u64, x: u64, e: u64, c: u64) -> HeatCell {
        HeatCell {
            misses: m,
            cross_misses: x,
            evictions: e,
            cross_caused: c,
        }
    }

    #[test]
    fn merge_adds_cells_and_residency() {
        let mut a = HeatSnapshot {
            sets: 32,
            ..Default::default()
        };
        a.cells.insert(("scan_core".into(), 1), cell(10, 2, 5, 1));
        a.residency.insert((0, "scan_core".into()), 3);
        let mut b = HeatSnapshot {
            sets: 32,
            ..Default::default()
        };
        b.cells.insert(("scan_core".into(), 1), cell(4, 1, 2, 0));
        b.cells.insert(("agg_core".into(), 2), cell(7, 0, 0, 3));
        b.residency.insert((0, "scan_core".into()), 2);
        a.merge(&b);
        assert_eq!(a.cells[&("scan_core".into(), 1)], cell(14, 3, 7, 1));
        assert_eq!(a.cells[&("agg_core".into(), 2)], cell(7, 0, 0, 3));
        assert_eq!(a.residency[&(0, "scan_core".into())], 5);
        assert_eq!(a.total_misses(), 21);
        assert_eq!(a.total_cross_misses(), 3);
        assert_eq!(a.total_cross_caused(), 4);
    }

    #[test]
    fn by_segment_rolls_owners_up_and_sorts_by_misses() {
        let mut s = HeatSnapshot {
            sets: 32,
            ..Default::default()
        };
        s.cells.insert(("scan_core".into(), 1), cell(10, 0, 0, 0));
        s.cells.insert(("scan_core".into(), 2), cell(5, 0, 0, 0));
        s.cells.insert(("agg_core".into(), 1), cell(20, 0, 0, 0));
        let rows = s.by_segment();
        assert_eq!(rows[0].0, "agg_core");
        assert_eq!(rows[1].0, "scan_core");
        assert_eq!(rows[1].1.misses, 15);
    }

    #[test]
    fn render_includes_every_segment_and_totals() {
        let mut s = HeatSnapshot {
            sets: 32,
            ..Default::default()
        };
        s.cells.insert(("scan_core".into(), 1), cell(10, 2, 0, 2));
        s.residency.insert((4, "scan_core".into()), 8);
        let text = s.render(32);
        assert!(text.contains("scan_core"), "{text}");
        assert!(text.contains("total"), "{text}");
        assert!(text.contains('█') || text.contains('░'), "{text}");
    }
}
