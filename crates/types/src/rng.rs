//! A small deterministic PRNG (SplitMix64) used by the TPC-H generator and
//! the randomized tests.
//!
//! The crates.io `rand` crate is deliberately not a dependency: the simulator
//! only needs a reproducible uniform stream, and an in-tree generator keeps
//! the workspace building offline. SplitMix64 passes BigCrush for this use
//! and is seed-stable across platforms, so generated TPC-H data is
//! byte-identical for a given `(scale, seed)` everywhere.

/// Deterministic pseudo-random generator with a `rand`-like surface
/// (`seed_from_u64`, `gen_range`, `gen_bool`).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Construct from a 64-bit seed. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit value (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform integer drawn from a half-open (`lo..hi`) or inclusive
    /// (`lo..=hi`) range. The modulo bias is below 2^-40 for every range the
    /// workspace uses and is irrelevant for test/generator purposes.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        let (lo, hi) = range.bounds();
        assert!(lo <= hi, "gen_range over an empty range");
        let span = (hi - lo) as u128 + 1;
        let v = lo + (self.next_u64() as u128 % span) as i128;
        R::from_i128(v)
    }
}

/// Integer ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled integer type.
    type Output;
    /// Inclusive `(lo, hi)` bounds widened to `i128`.
    fn bounds(&self) -> (i128, i128);
    /// Narrow a sampled value back to the output type.
    fn from_i128(v: i128) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn bounds(&self) -> (i128, i128) {
                (self.start as i128, self.end as i128 - 1)
            }
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn bounds(&self) -> (i128, i128) {
                (*self.start() as i128, *self.end() as i128)
            }
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}

impl_sample_range!(i32, i64, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = Rng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
        for _ in 0..200 {
            let v = r.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
        // Single-value ranges are fine.
        assert_eq!(r.gen_range(9i32..=9), 9);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
