//! A long-lived query session: repeated executions against one catalog with
//! cross-query settings (worker budget, timeout, fault registry) and a
//! handle for cancelling the in-flight query from another thread.
//!
//! The session exists for the robustness contract: after any failed query —
//! typed error, timeout, injected fault, or contained worker panic — the
//! session stays usable and the next query runs normally. The chaos suite
//! (`tests/chaos.rs`) exercises exactly that.

use crate::cancel::CancelToken;
use crate::exec::{execute_query, ExecOptions, QueryOutcome};
use crate::fault::FaultRegistry;
use crate::plan::PlanNode;
use bufferdb_cachesim::MachineConfig;
use bufferdb_storage::Catalog;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Stateful query runner over one catalog.
pub struct Session {
    catalog: Catalog,
    cfg: MachineConfig,
    threads: usize,
    timeout: Option<Duration>,
    faults: Arc<FaultRegistry>,
    /// Cancel token of the in-flight (or most recent) query, so another
    /// thread holding a reference to the session can stop it.
    current: Mutex<CancelToken>,
}

impl Session {
    /// New session over `catalog` simulating `cfg`.
    pub fn new(catalog: Catalog, cfg: MachineConfig) -> Self {
        Session {
            catalog,
            cfg,
            threads: 1,
            timeout: None,
            faults: Arc::new(FaultRegistry::new()),
            current: Mutex::new(CancelToken::new()),
        }
    }

    /// The catalog queries run against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The session's fault registry: arm sites here to inject failures into
    /// subsequent queries.
    pub fn faults(&self) -> &Arc<FaultRegistry> {
        &self.faults
    }

    /// Set the worker budget for intra-operator parallelism.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Set (or clear) a per-query timeout; applies to queries started after
    /// this call.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.timeout = timeout;
    }

    /// Cancel the in-flight query (no-op when idle: the token is replaced at
    /// the start of each run).
    pub fn cancel(&self) {
        self.current
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .cancel();
    }

    /// Run `plan` to completion (or failure), profiled or not.
    pub fn run(&self, plan: &PlanNode, profile: bool) -> QueryOutcome {
        let cancel = match self.timeout {
            Some(t) => CancelToken::with_timeout(t),
            None => CancelToken::new(),
        };
        *self
            .current
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = cancel.clone();
        let opts = ExecOptions {
            threads: self.threads,
            cancel,
            faults: Arc::clone(&self.faults),
            profile,
        };
        execute_query(plan, &self.catalog, &self.cfg, &opts)
    }

    /// [`Session::run`] without profiling.
    pub fn execute(&self, plan: &PlanNode) -> QueryOutcome {
        self.run(plan, false)
    }

    /// [`Session::run`] with per-operator profiling.
    pub fn execute_profiled(&self, plan: &PlanNode) -> QueryOutcome {
        self.run(plan, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bufferdb_storage::TableBuilder;
    use bufferdb_types::{DataType, Datum, DbError, Field, Schema, Tuple};

    fn session() -> Session {
        let c = Catalog::new();
        let mut b = TableBuilder::new("t", Schema::new(vec![Field::new("k", DataType::Int)]));
        for i in 0..100 {
            b.push(Tuple::new(vec![Datum::Int(i)]));
        }
        c.add_table(b);
        Session::new(c, MachineConfig::pentium4_like())
    }

    fn scan() -> PlanNode {
        PlanNode::SeqScan {
            table: "t".into(),
            predicate: None,
            projection: None,
        }
    }

    #[test]
    fn clean_run_returns_rows() {
        let s = session();
        let out = s.execute(&scan());
        assert!(out.error.is_none());
        assert_eq!(out.rows.len(), 100);
    }

    #[test]
    fn zero_timeout_cancels_and_session_recovers() {
        let mut s = session();
        s.set_timeout(Some(Duration::ZERO));
        let out = s.execute(&scan());
        assert!(matches!(out.error, Some(DbError::Cancelled(_))), "{out:?}");
        s.set_timeout(None);
        let out = s.execute(&scan());
        assert!(out.error.is_none());
        assert_eq!(out.rows.len(), 100);
    }

    #[test]
    fn pre_cancelled_session_token_is_replaced_per_query() {
        let s = session();
        s.cancel(); // cancels the idle placeholder token only
        let out = s.execute(&scan());
        assert!(out.error.is_none(), "next query gets a fresh token");
    }
}
