//! Instruction footprints per operator, mirroring the paper's Table 2.
//!
//! Footprints are decomposed into named *segments*. Three segments are
//! shared across operator kinds, modelling the paper's observation that
//! "different modules share a fair number of functions": `common_rt`
//! (tuple-slot access, memory management), `expr_eval` (expression
//! evaluation for scan predicates, join quals and AVG), and `numeric_rt`
//! (the numeric/datum arithmetic library used by join key handling and the
//! computed aggregates SUM/AVG — but not by simple scan predicates).
//! Combined footprints count shared segments once (§6.1). The decomposition
//! is the unique family (up to small slack) that makes every published
//! grouping decision come out right at the 16 KB trace-cache capacity:
//! Query 2 and the Figure 15-17 join groups fit, while Query 1's and
//! TPC-H Q6's scan+aggregate pairs overflow.
//!
//! | Module (paper Table 2)      | Total  | Segments                                          |
//! |-----------------------------|--------|---------------------------------------------------|
//! | Scan, no predicates         |  9.0 K | common + scan_core                                |
//! | Scan, with predicates       | 13.2 K | common + expr + scan_core + scan_pred             |
//! | IndexScan                   | 14.0 K | common + ixscan_core                              |
//! | Sort                        | 14.0 K | common + sort_core                                |
//! | NestLoop                    | 11.0 K | common + expr + numeric + nestloop_core           |
//! | Merge Join                  | 12.0 K | common + expr + numeric + mergejoin_core          |
//! | Hash Join, build            | 12.0 K | common + hash_fn + numeric + hashbuild_core       |
//! | Hash Join, probe            | 12.0 K | common + expr + hash_fn + numeric + hashprobe_core|
//! | Aggregation, base           |  1.0 K | common + agg_core                                 |
//! |   + COUNT                   | +0.9 K | agg_count                                         |
//! |   + MIN / MAX               | +1.6 K | agg_min / agg_max                                 |
//! |   + SUM                     | +2.7 K | numeric + agg_sum                                 |
//! |   + AVG                     | +6.3 K | expr + numeric + agg_avg                          |
//! | Buffer                      |  0.7 K | buffer_core (no shared code: light-weight)        |

use crate::obs::ObsId;
use crate::plan::{AggFunc, AggSpec};
use bufferdb_cachesim::layout::SegmentRef;
use bufferdb_cachesim::{CodeLayout, CodeRegion, SegmentSpec};

/// The executor's dispatch loop (`ExecProcNode` and friends): code that runs
/// between *every* pair of operators but belongs to no module, so the
/// paper's per-module footprints (Table 2) exclude it. It occupies real
/// i-cache space, which is why groups sized right at the cache capacity
/// still take some conflict misses.
pub const EXEC_DISPATCH: usize = 1000;

/// Shared segment sizes in bytes.
pub const COMMON_RT: usize = 800;
/// Expression evaluator shared segment.
pub const EXPR_EVAL: usize = 1500;
/// Numeric/datum arithmetic library shared by joins and computed aggregates.
pub const NUMERIC_RT: usize = 2500;
/// Hash-function code shared by hash build and probe.
pub const HASH_FN: usize = 1200;

const SCAN_CORE: usize = 8200;
const SCAN_PRED: usize = 2700;
const IXSCAN_CORE: usize = 13_200;
const SORT_CORE: usize = 13_200;
const NESTLOOP_CORE: usize = 6200; // + common + expr + numeric => 11 K
const MERGEJOIN_CORE: usize = 7200; // + common + expr + numeric => 12 K
const HASHBUILD_CORE: usize = 7500; // + common + hash_fn + numeric => 12 K
const HASHPROBE_CORE: usize = 6000; // + common + expr + hash_fn + numeric => 12 K
const AGG_CORE: usize = 200;
const AGG_COUNT: usize = 900;
const AGG_MINMAX: usize = 1600;
const AGG_SUM: usize = 200; // + numeric_rt => 2.7 K as listed
const AGG_AVG: usize = 2300; // + expr_eval + numeric_rt => 6.3 K as listed
const BUFFER_CORE: usize = 700;
/// Exchange gather loop: queue pop + tuple hand-off. Like the buffer
/// operator it is light-weight and shares no module code.
const EXCHANGE_CORE: usize = 800;
const PROJECT_CORE: usize = 600;
const MATERIALIZE_CORE: usize = 3000;
const FILTER_CORE: usize = 900;
const LIMIT_CORE: usize = 300;
/// Replay loop of a cached intermediate (subplan reuse cache): slot fetch
/// plus hand-off, no expression or numeric code. Deliberately tiny — the
/// whole point of splicing a [`OpKind::ReusedScan`] over a subtree is that
/// the subtree's operator stack leaves the instruction stream.
const REUSED_CORE: usize = 1200;
/// Block-oriented operators (the §2 related-work baseline) carry the same
/// logic as their tuple-at-a-time versions plus block-management code.
const BLOCK_EXTRA: usize = 1100;
/// The push executor's fused-pipeline driver: the produce loop plus the
/// inlined consume calls threading a batch through every stage of one
/// fused group. It replaces the per-operator `exec_dispatch` interleaving
/// of the pull model — a fused group executes as ONE region, so its
/// member segments plus this driver form a single combined footprint.
const PUSH_DRIVER: usize = 1300;

/// Operator kinds for footprint purposes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// Sequential scan; `with_pred` adds the predicate machinery.
    SeqScan {
        /// Whether a predicate is evaluated per row.
        with_pred: bool,
    },
    /// Index scan (range or parameterized lookup).
    IndexScan,
    /// Replay of a cached intermediate (subplan reuse cache).
    ReusedScan,
    /// Scan of a virtual `sys.*` introspection table. Owns **no** code
    /// segments: the snapshot is taken outside the simulated machine, so
    /// introspection contributes nothing to any instruction footprint and
    /// cannot evict anyone's cached code (the observer-effect-zero
    /// guarantee the `sys.*` tests assert).
    SysScan,
    /// Blocking sort.
    Sort,
    /// Nested-loop join node.
    NestLoop,
    /// Merge join node.
    MergeJoin,
    /// Hash join build phase (blocking).
    HashBuild,
    /// Hash join probe phase.
    HashProbe,
    /// Aggregation with the given functions.
    Aggregate {
        /// The aggregate functions computed.
        funcs: Vec<AggFunc>,
    },
    /// The paper's buffer operator.
    Buffer,
    /// Parallel exchange (morsel fan-out + gather).
    Exchange,
    /// Standalone projection.
    Project,
    /// Blocking materialization.
    Materialize,
    /// Standalone filter (predicate over any input).
    Filter,
    /// LIMIT n.
    Limit,
    /// Block-oriented variant of another operator (related-work baseline,
    /// §2: "block oriented processing … requires a complete redesign of
    /// database operations").
    Block(Box<OpKind>),
    /// A fused push-based pipeline over the member operators: the whole
    /// group executes as one code region (member segments counted once,
    /// plus the push driver), which is the push model's answer to the
    /// paper's buffering — one combined footprint instead of several
    /// interleaved ones.
    PushGroup(Vec<OpKind>),
}

impl OpKind {
    /// The footprint kind for an aggregate node's specs.
    pub fn aggregate(specs: &[AggSpec]) -> OpKind {
        OpKind::Aggregate {
            funcs: specs.iter().map(|s| s.func).collect(),
        }
    }

    /// Segment names + sizes making up this operator's footprint.
    pub fn segments(&self) -> Vec<SegmentSpec> {
        let seg = SegmentSpec::new;
        let mut out = Vec::new();
        match self {
            OpKind::Buffer => {
                out.push(seg("buffer_core", BUFFER_CORE));
            }
            OpKind::Exchange => {
                out.push(seg("exchange_core", EXCHANGE_CORE));
            }
            OpKind::SeqScan { with_pred } => {
                out.push(seg("common_rt", COMMON_RT));
                out.push(seg("scan_core", SCAN_CORE));
                if *with_pred {
                    out.push(seg("expr_eval", EXPR_EVAL));
                    out.push(seg("scan_pred", SCAN_PRED));
                }
            }
            OpKind::IndexScan => {
                out.push(seg("common_rt", COMMON_RT));
                out.push(seg("ixscan_core", IXSCAN_CORE));
            }
            OpKind::ReusedScan => {
                out.push(seg("common_rt", COMMON_RT));
                out.push(seg("reused_core", REUSED_CORE));
            }
            OpKind::SysScan => {}
            OpKind::Sort => {
                out.push(seg("common_rt", COMMON_RT));
                out.push(seg("sort_core", SORT_CORE));
            }
            OpKind::NestLoop => {
                out.push(seg("common_rt", COMMON_RT));
                out.push(seg("expr_eval", EXPR_EVAL));
                out.push(seg("numeric_rt", NUMERIC_RT));
                out.push(seg("nestloop_core", NESTLOOP_CORE));
            }
            OpKind::MergeJoin => {
                out.push(seg("common_rt", COMMON_RT));
                out.push(seg("expr_eval", EXPR_EVAL));
                out.push(seg("numeric_rt", NUMERIC_RT));
                out.push(seg("mergejoin_core", MERGEJOIN_CORE));
            }
            OpKind::HashBuild => {
                out.push(seg("common_rt", COMMON_RT));
                out.push(seg("hash_fn", HASH_FN));
                out.push(seg("numeric_rt", NUMERIC_RT));
                out.push(seg("hashbuild_core", HASHBUILD_CORE));
            }
            OpKind::HashProbe => {
                out.push(seg("common_rt", COMMON_RT));
                out.push(seg("expr_eval", EXPR_EVAL));
                out.push(seg("hash_fn", HASH_FN));
                out.push(seg("numeric_rt", NUMERIC_RT));
                out.push(seg("hashprobe_core", HASHPROBE_CORE));
            }
            OpKind::Aggregate { funcs } => {
                out.push(seg("common_rt", COMMON_RT));
                out.push(seg("agg_core", AGG_CORE));
                for f in funcs {
                    match f {
                        AggFunc::CountStar | AggFunc::Count => {
                            out.push(seg("agg_count", AGG_COUNT))
                        }
                        AggFunc::Min => out.push(seg("agg_min", AGG_MINMAX)),
                        AggFunc::Max => out.push(seg("agg_max", AGG_MINMAX)),
                        AggFunc::Sum => {
                            out.push(seg("numeric_rt", NUMERIC_RT));
                            out.push(seg("agg_sum", AGG_SUM));
                        }
                        AggFunc::Avg => {
                            out.push(seg("expr_eval", EXPR_EVAL));
                            out.push(seg("numeric_rt", NUMERIC_RT));
                            out.push(seg("agg_avg", AGG_AVG));
                        }
                    }
                }
            }
            OpKind::Project => {
                out.push(seg("common_rt", COMMON_RT));
                out.push(seg("expr_eval", EXPR_EVAL));
                out.push(seg("project_core", PROJECT_CORE));
            }
            OpKind::Materialize => {
                out.push(seg("common_rt", COMMON_RT));
                out.push(seg("materialize_core", MATERIALIZE_CORE));
            }
            OpKind::Filter => {
                out.push(seg("common_rt", COMMON_RT));
                out.push(seg("expr_eval", EXPR_EVAL));
                out.push(seg("filter_core", FILTER_CORE));
            }
            OpKind::Limit => {
                out.push(seg("common_rt", COMMON_RT));
                out.push(seg("limit_core", LIMIT_CORE));
            }
            OpKind::Block(inner) => {
                out.extend(inner.segments());
                out.push(seg("block_mgmt", BLOCK_EXTRA));
            }
            OpKind::PushGroup(members) => {
                for m in members {
                    out.extend(m.segments());
                }
                out.push(seg("push_driver", PUSH_DRIVER));
            }
        }
        // Within one operator, count each shared segment once.
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out.dedup();
        out
    }

    /// Footprint in bytes, shared segments counted once (Table 2's totals).
    pub fn footprint_bytes(&self) -> usize {
        self.segments().iter().map(|s| s.bytes).sum()
    }
}

/// Per-query footprint model: owns the code layout and hands operators their
/// code regions and predicate branch sites.
pub struct FootprintModel {
    layout: CodeLayout,
    expr_seg: SegmentRef,
    site_counter: usize,
    /// When present, executor construction registers every operator here
    /// (pre-order) and wraps it in a profiling decorator.
    obs_labels: Option<Vec<String>>,
}

impl Default for FootprintModel {
    fn default() -> Self {
        Self::new()
    }
}

impl FootprintModel {
    /// A fresh model (one per database instance; code layout is shared by
    /// every query, as a real binary's text section is).
    pub fn new() -> Self {
        let mut layout = CodeLayout::new();
        let expr_seg = layout.define(&SegmentSpec::new("expr_eval", EXPR_EVAL));
        FootprintModel {
            layout,
            expr_seg,
            site_counter: 0,
            obs_labels: None,
        }
    }

    /// A model over an existing (typically pre-linked) layout.
    ///
    /// A multi-query server clones one [`FootprintModel::prelinked`] master
    /// layout per query build so every concurrent query sees the *same*
    /// text-section addresses — they genuinely share code, and their L1i
    /// interference is real displacement, not accidental address aliasing
    /// between independently laid-out layouts.
    pub fn with_layout(mut layout: CodeLayout) -> Self {
        let expr_seg = layout.define(&SegmentSpec::new("expr_eval", EXPR_EVAL));
        FootprintModel {
            layout,
            expr_seg,
            site_counter: 0,
            obs_labels: None,
        }
    }

    /// A master layout with the entire segment vocabulary already placed.
    ///
    /// Clones of this layout define no new segments for any plan the
    /// executor can build, so concurrent per-query models derived from one
    /// master agree on every address (see [`FootprintModel::with_layout`]).
    pub fn prelinked() -> CodeLayout {
        let mut layout = CodeLayout::new();
        let mut define = |name: &str, bytes: usize| {
            layout.define(&SegmentSpec::new(name, bytes));
        };
        define("expr_eval", EXPR_EVAL);
        define("common_rt", COMMON_RT);
        define("numeric_rt", NUMERIC_RT);
        define("hash_fn", HASH_FN);
        define("scan_core", SCAN_CORE);
        define("scan_pred", SCAN_PRED);
        define("ixscan_core", IXSCAN_CORE);
        define("reused_core", REUSED_CORE);
        define("sort_core", SORT_CORE);
        define("nestloop_core", NESTLOOP_CORE);
        define("mergejoin_core", MERGEJOIN_CORE);
        define("hashbuild_core", HASHBUILD_CORE);
        define("hashprobe_core", HASHPROBE_CORE);
        define("agg_core", AGG_CORE);
        define("agg_count", AGG_COUNT);
        define("agg_min", AGG_MINMAX);
        define("agg_max", AGG_MINMAX);
        define("agg_sum", AGG_SUM);
        define("agg_avg", AGG_AVG);
        define("buffer_core", BUFFER_CORE);
        define("exchange_core", EXCHANGE_CORE);
        define("project_core", PROJECT_CORE);
        define("materialize_core", MATERIALIZE_CORE);
        define("filter_core", FILTER_CORE);
        define("limit_core", LIMIT_CORE);
        define("block_mgmt", BLOCK_EXTRA);
        define("push_driver", PUSH_DRIVER);
        define("exec_dispatch", EXEC_DISPATCH);
        layout
    }

    /// Turn on operator registration: executors built with this model are
    /// wrapped for per-operator profiling (see [`crate::obs`]).
    pub fn enable_obs(&mut self) {
        self.obs_labels = Some(Vec::new());
    }

    /// Whether operator registration is on.
    pub fn obs_enabled(&self) -> bool {
        self.obs_labels.is_some()
    }

    /// Register one operator instance under `label`, returning its id.
    /// Ids are consecutive in registration (= plan pre-order) order.
    ///
    /// # Panics
    /// If [`FootprintModel::enable_obs`] was not called first.
    pub fn obs_register(&mut self, label: String) -> ObsId {
        let labels = self.obs_labels.as_mut().expect("obs not enabled");
        labels.push(label);
        ObsId(labels.len() - 1)
    }

    /// Labels of every registered operator, in id order.
    pub fn obs_labels(&self) -> &[String] {
        self.obs_labels.as_deref().unwrap_or(&[])
    }

    /// Build a code region for an operator instance. Every region includes
    /// the executor dispatch segment on top of the operator's own Table 2
    /// footprint (see [`EXEC_DISPATCH`]).
    pub fn region_for(&mut self, kind: &OpKind) -> CodeRegion {
        let mut segs: Vec<_> = kind
            .segments()
            .iter()
            .map(|s| self.layout.define(s))
            .collect();
        segs.push(
            self.layout
                .define(&SegmentSpec::new("exec_dispatch", EXEC_DISPATCH)),
        );
        CodeRegion::new(segs)
    }

    /// A branch-site address inside the *shared* expression evaluator for a
    /// data-dependent predicate. Different operators receive sites in the
    /// same shared functions — mixing their branch patterns, exactly the
    /// §4 effect.
    pub fn predicate_site(&mut self) -> u64 {
        let funcs = &self.expr_seg.functions;
        let (base, _) = funcs[self.site_counter % funcs.len()];
        self.site_counter += 1;
        base + 40
    }

    /// The underlying layout (for combined-footprint queries).
    pub fn layout(&self) -> &CodeLayout {
        &self.layout
    }

    /// Combined footprint of several operator kinds, counting shared
    /// segments once — the §6.1 rule used by plan refinement.
    pub fn combined_footprint(kinds: &[OpKind]) -> usize {
        let mut names: Vec<SegmentSpec> = Vec::new();
        for k in kinds {
            for s in k.segments() {
                if !names.iter().any(|n| n.name == s.name) {
                    names.push(s);
                }
            }
        }
        names.iter().map(|s| s.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_operators_have_footprints() {
        assert_eq!(OpKind::Filter.footprint_bytes(), 800 + 1500 + 900);
        assert_eq!(OpKind::Limit.footprint_bytes(), 800 + 300);
        let block_scan = OpKind::Block(Box::new(OpKind::SeqScan { with_pred: true }));
        assert_eq!(block_scan.footprint_bytes(), 13_200 + 1100);
    }

    #[test]
    fn sys_scan_has_zero_footprint() {
        assert!(OpKind::SysScan.segments().is_empty());
        assert_eq!(OpKind::SysScan.footprint_bytes(), 0);
    }

    #[test]
    fn table2_totals_match_paper() {
        assert_eq!(OpKind::SeqScan { with_pred: false }.footprint_bytes(), 9000);
        assert_eq!(
            OpKind::SeqScan { with_pred: true }.footprint_bytes(),
            13_200
        );
        assert_eq!(OpKind::IndexScan.footprint_bytes(), 14_000);
        assert_eq!(OpKind::Sort.footprint_bytes(), 14_000);
        assert_eq!(OpKind::NestLoop.footprint_bytes(), 11_000);
        assert_eq!(OpKind::MergeJoin.footprint_bytes(), 12_000);
        assert_eq!(OpKind::HashBuild.footprint_bytes(), 12_000);
        assert_eq!(OpKind::HashProbe.footprint_bytes(), 12_000);
        assert_eq!(OpKind::Aggregate { funcs: vec![] }.footprint_bytes(), 1000);
        assert_eq!(OpKind::Buffer.footprint_bytes(), 700);
    }

    #[test]
    fn aggregate_functions_add_their_footprints() {
        let count = OpKind::Aggregate {
            funcs: vec![AggFunc::CountStar],
        };
        assert_eq!(count.footprint_bytes(), 1900); // base 1.0K + count 0.9K
        let sum = OpKind::Aggregate {
            funcs: vec![AggFunc::Sum],
        };
        assert_eq!(sum.footprint_bytes(), 1000 + 2700); // SUM listed as 2.7K
        let avg = OpKind::Aggregate {
            funcs: vec![AggFunc::Avg],
        };
        assert_eq!(avg.footprint_bytes(), 1000 + 6300); // AVG listed as 6.3K
    }

    #[test]
    fn duplicate_agg_funcs_counted_once_for_shared_segments() {
        // SUM + AVG share numeric_rt: 1000 + 200 + 2300 + 1500 + 2500 = 7500.
        let k = OpKind::Aggregate {
            funcs: vec![AggFunc::Sum, AggFunc::Avg],
        };
        assert_eq!(k.footprint_bytes(), 7500);
    }

    #[test]
    fn push_group_is_one_combined_footprint_plus_driver() {
        let members = vec![
            OpKind::SeqScan { with_pred: true },
            OpKind::Filter,
            OpKind::Aggregate {
                funcs: vec![AggFunc::Sum],
            },
        ];
        let group = OpKind::PushGroup(members.clone());
        // Shared segments (common_rt, expr_eval, numeric_rt) count once:
        // the group footprint is the §6.1 combined footprint of its
        // members plus the push driver — not the sum of separate totals.
        assert_eq!(
            group.footprint_bytes(),
            FootprintModel::combined_footprint(&members) + PUSH_DRIVER
        );
        let separate: usize = members.iter().map(|m| m.footprint_bytes()).sum();
        assert!(group.footprint_bytes() < separate);
    }

    #[test]
    fn paper_query1_combined_footprint_exceeds_l1i() {
        // Scan-with-pred + Agg(SUM, AVG, COUNT): §7.2 says ≈ 23 K > 16 K.
        let combined = FootprintModel::combined_footprint(&[
            OpKind::SeqScan { with_pred: true },
            OpKind::Aggregate {
                funcs: vec![AggFunc::Sum, AggFunc::Avg, AggFunc::CountStar],
            },
        ]);
        assert!(combined > 16 * 1024, "combined {combined}");
        assert!(combined < 21 * 1024, "combined {combined}");
    }

    #[test]
    fn paper_query2_combined_footprint_fits_l1i() {
        // Scan-with-pred + Agg(COUNT): §7.2 says ≈ 15 K < 16 K.
        let combined = FootprintModel::combined_footprint(&[
            OpKind::SeqScan { with_pred: true },
            OpKind::Aggregate {
                funcs: vec![AggFunc::CountStar],
            },
        ]);
        assert!(combined < 16 * 1024, "combined {combined}");
        assert!(combined > 13 * 1024, "combined {combined}");
    }

    #[test]
    fn regions_share_segments_across_operators() {
        let mut m = FootprintModel::new();
        let scan = m.region_for(&OpKind::SeqScan { with_pred: true });
        let nl = m.region_for(&OpKind::NestLoop);
        let scan_exprs: Vec<u64> = scan
            .segments()
            .iter()
            .filter(|s| s.name == "expr_eval")
            .flat_map(|s| s.functions.iter().map(|&(b, _)| b))
            .collect();
        let nl_exprs: Vec<u64> = nl
            .segments()
            .iter()
            .filter(|s| s.name == "expr_eval")
            .flat_map(|s| s.functions.iter().map(|&(b, _)| b))
            .collect();
        assert_eq!(scan_exprs, nl_exprs, "expr_eval must be the same code");
    }

    #[test]
    fn prelinked_clones_agree_on_every_address() {
        // Two models over independent clones of one pre-linked master must
        // hand out identical code addresses for every operator kind the
        // executor can build — otherwise a clone would place a "new"
        // segment at a clone-local address and alias another query's code.
        let master = FootprintModel::prelinked();
        let kinds = [
            OpKind::SeqScan { with_pred: false },
            OpKind::SeqScan { with_pred: true },
            OpKind::IndexScan,
            OpKind::ReusedScan,
            OpKind::Sort,
            OpKind::NestLoop,
            OpKind::MergeJoin,
            OpKind::HashBuild,
            OpKind::HashProbe,
            OpKind::Aggregate {
                funcs: vec![
                    AggFunc::CountStar,
                    AggFunc::Count,
                    AggFunc::Min,
                    AggFunc::Max,
                    AggFunc::Sum,
                    AggFunc::Avg,
                ],
            },
            OpKind::Buffer,
            OpKind::Exchange,
            OpKind::Project,
            OpKind::Materialize,
            OpKind::Filter,
            OpKind::Limit,
            OpKind::Block(Box::new(OpKind::SeqScan { with_pred: true })),
            OpKind::PushGroup(vec![
                OpKind::SeqScan { with_pred: true },
                OpKind::Filter,
                OpKind::HashProbe,
                OpKind::Aggregate {
                    funcs: vec![AggFunc::Sum, AggFunc::Avg, AggFunc::CountStar],
                },
            ]),
        ];
        let mut m1 = FootprintModel::with_layout(master.clone());
        let mut m2 = FootprintModel::with_layout(master.clone());
        for k in &kinds {
            let addrs = |m: &mut FootprintModel| -> Vec<(u64, u32)> {
                m.region_for(k)
                    .segments()
                    .iter()
                    .flat_map(|s| s.functions.iter().copied())
                    .collect()
            };
            assert_eq!(addrs(&mut m1), addrs(&mut m2), "kind {k:?}");
        }
        assert_eq!(m1.predicate_site(), m2.predicate_site());
    }

    #[test]
    fn predicate_sites_live_in_shared_expr_code() {
        let mut m = FootprintModel::new();
        let s1 = m.predicate_site();
        let s2 = m.predicate_site();
        assert_ne!(s1, s2);
        let in_expr = |a: u64| {
            m.expr_seg
                .functions
                .iter()
                .any(|&(b, l)| a >= b && a < b + l as u64)
        };
        assert!(in_expr(s1) && in_expr(s2));
    }
}
