//! End-to-end integration: TPC-H queries through the whole stack
//! (generator → storage → executor → simulator), checking that every plan
//! variant computes the same answer and that the answer matches a direct
//! reference computation over the raw tables.

use bufferdb::prelude::*;
use bufferdb::tpch::{self, queries, queries::JoinMethod};

fn collect(plan: &PlanNode, catalog: &Catalog, cfg: &MachineConfig) -> Result<Vec<Tuple>> {
    execute_query(plan, catalog, cfg, &QueryOpts::new())
        .into_result()
        .map(|(rows, _, _)| rows)
}

fn rows_to_string(rows: &[Tuple]) -> String {
    rows.iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn query1_matches_reference_scan() {
    let catalog = tpch::generate_catalog(0.002, 7);
    let machine = MachineConfig::pentium4_like();
    let plan = queries::paper_query1(&catalog).unwrap();
    let rows = collect(&plan, &catalog, &machine).unwrap();
    assert_eq!(rows.len(), 1);

    // Reference: direct fold over the heap.
    let li = catalog.table("lineitem").unwrap();
    let cutoff = bufferdb::types::Date::parse("1998-09-02").unwrap();
    let one = Decimal::from_int(1);
    let mut sum = Decimal::from_int(0);
    let mut count = 0i64;
    let mut qty_sum = 0.0f64;
    for row in li.rows() {
        if row.get(10).as_date().unwrap() <= cutoff {
            let price = row.get(5).as_decimal().unwrap();
            let disc = row.get(6).as_decimal().unwrap();
            let tax = row.get(7).as_decimal().unwrap();
            let charge = price
                .checked_mul(&one.checked_sub(&disc).unwrap())
                .unwrap()
                .checked_mul(&one.checked_add(&tax).unwrap())
                .unwrap();
            sum = sum.checked_add(&charge).unwrap();
            qty_sum += row.get(4).as_decimal().unwrap().to_f64();
            count += 1;
        }
    }
    assert!(count > 1000, "enough data to be meaningful");
    assert_eq!(rows[0].get(0).as_decimal().unwrap(), sum, "sum_charge");
    assert_eq!(rows[0].get(2).as_int().unwrap(), count, "count_order");
    let avg = rows[0].get(1).as_float().unwrap();
    assert!((avg - qty_sum / count as f64).abs() < 1e-6, "avg_qty");
}

#[test]
fn refinement_preserves_results_for_every_paper_query() {
    let catalog = tpch::generate_catalog(0.002, 7);
    let machine = MachineConfig::pentium4_like();
    let cfg = RefineConfig::default();
    let plans = vec![
        ("paper q1", queries::paper_query1(&catalog).unwrap()),
        ("paper q2", queries::paper_query2(&catalog).unwrap()),
        (
            "paper q3 nl",
            queries::paper_query3(&catalog, JoinMethod::NestLoop).unwrap(),
        ),
        (
            "paper q3 hj",
            queries::paper_query3(&catalog, JoinMethod::HashJoin).unwrap(),
        ),
        (
            "paper q3 mj",
            queries::paper_query3(&catalog, JoinMethod::MergeJoin).unwrap(),
        ),
        ("tpch q1", queries::tpch_q1(&catalog).unwrap()),
        ("tpch q6", queries::tpch_q6(&catalog).unwrap()),
        ("tpch q12", queries::tpch_q12(&catalog).unwrap()),
        ("tpch q14", queries::tpch_q14(&catalog).unwrap()),
    ];
    for (name, plan) in plans {
        let refined = refine_plan(&plan, &catalog, &cfg);
        let a = collect(&plan, &catalog, &machine).unwrap();
        let b = collect(&refined, &catalog, &machine).unwrap();
        assert_eq!(rows_to_string(&a), rows_to_string(&b), "{name}");
    }
}

#[test]
fn join_methods_agree_with_reference_join() {
    let catalog = tpch::generate_catalog(0.001, 3);
    let machine = MachineConfig::pentium4_like();
    // Reference: count lineitems with shipdate <= cutoff (every one joins
    // exactly one order, FK integrity).
    let li = catalog.table("lineitem").unwrap();
    let cutoff = bufferdb::types::Date::parse("1998-09-02").unwrap();
    let expected: i64 = li
        .rows()
        .iter()
        .filter(|r| r.get(10).as_date().unwrap() <= cutoff)
        .count() as i64;
    for m in [
        JoinMethod::NestLoop,
        JoinMethod::HashJoin,
        JoinMethod::MergeJoin,
    ] {
        let plan = queries::paper_query3(&catalog, m).unwrap();
        let rows = collect(&plan, &catalog, &machine).unwrap();
        assert_eq!(rows[0].get(1).as_int().unwrap(), expected, "{m:?} count");
    }
}

#[test]
fn foreign_keys_are_consistent() {
    let catalog = tpch::generate_catalog(0.001, 9);
    let orders = catalog.table("orders").unwrap();
    let customers = catalog.table("customer").unwrap().row_count() as i64;
    for row in orders.rows().iter().take(500) {
        let ck = row.get(1).as_int().unwrap();
        assert!(ck >= 1 && ck <= customers, "o_custkey {ck} out of range");
    }
    let li = catalog.table("lineitem").unwrap();
    let n_orders = orders.row_count() as i64;
    let parts = catalog.table("part").unwrap().row_count() as i64;
    for row in li.rows().iter().take(500) {
        let ok = row.get(0).as_int().unwrap();
        let pk = row.get(1).as_int().unwrap();
        assert!(ok >= 1 && ok <= n_orders);
        assert!(pk >= 1 && pk <= parts);
    }
}

#[test]
fn buffer_everywhere_is_still_correct() {
    use bufferdb::core::plan::PlanNode;
    let catalog = tpch::generate_catalog(0.001, 5);
    let machine = MachineConfig::pentium4_like();
    let plan = queries::paper_query3(&catalog, JoinMethod::HashJoin).unwrap();
    // Stack buffers of several sizes above the probe scan.
    let PlanNode::Aggregate {
        input,
        group_by,
        aggs,
    } = plan.clone()
    else {
        panic!()
    };
    let PlanNode::HashJoin {
        probe,
        build,
        probe_key,
        build_key,
    } = *input
    else {
        panic!()
    };
    let stacked = PlanNode::Aggregate {
        input: Box::new(PlanNode::HashJoin {
            probe: Box::new(PlanNode::Buffer {
                input: Box::new(PlanNode::Buffer {
                    input: probe,
                    size: 7,
                }),
                size: 64,
            }),
            build,
            probe_key,
            build_key,
        }),
        group_by,
        aggs,
    };
    let a = collect(&plan, &catalog, &machine).unwrap();
    let b = collect(&stacked, &catalog, &machine).unwrap();
    assert_eq!(rows_to_string(&a), rows_to_string(&b));
}
