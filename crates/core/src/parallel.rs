//! Parallelism-aware plan rewriting: where to put exchange operators.
//!
//! The pass wraps scan-driven pipelines in [`PlanNode::Exchange`] nodes so
//! they execute morsel-wise on a worker pool (see [`crate::exec::exchange`]).
//! It is deliberately conservative about ordering: results must stay
//! bit-identical to serial execution, including floating-point accumulation
//! order in aggregates above the exchange.
//!
//! * A pipeline whose leaf is a **sequential scan** (optionally under
//!   filters/projections) always qualifies: the exchange resequences output
//!   by morsel index, reproducing the exact serial row order.
//! * A pipeline leafed by a **range index scan** emits rows grouped by
//!   heap-row morsel rather than key order, so it qualifies only where no
//!   ancestor is order-sensitive (merge joins, sorts, limits, aggregates —
//!   stable-sort ties and float accumulation make all of them sensitive).
//! * The rescanned inner side of a nested-loop join is never wrapped: the
//!   exchange does not support `rescan`.
//! * Pipelines below [`MIN_PARALLEL_ROWS`] driving rows stay serial —
//!   thread + per-morsel overhead would outweigh the work.
//!
//! Run this pass *before* [`crate::refine::refine_plan`]: refinement treats
//! the exchange as a blocking buffer point and places buffers below it.

use crate::plan::{IndexMode, PlanNode};
use bufferdb_storage::Catalog;
use bufferdb_types::Result;

use crate::exec::exchange::driving_leaf_rows;

/// Minimum driving-leaf rows for a pipeline to be worth parallelizing.
pub const MIN_PARALLEL_ROWS: u32 = 512;

/// Rewrite `plan`, wrapping every qualifying scan pipeline in an exchange
/// over `workers` workers. `workers == 0` is treated as 1; the plan is
/// rewritten even for a single worker so one-worker parallel execution
/// exercises the same machinery (useful for determinism tests).
///
/// Fails with the underlying catalog error (e.g. a plan leaf naming a table
/// that does not exist) instead of silently treating the pipeline as empty.
pub fn parallelize_plan(plan: &PlanNode, catalog: &Catalog, workers: usize) -> Result<PlanNode> {
    rec(plan, catalog, workers.max(1), false)
}

/// Is `plan` a pipeline an exchange can own: filters/projections over a
/// single scan leaf, with ordering acceptable under `order_required`?
fn pipeline_ok(plan: &PlanNode, order_required: bool) -> bool {
    match plan {
        PlanNode::SeqScan { .. } => true,
        PlanNode::IndexScan {
            mode: IndexMode::Range { .. },
            ..
        } => !order_required,
        PlanNode::Filter { input, .. } | PlanNode::Project { input, .. } => {
            pipeline_ok(input, order_required)
        }
        _ => false,
    }
}

fn rec(
    plan: &PlanNode,
    catalog: &Catalog,
    workers: usize,
    order_required: bool,
) -> Result<PlanNode> {
    if pipeline_ok(plan, order_required) {
        let rows = driving_leaf_rows(plan, catalog)?;
        if rows >= MIN_PARALLEL_ROWS {
            return Ok(PlanNode::Exchange {
                input: Box::new(plan.clone()),
                workers,
            });
        }
        return Ok(plan.clone());
    }
    Ok(match plan {
        PlanNode::NestLoopJoin {
            outer,
            inner,
            param_outer_col,
            qual,
            fk_inner,
        } => PlanNode::NestLoopJoin {
            outer: Box::new(rec(outer, catalog, workers, order_required)?),
            // The inner side is rescanned per outer row; exchanges cannot
            // rescan, so it stays serial.
            inner: inner.clone(),
            param_outer_col: *param_outer_col,
            qual: qual.clone(),
            fk_inner: *fk_inner,
        },
        PlanNode::HashJoin {
            probe,
            build,
            probe_key,
            build_key,
        } => PlanNode::HashJoin {
            // Probe-side order flows into the join output (and build-side
            // insertion order into per-key match order), so both inherit
            // the ancestor's order sensitivity.
            probe: Box::new(rec(probe, catalog, workers, order_required)?),
            build: Box::new(rec(build, catalog, workers, order_required)?),
            probe_key: *probe_key,
            build_key: *build_key,
        },
        PlanNode::MergeJoin {
            left,
            right,
            left_key,
            right_key,
        } => PlanNode::MergeJoin {
            left: Box::new(rec(left, catalog, workers, true)?),
            right: Box::new(rec(right, catalog, workers, true)?),
            left_key: *left_key,
            right_key: *right_key,
        },
        PlanNode::Sort { input, keys } => PlanNode::Sort {
            // Stable-sort ties keep input order.
            input: Box::new(rec(input, catalog, workers, true)?),
            keys: keys.clone(),
        },
        PlanNode::Aggregate {
            input,
            group_by,
            aggs,
        } => PlanNode::Aggregate {
            // Float accumulation and group insertion order are input-order
            // sensitive.
            input: Box::new(rec(input, catalog, workers, true)?),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        PlanNode::Limit { input, limit } => PlanNode::Limit {
            // Which rows survive the limit depends on order.
            input: Box::new(rec(input, catalog, workers, true)?),
            limit: *limit,
        },
        PlanNode::Project { input, exprs } => PlanNode::Project {
            input: Box::new(rec(input, catalog, workers, order_required)?),
            exprs: exprs.clone(),
        },
        PlanNode::Filter { input, predicate } => PlanNode::Filter {
            input: Box::new(rec(input, catalog, workers, order_required)?),
            predicate: predicate.clone(),
        },
        PlanNode::Buffer { input, size } => PlanNode::Buffer {
            input: Box::new(rec(input, catalog, workers, order_required)?),
            size: *size,
        },
        PlanNode::Materialize { input } => PlanNode::Materialize {
            input: Box::new(rec(input, catalog, workers, order_required)?),
        },
        // Already parallel, already mode-marked (mode selection runs after
        // this pass, so this is defensive), or a leaf that did not qualify.
        PlanNode::Exchange { .. }
        | PlanNode::PushPipeline { .. }
        | PlanNode::SeqScan { .. }
        | PlanNode::IndexScan { .. }
        | PlanNode::ReusedScan { .. }
        | PlanNode::SysScan { .. } => plan.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::{AggFunc, AggSpec};
    use bufferdb_storage::TableBuilder;
    use bufferdb_types::{DataType, Datum, Field, Schema, Tuple};

    fn catalog(rows: i64) -> Catalog {
        let c = Catalog::new();
        let mut b = TableBuilder::new(
            "t",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
            ]),
        );
        for i in 0..rows {
            b.push(Tuple::new(vec![Datum::Int(i), Datum::Int(i % 7)]));
        }
        c.add_table(b);
        c
    }

    fn scan() -> PlanNode {
        PlanNode::SeqScan {
            table: "t".into(),
            predicate: Some(Expr::col(1).le(Expr::lit(5))),
            projection: None,
        }
    }

    fn exchange_count(p: &PlanNode) -> usize {
        let own = usize::from(matches!(p, PlanNode::Exchange { .. }));
        own + p
            .children()
            .iter()
            .map(|c| exchange_count(c))
            .sum::<usize>()
    }

    #[test]
    fn aggregate_over_scan_gets_one_exchange_below_agg() {
        let c = catalog(5000);
        let plan = PlanNode::Aggregate {
            input: Box::new(scan()),
            group_by: vec![],
            aggs: vec![AggSpec::new(AggFunc::Sum, Expr::col(1), "s")],
        };
        let par = parallelize_plan(&plan, &c, 4).unwrap();
        assert_eq!(exchange_count(&par), 1);
        let PlanNode::Aggregate { input, .. } = &par else {
            panic!()
        };
        let PlanNode::Exchange { workers, input } = &**input else {
            panic!("expected exchange below aggregate: {par:#?}")
        };
        assert_eq!(*workers, 4);
        assert!(matches!(**input, PlanNode::SeqScan { .. }));
    }

    #[test]
    fn small_tables_stay_serial() {
        let c = catalog(100);
        let par = parallelize_plan(&scan(), &c, 4).unwrap();
        assert_eq!(exchange_count(&par), 0);
    }

    #[test]
    fn nestloop_inner_stays_serial() {
        let c = catalog(5000);
        let plan = PlanNode::NestLoopJoin {
            outer: Box::new(scan()),
            inner: Box::new(scan()),
            param_outer_col: None,
            qual: None,
            fk_inner: false,
        };
        let par = parallelize_plan(&plan, &c, 2).unwrap();
        let PlanNode::NestLoopJoin { outer, inner, .. } = &par else {
            panic!()
        };
        assert!(matches!(**outer, PlanNode::Exchange { .. }));
        assert!(matches!(**inner, PlanNode::SeqScan { .. }));
    }

    #[test]
    fn existing_exchange_is_not_nested() {
        let c = catalog(5000);
        let plan = PlanNode::Exchange {
            input: Box::new(scan()),
            workers: 2,
        };
        let par = parallelize_plan(&plan, &c, 8).unwrap();
        assert_eq!(exchange_count(&par), 1);
        assert!(matches!(par, PlanNode::Exchange { workers: 2, .. }));
    }

    #[test]
    fn unknown_table_propagates_catalog_error() {
        let c = catalog(5000);
        let plan = PlanNode::SeqScan {
            table: "no_such_table".into(),
            predicate: None,
            projection: None,
        };
        let err = parallelize_plan(&plan, &c, 4).unwrap_err();
        assert!(
            err.to_string().contains("no_such_table"),
            "error should name the missing table: {err}"
        );
    }
}
