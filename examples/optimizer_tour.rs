//! End-to-end tour: cost-based join selection, then footprint-based plan
//! refinement — the full pipeline the paper assumes (optimizer upstream,
//! refinement downstream).
//!
//! ```sh
//! cargo run --release --example optimizer_tour
//! ```

use bufferdb::core::optimizer::{choose_join_plan, JoinCostModel, JoinQuery};
use bufferdb::prelude::*;
use bufferdb::tpch;

fn main() -> Result<()> {
    let catalog = tpch::generate_catalog(0.005, 42);
    let machine = MachineConfig::pentium4_like();
    let l_ship = catalog.table("lineitem")?.schema().index_of("l_shipdate")?;
    let cutoffs = [
        ("1992-02-01", "very selective"),
        ("1998-09-02", "keeps everything"),
    ];
    for (cutoff, label) in cutoffs {
        let query = JoinQuery {
            outer_table: "lineitem".into(),
            outer_predicate: Some(Expr::col(l_ship).le(Expr::lit(bufferdb::types::Datum::Date(
                Date::parse(cutoff).expect("date"),
            )))),
            outer_key: 0,
            inner_table: "orders".into(),
            inner_key: 0,
            inner_index: Some("orders_pkey".into()),
        };
        let choice = choose_join_plan(&query, &catalog, &JoinCostModel::default())?;
        println!("== shipdate <= {cutoff} ({label}) ==");
        println!(
            "optimizer picks: {} (cost {:.0})",
            choice.method, choice.cost
        );
        let refined = refine_plan(&choice.plan, &catalog, &RefineConfig::default());
        println!("{}", explain(&refined, &catalog));
        let (rows, stats, _) =
            execute_query(&refined, &catalog, &machine, &QueryOpts::new()).into_result()?;
        println!(
            "rows: {}, modeled {:.3}s, L1i misses {}\n",
            rows.len(),
            stats.seconds(),
            stats.counters.l1i_misses
        );
    }
    Ok(())
}
