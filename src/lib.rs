//! # BufferDB
//!
//! A reproduction of *"Buffering Database Operations for Enhanced Instruction
//! Cache Performance"* (Zhou & Ross, SIGMOD 2004): a demand-pull pipelined
//! query engine, a machine simulator that stands in for the paper's Pentium 4
//! hardware counters, the light-weight **buffer operator**, and the
//! instruction-footprint-driven **plan refinement algorithm**.
//!
//! This facade crate re-exports every workspace crate under one roof:
//!
//! ```
//! use bufferdb::prelude::*;
//!
//! // Build a tiny catalog and run COUNT(*) over a filtered scan, once with
//! // the original plan and once with a buffer operator inserted.
//! let catalog = bufferdb::tpch::generate_catalog(0.001, 42);
//! let plan = bufferdb::tpch::queries::paper_query2(&catalog).unwrap();
//! let machine = MachineConfig::pentium4_like();
//! let out = execute_collect(&plan, &catalog, &machine).unwrap();
//! assert_eq!(out.len(), 1); // single aggregate row
//! ```
//!
//! See `examples/` for end-to-end walkthroughs and `crates/bench` for the
//! harness that regenerates every table and figure in the paper.

#![warn(missing_docs)]

pub use bufferdb_cachesim as cachesim;
pub use bufferdb_core as core;
pub use bufferdb_index as index;
pub use bufferdb_storage as storage;
pub use bufferdb_tpch as tpch;
pub use bufferdb_types as types;

/// Commonly used items in one import.
pub mod prelude {
    pub use bufferdb_cachesim::{BreakdownReport, MachineConfig, PerfCounters};
    pub use bufferdb_core::exec::execute_collect;
    pub use bufferdb_core::expr::Expr;
    pub use bufferdb_core::plan::{AggFunc, PlanNode};
    pub use bufferdb_core::refine::{refine_plan, RefineConfig};
    pub use bufferdb_storage::{Catalog, Table};
    pub use bufferdb_types::{
        DataType, Date, Datum, DbError, Decimal, Field, Result, Schema, Tuple,
    };
}
