//! A long-lived query session: repeated executions against one catalog with
//! cross-query settings (worker budget, timeout, fault registry) and a
//! handle for cancelling the in-flight query from another thread.
//!
//! The session exists for the robustness contract: after any failed query —
//! typed error, timeout, injected fault, or contained worker panic — the
//! session stays usable and the next query runs normally. The chaos suite
//! (`tests/chaos.rs`) exercises exactly that.
//!
//! The one entry point is [`Session::query`] with a [`QueryOpts`] builder.
//! For cached prepared execution, wrap the session in a
//! [`crate::prepare::Database`].

use crate::cancel::CancelToken;
use crate::exec::{execute_query, QueryOutcome};
use crate::fault::FaultRegistry;
use crate::plan::PlanNode;
use bufferdb_cachesim::MachineConfig;
use bufferdb_storage::Catalog;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Per-query policy for the subplan reuse cache (see
/// [`crate::prepare::ReuseCache`]).
///
/// Reuse never changes results — a spliced [`crate::plan::PlanNode::ReusedScan`]
/// replays bit-identical rows — so the policy only controls whether the
/// cache is consulted and whether new entries may be installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReusePolicy {
    /// Consult the cache at prepare time *and* allow eligible subtrees to
    /// install their output after a clean execution.
    #[default]
    Enabled,
    /// Consult the cache (splice hits) but never install new entries.
    ReadOnly,
    /// Ignore the reuse cache entirely.
    Off,
}

impl ReusePolicy {
    /// Whether prepare may splice `ReusedScan` leaves over cache hits.
    pub fn splices(self) -> bool {
        !matches!(self, ReusePolicy::Off)
    }

    /// Whether eligible subtrees may install their output after execution.
    pub fn installs(self) -> bool {
        matches!(self, ReusePolicy::Enabled)
    }

    /// Stable lowercase label (for reports and fingerprints).
    pub fn label(self) -> &'static str {
        match self {
            ReusePolicy::Enabled => "enabled",
            ReusePolicy::ReadOnly => "read-only",
            ReusePolicy::Off => "off",
        }
    }
}

/// The one execution-options type, builder style.
///
/// Used directly by [`crate::exec::execute_query`], by [`Session::query`],
/// by [`crate::prepare::Database`], and (wrapped in a
/// [`crate::server::SubmitSpec`]) by both servers. Unset options fall back
/// to the caller's defaults: a session fills in its worker budget, timeout,
/// and fault registry; bare `execute_query` runs serial with no deadline
/// and no armed faults.
///
/// ```ignore
/// let opts = QueryOpts::new().profile(true).threads(4);
/// let out = session.query(&plan, &opts);
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueryOpts {
    profile: bool,
    trace: bool,
    heatmap: bool,
    threads: Option<usize>,
    timeout: Option<Duration>,
    cancel: Option<CancelToken>,
    faults: Option<Arc<FaultRegistry>>,
    reuse: ReusePolicy,
}

impl QueryOpts {
    /// Options that inherit every session default (no profiling).
    pub fn new() -> Self {
        Self::default()
    }

    /// Request per-operator profiling (adds zero modeled cost).
    pub fn profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Request a flight-recorder trace on the outcome (see
    /// [`crate::obs::trace`]; adds zero modeled cost, off by default).
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Request a per-segment L1i heatmap on the outcome
    /// ([`bufferdb_cachesim::HeatSnapshot`]; attribution adds zero modeled
    /// cost, off by default).
    pub fn heatmap(mut self, on: bool) -> Self {
        self.heatmap = on;
        self
    }

    /// Override the session's worker budget for this query.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Override the session's per-query timeout for this query.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Attach a caller-held cancel token. An explicit token wins over any
    /// timeout-derived one, so the caller can stop the query from another
    /// thread regardless of deadlines.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attach a fault-injection registry for this query (chaos tests arm
    /// sites per query; unset inherits the session's registry, or an empty
    /// one under bare `execute_query`).
    pub fn faults(mut self, faults: Arc<FaultRegistry>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Set the subplan-reuse policy (default: [`ReusePolicy::Enabled`]).
    pub fn reuse(mut self, policy: ReusePolicy) -> Self {
        self.reuse = policy;
        self
    }

    /// Whether profiling was requested.
    pub fn wants_profile(&self) -> bool {
        self.profile
    }

    /// Whether a flight-recorder trace was requested.
    pub fn wants_trace(&self) -> bool {
        self.trace
    }

    /// Whether a per-segment L1i heatmap was requested.
    pub fn wants_heatmap(&self) -> bool {
        self.heatmap
    }

    /// The thread override, if any.
    pub fn thread_override(&self) -> Option<usize> {
        self.threads
    }

    /// The timeout override, if any.
    pub fn timeout_override(&self) -> Option<Duration> {
        self.timeout
    }

    /// The caller-held cancel token, if any.
    pub fn cancel_override(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The per-query fault registry, if any.
    pub fn fault_registry(&self) -> Option<&Arc<FaultRegistry>> {
        self.faults.as_ref()
    }

    /// The subplan-reuse policy.
    pub fn reuse_policy(&self) -> ReusePolicy {
        self.reuse
    }

    /// The cancel token this query will run under: the explicit token when
    /// set, else a fresh deadline token from the timeout, else a fresh
    /// never-cancelling token.
    pub fn resolve_cancel(&self) -> CancelToken {
        match (&self.cancel, self.timeout) {
            (Some(c), _) => c.clone(),
            (None, Some(t)) => CancelToken::with_timeout(t),
            (None, None) => CancelToken::new(),
        }
    }

    /// The fault registry this query will run under (an empty registry when
    /// none was attached).
    pub fn resolve_faults(&self) -> Arc<FaultRegistry> {
        match &self.faults {
            Some(f) => Arc::clone(f),
            None => Arc::new(FaultRegistry::new()),
        }
    }
}

/// Stateful query runner over one catalog.
pub struct Session {
    catalog: Catalog,
    cfg: MachineConfig,
    threads: usize,
    timeout: Option<Duration>,
    faults: Arc<FaultRegistry>,
    /// Cancel token of the in-flight (or most recent) query, so another
    /// thread holding a reference to the session can stop it.
    current: Mutex<CancelToken>,
}

impl Session {
    /// New session over `catalog` simulating `cfg`.
    pub fn new(catalog: Catalog, cfg: MachineConfig) -> Self {
        Session {
            catalog,
            cfg,
            threads: 1,
            timeout: None,
            faults: Arc::new(FaultRegistry::new()),
            current: Mutex::new(CancelToken::new()),
        }
    }

    /// The catalog queries run against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The simulated machine configuration queries run on.
    pub fn machine(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The session's default worker budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The session's default per-query timeout.
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// The session's fault registry: arm sites here to inject failures into
    /// subsequent queries.
    pub fn faults(&self) -> &Arc<FaultRegistry> {
        &self.faults
    }

    /// Set the worker budget for intra-operator parallelism.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Set (or clear) a per-query timeout; applies to queries started after
    /// this call.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.timeout = timeout;
    }

    /// Cancel the in-flight query (no-op when idle: the token is replaced at
    /// the start of each run).
    pub fn cancel(&self) {
        self.current
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .cancel();
    }

    /// Run `plan` to completion (or failure) under `opts`. Options left
    /// unset in `opts` inherit the session defaults.
    ///
    /// The plan is executed exactly as given — pass it through
    /// [`crate::prepare::prepare_physical_plan`] (or use a
    /// [`crate::prepare::Database`]) to parallelize and refine it first.
    pub fn query(&self, plan: &PlanNode, opts: &QueryOpts) -> QueryOutcome {
        let resolved = self.resolve_opts(opts);
        let cancel = resolved.resolve_cancel();
        *self
            .current
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = cancel.clone();
        execute_query(plan, &self.catalog, &self.cfg, &resolved.cancel(cancel))
    }

    /// Fill session defaults into options the caller left unset: the worker
    /// budget, the per-query timeout, and the fault registry. Explicit
    /// settings in `opts` always win.
    pub fn resolve_opts(&self, opts: &QueryOpts) -> QueryOpts {
        let mut resolved = opts.clone();
        if resolved.thread_override().is_none() {
            resolved = resolved.threads(self.threads);
        }
        if resolved.timeout_override().is_none() {
            if let Some(t) = self.timeout {
                resolved = resolved.timeout(t);
            }
        }
        if resolved.fault_registry().is_none() {
            resolved = resolved.faults(Arc::clone(&self.faults));
        }
        resolved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bufferdb_storage::TableBuilder;
    use bufferdb_types::{DataType, Datum, DbError, Field, Schema, Tuple};

    fn session() -> Session {
        let c = Catalog::new();
        let mut b = TableBuilder::new("t", Schema::new(vec![Field::new("k", DataType::Int)]));
        for i in 0..100 {
            b.push(Tuple::new(vec![Datum::Int(i)]));
        }
        c.add_table(b);
        Session::new(c, MachineConfig::pentium4_like())
    }

    fn scan() -> PlanNode {
        PlanNode::SeqScan {
            table: "t".into(),
            predicate: None,
            projection: None,
        }
    }

    #[test]
    fn clean_run_returns_rows() {
        let s = session();
        let out = s.query(&scan(), &QueryOpts::new());
        assert!(out.is_ok());
        assert_eq!(out.rows().len(), 100);
    }

    #[test]
    fn zero_timeout_cancels_and_session_recovers() {
        let mut s = session();
        s.set_timeout(Some(Duration::ZERO));
        let out = s.query(&scan(), &QueryOpts::new());
        assert!(
            matches!(out.error(), Some(DbError::Cancelled(_))),
            "{out:?}"
        );
        s.set_timeout(None);
        let out = s.query(&scan(), &QueryOpts::new());
        assert!(out.is_ok());
        assert_eq!(out.rows().len(), 100);
    }

    #[test]
    fn per_query_timeout_override_beats_session_default() {
        let s = session();
        let out = s.query(&scan(), &QueryOpts::new().timeout(Duration::ZERO));
        assert!(matches!(out.error(), Some(DbError::Cancelled(_))));
        // Session default (no timeout) is untouched.
        let out = s.query(&scan(), &QueryOpts::new());
        assert!(out.is_ok());
    }

    #[test]
    fn pre_cancelled_session_token_is_replaced_per_query() {
        let s = session();
        s.cancel(); // cancels the idle placeholder token only
        let out = s.query(&scan(), &QueryOpts::new());
        assert!(out.is_ok(), "next query gets a fresh token");
    }
}
