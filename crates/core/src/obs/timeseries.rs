//! Sliding-window time-series telemetry over **virtual** (modeled) time.
//!
//! The traffic driver runs an open-loop simulation on a virtual clock
//! measured in modeled nanoseconds, so the telemetry layer keys every
//! observation off a caller-supplied timestamp instead of a host clock.
//! That keeps runs deterministic for a given seed — window boundaries,
//! quantiles, and exports are byte-identical across machines — and, like
//! the flight recorder, recording costs **zero modeled instructions**
//! because it never executes a simulated code region.
//!
//! A [`TimeSeriesRegistry`] chops virtual time into fixed-width windows
//! (`[i·W, (i+1)·W)`). Within the open window it accumulates
//! per-series latency [`Histogram`]s (the log₂ buckets from
//! [`hist`](super::hist)), monotonically increasing named counters, and
//! last-write-wins gauges. Advancing the clock past a window boundary
//! seals the window into an immutable [`WindowSnapshot`]; empty windows
//! are still emitted so gaps in traffic are visible in the series.
//! [`TimeSeriesRegistry::finish`] seals the final (possibly partial)
//! window and returns a [`TimeSeries`] with two renderers: a
//! Prometheus/OpenMetrics text exposition of the cumulative totals and a
//! JSONL log with one line per window.

use super::hist::{HistSummary, Histogram};

/// Accumulator for one still-open window.
#[derive(Debug)]
struct OpenWindow {
    index: u64,
    latency: Vec<(String, Histogram)>,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
}

impl OpenWindow {
    fn new(index: u64) -> Self {
        OpenWindow {
            index,
            latency: Vec::new(),
            counters: Vec::new(),
            gauges: Vec::new(),
        }
    }

    fn seal(self, window_ns: u64, end_ns: u64) -> WindowSnapshot {
        WindowSnapshot {
            index: self.index,
            start_ns: self.index * window_ns,
            end_ns,
            latency: self
                .latency
                .into_iter()
                .map(|(name, h)| (name, h.summary()))
                .collect(),
            counters: self.counters,
            gauges: self.gauges,
        }
    }
}

/// An immutable, sealed telemetry window.
///
/// Latency series are condensed to [`HistSummary`] quantile estimates;
/// counters hold the deltas observed *within* this window (not cumulative
/// totals); gauges hold the last value set during the window. All series
/// keep first-recorded (insertion) order so exports are stable.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// Zero-based window index; window `i` spans `[i·W, (i+1)·W)`.
    pub index: u64,
    /// Virtual start of the window in nanoseconds.
    pub start_ns: u64,
    /// Virtual end of the window in nanoseconds. Equals `start_ns + W`
    /// except for the final partial window sealed by
    /// [`TimeSeriesRegistry::finish`].
    pub end_ns: u64,
    /// Per-series latency summaries, insertion-ordered.
    pub latency: Vec<(String, HistSummary)>,
    /// Per-window counter increments, insertion-ordered.
    pub counters: Vec<(String, u64)>,
    /// Last-write-wins gauge values, insertion-ordered.
    pub gauges: Vec<(String, f64)>,
}

impl WindowSnapshot {
    /// Counter value recorded in this window (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Latency summary for one series, if it recorded any samples.
    pub fn latency_for(&self, series: &str) -> Option<&HistSummary> {
        self.latency
            .iter()
            .find(|(n, _)| n == series)
            .map(|(_, s)| s)
    }

    /// Render this window as one JSONL event line (no trailing newline).
    ///
    /// Shape: `{"kind":"window","index":N,"start_ns":N,"end_ns":N,`
    /// `"latency":{series:{count,p50,p95,p99,max}},"counters":{...},`
    /// `"gauges":{...}}`. All times and latencies are virtual nanoseconds.
    pub fn jsonl_line(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"kind\":\"window\",\"index\":");
        out.push_str(&self.index.to_string());
        out.push_str(",\"start_ns\":");
        out.push_str(&self.start_ns.to_string());
        out.push_str(",\"end_ns\":");
        out.push_str(&self.end_ns.to_string());
        out.push_str(",\"latency\":{");
        for (i, (name, s)) in self.latency.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_escape_into(&mut out, name);
            out.push_str(&format!(
                ":{{\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                s.count, s.p50, s.p95, s.p99, s.max
            ));
        }
        out.push_str("},\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_escape_into(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_escape_into(&mut out, name);
            out.push(':');
            if v.is_finite() {
                out.push_str(&format!("{v}"));
            } else {
                out.push_str("null");
            }
        }
        out.push_str("}}");
        out
    }
}

/// Sliding-window registry of latency histograms, counters, and gauges
/// keyed to a virtual clock. See the [module docs](self) for semantics.
#[derive(Debug)]
pub struct TimeSeriesRegistry {
    window_ns: u64,
    open: OpenWindow,
    closed: Vec<WindowSnapshot>,
    total_latency: Vec<(String, Histogram)>,
    total_counters: Vec<(String, u64)>,
}

impl TimeSeriesRegistry {
    /// A registry with `window_ns`-wide windows starting at virtual time 0.
    /// `window_ns` is clamped to at least 1.
    pub fn new(window_ns: u64) -> Self {
        TimeSeriesRegistry {
            window_ns: window_ns.max(1),
            open: OpenWindow::new(0),
            closed: Vec::new(),
            total_latency: Vec::new(),
            total_counters: Vec::new(),
        }
    }

    /// Window width in virtual nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Seal every window that ends at or before `now_ns`. Windows with no
    /// recorded events are still emitted. Timestamps must be fed in
    /// non-decreasing order; a stamp earlier than the open window clamps
    /// into it rather than rewriting history.
    pub fn advance_to(&mut self, now_ns: u64) {
        while (self.open.index + 1).saturating_mul(self.window_ns) <= now_ns {
            let next = OpenWindow::new(self.open.index + 1);
            let sealed = std::mem::replace(&mut self.open, next);
            let end = (sealed.index + 1) * self.window_ns;
            self.closed.push(sealed.seal(self.window_ns, end));
        }
    }

    /// Record one latency sample for `series` observed at virtual time
    /// `at_ns`.
    pub fn record_latency(&mut self, series: &str, at_ns: u64, latency_ns: u64) {
        self.advance_to(at_ns);
        hist_for(&mut self.open.latency, series).record(latency_ns);
        hist_for(&mut self.total_latency, series).record(latency_ns);
    }

    /// Add `delta` to counter `name` at virtual time `at_ns`.
    pub fn counter_add(&mut self, name: &str, at_ns: u64, delta: u64) {
        self.advance_to(at_ns);
        *slot_for(&mut self.open.counters, name, 0) += delta;
        *slot_for(&mut self.total_counters, name, 0) += delta;
    }

    /// Set gauge `name` to `value` at virtual time `at_ns` (last write in
    /// a window wins).
    pub fn gauge_set(&mut self, name: &str, at_ns: u64, value: f64) {
        self.advance_to(at_ns);
        *slot_for(&mut self.open.gauges, name, 0.0) = value;
    }

    /// Windows sealed so far (the open window is not included).
    pub fn sealed(&self) -> &[WindowSnapshot] {
        &self.closed
    }

    /// Seal the final (possibly partial) window and return the finished
    /// series. A trailing window that is empty and zero-width is dropped;
    /// otherwise its `end_ns` records the actual end of the run.
    pub fn finish(mut self, end_ns: u64) -> TimeSeries {
        self.advance_to(end_ns);
        let open = self.open;
        let start = open.index * self.window_ns;
        let has_data =
            !open.latency.is_empty() || !open.counters.is_empty() || !open.gauges.is_empty();
        if has_data || end_ns > start {
            self.closed
                .push(open.seal(self.window_ns, end_ns.max(start)));
        }
        TimeSeries {
            window_ns: self.window_ns,
            end_ns,
            windows: self.closed,
            total_latency: self
                .total_latency
                .into_iter()
                .map(|(name, h)| {
                    let sum = h.sum();
                    (name, h.summary(), sum)
                })
                .collect(),
            total_counters: self.total_counters,
        }
    }
}

/// A finished time series: every sealed window plus cumulative totals,
/// with Prometheus and JSONL renderers.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    /// Window width in virtual nanoseconds.
    pub window_ns: u64,
    /// Virtual end of the run in nanoseconds.
    pub end_ns: u64,
    /// All sealed windows in order.
    pub windows: Vec<WindowSnapshot>,
    /// Cumulative per-series latency `(name, summary, sum_ns)` over the
    /// whole run.
    pub total_latency: Vec<(String, HistSummary, u64)>,
    /// Cumulative counter totals over the whole run.
    pub total_counters: Vec<(String, u64)>,
}

impl TimeSeries {
    /// Cumulative counter total (0 when never incremented).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.total_counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Render the cumulative totals as a Prometheus/OpenMetrics text
    /// exposition. Latency series become `summary`-typed families with
    /// 0.5/0.95/0.99 quantiles plus `_sum`/`_count`; counters get a
    /// `_total` suffix; the final window's gauges are exported as gauges.
    /// `prefix` namespaces every family (e.g. `bufferdb_traffic`).
    pub fn prometheus(&self, prefix: &str) -> String {
        let prefix = sanitize_metric_name(prefix);
        let mut out = String::new();
        let fam = format!("{prefix}_latency_ns");
        out.push_str(&format!(
            "# HELP {fam} query latency by series (virtual ns, log2-bucket quantile estimates)\n\
             # TYPE {fam} summary\n"
        ));
        for (name, s, sum) in &self.total_latency {
            let label = prom_label_escape(name);
            for (q, v) in [("0.5", s.p50), ("0.95", s.p95), ("0.99", s.p99)] {
                out.push_str(&format!(
                    "{fam}{{series=\"{label}\",quantile=\"{q}\"}} {v}\n"
                ));
            }
            out.push_str(&format!("{fam}_sum{{series=\"{label}\"}} {sum}\n"));
            out.push_str(&format!("{fam}_count{{series=\"{label}\"}} {}\n", s.count));
        }
        for (name, v) in &self.total_counters {
            let fam = format!("{prefix}_{}_total", sanitize_metric_name(name));
            out.push_str(&format!(
                "# HELP {fam} cumulative {name} events\n# TYPE {fam} counter\n{fam} {v}\n"
            ));
        }
        if let Some(last) = self.windows.last() {
            for (name, v) in &last.gauges {
                let fam = format!("{prefix}_{}", sanitize_metric_name(name));
                let rendered = if v.is_finite() {
                    format!("{v}")
                } else {
                    "NaN".to_string()
                };
                out.push_str(&format!(
                    "# HELP {fam} last observed {name}\n# TYPE {fam} gauge\n{fam} {rendered}\n"
                ));
            }
        }
        let fam = format!("{prefix}_windows_total");
        out.push_str(&format!(
            "# HELP {fam} telemetry windows sealed\n# TYPE {fam} counter\n{fam} {}\n",
            self.windows.len()
        ));
        out
    }

    /// Render every window as JSONL (one [`WindowSnapshot::jsonl_line`]
    /// per line, trailing newline included).
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for w in &self.windows {
            out.push_str(&w.jsonl_line());
            out.push('\n');
        }
        out
    }
}

fn hist_for<'a>(series: &'a mut Vec<(String, Histogram)>, name: &str) -> &'a mut Histogram {
    if let Some(i) = series.iter().position(|(n, _)| n == name) {
        return &mut series[i].1;
    }
    series.push((name.to_string(), Histogram::new()));
    let last = series.len() - 1;
    &mut series[last].1
}

fn slot_for<'a, T: Copy>(slots: &'a mut Vec<(String, T)>, name: &str, zero: T) -> &'a mut T {
    if let Some(i) = slots.iter().position(|(n, _)| n == name) {
        return &mut slots[i].1;
    }
    slots.push((name.to_string(), zero));
    let last = slots.len() - 1;
    &mut slots[last].1
}

/// Replace every character outside `[a-zA-Z0-9_:]` with `_` so arbitrary
/// series names are legal Prometheus metric names.
fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Escape a Prometheus label value (backslash, quote, newline).
fn prom_label_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn json_escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_seal_at_boundaries_and_empty_windows_are_emitted() {
        let mut ts = TimeSeriesRegistry::new(1000);
        ts.record_latency("q", 100, 7);
        // Jump three windows ahead: windows 0..=2 seal, 1 and 2 empty.
        ts.record_latency("q", 3500, 9);
        assert_eq!(ts.sealed().len(), 3);
        assert_eq!(ts.sealed()[0].latency_for("q").unwrap().count, 1);
        assert!(ts.sealed()[1].latency.is_empty());
        assert_eq!(ts.sealed()[1].start_ns, 1000);
        assert_eq!(ts.sealed()[1].end_ns, 2000);
        let done = ts.finish(3600);
        assert_eq!(done.windows.len(), 4);
        assert_eq!(done.windows[3].end_ns, 3600, "partial window keeps run end");
        assert_eq!(done.total_latency[0].1.count, 2);
    }

    #[test]
    fn counters_are_per_window_deltas_and_cumulative_totals() {
        let mut ts = TimeSeriesRegistry::new(10);
        ts.counter_add("ok", 1, 2);
        ts.counter_add("ok", 15, 3);
        ts.gauge_set("load", 16, 0.5);
        let done = ts.finish(20);
        assert_eq!(done.windows[0].counter("ok"), 2);
        assert_eq!(done.windows[1].counter("ok"), 3);
        assert_eq!(done.counter_total("ok"), 5);
        assert_eq!(done.windows[1].gauges, vec![("load".to_string(), 0.5)]);
    }

    #[test]
    fn exact_boundary_sample_lands_in_next_window() {
        let mut ts = TimeSeriesRegistry::new(100);
        ts.record_latency("q", 100, 1);
        assert_eq!(ts.sealed().len(), 1, "window 0 sealed empty");
        let done = ts.finish(200);
        assert_eq!(done.windows[1].latency_for("q").unwrap().count, 1);
    }

    #[test]
    fn jsonl_line_shape_is_stable() {
        let mut ts = TimeSeriesRegistry::new(100);
        ts.record_latency("all", 10, 6);
        ts.counter_add("ok", 10, 1);
        ts.gauge_set("qps", 10, 2.5);
        let done = ts.finish(100);
        assert_eq!(
            done.windows[0].jsonl_line(),
            "{\"kind\":\"window\",\"index\":0,\"start_ns\":0,\"end_ns\":100,\
             \"latency\":{\"all\":{\"count\":1,\"p50\":6,\"p95\":6,\"p99\":6,\"max\":6}},\
             \"counters\":{\"ok\":1},\"gauges\":{\"qps\":2.5}}"
        );
    }

    #[test]
    fn prometheus_exposition_has_families_and_quantiles() {
        let mut ts = TimeSeriesRegistry::new(100);
        ts.record_latency("Q6", 10, 900);
        ts.counter_add("queries ok", 10, 4);
        ts.gauge_set("offered_qps", 10, 1.5);
        let text = ts.finish(100).prometheus("bufferdb_traffic");
        assert!(text.contains("# TYPE bufferdb_traffic_latency_ns summary"));
        assert!(text.contains("bufferdb_traffic_latency_ns{series=\"Q6\",quantile=\"0.95\"}"));
        assert!(text.contains("bufferdb_traffic_latency_ns_count{series=\"Q6\"} 1"));
        assert!(text.contains("bufferdb_traffic_latency_ns_sum{series=\"Q6\"} 900"));
        // Name sanitization: spaces become underscores in metric names.
        assert!(text.contains("bufferdb_traffic_queries_ok_total 4"));
        assert!(text.contains("bufferdb_traffic_offered_qps 1.5"));
        assert!(text.contains("bufferdb_traffic_windows_total 1"));
    }

    #[test]
    fn empty_registry_finishes_to_empty_series() {
        let done = TimeSeriesRegistry::new(1000).finish(0);
        assert!(done.windows.is_empty());
        assert!(done.jsonl().is_empty());
        assert!(done.prometheus("p").contains("p_windows_total 0"));
    }
}
